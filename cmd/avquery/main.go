// Command avquery runs ad-hoc queries over the consolidated failure
// database: filter disengagements by manufacturer, tag, category, road,
// weather, modality, or month range, then list them or group-count them.
// The filtering and grouping live in the reusable internal/query engine —
// the same one behind the avserve HTTP API.
//
// Usage:
//
//	avquery [-seed 1] [-snapshot-dir snapshots/] [-mfr Waymo] [-tag "Recognition System"]
//	        [-category ML/Design] [-road highway] [-weather rain]
//	        [-modality manual] [-from 2015-01] [-to 2015-12]
//	        [-by tag|category|month|road|weather|modality|manufacturer]
//	        [-accidents] [-limit 20] [-csv] [-json]
//
// Without -by, matching events are listed (up to -limit); with -by, counts
// per group are printed; with -accidents, accident reports matching -mfr
// and the month range are listed through the same query.Engine.Accidents
// path the avserve API uses. -csv emits the matching rows as CSV on
// stdout; -json emits the listing or the group counts as JSON instead of
// text. Malformed -from/-to values are rejected with a parse error.
//
// With -snapshot-dir, the study is loaded from the directory's snapshots
// (written by avpipe -snapshot-out) instead of re-running the Stage I-IV
// pipeline: the mmap-able study-<seed>.avsnap2 columnar file is tried
// first (zero-copy; disable with -snapshot-v2=false), then the legacy
// study-<seed>.avsnap. A missing snapshot falls back to the pipeline
// build, while a corrupt one is a hard error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"

	"avfda"
	"avfda/internal/query"
	"avfda/internal/snapshot"
	"avfda/internal/snapshot2"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avquery:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "study seed")
	snapDir := flag.String("snapshot-dir", "", "load the study from this snapshot directory instead of rebuilding")
	snapV2 := flag.Bool("snapshot-v2", true, "try the mmap-able v2 snapshot before the legacy v1 file")
	mfr := flag.String("mfr", "", "filter: manufacturer name")
	tag := flag.String("tag", "", "filter: fault tag")
	category := flag.String("category", "", "filter: failure category")
	road := flag.String("road", "", "filter: road type")
	weather := flag.String("weather", "", "filter: weather condition")
	modality := flag.String("modality", "", "filter: disengagement modality")
	from := flag.String("from", "", "filter: first month, YYYY-MM")
	to := flag.String("to", "", "filter: last month, YYYY-MM")
	by := flag.String("by", "", "group counts by this column instead of listing")
	accidents := flag.Bool("accidents", false, "list accident reports instead of disengagements")
	limit := flag.Int("limit", 20, "max rows to list")
	csv := flag.Bool("csv", false, "emit matching rows as CSV")
	jsonOut := flag.Bool("json", false, "emit the listing or group counts as JSON")
	flag.Parse()

	f := query.Filter{
		Manufacturer: *mfr, Tag: *tag, Category: *category, Road: *road,
		Weather: *weather, Modality: *modality, From: *from, To: *to,
	}
	// Reject malformed month bounds before paying for the study build.
	if err := f.Validate(); err != nil {
		return err
	}

	eng, err := loadEngine(*snapDir, *seed, *snapV2)
	if err != nil {
		return err
	}

	if *accidents {
		page, err := eng.Accidents(f, query.Page{Limit: *limit})
		if err != nil {
			return err
		}
		if *jsonOut {
			return encodeJSON(os.Stdout, page)
		}
		return printAccidents(os.Stdout, page, *limit)
	}

	matched, err := eng.Count(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "matched %d of %d events\n", matched, eng.Len())

	switch {
	case *csv:
		fr, err := eng.Frame(f)
		if err != nil {
			return err
		}
		return fr.WriteCSV(os.Stdout)
	case *by != "":
		if *jsonOut {
			return writeGroupsJSON(os.Stdout, eng, f, *by)
		}
		return printGroups(os.Stdout, eng, f, *by)
	default:
		if *jsonOut {
			return writeEventsJSON(os.Stdout, eng, f, *limit)
		}
		return printRows(os.Stdout, eng, f, *limit)
	}
}

// loadEngine builds the query engine, preferring a study snapshot when a
// directory is given: v2 (mapped, zero-copy) ahead of v1, then the
// pipeline. A missing snapshot falls back to the next tier; a corrupt or
// incompatible one is surfaced rather than silently rebuilt.
func loadEngine(snapDir string, seed int64, v2 bool) (*query.Engine, error) {
	if snapDir != "" {
		if v2 {
			// if/else rather than switch so the resleak analyzer can follow
			// the err-nil edges; the error path now also unmaps the view
			// instead of leaking the mapping for the process lifetime.
			view, err := snapshot2.OpenSeed(snapDir, seed)
			if err == nil {
				fmt.Fprintf(os.Stderr, "mapped snapshot %s\n", snapshot2.Path(snapDir, seed))
				eng, err := query.NewFromSource(view, view.Database)
				if err != nil {
					view.Close()
					return nil, err
				}
				return eng, nil
			} else if !errors.Is(err, fs.ErrNotExist) {
				return nil, err
			}
			// Not-exist falls through to the v1 file.
		}
		db, err := snapshot.ReadSeed(snapDir, seed)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "loaded snapshot %s\n", snapshot.Path(snapDir, seed))
			return query.New(db)
		case errors.Is(err, fs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "no snapshot for seed %d in %s; building\n", seed, snapDir)
		default:
			return nil, err
		}
	}
	study, err := avfda.NewStudy(avfda.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return query.New(study.DB())
}

// printAccidents lists matched accident reports, truncated to limit.
func printAccidents(w io.Writer, page query.AccidentPage, limit int) error {
	for _, a := range page.Accidents {
		mode := "manual"
		if a.InAutonomousMode {
			mode = "autonomous"
		}
		fmt.Fprintf(w, "%s  %-14s %-10s %s\n",
			a.Time.Format("2006-01-02"), a.Manufacturer, mode, a.Location)
	}
	if page.Total > limit {
		fmt.Fprintf(w, "... and %d more (raise -limit)\n", page.Total-limit)
	}
	return nil
}

// printGroups prints per-group counts, descending.
func printGroups(w io.Writer, eng *query.Engine, f query.Filter, by string) error {
	groups, err := eng.GroupCount(f, by)
	if err != nil {
		return err
	}
	for _, g := range groups {
		fmt.Fprintf(w, "%6d  %s\n", g.Count, g.Key)
	}
	return nil
}

// printRows lists matched events, truncated to limit.
func printRows(w io.Writer, eng *query.Engine, f query.Filter, limit int) error {
	page, err := eng.Events(f, query.Page{Limit: limit})
	if err != nil {
		return err
	}
	for _, ev := range page.Events {
		cause := ev.Cause
		if len(cause) > 60 {
			cause = cause[:57] + "..."
		}
		fmt.Fprintf(w, "%s  %-14s %-24s %s\n",
			ev.Time.Format("2006-01-02"), ev.Manufacturer, ev.Tag, cause)
	}
	if page.Total > limit {
		fmt.Fprintf(w, "... and %d more (raise -limit or use -csv)\n", page.Total-limit)
	}
	return nil
}

// groupsJSON is the -json -by payload, matching the avserve groupby route.
type groupsJSON struct {
	By     string             `json:"by"`
	Groups []query.GroupCount `json:"groups"`
}

// writeGroupsJSON emits the group counts as indented JSON.
func writeGroupsJSON(w io.Writer, eng *query.Engine, f query.Filter, by string) error {
	groups, err := eng.GroupCount(f, by)
	if err != nil {
		return err
	}
	return encodeJSON(w, groupsJSON{By: by, Groups: groups})
}

// writeEventsJSON emits one page of matching events as indented JSON.
func writeEventsJSON(w io.Writer, eng *query.Engine, f query.Filter, limit int) error {
	page, err := eng.Events(f, query.Page{Limit: limit})
	if err != nil {
		return err
	}
	return encodeJSON(w, page)
}

// encodeJSON writes v as indented JSON with a trailing newline.
func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
