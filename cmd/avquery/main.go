// Command avquery runs ad-hoc queries over the consolidated failure
// database: filter disengagements by manufacturer, tag, category, road,
// modality, or month range, then list them or group-count them.
//
// Usage:
//
//	avquery [-seed 1] [-mfr Waymo] [-tag "Recognition System"]
//	        [-category ML/Design] [-road highway] [-modality manual]
//	        [-from 2015-01] [-to 2015-12]
//	        [-by tag|category|month|road|modality|manufacturer]
//	        [-limit 20] [-csv]
//
// Without -by, matching events are listed (up to -limit); with -by, counts
// per group are printed. -csv emits the matching rows as CSV on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"avfda"
	"avfda/internal/frame"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avquery:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "study seed")
	mfr := flag.String("mfr", "", "filter: manufacturer name")
	tag := flag.String("tag", "", "filter: fault tag")
	category := flag.String("category", "", "filter: failure category")
	road := flag.String("road", "", "filter: road type")
	modality := flag.String("modality", "", "filter: disengagement modality")
	from := flag.String("from", "", "filter: first month, YYYY-MM")
	to := flag.String("to", "", "filter: last month, YYYY-MM")
	by := flag.String("by", "", "group counts by this column instead of listing")
	limit := flag.Int("limit", 20, "max rows to list")
	csv := flag.Bool("csv", false, "emit matching rows as CSV")
	flag.Parse()

	study, err := avfda.NewStudy(avfda.Options{Seed: *seed})
	if err != nil {
		return err
	}
	events, err := study.DB().EventsFrame()
	if err != nil {
		return err
	}
	matched, err := applyFilters(events, filters{
		mfr: *mfr, tag: *tag, category: *category, road: *road,
		modality: *modality, from: *from, to: *to,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "matched %d of %d events\n", matched.NumRows(), events.NumRows())

	switch {
	case *csv:
		return matched.WriteCSV(os.Stdout)
	case *by != "":
		return printGroups(matched, *by)
	default:
		return printRows(matched, *limit)
	}
}

// filters carries the parsed filter flags.
type filters struct {
	mfr, tag, category, road, modality, from, to string
}

// applyFilters narrows the events frame by every non-empty filter.
func applyFilters(events *frame.Frame, f filters) (*frame.Frame, error) {
	var fromT, toT time.Time
	var err error
	if f.from != "" {
		if fromT, err = time.Parse("2006-01", f.from); err != nil {
			return nil, fmt.Errorf("bad -from: %w", err)
		}
	}
	if f.to != "" {
		if toT, err = time.Parse("2006-01", f.to); err != nil {
			return nil, fmt.Errorf("bad -to: %w", err)
		}
		toT = toT.AddDate(0, 1, 0) // inclusive month
	}
	eq := func(got, want string) bool {
		return want == "" || strings.EqualFold(got, want)
	}
	return events.Filter(func(r frame.Row) bool {
		if !eq(r.String("manufacturer"), f.mfr) ||
			!eq(r.String("tag"), f.tag) ||
			!eq(r.String("category"), f.category) ||
			!eq(r.String("road"), f.road) ||
			!eq(r.String("modality"), f.modality) {
			return false
		}
		ts := r.Time("time")
		if !fromT.IsZero() && ts.Before(fromT) {
			return false
		}
		if !toT.IsZero() && !ts.Before(toT) {
			return false
		}
		return true
	}), nil
}

// printGroups prints per-group counts, descending.
func printGroups(matched *frame.Frame, by string) error {
	col := by
	if by == "month" {
		// Derive a month column from the timestamp.
		times, err := matched.Times("time")
		if err != nil {
			return err
		}
		months := make([]string, len(times))
		for i, ts := range times {
			months[i] = ts.Format("2006-01")
		}
		if err := matched.AddStrings("month", months); err != nil {
			return err
		}
	}
	groups, err := matched.GroupBy(col)
	if err != nil {
		return fmt.Errorf("group by %q: %w", by, err)
	}
	type row struct {
		key string
		n   int
	}
	rows := make([]row, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, row{key: g.Key[0], n: g.Frame.NumRows()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].key < rows[j].key
	})
	for _, r := range rows {
		fmt.Printf("%6d  %s\n", r.n, r.key)
	}
	return nil
}

// printRows lists matched events, truncated.
func printRows(matched *frame.Frame, limit int) error {
	n := matched.NumRows()
	show := matched.Head(limit)
	times, err := show.Times("time")
	if err != nil {
		return err
	}
	for i := 0; i < show.NumRows(); i++ {
		var mfr, tag, cause string
		show.Filter(func(r frame.Row) bool {
			if r.Index() == i {
				mfr = r.String("manufacturer")
				tag = r.String("tag")
				cause = r.String("cause")
			}
			return false
		})
		if len(cause) > 60 {
			cause = cause[:57] + "..."
		}
		fmt.Printf("%s  %-14s %-24s %s\n", times[i].Format("2006-01-02"), mfr, tag, cause)
	}
	if n > limit {
		fmt.Printf("... and %d more (raise -limit or use -csv)\n", n-limit)
	}
	return nil
}
