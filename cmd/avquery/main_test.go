package main

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"avfda/internal/frame"
	"avfda/internal/query"
)

func queryFixture(t *testing.T) *query.Engine {
	t.Helper()
	f := frame.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.AddStrings("manufacturer", []string{"Waymo", "Waymo", "Bosch"}))
	must(f.AddStrings("tag", []string{"Software", "Sensor", "Software"}))
	must(f.AddStrings("category", []string{"System", "System", "System"}))
	must(f.AddStrings("road", []string{"highway", "city street", "highway"}))
	must(f.AddStrings("modality", []string{"Manual", "Automatic", "Planned"}))
	must(f.AddStrings("cause", []string{"a", "b", "c"}))
	must(f.AddTimes("time", []time.Time{
		time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 6, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 1, 10, 0, 0, 0, 0, time.UTC),
	}))
	eng, err := query.NewFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFilterByField(t *testing.T) {
	eng := queryFixture(t)
	n, err := eng.Count(query.Filter{Manufacturer: "waymo"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("mfr filter rows = %d", n)
	}
	n, err = eng.Count(query.Filter{Tag: "Software", Modality: "planned"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("combined filter rows = %d", n)
	}
}

func TestFilterByMonthRange(t *testing.T) {
	eng := queryFixture(t)
	n, err := eng.Count(query.Filter{From: "2015-04", To: "2015-12"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("range rows = %d", n)
	}
	// Inclusive end month.
	n, err = eng.Count(query.Filter{From: "2015-03", To: "2015-03"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("single-month rows = %d", n)
	}
}

func TestMalformedMonthIsTypedError(t *testing.T) {
	eng := queryFixture(t)
	for _, f := range []query.Filter{{From: "bogus"}, {To: "2015-13-01"}} {
		_, err := eng.Count(f)
		if err == nil {
			t.Fatalf("filter %+v: want error", f)
		}
		var me *query.MonthError
		if !errors.As(err, &me) {
			t.Fatalf("filter %+v: error %v is not a *query.MonthError", f, err)
		}
		if me.Field != "from" && me.Field != "to" {
			t.Errorf("MonthError.Field = %q", me.Field)
		}
		if me.Value == "" {
			t.Errorf("MonthError.Value is empty, want the rejected input")
		}
	}
}

func TestFilterEmptyMatchesAll(t *testing.T) {
	eng := queryFixture(t)
	n, err := eng.Count(query.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if n != eng.Len() {
		t.Errorf("no-filter rows = %d", n)
	}
}

// TestGoldenListOutput pins the text listing format: the refactor onto
// internal/query must not change what existing flag combinations print.
func TestGoldenListOutput(t *testing.T) {
	eng := queryFixture(t)
	var sb strings.Builder
	if err := printRows(&sb, eng, query.Filter{}, 20); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"2015-03-10  Waymo          Software                 a\n" +
		"2015-06-10  Waymo          Sensor                   b\n" +
		"2016-01-10  Bosch          Software                 c\n"
	if sb.String() != want {
		t.Errorf("listing output:\n%q\nwant:\n%q", sb.String(), want)
	}

	sb.Reset()
	if err := printRows(&sb, eng, query.Filter{}, 2); err != nil {
		t.Fatal(err)
	}
	want = "" +
		"2015-03-10  Waymo          Software                 a\n" +
		"2015-06-10  Waymo          Sensor                   b\n" +
		"... and 1 more (raise -limit or use -csv)\n"
	if sb.String() != want {
		t.Errorf("truncated listing:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGoldenListTruncatesLongCauses(t *testing.T) {
	f := frame.New()
	long := strings.Repeat("x", 70)
	if err := f.AddStrings("manufacturer", []string{"Waymo"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStrings("tag", []string{"Software"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStrings("cause", []string{long}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddTimes("time", []time.Time{time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC)}); err != nil {
		t.Fatal(err)
	}
	eng, err := query.NewFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printRows(&sb, eng, query.Filter{}, 20); err != nil {
		t.Fatal(err)
	}
	want := "2015-03-10  Waymo          Software                 " +
		strings.Repeat("x", 57) + "...\n"
	if sb.String() != want {
		t.Errorf("long-cause listing:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestGoldenGroupOutput pins the group-count format and its descending
// count / ascending key ordering.
func TestGoldenGroupOutput(t *testing.T) {
	eng := queryFixture(t)
	var sb strings.Builder
	if err := printGroups(&sb, eng, query.Filter{}, "tag"); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"     2  Software\n" +
		"     1  Sensor\n"
	if sb.String() != want {
		t.Errorf("group output:\n%q\nwant:\n%q", sb.String(), want)
	}

	sb.Reset()
	if err := printGroups(&sb, eng, query.Filter{}, "month"); err != nil {
		t.Fatal(err)
	}
	want = "" +
		"     1  2015-03\n" +
		"     1  2015-06\n" +
		"     1  2016-01\n"
	if sb.String() != want {
		t.Errorf("month group output:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestGroupUnknownColumn(t *testing.T) {
	eng := queryFixture(t)
	var sb strings.Builder
	err := printGroups(&sb, eng, query.Filter{}, "bogus")
	var ce *query.ColumnError
	if !errors.As(err, &ce) {
		t.Fatalf("unknown column error = %v, want *query.ColumnError", err)
	}
	if ce.Column != "bogus" {
		t.Errorf("ColumnError.Column = %q, want %q", ce.Column, "bogus")
	}
}

func TestJSONOutputs(t *testing.T) {
	eng := queryFixture(t)
	var sb strings.Builder
	if err := writeEventsJSON(&sb, eng, query.Filter{Manufacturer: "Waymo"}, 1); err != nil {
		t.Fatal(err)
	}
	var page query.EventPage
	if err := json.Unmarshal([]byte(sb.String()), &page); err != nil {
		t.Fatalf("decode events JSON: %v", err)
	}
	if page.Total != 2 || len(page.Events) != 1 {
		t.Errorf("events JSON total=%d len=%d, want 2, 1", page.Total, len(page.Events))
	}
	if page.Events[0].Cause != "a" {
		t.Errorf("first event cause = %q", page.Events[0].Cause)
	}

	sb.Reset()
	if err := writeGroupsJSON(&sb, eng, query.Filter{}, "manufacturer"); err != nil {
		t.Fatal(err)
	}
	var groups groupsJSON
	if err := json.Unmarshal([]byte(sb.String()), &groups); err != nil {
		t.Fatalf("decode groups JSON: %v", err)
	}
	if groups.By != "manufacturer" || len(groups.Groups) != 2 {
		t.Errorf("groups JSON = %+v", groups)
	}
	if groups.Groups[0].Key != "Waymo" || groups.Groups[0].Count != 2 {
		t.Errorf("top group = %+v", groups.Groups[0])
	}
}
