package main

import (
	"testing"
	"time"

	"avfda/internal/frame"
)

func queryFixture(t *testing.T) *frame.Frame {
	t.Helper()
	f := frame.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.AddStrings("manufacturer", []string{"Waymo", "Waymo", "Bosch"}))
	must(f.AddStrings("tag", []string{"Software", "Sensor", "Software"}))
	must(f.AddStrings("category", []string{"System", "System", "System"}))
	must(f.AddStrings("road", []string{"highway", "city street", "highway"}))
	must(f.AddStrings("modality", []string{"Manual", "Automatic", "Planned"}))
	must(f.AddStrings("cause", []string{"a", "b", "c"}))
	must(f.AddTimes("time", []time.Time{
		time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 6, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 1, 10, 0, 0, 0, 0, time.UTC),
	}))
	return f
}

func TestApplyFiltersByField(t *testing.T) {
	f := queryFixture(t)
	out, err := applyFilters(f, filters{mfr: "waymo"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("mfr filter rows = %d", out.NumRows())
	}
	out, err = applyFilters(f, filters{tag: "Software", modality: "planned"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Errorf("combined filter rows = %d", out.NumRows())
	}
}

func TestApplyFiltersByMonthRange(t *testing.T) {
	f := queryFixture(t)
	out, err := applyFilters(f, filters{from: "2015-04", to: "2015-12"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Errorf("range rows = %d", out.NumRows())
	}
	// Inclusive end month.
	out, err = applyFilters(f, filters{from: "2015-03", to: "2015-03"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Errorf("single-month rows = %d", out.NumRows())
	}
	if _, err := applyFilters(f, filters{from: "bogus"}); err == nil {
		t.Error("bad from: want error")
	}
	if _, err := applyFilters(f, filters{to: "bogus"}); err == nil {
		t.Error("bad to: want error")
	}
}

func TestApplyFiltersEmptyMatchesAll(t *testing.T) {
	f := queryFixture(t)
	out, err := applyFilters(f, filters{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != f.NumRows() {
		t.Errorf("no-filter rows = %d", out.NumRows())
	}
}
