// Command avocr digitizes a directory of scanned report documents (as
// produced by avgen) through the OCR noise model and writes the decoded
// text plus a digitization report.
//
// Usage:
//
//	avocr -in corpus/documents -out decoded/ [-noise 0.002] [-seed 1] [-clean]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"avfda/internal/ocr"
	"avfda/internal/scandoc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avocr:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "corpus/documents", "input document directory")
	out := flag.String("out", "decoded", "output directory")
	noise := flag.Float64("noise", 0.002, "character substitution rate")
	seed := flag.Int64("seed", 1, "noise seed")
	clean := flag.Bool("clean", false, "disable all noise")
	flag.Parse()

	cfg := ocr.DefaultConfig()
	cfg.SubstitutionRate = *noise
	cfg.Seed = *seed
	if *clean {
		cfg = ocr.Clean()
		cfg.Seed = *seed
	}
	engine, err := ocr.NewEngine(cfg)
	if err != nil {
		return err
	}

	entries, err := os.ReadDir(*in)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var pages, manual, subs int
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(*in, name))
		if err != nil {
			return err
		}
		doc := documentFromFile(name, string(raw))
		res := engine.Decode(&doc)
		pages += res.TotalPages
		manual += res.ManualPages
		subs += res.Substitutions
		if err := os.WriteFile(filepath.Join(*out, name),
			[]byte(strings.Join(res.Lines, "\n")+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("decoded %d documents (%d pages): %d substitutions, %d manually transcribed pages\n",
		len(names), pages, subs, manual)
	return nil
}

// documentFromFile reconstructs a scandoc document from a flat text file.
// Accident narratives (after "NARRATIVE:") are treated as handwritten.
func documentFromFile(name, content string) scandoc.Document {
	lines := strings.Split(strings.TrimRight(content, "\n"), "\n")
	doc := scandoc.Document{ID: strings.TrimSuffix(name, ".txt")}
	narrativeAt := -1
	for i, l := range lines {
		if strings.TrimSpace(l) == "NARRATIVE:" {
			narrativeAt = i + 1
			break
		}
	}
	if narrativeAt < 0 {
		doc.Pages = []scandoc.Page{{Lines: lines}}
		return doc
	}
	doc.Pages = []scandoc.Page{
		{Lines: lines[:narrativeAt]},
		{Lines: lines[narrativeAt:], Handwritten: true},
	}
	return doc
}
