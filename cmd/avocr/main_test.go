package main

import "testing"

func TestDocumentFromFileSplitsNarrative(t *testing.T) {
	content := "REPORT OF TRAFFIC COLLISION INVOLVING AN AUTONOMOUS VEHICLE (OL 316)\n" +
		"Manufacturer: Waymo\n" +
		"NARRATIVE:\n" +
		"The AV was rear-ended at low speed.\n" +
		"No injuries were reported.\n"
	doc := documentFromFile("accident-001-waymo.txt", content)
	if doc.ID != "accident-001-waymo" {
		t.Errorf("doc ID = %q", doc.ID)
	}
	if len(doc.Pages) != 2 {
		t.Fatalf("pages = %d, want form + narrative", len(doc.Pages))
	}
	if doc.Pages[0].Handwritten {
		t.Error("form page should be printed")
	}
	if !doc.Pages[1].Handwritten {
		t.Error("narrative page should be handwritten")
	}
	if len(doc.Pages[1].Lines) != 2 {
		t.Errorf("narrative lines = %d", len(doc.Pages[1].Lines))
	}
}

func TestDocumentFromFileNoNarrative(t *testing.T) {
	content := "CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS\n" +
		"Manufacturer: Nissan\n" +
		"SECTION 2: DISENGAGEMENT EVENTS (0 TOTAL)\n"
	doc := documentFromFile("disengagements-nissan-1.txt", content)
	if len(doc.Pages) != 1 || doc.Pages[0].Handwritten {
		t.Errorf("pages = %+v", doc.Pages)
	}
	if len(doc.Pages[0].Lines) != 3 {
		t.Errorf("lines = %d", len(doc.Pages[0].Lines))
	}
}
