package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda/internal/lint"
)

// repoRoot walks up from the working directory to the module root, so the
// test can lint the real repository regardless of where go test runs it.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the suite's acceptance gate: the whole repository,
// tests included, must produce zero diagnostics. A violation anywhere —
// an unsorted map iteration in a determinism-critical package, an
// err.Error() substring match, ambient randomness in a pipeline stage, a
// non-exhaustive ontology switch — fails this test with the exact
// file:line the offender lives at.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole repository; skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", repoRoot(t), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("avlint ./... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSelectAnalyzers pins the -disable semantics: named analyzers drop
// out, typos are typed errors, and disabling everything is refused.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v", len(all), err)
	}

	some, err := selectAnalyzers("mapiter,errsubstr")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range some {
		if a.Name == "mapiter" || a.Name == "errsubstr" {
			t.Errorf("disabled analyzer %q still selected", a.Name)
		}
	}
	if len(some) != len(all)-2 {
		t.Errorf("selected %d analyzers, want %d", len(some), len(all)-2)
	}

	_, err = selectAnalyzers("mapiter,nosuch")
	var ue *lint.UnknownAnalyzerError
	if !errors.As(err, &ue) || ue.Name != "nosuch" {
		t.Errorf("selectAnalyzers typo error = %v, want *UnknownAnalyzerError for %q", err, "nosuch")
	}

	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	if _, err := selectAnalyzers(strings.Join(names, ",")); err == nil {
		t.Error("disabling every analyzer should be an error")
	}
}

// TestListFlag pins that -list names every analyzer without linting.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, stdout.String())
		}
	}
}

// TestDisableTypoExitCode pins that an unknown -disable name is a usage
// error (exit 2), not a silent no-op.
func TestDisableTypoExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-disable", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Errorf("-disable nosuch exited %d, want 2", code)
	}
}
