package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda/internal/lint"
)

// repoRoot walks up from the working directory to the module root, so the
// test can lint the real repository regardless of where go test runs it.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the suite's acceptance gate: the whole repository,
// tests included, must produce zero diagnostics. A violation anywhere —
// an unsorted map iteration in a determinism-critical package, an
// err.Error() substring match, ambient randomness in a pipeline stage, a
// non-exhaustive ontology switch — fails this test with the exact
// file:line the offender lives at.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole repository; skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", repoRoot(t), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("avlint ./... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSelectAnalyzers pins the -disable semantics: named analyzers drop
// out, typos are typed errors, and disabling everything is refused.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v", len(all), err)
	}

	some, err := selectAnalyzers("mapiter,errsubstr")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range some {
		if a.Name == "mapiter" || a.Name == "errsubstr" {
			t.Errorf("disabled analyzer %q still selected", a.Name)
		}
	}
	if len(some) != len(all)-2 {
		t.Errorf("selected %d analyzers, want %d", len(some), len(all)-2)
	}

	_, err = selectAnalyzers("mapiter,nosuch")
	var ue *lint.UnknownAnalyzerError
	if !errors.As(err, &ue) || ue.Name != "nosuch" {
		t.Errorf("selectAnalyzers typo error = %v, want *UnknownAnalyzerError for %q", err, "nosuch")
	}

	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	if _, err := selectAnalyzers(strings.Join(names, ",")); err == nil {
		t.Error("disabling every analyzer should be an error")
	}
}

// TestListFlag pins that -list names every analyzer without linting.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, stdout.String())
		}
	}
}

// TestDisableTypoExitCode pins that an unknown -disable name is a usage
// error (exit 2), not a silent no-op.
func TestDisableTypoExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-disable", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Errorf("-disable nosuch exited %d, want 2", code)
	}
}

// TestBrokenPackageExitsTwo pins the exit-code contract for load failures:
// a package that does not type-check must exit 2 and surface the type
// error on stderr — never be silently skipped as if it were clean.
func TestBrokenPackageExitsTwo(t *testing.T) {
	broken := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "broken")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", broken, "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("broken fixture exited %d, want 2\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "broken") {
		t.Errorf("stderr does not name the failing package:\n%s", stderr.String())
	}
}

// TestJSONOutput pins the -json contract: exit 1 on findings, stdout is a
// parseable object whose "findings" array carries file/line/analyzer/
// message for each diagnostic — one per dirty-fixture violation,
// covering the interprocedural gen-3 analyzers alongside errsubstr —
// and whose "timings_ns" map names every analyzer that ran.
func TestJSONOutput(t *testing.T) {
	dirty := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "dirty")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dirty, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not a JSON object: %v\n%s", err, stdout.String())
	}
	// One finding per fixture file, keyed by analyzer; the dirty module
	// exists to give every output mode a stable non-empty result set.
	want := map[string]string{
		"errsubstr": "dirty.go",
		"resleak":   "leak.go",
		"taintflow": "taint.go",
		"viewlife":  "view.go",
		"lockorder": "lockord.go",
		"atomicmix": "amix.go",
	}
	got := map[string]string{}
	for _, f := range report.Findings {
		if f.Line == 0 || f.Message == "" {
			t.Errorf("finding fields wrong: %+v", f)
		}
		got[f.Analyzer] = filepath.Base(f.File)
	}
	if len(report.Findings) != len(want) {
		t.Errorf("got %d findings, want %d: %+v", len(report.Findings), len(want), report.Findings)
	}
	for analyzer, file := range want {
		if got[analyzer] != file {
			t.Errorf("analyzer %s flagged %q, want %q", analyzer, got[analyzer], file)
		}
	}
	for _, a := range lint.All() {
		if _, ok := report.TimingsNS[a.Name]; !ok {
			t.Errorf("timings_ns missing analyzer %q", a.Name)
		}
	}
}

// TestJSONOutputCleanTree pins that a clean tree still emits a valid
// object with an empty (non-null) findings array, so CI consumers can
// always unmarshal stdout.
func TestJSONOutputCleanTree(t *testing.T) {
	// The dirty module is clean once its offending analyzers are disabled.
	dirty := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "dirty")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dirty, "-json",
		"-disable", "errsubstr,resleak,taintflow,viewlife,lockorder,atomicmix", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstderr: %s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not a JSON object: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 0 {
		t.Errorf("got %d findings, want 0", len(report.Findings))
	}
	if report.Findings == nil {
		t.Error("findings is null, want an empty array")
	}
}

// TestTimingsFile pins the -timings contract: a flat benchjson-style
// object with Lint/total_ns and one Lint/<analyzer>_ns key per analyzer,
// every value positive so merged BENCH files never carry zero costs.
func TestTimingsFile(t *testing.T) {
	dirty := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "dirty")
	out := filepath.Join(t.TempDir(), "lint.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dirty, "-timings", out, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]int64
	if err := json.Unmarshal(buf, &flat); err != nil {
		t.Fatalf("-timings file is not flat JSON: %v\n%s", err, buf)
	}
	if flat["Lint/total_ns"] <= 0 {
		t.Errorf("Lint/total_ns = %d, want > 0", flat["Lint/total_ns"])
	}
	for _, a := range lint.All() {
		if flat["Lint/"+a.Name+"_ns"] <= 0 {
			t.Errorf("Lint/%s_ns = %d, want > 0", a.Name, flat["Lint/"+a.Name+"_ns"])
		}
	}
	if len(flat) != len(lint.All())+1 {
		t.Errorf("got %d keys, want %d", len(flat), len(lint.All())+1)
	}
}

// TestGHAOutput pins the -gha annotation format: one ::error workflow
// command per finding, with file, line, and the analyzer in the title.
func TestGHAOutput(t *testing.T) {
	dirty := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "dirty")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dirty, "-gha", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "::error file=") {
		t.Errorf("-gha output is not a workflow command:\n%s", out)
	}
	if !strings.Contains(out, "title=avlint errsubstr::") {
		t.Errorf("-gha output missing analyzer title:\n%s", out)
	}
	if !strings.Contains(out, "line=") || !strings.Contains(out, "col=") {
		t.Errorf("-gha output missing position properties:\n%s", out)
	}
}

// TestEscapeWorkflowCommand pins the GitHub workflow-command escaping
// rules for message data and property values.
func TestEscapeWorkflowCommand(t *testing.T) {
	if got := escapeData("50% done\r\nnext"); got != "50%25 done%0D%0Anext" {
		t.Errorf("escapeData = %q", got)
	}
	if got := escapeProperty("a:b,c%d"); got != "a%3Ab%2Cc%25d" {
		t.Errorf("escapeProperty = %q", got)
	}
}

// TestCacheOutputByteIdentical pins cache soundness at the CLI layer: an
// uncached run, a cold -cache-dir run, and a fully-warm run over the dirty
// fixture must produce byte-identical stdout — the cache may change how
// fast the answer arrives, never the answer.
func TestCacheOutputByteIdentical(t *testing.T) {
	dirty := filepath.Join(repoRoot(t), "cmd", "avlint", "testdata", "dirty")
	cache := t.TempDir()

	runOnce := func(args ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("avlint %v exited %d, want 1\nstderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	uncached := runOnce("-C", dirty, "./...")
	cold := runOnce("-C", dirty, "-cache-dir", cache, "./...")
	warm := runOnce("-C", dirty, "-cache-dir", cache, "./...")
	if cold != uncached {
		t.Errorf("cold cached stdout differs from uncached:\ncached:\n%s\nuncached:\n%s", cold, uncached)
	}
	if warm != uncached {
		t.Errorf("warm cached stdout differs from uncached:\ncached:\n%s\nuncached:\n%s", warm, uncached)
	}
}

// TestSequentialMatchesParallel pins scheduling-independence: linting the
// repository with a single worker and with the default pool must produce
// byte-identical diagnostics (here: none, plus identical ordering
// guarantees exercised by the dirty fixture's findings).
func TestSequentialMatchesParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the repository twice; skipped in -short mode")
	}
	root := repoRoot(t)
	analyzers := lint.All()

	seqPkgs, err := lint.LoadModuleParallel(root, 1, "./...")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := lint.RunParallel(seqPkgs, analyzers, 1)
	if err != nil {
		t.Fatal(err)
	}

	parPkgs, err := lint.LoadModuleParallel(root, 8, "./...")
	if err != nil {
		t.Fatal(err)
	}
	par, err := lint.RunParallel(parPkgs, analyzers, 8)
	if err != nil {
		t.Fatal(err)
	}

	if len(seqPkgs) != len(parPkgs) {
		t.Fatalf("package counts differ: sequential %d, parallel %d", len(seqPkgs), len(parPkgs))
	}
	for i := range seqPkgs {
		if seqPkgs[i].Path != parPkgs[i].Path {
			t.Fatalf("package order differs at %d: %q vs %q", i, seqPkgs[i].Path, parPkgs[i].Path)
		}
	}
	if len(seq) != len(par) {
		t.Fatalf("diagnostic counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("diagnostic %d differs:\n  sequential: %s\n  parallel:   %s", i, seq[i], par[i])
		}
	}
}
