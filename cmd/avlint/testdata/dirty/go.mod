module dirtyfixture

go 1.22
