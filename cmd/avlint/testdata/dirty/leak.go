package dirty

import "os"

// LeakHandle opens a file and forgets it on the success path — the
// stable resleak finding the output-mode tests assert on.
func LeakHandle(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}
