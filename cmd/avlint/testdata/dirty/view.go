package dirty

import "dirtyfixture/internal/snapshot2"

var cachedPayload []byte

// CachePayload stores mapped bytes past the view's release scope — the
// stable viewlife finding the output-mode tests assert on.
func CachePayload(v *snapshot2.View) {
	cachedPayload = v.Payload()
}
