// Package query is an in-module stand-in for the real engine: taintflow
// recognizes Engine methods by the internal/query path suffix, so the
// dirty fixture carries a stable taint finding without importing avfda.
package query

// Filter is the structured carrier taintflow exempts.
type Filter struct {
	Manufacturer string
}

// GroupCount is one group's tally.
type GroupCount struct {
	Key string
	N   int
}

// Engine is the sink receiver.
type Engine struct{}

// GroupCount mirrors the real sink's shape: the by column is the
// injection surface and must be validated upstream.
func (e *Engine) GroupCount(f Filter, by string) ([]GroupCount, error) {
	_ = by
	return nil, nil
}
