// Package snapshot2 is an in-module stand-in for the mapped-view type:
// viewlife recognizes View borrows by the internal/snapshot2 path suffix.
package snapshot2

// View models the mmap-backed study view.
type View struct {
	data []byte
}

// Payload returns a window into the mapping — a borrow, not a copy.
func (v *View) Payload() []byte { return v.data }
