package dirty

import "sync/atomic"

// tally mixes atomic and plain access — the stable atomicmix finding the
// output-mode tests assert on: Add updates n through sync/atomic, Read
// returns it as a plain value with no lock held.
type tally struct {
	n int64
}

func (t *tally) Add() {
	atomic.AddInt64(&t.n, 1)
}

func (t *tally) Read() int64 {
	return t.n
}
