package dirty

import (
	"net/http"

	"dirtyfixture/internal/query"
)

// RawGroupBy forwards the raw ?by= parameter straight into the engine —
// the stable taintflow finding the output-mode tests assert on.
func RawGroupBy(e *query.Engine, r *http.Request) error {
	by := r.URL.Query().Get("by")
	_, err := e.GroupCount(query.Filter{}, by)
	return err
}
