package dirty

import "sync"

// gate reacquires its own mutex through a helper — the stable lockorder
// finding the output-mode tests assert on: incr holds g.mu when it calls
// raw, which locks g.mu again.
type gate struct {
	mu sync.Mutex
	n  int
}

func (g *gate) raw() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Incr deadlocks: g.mu is held across the g.raw() call.
func (g *gate) Incr() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.raw()
}
