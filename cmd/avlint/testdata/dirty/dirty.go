// Package dirty type-checks but carries one deliberate errsubstr violation,
// so output-mode tests (-json, -gha) have a stable finding to assert on.
package dirty

import "strings"

// IsTimeout classifies an error by its rendered text, the exact
// anti-pattern errsubstr exists to flag.
func IsTimeout(err error) bool {
	return strings.Contains(err.Error(), "timeout")
}
