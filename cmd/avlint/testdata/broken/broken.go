// Package broken fails to type-check on purpose: the avlint exit-code
// regression test asserts that a package with a type error is reported as
// exit status 2, never silently skipped.
package broken

// Mismatched assigns an untyped string to an int, which cannot compile.
func Mismatched() int {
	var x int = "not an int"
	return x
}
