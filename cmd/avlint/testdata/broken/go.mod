module brokenfixture

go 1.22
