// Command avlint runs the avfda analyzer suite (internal/lint) over Go
// packages and reports violations of the toolkit's determinism,
// typed-error, and concurrency/handler-safety invariants.
//
// Usage:
//
//	avlint [-disable name,name] [-list] [-json] [-gha] [-timings file]
//	       [-timings-prefix name] [-cache-dir dir] [-parallel n] [packages]
//
// With no package patterns it lints ./... from the current directory. Each
// diagnostic prints as
//
//	path/file.go:line:col: [analyzer] message
//
// -json switches stdout to a machine-readable JSON object with a
// "findings" array and a "timings_ns" map of cumulative per-analyzer wall
// time, and -gha to GitHub Actions workflow commands (::error file=...)
// so CI annotates the offending lines in pull requests. -timings writes
// the same per-analyzer times plus the total as a flat benchjson-style
// JSON object ({"Lint/total_ns": ..., "Lint/<analyzer>_ns": ...}) to the
// named file, so the lint job's cost lands in BENCH_<date>.json next to
// the benchmark numbers; -timings-prefix replaces the "Lint" key prefix,
// keeping a cached run's numbers ("LintWarm/...") from colliding with the
// cold run's. -parallel bounds the loading/analysis worker pools
// (default: all cores); wall time is reported on stderr either way.
//
// -cache-dir enables the incremental findings cache (lint.RunCachedTimed):
// packages whose content, analyzer set, and in-module dependency closure
// are unchanged are served from the cache byte-identically, and only the
// rest are re-analyzed. The stderr summary reports the hit/miss split.
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when loading or analysis itself failed — a package that
// fails to type-check is always an error, never silently skipped. Per-line
// suppression uses `//lint:allow <analyzer> <reason>` on the flagged line
// or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avfda/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for testing: it parses flags, selects analyzers,
// lints, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("avlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "print the analyzers and exit")
	dir := fs.String("C", ".", "run as if started in this directory")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array")
	gha := fs.Bool("gha", false, "print findings as GitHub Actions ::error annotations")
	timingsOut := fs.String("timings", "", "write per-analyzer wall times as flat benchjson JSON to this file")
	timingsPrefix := fs.String("timings-prefix", "Lint", "key prefix for the -timings file (e.g. LintWarm for cached runs)")
	cacheDir := fs.String("cache-dir", "", "findings cache directory; warm runs re-analyze only changed packages")
	parallel := fs.Int("parallel", 0, "worker pool size for loading and analysis (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*disable)
	if err != nil {
		fmt.Fprintln(stderr, "avlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	var (
		diags     []lint.Diagnostic
		timings   lint.Timings
		npkgs     int
		cacheNote string
	)
	if *cacheDir != "" {
		var stats lint.CacheStats
		diags, timings, stats, err = lint.RunCachedTimed(*dir, *cacheDir, *parallel, analyzers, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "avlint:", err)
			return 2
		}
		npkgs = stats.Hits + stats.Misses
		cacheNote = fmt.Sprintf(", cache %d hit(s) %d miss(es)", stats.Hits, stats.Misses)
	} else {
		pkgs, err := lint.LoadModuleParallel(*dir, *parallel, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "avlint:", err)
			return 2
		}
		diags, timings, err = lint.RunTimed(pkgs, analyzers, *parallel)
		if err != nil {
			fmt.Fprintln(stderr, "avlint:", err)
			return 2
		}
		npkgs = len(pkgs)
	}
	elapsed := time.Since(start)

	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = relativize(cwd, diags[i].Pos.Filename)
	}
	if *timingsOut != "" {
		if err := writeTimingsFile(*timingsOut, *timingsPrefix, elapsed, timings); err != nil {
			fmt.Fprintln(stderr, "avlint:", err)
			return 2
		}
	}
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, diags, timings); err != nil {
			fmt.Fprintln(stderr, "avlint:", err)
			return 2
		}
	case *gha:
		writeAnnotations(stdout, diags)
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	fmt.Fprintf(stderr, "avlint: %d package(s), %d analyzer(s) in %s%s\n",
		npkgs, len(analyzers), elapsed.Round(time.Millisecond), cacheNote)
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "avlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens filename against cwd when it lies beneath it.
func relativize(cwd, filename string) string {
	if cwd == "" {
		return filename
	}
	if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}

// jsonFinding is one diagnostic in -json output. The shape is stable: CI
// tooling parses it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json stdout payload: the findings plus each
// analyzer's cumulative wall time in nanoseconds. "findings" is always
// present (empty array when clean), so consumers can unmarshal
// unconditionally.
type jsonReport struct {
	Findings  []jsonFinding    `json:"findings"`
	TimingsNS map[string]int64 `json:"timings_ns"`
}

// writeJSON renders the findings and per-analyzer timings as one JSON
// object.
func writeJSON(w io.Writer, diags []lint.Diagnostic, timings lint.Timings) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	ns := make(map[string]int64, len(timings))
	for name, d := range timings {
		ns[name] = d.Nanoseconds()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Findings: findings, TimingsNS: ns})
}

// writeTimingsFile writes the lint cost as a flat benchjson-compatible
// object — "<prefix>/total_ns" for the whole run (loading included) and
// "<prefix>/<analyzer>_ns" per analyzer — so `make bench-commit` tooling
// can merge it into the day's BENCH_<date>.json. The prefix is "Lint" for
// a cold run and "LintWarm" for the cached pass, so both land in one
// BENCH file without colliding.
func writeTimingsFile(path, prefix string, total time.Duration, timings lint.Timings) error {
	flat := make(map[string]int64, len(timings)+1)
	flat[prefix+"/total_ns"] = total.Nanoseconds()
	for name, d := range timings {
		flat[prefix+"/"+name+"_ns"] = d.Nanoseconds()
	}
	buf, err := json.MarshalIndent(flat, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeAnnotations renders findings as GitHub Actions workflow commands so
// the lint job annotates the offending lines in the PR diff view. Message
// text is escaped per the workflow-command rules (%, CR, LF).
func writeAnnotations(w io.Writer, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=avlint %s::%s\n",
			escapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			escapeProperty(d.Analyzer), escapeData(d.Message))
	}
}

// escapeData escapes a workflow-command message value.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty escapes a workflow-command property value.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// selectAnalyzers returns the suite minus the comma-separated disabled
// names, erroring on names that do not exist so a typo cannot silently
// disable nothing.
func selectAnalyzers(disable string) ([]*lint.Analyzer, error) {
	disabled := map[string]bool{}
	if disable != "" {
		names := strings.Split(disable, ",")
		if _, err := lint.ByName(names); err != nil {
			return nil, err
		}
		for _, n := range names {
			disabled[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !disabled[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("all analyzers disabled")
	}
	return out, nil
}
