// Command avlint runs the avfda analyzer suite (internal/lint) over Go
// packages and reports violations of the toolkit's determinism and
// typed-error invariants.
//
// Usage:
//
//	avlint [-disable name,name] [-list] [packages]
//
// With no package patterns it lints ./... from the current directory. Each
// diagnostic prints as
//
//	path/file.go:line:col: [analyzer] message
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when loading or analysis itself failed. Per-line
// suppression uses `//lint:allow <analyzer> <reason>` on the flagged line
// or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"avfda/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for testing: it parses flags, selects analyzers,
// lints, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("avlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "print the analyzers and exit")
	dir := fs.String("C", ".", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*disable)
	if err != nil {
		fmt.Fprintln(stderr, "avlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "avlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "avlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "avlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers returns the suite minus the comma-separated disabled
// names, erroring on names that do not exist so a typo cannot silently
// disable nothing.
func selectAnalyzers(disable string) ([]*lint.Analyzer, error) {
	disabled := map[string]bool{}
	if disable != "" {
		names := strings.Split(disable, ",")
		if _, err := lint.ByName(names); err != nil {
			return nil, err
		}
		for _, n := range names {
			disabled[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !disabled[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("all analyzers disabled")
	}
	return out, nil
}
