package main

import (
	"testing"

	"avfda/internal/synth"
)

func TestTagNamesAligned(t *testing.T) {
	truth, err := synth.Generate(synth.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	names := tagNames(truth)
	if len(names) != len(truth.Tags) {
		t.Fatalf("names = %d, tags = %d", len(names), len(truth.Tags))
	}
	for i, n := range names {
		if n != truth.Tags[i].String() {
			t.Fatalf("name %d = %q, want %q", i, n, truth.Tags[i].String())
		}
		if n == "" {
			t.Fatal("empty tag name")
		}
	}
}
