// Command avgen generates the calibrated synthetic CA DMV corpus and writes
// it to disk: one scanned-document text file per report plus a
// ground-truth JSON file, ready for avocr/avpipe.
//
// Usage:
//
//	avgen -out corpus/ [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"avfda/internal/scandoc"
	"avfda/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	truth, err := synth.Generate(synth.Config{Seed: *seed})
	if err != nil {
		return err
	}
	docsDir := filepath.Join(*out, "documents")
	if err := os.MkdirAll(docsDir, 0o755); err != nil {
		return err
	}
	docs := scandoc.Render(&truth.Corpus)
	for _, d := range docs {
		path := filepath.Join(docsDir, d.ID+".txt")
		if err := os.WriteFile(path, []byte(strings.Join(d.Lines(), "\n")+"\n"), 0o644); err != nil {
			return err
		}
	}

	truthPath := filepath.Join(*out, "truth.json")
	blob, err := json.MarshalIndent(struct {
		Corpus any      `json:"corpus"`
		Tags   []string `json:"tags"`
	}{
		Corpus: truth.Corpus,
		Tags:   tagNames(truth),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(truthPath, blob, 0o644); err != nil {
		return err
	}

	fmt.Printf("wrote %d documents to %s\n", len(docs), docsDir)
	fmt.Printf("wrote ground truth to %s\n", truthPath)
	fmt.Printf("corpus: %d disengagements, %d accidents, %.0f autonomous miles\n",
		len(truth.Corpus.Disengagements), len(truth.Corpus.Accidents), truth.Corpus.TotalMiles())
	return nil
}

func tagNames(t *synth.Truth) []string {
	out := make([]string, len(t.Tags))
	for i, tag := range t.Tags {
		out[i] = tag.String()
	}
	return out
}
