// Command avpipe runs the full Stage I-IV pipeline and prints per-stage
// diagnostics: digitization artifacts, parse defects, dictionary growth,
// and tag-recovery accuracy against the planted ground truth.
//
// Usage:
//
//	avpipe [-seed 1] [-noise 0.002] [-clean] [-no-expand] [-workers 0] [-in corpus/documents]
//	       [-csv out/] [-snapshot-out snapshots/]
//
// Without -in, the corpus is generated in memory; with -in, pre-rendered
// documents (from avgen, optionally re-noised by avocr) are parsed instead.
// -snapshot-out exports the consolidated failure database as versioned,
// checksummed study snapshots inside the given directory: the mmap-able
// columnar study-<seed>.avsnap2 plus the legacy study-<seed>.avsnap for
// pre-migration readers. avserve/avquery -snapshot-dir load them back
// without re-running the pipeline (ship the files from CI to every
// serving replica).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"avfda/internal/core"
	"avfda/internal/nlp"
	"avfda/internal/ocr"
	"avfda/internal/parse"
	"avfda/internal/pipeline"
	"avfda/internal/snapshot"
	"avfda/internal/snapshot2"
	"avfda/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avpipe:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "corpus seed")
	noise := flag.Float64("noise", 0.002, "OCR substitution rate")
	clean := flag.Bool("clean", false, "disable OCR noise")
	noExpand := flag.Bool("no-expand", false, "skip dictionary expansion passes")
	workers := flag.Int("workers", 0, "worker pool size for the concurrent stages (0 = all cores)")
	in := flag.String("in", "", "parse pre-rendered documents from this directory instead of generating")
	csvOut := flag.String("csv", "", "write the consolidated failure database as CSV into this directory")
	snapOut := flag.String("snapshot-out", "", "export the study snapshots (study-<seed>.avsnap2 and legacy .avsnap) into this directory")
	flag.Parse()

	if *in != "" {
		return runFromDocuments(*in, *noExpand, *workers, *csvOut, *snapOut, *seed)
	}

	cfg := pipeline.DefaultConfig()
	cfg.Synth = synth.Config{Seed: *seed}
	cfg.OCR.SubstitutionRate = *noise
	cfg.OCR.Seed = *seed
	if *clean {
		cfg.OCR = ocr.Clean()
		cfg.OCR.Seed = *seed
	}
	cfg.ExpandDictionary = !*noExpand
	cfg.Workers = *workers

	// Ctrl-C / SIGTERM cancels the run between stages instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := pipeline.Run(ctx, cfg)
	if err != nil {
		return err
	}
	printResult(res, true)
	if err := writeCSVs(res.DB, *csvOut); err != nil {
		return err
	}
	return writeSnapshot(res.DB, *snapOut, *seed)
}

// writeSnapshot exports the consolidated database as study snapshots when
// dir is set, so serving processes can warm-start from them. Both formats
// are written: v2 for the zero-copy mmap tier, v1 so replicas that have
// not migrated yet keep loading.
func writeSnapshot(db *core.DB, dir string, seed int64) error {
	if dir == "" {
		return nil
	}
	if _, err := snapshot2.WriteSeed(dir, seed, db); err != nil {
		return err
	}
	if err := snapshot.WriteSeed(dir, seed, db); err != nil {
		return err
	}
	fmt.Printf("study snapshots written to %s and %s\n",
		snapshot2.Path(dir, seed), snapshot.Path(dir, seed))
	return nil
}

// writeCSVs exports the consolidated database as CSV files when dir is set.
func writeCSVs(db *core.DB, dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, out := range []struct {
		name  string
		build func() (interface{ WriteCSV(w io.Writer) error }, error)
	}{
		{"events.csv", func() (interface{ WriteCSV(w io.Writer) error }, error) { return db.EventsFrame() }},
		{"accidents.csv", func() (interface{ WriteCSV(w io.Writer) error }, error) { return db.AccidentsFrame() }},
		{"mileage.csv", func() (interface{ WriteCSV(w io.Writer) error }, error) { return db.MileageFrame() }},
		{"dpm.csv", func() (interface{ WriteCSV(w io.Writer) error }, error) { return db.DPMFrame() }},
	} {
		f, err := out.build()
		if err != nil {
			return err
		}
		file, err := os.Create(filepath.Join(dir, out.name))
		if err != nil {
			return err
		}
		if err := f.WriteCSV(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("CSV export written to %s\n", dir)
	return nil
}

// runFromDocuments parses a document directory through Stages II-IV. The
// seed only names the exported snapshot (the documents carry the data).
func runFromDocuments(dir string, noExpand bool, workers int, csvOut, snapOut string, seed int64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	inputs := make([]parse.Input, 0, len(names))
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		inputs = append(inputs, parse.Input{
			DocID: strings.TrimSuffix(name, ".txt"),
			Lines: strings.Split(strings.TrimRight(string(raw), "\n"), "\n"),
		})
	}
	corpus, parseRep, err := parse.ParseConcurrent(inputs, workers)
	if err != nil {
		return err
	}
	dict := nlp.SeedDictionary()
	if !noExpand {
		causes := make([]string, 0, len(corpus.Disengagements))
		for _, d := range corpus.Disengagements {
			causes = append(causes, d.Cause)
		}
		dict, _, err = nlp.Expand(dict, causes, nlp.DefaultOptions(), nlp.ExpandOptions{})
		if err != nil {
			return err
		}
	}
	cls, err := nlp.NewClassifier(dict, nlp.DefaultOptions())
	if err != nil {
		return err
	}
	db, err := core.BuildConcurrent(corpus, cls, workers)
	if err != nil {
		return err
	}
	res := &pipeline.Result{
		Recovered:      corpus,
		DB:             db,
		ParseReport:    parseRep,
		DictionarySize: dict.Size(),
	}
	printResult(res, false)
	if err := writeCSVs(db, csvOut); err != nil {
		return err
	}
	return writeSnapshot(db, snapOut, seed)
}

func printResult(res *pipeline.Result, haveTruth bool) {
	fmt.Println("== Stage II: digitization ==")
	if res.OCR.Documents > 0 {
		fmt.Printf("  %d documents, %d pages (%d manually transcribed)\n",
			res.OCR.Documents, res.OCR.Pages, res.OCR.ManualPages)
		fmt.Printf("  artifacts: %d substitutions, %d dropped separators, %d merged lines\n",
			res.OCR.Substitutions, res.OCR.DroppedSeparators, res.OCR.MergedLines)
		fmt.Printf("  mean OCR confidence: %.4f\n", res.OCR.MeanConfidence)
	}
	fmt.Printf("  parse: %d rows, %d defects (%.2f%%), %d documents skipped\n",
		res.ParseReport.RowsParsed, len(res.ParseReport.Defects),
		100*res.ParseReport.DefectRate(), res.ParseReport.SkippedDocs)

	fmt.Println("== Stage III: NLP ==")
	fmt.Printf("  failure dictionary: %d phrases\n", res.DictionarySize)
	if haveTruth {
		fmt.Printf("  tag accuracy: %.2f%%, category accuracy: %.2f%% (%d matched)\n",
			100*res.Accuracy.TagAccuracy(), 100*res.Accuracy.CategoryAccuracy(), res.Accuracy.Matched)
		if top := res.Accuracy.TopConfusions(3); len(top) > 0 {
			fmt.Println("  top confusions:")
			for _, c := range top {
				fmt.Printf("    %s -> %s: %d\n", c.Want, c.Got, c.Count)
			}
		}
	}

	fmt.Println("== Stage IV: consolidated failure database ==")
	shares := res.DB.OverallCategoryShares()
	fmt.Printf("  %d disengagements, %d accidents\n", len(res.DB.Events), len(res.DB.Accidents))
	fmt.Printf("  category shares: perception %.1f%%, planner %.1f%%, system %.1f%%, unknown %.1f%%\n",
		100*shares.Perception, 100*shares.Planner, 100*shares.System, 100*shares.Unknown)
	fmt.Printf("  ML/Design total: %.1f%% (paper: 64%%)\n", 100*shares.MLDesign)
	if res.Elapsed > 0 {
		fmt.Printf("  stage timings: %s\n", res.Stages)
		fmt.Printf("  elapsed: %s (sum of stages)\n", res.Elapsed.Round(1e6))
	}
}
