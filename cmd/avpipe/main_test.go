package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda/internal/core"
	"avfda/internal/nlp"
	"avfda/internal/schema"
)

func smallDB(t *testing.T) *core.DB {
	t.Helper()
	corpus := &schema.Corpus{
		Mileage: []schema.MonthlyMileage{{
			Manufacturer: schema.Nissan, Vehicle: "n1",
			ReportYear: schema.Report2016, Month: schema.StudyStart, Miles: 120,
		}},
		Disengagements: []schema.Disengagement{{
			Manufacturer: schema.Nissan, Vehicle: "n1",
			ReportYear: schema.Report2016, Time: schema.StudyStart.Add(7200e9),
			Cause: "Software module froze", Modality: schema.ModalityManual,
			ReactionSeconds: 0.8,
		}},
	}
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Build(corpus, cls)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWriteCSVs(t *testing.T) {
	db := smallDB(t)
	dir := t.TempDir()
	if err := writeCSVs(db, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events.csv", "mileage.csv", "dpm.csv"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(blob), "Nissan") {
			t.Errorf("%s missing data rows", name)
		}
	}
	// Empty dir means no-op, no error.
	if err := writeCSVs(db, ""); err != nil {
		t.Errorf("empty dir: %v", err)
	}
}
