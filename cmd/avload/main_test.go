package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda/internal/loadgen"
)

// okServer answers every request 200 so runs complete cleanly.
func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// -print-mix is a pure dry run: it prints the resolved mix to stdout and
// never needs a server (the URL here points nowhere).
func TestPrintMixDryRun(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-n", "0", "-print-mix", "-url", "http://127.0.0.1:1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "mix default: 12 operations") {
		t.Errorf("missing header: %q", s)
	}
	for _, frag := range []string{"reliability", "groupby-tag", "{seed}"} {
		if !strings.Contains(s, frag) {
			t.Errorf("print-mix output missing %q", frag)
		}
	}
}

// -print-mix also validates mix files, reporting typed errors for bad ones.
func TestPrintMixValidatesFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "mix.json")
	if err := os.WriteFile(good, []byte(`[{"name":"x","weight":1,"path":"/v1/studies/{seed}/accidents"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-print-mix", "-mix", good}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/v1/studies/{seed}/accidents") {
		t.Errorf("file mix not described: %q", out.String())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"name":"x","weight":-1,"path":"/y"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-print-mix", "-mix", bad}, &out, &errb); err == nil {
		t.Error("invalid mix file: want error")
	}
}

// A bounded run against a healthy server emits valid avload/1 JSON on
// stdout and the human summary on stderr.
func TestRunEmitsJSONReport(t *testing.T) {
	srv := okServer(t)
	var out, errb bytes.Buffer
	err := run([]string{
		"-url", srv.URL, "-n", "50", "-c", "2", "-duration", "30s",
		"-warmup", "10s", "-json", "-fail-on-errors",
	}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Schema != loadgen.ReportSchema || rep.Requests != 50 || rep.Errors != 0 {
		t.Errorf("report = schema %q, %d requests, %d errors", rep.Schema, rep.Requests, rep.Errors)
	}
	if rep.RPS <= 0 || rep.Latency.P99ms <= 0 {
		t.Errorf("report has zero rps/p99: %+v", rep)
	}
	if !strings.Contains(errb.String(), "requests") {
		t.Errorf("stderr missing summary: %q", errb.String())
	}
}

// -o writes the report to a file and keeps stdout quiet.
func TestRunWritesReportFile(t *testing.T) {
	srv := okServer(t)
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	err := run([]string{"-url", srv.URL, "-n", "20", "-c", "2", "-warmup", "0", "-o", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 20 {
		t.Errorf("report requests = %d, want 20", rep.Requests)
	}
}

// -fail-on-errors turns a failing server into a nonzero exit.
func TestRunFailOnErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	var out, errb bytes.Buffer
	err := run([]string{"-url", srv.URL, "-n", "10", "-c", "2", "-warmup", "0", "-fail-on-errors"}, &out, &errb)
	if err == nil {
		t.Fatal("all-500 run with -fail-on-errors: want error")
	}
	// Without the flag the same run succeeds and reports the errors as data.
	if err := run([]string{"-url", srv.URL, "-n", "10", "-c", "2", "-warmup", "0"}, &out, &errb); err != nil {
		t.Fatalf("without -fail-on-errors: %v", err)
	}
	if !strings.Contains(out.String(), "HTTP 500") {
		t.Errorf("summary missing HTTP 500 count: %q", out.String())
	}
}

// Flag and argument errors are rejected before any traffic.
func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"-mix", "no-such-mix", "-print-mix"},
		{"-seeds", "1,x", "-warmup", "0", "-n", "1"},
		{"-seeds", ",", "-warmup", "0", "-n", "1"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
