// Command avload is the fleet-scale load harness for avserve: it drives a
// weighted mix of realistic study queries (filters, group-bys, reliability
// metrics, pagination, cold/warm seed rotation) against a running server
// and reports throughput, error counts, and p50/p90/p99/p999 latency from
// an HDR-style histogram.
//
// Usage:
//
//	avload [-url http://127.0.0.1:8080] [-mix default|scan|metrics|file.json]
//	       [-duration 10s] [-c 8] [-rate 0] [-n 0]
//	       [-seeds 1,2] [-cold-every 0] [-cold-seed-start 1000000]
//	       [-conditional-every 0]
//	       [-timeout 10s] [-warmup 2m] [-seed 1]
//	       [-json] [-o report.json] [-fail-on-errors] [-print-mix]
//
// With -rate 0 (the default) avload runs closed-loop: -c workers issue
// requests back-to-back. With -rate R it runs open-loop at R requests per
// second in aggregate, measuring each request from its scheduled start so
// server backlog is charged as latency (no coordinated omission). -n
// bounds the run by request count instead of (or in addition to) -duration.
//
// -print-mix is the dry-run mode: it prints the resolved mix — shares,
// names, path templates — and exits without contacting any server, so CI
// and humans can validate a mix file with `avload -n 0 -print-mix -mix f`.
//
// -json writes the stable avload/1 report schema to stdout (or -o FILE),
// with the human summary on stderr; cmd/benchjson -load folds that JSON
// into the BENCH_* perf-trajectory files. -fail-on-errors exits nonzero if
// any request failed or returned non-2xx, which is how the load-smoke CI
// job turns serving regressions into red builds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"avfda/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "avload:", err)
		os.Exit(1)
	}
}

// run parses flags and executes one load run (or the -print-mix dry run).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("avload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the avserve instance under test")
	mixSpec := fs.String("mix", "default", "query mix: a built-in name ("+strings.Join(loadgen.BuiltinMixNames(), ", ")+") or a JSON file of {name,weight,path} ops")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	concurrency := fs.Int("c", 8, "concurrent workers")
	rate := fs.Float64("rate", 0, "open-loop target requests/second across all workers (0 = closed loop)")
	maxRequests := fs.Int64("n", 0, "stop after this many requests (0 = duration-bound only)")
	seedsCSV := fs.String("seeds", "1", "comma-separated warm study seeds")
	coldEvery := fs.Int("cold-every", 0, "every Nth request targets a fresh cold seed (0 = warm only)")
	coldSeedStart := fs.Int64("cold-seed-start", 1_000_000, "first cold seed")
	conditionalEvery := fs.Int("conditional-every", 0, "every Nth request replays a seen URL with If-None-Match (0 = never)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	warmup := fs.Duration("warmup", 2*time.Minute, "deadline for priming warm seeds before measuring (0 = skip warmup)")
	genSeed := fs.Int64("seed", 1, "generator seed: equal seeds give equal request schedules")
	jsonOut := fs.Bool("json", false, "write the avload/1 JSON report to stdout (summary moves to stderr)")
	outFile := fs.String("o", "", "write the JSON report to this file instead of stdout (implies -json)")
	failOnErrors := fs.Bool("fail-on-errors", false, "exit nonzero if any request errored or returned non-2xx")
	printMix := fs.Bool("print-mix", false, "print the resolved mix and exit without contacting a server")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := loadgen.LoadMix(*mixSpec)
	if err != nil {
		return err
	}
	if *printMix {
		fmt.Fprint(stdout, mix.Describe())
		return nil
	}

	seeds, err := parseSeeds(*seedsCSV)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		BaseURL:          *url,
		Mix:              mix,
		Seeds:            seeds,
		ColdEvery:        *coldEvery,
		ColdSeedStart:    *coldSeedStart,
		ConditionalEvery: *conditionalEvery,
		Concurrency:      *concurrency,
		Rate:             *rate,
		Duration:         *duration,
		MaxRequests:      *maxRequests,
		Timeout:          *timeout,
		Seed:             *genSeed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, *warmup)
		fmt.Fprintf(stderr, "avload: warming %d seed(s) against %s\n", len(seeds), *url)
		err := loadgen.Warmup(warmCtx, cfg)
		cancel()
		if err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	fmt.Fprintf(stderr, "avload: running %s for %v (mix %s, %d workers)\n",
		map[bool]string{true: "open-loop", false: "closed-loop"}[*rate > 0], *duration, mix.Name, *concurrency)
	report, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}

	wantJSON := *jsonOut || *outFile != ""
	if wantJSON {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if *outFile != "" {
			if err := os.WriteFile(*outFile, raw, 0o644); err != nil {
				return err
			}
		} else {
			if _, err := stdout.Write(raw); err != nil {
				return err
			}
		}
		fmt.Fprint(stderr, report.Summary())
	} else {
		fmt.Fprint(stdout, report.Summary())
	}

	if *failOnErrors && report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed (-fail-on-errors)", report.Errors, report.Requests)
	}
	return nil
}

// parseSeeds parses the -seeds CSV into a seed pool.
func parseSeeds(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	seeds := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		s, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %w", p, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("-seeds %q: no seeds", csv)
	}
	return seeds, nil
}
