// Command avreport regenerates every table and figure of the paper's
// evaluation, printing measured values next to the published ones, and can
// export the figures as SVG.
//
// Usage:
//
//	avreport [-seed 1] [-clean] [-only tableVII] [-svg figures/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"avfda"
	"avfda/internal/report"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avreport:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "study seed")
	clean := flag.Bool("clean", false, "disable OCR noise")
	only := flag.String("only", "", "render a single artifact (e.g. tableIV, figure8)")
	svgDir := flag.String("svg", "", "also export figures as SVG into this directory")
	flag.Parse()

	study, err := avfda.NewStudy(avfda.Options{Seed: *seed, CleanOCR: *clean})
	if err != nil {
		return err
	}

	type artifact struct {
		name   string
		render func() (string, error)
	}
	wrap := func(f func() string) func() (string, error) {
		return func() (string, error) { return f(), nil }
	}
	artifacts := []artifact{
		{"summary", wrap(study.Summary)},
		{"tableI", wrap(study.TableI)},
		{"tableIII", wrap(study.TableIII)},
		{"tableIV", wrap(study.TableIV)},
		{"tableV", wrap(study.TableV)},
		{"tableVI", wrap(study.TableVI)},
		{"tableVII", study.TableVII},
		{"tableVIII", study.TableVIII},
		{"figure4", wrap(study.Figure4)},
		{"figure5", study.Figure5},
		{"figure6", wrap(study.Figure6)},
		{"figure7", wrap(study.Figure7)},
		{"figure8", study.Figure8},
		{"figure9", study.Figure9},
		{"figure10", study.Figure10},
		{"figure11", study.Figure11},
		{"figure12", study.Figure12},
		{"casestudies", study.CaseStudies},
		{"roadcontext", wrap(study.RoadContext)},
		{"weathercontext", wrap(study.WeatherContext)},
		{"milesbetween", wrap(study.MilesBetween)},
		{"survival", study.Survival},
		{"mission", study.MissionValidation},
	}
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.name) {
			continue
		}
		text, err := a.render()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Printf("%s\n", text)
	}
	if *svgDir != "" {
		if err := exportSVGs(study, *svgDir); err != nil {
			return err
		}
		fmt.Printf("SVG figures written to %s\n", *svgDir)
	}
	return nil
}

// exportSVGs writes the SVG renderings of Figs. 4 and 5.
func exportSVGs(study *avfda.Study, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	db := study.DB()
	var boxRows []report.BoxRow
	for _, d := range db.DPMPerCar() {
		boxRows = append(boxRows, report.BoxRow{Label: string(d.Manufacturer), Box: d.Box})
	}
	fig4 := report.SVGBoxChart(&report.BoxChart{
		Title: "Figure 4: per-car disengagements per mile", Rows: boxRows, LogScale: true, Unit: "DPM",
	})
	if err := os.WriteFile(filepath.Join(dir, "figure4.svg"), []byte(fig4), 0o644); err != nil {
		return err
	}
	series, err := db.CumulativeDisengagements()
	if err != nil {
		return err
	}
	sc := report.ScatterChart{
		Title:  "Figure 5: cumulative disengagements vs cumulative miles",
		XLabel: "miles", YLabel: "disengagements", LogX: true, LogY: true,
	}
	fits := make(map[string][2]float64)
	for _, s := range series {
		rs := report.Series{Label: string(s.Manufacturer)}
		for _, p := range s.Points {
			rs.Xs = append(rs.Xs, p.Miles)
			rs.Ys = append(rs.Ys, p.Disengagements)
		}
		sc.Series = append(sc.Series, rs)
		fits[rs.Label] = [2]float64{s.Fit.Slope, s.Fit.Intercept}
	}
	fig5 := report.SVGScatter(&sc, fits)
	if err := os.WriteFile(filepath.Join(dir, "figure5.svg"), []byte(fig5), 0o644); err != nil {
		return err
	}

	// Figure 7: per-year DPM boxes.
	var yearRows []report.BoxRow
	for _, r := range db.DPMByYear() {
		yearRows = append(yearRows, report.BoxRow{
			Label: fmt.Sprintf("%s %d", r.Manufacturer, r.Year), Box: r.Box,
		})
	}
	fig7 := report.SVGBoxChart(&report.BoxChart{
		Title: "Figure 7: per-car DPM by calendar year", Rows: yearRows, LogScale: true, Unit: "DPM",
	})
	if err := os.WriteFile(filepath.Join(dir, "figure7.svg"), []byte(fig7), 0o644); err != nil {
		return err
	}

	// Figure 10: reaction-time boxes.
	var rtRows []report.BoxRow
	for _, r := range db.ReactionTimes() {
		rtRows = append(rtRows, report.BoxRow{Label: string(r.Manufacturer), Box: r.Box})
	}
	fig10 := report.SVGBoxChart(&report.BoxChart{
		Title: "Figure 10: driver reaction times", Rows: rtRows, LogScale: true, Unit: "seconds",
	})
	if err := os.WriteFile(filepath.Join(dir, "figure10.svg"), []byte(fig10), 0o644); err != nil {
		return err
	}

	// Figure 11: Waymo reaction histogram with Weibull fit.
	fit, err := db.FitReactionWeibull(schema.Waymo, 3600)
	if err != nil {
		return err
	}
	var waymoRT []float64
	for _, r := range db.ReactionTimes() {
		if r.Manufacturer == schema.Waymo {
			for _, v := range r.Values {
				if v < 3600 {
					waymoRT = append(waymoRT, v)
				}
			}
		}
	}
	hist, err := stats.NewHistogram(waymoRT, 0)
	if err != nil {
		return err
	}
	fig11 := report.SVGHistogram(&report.HistogramChart{
		Title: fmt.Sprintf("Figure 11: Waymo reaction times, Weibull(k=%.2f, l=%.2f)", fit.Weibull.K, fit.Weibull.Lambda),
		Hist:  hist,
		PDF:   fit.Weibull.PDF,
	})
	if err := os.WriteFile(filepath.Join(dir, "figure11.svg"), []byte(fig11), 0o644); err != nil {
		return err
	}

	// Figure 12: relative collision speeds with exponential fit.
	speeds, err := db.AccidentSpeeds()
	if err != nil {
		return err
	}
	for _, s := range speeds {
		if s.Label != "Relative speed" {
			continue
		}
		sHist, err := stats.NewHistogram(s.Values, 8)
		if err != nil {
			return err
		}
		fig12 := report.SVGHistogram(&report.HistogramChart{
			Title: fmt.Sprintf("Figure 12: relative collision speed, Exp(mean %.1f mph)", 1/s.Fit.Lambda),
			Hist:  sHist,
			PDF:   s.Fit.PDF,
		})
		if err := os.WriteFile(filepath.Join(dir, "figure12.svg"), []byte(fig12), 0o644); err != nil {
			return err
		}
	}
	return nil
}
