package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda"
)

func TestExportSVGs(t *testing.T) {
	study, err := avfda.NewStudy(avfda.Options{Seed: 1, CleanOCR: true, NoDictionaryExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := exportSVGs(study, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure4.svg", "figure5.svg", "figure7.svg",
		"figure10.svg", "figure11.svg", "figure12.svg",
	} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text := string(blob)
		if !strings.HasPrefix(text, "<svg") || !strings.Contains(text, "</svg>") {
			t.Errorf("%s is not a complete SVG document", name)
		}
		switch name {
		case "figure11.svg", "figure12.svg":
			if !strings.Contains(text, "density") || !strings.Contains(text, "polyline") {
				t.Errorf("%s missing histogram content", name)
			}
		default:
			if !strings.Contains(text, "Waymo") {
				t.Errorf("%s missing series labels", name)
			}
		}
	}
}
