// Command avserve serves the consolidated failure database over HTTP: a
// long-running JSON API on top of the Stage I-IV pipeline, with a
// seed-keyed LRU study cache (singleflight-guarded), per-request
// deadlines, Prometheus-style metrics at /metrics, and graceful shutdown
// on SIGINT/SIGTERM.
//
// Usage:
//
//	avserve [-addr :8080] [-cache 4] [-workers 0] [-snapshot-dir snapshots/]
//	        [-snapshot-v2] [-peers http://h1:8080,http://h2:8080]
//	        [-fetch-timeout 10s] [-request-timeout 60s] [-read-timeout 10s]
//	        [-write-timeout 90s] [-shutdown-timeout 10s] [-duration 0]
//
//	avserve -proxy -backends http://h1:8080,http://h2:8080 [-replicate 2]
//	        [-addr :8080] [-read-timeout 10s] [-write-timeout 90s]
//	        [-shutdown-timeout 10s] [-duration 0]
//
// With -duration > 0 the server shuts down cleanly after that long even
// without a signal — the self-terminating mode harnesses like `make
// load-smoke` use to bound an end-to-end run.
//
// In -proxy mode the process serves no studies itself: it routes
// /v1/studies/{seed}/... and /v1/snapshots/{seed} across -backends by
// consistent hashing on the seed, spreading each seed over -replicate
// backends and retrying the next replica on transport failure. Backends
// given -peers pull missing seeds' v2 snapshots from each other (CRC
// re-verified on receipt) before falling back to a pipeline build, so a
// restarted shard warm-starts from the fleet instead of rebuilding.
//
// The first request for a seed builds that study (seconds of CPU); the
// build is shared by every concurrent request for the seed and cached for
// later ones. With -snapshot-dir, a cache miss walks the snapshot tiers
// before the pipeline: map the directory's study-<seed>.avsnap2 columnar
// snapshot (zero-copy, the default tier), then load the legacy
// study-<seed>.avsnap (both written by avpipe -snapshot-out), and only
// build on a miss everywhere; fresh builds are written back as v2 so the
// next process warm-starts. -snapshot-v2=false pins the directory to the
// v1 format for staged rollouts. See the route list in internal/serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"avfda/internal/pipeline"
	"avfda/internal/query"
	"avfda/internal/serve"
	"avfda/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avserve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a termination signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("avserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", 4, "max resident studies in the LRU cache")
	workers := fs.Int("workers", 0, "worker pool size for pipeline stages (0 = all cores)")
	snapDir := fs.String("snapshot-dir", "", "study snapshot directory for warm starts (loaded before building, written after)")
	snapV2 := fs.Bool("snapshot-v2", true, "serve mmap-able v2 snapshots ahead of the v1 tier and write builds through as v2 (false = legacy v1 only)")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request deadline, study builds included")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
	writeTimeout := fs.Duration("write-timeout", 90*time.Second, "HTTP server write timeout (must exceed a cold study build)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	duration := fs.Duration("duration", 0, "serve for this long, then shut down cleanly (0 = until signaled); for harnesses like make load-smoke")
	proxy := fs.Bool("proxy", false, "run as a seed-sharding proxy over -backends instead of serving studies")
	backends := fs.String("backends", "", "comma-separated backend base URLs for -proxy mode")
	replicate := fs.Int("replicate", 2, "backends each seed may be served from in -proxy mode (spill + retry)")
	peers := fs.String("peers", "", "comma-separated peer base URLs to pull missing v2 snapshots from (requires -snapshot-dir)")
	fetchTimeout := fs.Duration("fetch-timeout", 10*time.Second, "per-peer snapshot fetch timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler http.Handler
	if *proxy {
		p, err := serve.NewProxy(serve.ProxyConfig{
			Backends: splitList(*backends),
			Replicas: *replicate,
			Debugf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "avserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		handler = p
	} else {
		server, err := serve.New(serve.Config{
			Build:                studyBuilder(*workers),
			CacheSize:            *cacheSize,
			RequestTimeout:       *requestTimeout,
			SnapshotDir:          *snapDir,
			DisableSnapshotV2:    !*snapV2,
			SnapshotPeers:        splitList(*peers),
			SnapshotFetchTimeout: *fetchTimeout,
		})
		if err != nil {
			return err
		}
		handler = server
	}

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		// Self-terminating harness mode: the deadline layers over the signal
		// context, so either a signal or the timer triggers the same graceful
		// drain below and run returns nil.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	errc := make(chan error, 1)
	go func() {
		if *proxy {
			fmt.Fprintf(os.Stderr, "avserve: proxying on %s (backends=%s replicate=%d)\n",
				*addr, *backends, *replicate)
		} else {
			fmt.Fprintf(os.Stderr, "avserve: listening on %s (cache=%d workers=%d)\n",
				*addr, *cacheSize, *workers)
		}
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "avserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitList parses a comma-separated flag value, dropping empty entries so
// "", "a,b", and "a, b," all do the obvious thing.
func splitList(csv string) []string {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// studyBuilder runs the full calibrated pipeline for a seed, threading the
// worker count into the concurrent stages, and wraps the result in a
// query engine.
func studyBuilder(workers int) serve.BuildFunc {
	return func(seed int64) (*serve.Study, error) {
		cfg := pipeline.DefaultConfig()
		cfg.Synth = synth.Config{Seed: seed}
		cfg.OCR.Seed = seed
		cfg.Workers = workers
		// Builds are singleflight-shared across requests and outlive any one
		// caller, so they deliberately run under the process root context,
		// not a request's (see serve.BuildFunc).
		res, err := pipeline.Run(context.Background(), cfg)
		if err != nil {
			return nil, err
		}
		engine, err := query.New(res.DB)
		if err != nil {
			return nil, err
		}
		return &serve.Study{DB: res.DB, Engine: engine}, nil
	}
}
