package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"avfda/internal/query"
	"avfda/internal/serve"
	"avfda/internal/snapshot"
)

// TestServeCalibratedStudy is the end-to-end acceptance check: a server
// wired with the real pipeline builder serves seed 1 over HTTP, the first
// request builds the study, the second hits the cache, /metrics reports
// the traffic, and the indexed query path agrees with a full scan on the
// calibrated corpus.
func TestServeCalibratedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build in -short mode")
	}
	server, err := serve.New(serve.Config{
		Build:          studyBuilder(0),
		CacheSize:      2,
		RequestTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		server.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	// First request builds the study.
	code, body := get("/v1/studies/1/disengagements?mfr=Waymo&limit=5")
	if code != http.StatusOK {
		t.Fatalf("first request = %d (%s)", code, strings.TrimSpace(body))
	}
	var page query.EventPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total == 0 || len(page.Events) != 5 {
		t.Fatalf("calibrated Waymo page = total %d, events %d", page.Total, len(page.Events))
	}
	for _, ev := range page.Events {
		if ev.Manufacturer != "Waymo" {
			t.Errorf("filter leak: %+v", ev)
		}
	}

	// Second request is a cache hit: no second build.
	if code, _ = get("/v1/studies/1/groupby?by=category"); code != http.StatusOK {
		t.Fatalf("groupby = %d", code)
	}
	stats := server.CacheStats()
	if stats.Builds != 1 || stats.Hits < 1 {
		t.Errorf("cache stats = %+v, want one build and at least one hit", stats)
	}

	if code, body = get("/v1/studies/1/metrics/reliability"); code != http.StatusOK {
		t.Fatalf("reliability = %d (%s)", code, body)
	}
	var rel serve.ReliabilityResponse
	if err := json.Unmarshal([]byte(body), &rel); err != nil {
		t.Fatal(err)
	}
	if len(rel.Manufacturers) == 0 {
		t.Error("no reliability rows for the calibrated corpus")
	}

	if code, body = get("/v1/studies/1/tables/vii"); code != http.StatusOK || !strings.Contains(body, "Table VII") {
		t.Errorf("tables/vii = %d (%.80s)", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"avserve_cache_builds_total 1",
		"avserve_cache_hits_total",
		"avserve_request_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestIndexedEqualsScanOnCalibratedCorpus pins the acceptance criterion
// that indexed queries return identical results to a full scan on the real
// study data, not just synthetic fixtures.
func TestIndexedEqualsScanOnCalibratedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build in -short mode")
	}
	study, err := studyBuilder(0)(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := study.Engine
	for _, f := range []query.Filter{
		{},
		{Manufacturer: "Waymo"},
		{Manufacturer: "waymo", Tag: "Recognition System"},
		{Category: "ML/Design", From: "2015-01", To: "2015-12"},
		{Tag: "Software", Modality: "manual"},
		{Manufacturer: "Bosch", Road: "highway"},
	} {
		indexed, err := eng.Select(f)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := eng.SelectScan(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("filter %+v: indexed %d rows != scanned %d rows", f, len(indexed), len(scanned))
		}
	}
}

// TestColdStartFromSnapshot pins the warm-start acceptance criterion: a
// cold avserve process pointed at a populated -snapshot-dir serves the
// seed's disengagements without ever invoking the pipeline builder — the
// cache Builds counter stays 0 and the snapshot-load counter reads 1.
func TestColdStartFromSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build in -short mode")
	}
	dir := t.TempDir()
	study, err := studyBuilder(0)(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteSeed(dir, 1, study.DB); err != nil {
		t.Fatal(err)
	}

	// A fresh process: same builder wiring as run(), but instrumented so
	// any pipeline build fails the test loudly.
	var builds atomic.Int64
	real := studyBuilder(0)
	server, err := serve.New(serve.Config{
		Build: func(seed int64) (*serve.Study, error) {
			builds.Add(1)
			return real(seed)
		},
		CacheSize:      2,
		RequestTimeout: 2 * time.Minute,
		SnapshotDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/studies/1/disengagements?mfr=Waymo&limit=5", nil)
	rec := httptest.NewRecorder()
	server.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("disengagements = %d (%s)", rec.Code, strings.TrimSpace(rec.Body.String()))
	}
	var page query.EventPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total == 0 || len(page.Events) != 5 {
		t.Fatalf("snapshot-served Waymo page = total %d, events %d", page.Total, len(page.Events))
	}

	if n := builds.Load(); n != 0 {
		t.Errorf("pipeline builder ran %d times on a warm start", n)
	}
	stats := server.CacheStats()
	if stats.Builds != 0 || stats.SnapshotLoads != 1 {
		t.Errorf("cache stats = %+v, want Builds 0 and SnapshotLoads 1", stats)
	}

	rec = httptest.NewRecorder()
	server.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"avserve_snapshot_loads_total 1",
		"avserve_cache_builds_total 0",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("want flag parse error")
	}
}

// TestRunSelfTerminates pins the -duration harness mode `make load-smoke`
// relies on: the server binds, serves /healthz, then drains and exits nil
// on its own — no signal required.
func TestRunSelfTerminates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-duration", "2s"})
	}()

	// Poll /healthz until the server is up, then let the duration elapse.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after -duration elapses", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not self-terminate")
	}
}

// TestRunProxyMode boots the real binary wiring in -proxy mode over two
// stub backends and checks the proxy role end to end: local /healthz,
// study traffic forwarded with the seed's URI intact, and a clean
// self-terminating exit.
func TestRunProxyMode(t *testing.T) {
	backend := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]string{"backend": name, "uri": r.URL.RequestURI()})
		}))
	}
	b1, b2 := backend("b1"), backend("b2")
	defer b1.Close()
	defer b2.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-proxy", "-backends", b1.URL + "," + b2.URL,
			"-addr", addr, "-duration", "3s",
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if !strings.Contains(string(body), `"proxy"`) {
					t.Fatalf("/healthz = %s, want the proxy role", body)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/v1/studies/7/disengagements?limit=3")
	if err != nil {
		t.Fatal(err)
	}
	var echoed map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&echoed); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if echoed["backend"] != "b1" && echoed["backend"] != "b2" {
		t.Errorf("forwarded to %q, want a configured backend", echoed["backend"])
	}
	if echoed["uri"] != "/v1/studies/7/disengagements?limit=3" {
		t.Errorf("backend saw URI %q", echoed["uri"])
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("proxy run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("proxy did not self-terminate")
	}
}

// TestRunProxyConfigErrors: -proxy without backends is a startup error,
// not a proxy that 502s everything.
func TestRunProxyConfigErrors(t *testing.T) {
	if err := run([]string{"-proxy"}); err == nil {
		t.Error("-proxy without -backends: want error")
	}
	if err := run([]string{"-proxy", "-backends", " , "}); err == nil {
		t.Error("-proxy with blank backends: want error")
	}
}
