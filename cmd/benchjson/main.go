// Command benchjson converts `go test -bench` text output into a JSON
// object mapping benchmark name to ns/op, for machine-readable benchmark
// artifacts (the `make bench-json` target feeds it and CI uploads the
// result as BENCH_<date>.json).
//
// Usage:
//
//	go test -bench ... | benchjson [-o BENCH_2026-08-05.json]
//
// Without -o the JSON goes to stdout. The GOMAXPROCS suffix go test
// appends to benchmark names (e.g. BenchmarkSnapshotLoad-8) is stripped so
// artifacts from machines with different core counts stay comparable. A
// benchmark that appears more than once keeps its last measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

func main() {
	out := flag.String("o", "", "write the JSON here instead of stdout")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err == nil && len(results) == 0 {
		err = fmt.Errorf("no benchmark results on stdin")
	}
	if err == nil {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, ferr := os.Create(*out)
			if ferr != nil {
				err = ferr
			} else {
				defer f.Close()
				w = f
			}
		}
		if err == nil {
			err = write(w, results)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchLine matches one result row of `go test -bench` output:
// name (with optional -GOMAXPROCS suffix), iteration count, ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse extracts name → ns/op pairs from benchmark output, passing through
// everything that is not a result row (package headers, PASS/ok lines).
func parse(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		results[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// write emits the results as indented JSON with sorted keys (Go's map
// marshalling is sorted) and a trailing newline.
func write(w io.Writer, results map[string]float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
