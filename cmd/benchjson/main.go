// Command benchjson converts `go test -bench` text output into a JSON
// object mapping benchmark name to ns/op, for machine-readable benchmark
// artifacts (the `make bench-json` and `make load-smoke` targets feed it
// and CI uploads/commits the result as BENCH_<date>.json).
//
// Usage:
//
//	go test -bench ... | benchjson [-o BENCH_2026-08-05.json] [-load report.json]
//	          [-merge BENCH_2026-08-05.json]
//
// Without -o the JSON goes to stdout. The GOMAXPROCS suffix go test
// appends to benchmark names (e.g. BenchmarkSnapshotLoad-8) is stripped so
// artifacts from machines with different core counts stay comparable. A
// benchmark that appears more than once keeps its last measurement.
//
// Every metric on a result row is captured, not just ns/op: units a
// benchmark reports via b.ReportMetric (e.g. the "bytes" snapshot size
// BenchmarkSnapshotV2Load emits) land under <name>/<unit>, with "/" in
// the unit flattened to "_" ("B/op" -> "B_op"). Rows whose raw names
// track a pinned perf contract additionally get a stable alias (e.g.
// Snapshot2/load_ns next to Snapshot/load_ns for the v2-vs-v1 cold-load
// trajectory) so dashboards survive benchmark renames.
//
// -load folds an avload JSON report (cmd/avload -json, the avload/1
// schema) into the same flat map under ServeLoad/ keys — latency quantiles
// in nanoseconds to match the micro-benchmarks, plus rps and error/request
// counts — so a single BENCH_<date>.json carries the micro and serving
// perf trajectory together. With -load, benchmark input on stdin is
// optional (pipe /dev/null to fold a report alone). -load repeats, and an
// entry may carry a key prefix as `Prefix=path` — `-load serve.json -load
// ProxyLoad=proxy.json` folds the first under ServeLoad/ (the default) and
// the second under ProxyLoad/, which is how the proxy-smoke harness lands
// the single-backend and sharded runs side by side in one artifact.
//
// -flat folds a file that is already a flat name→number JSON map (e.g.
// `avlint -timings`'s Lint/total_ns + per-analyzer costs) verbatim — keys
// are taken as fully qualified. Like -load it repeats and makes stdin
// benchmark input optional, which is how `make lint` lands the analyzer
// suite's wall times in the day's BENCH artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"avfda/internal/loadgen"
)

// loadList collects repeated -load flags.
type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	out := flag.String("o", "", "write the JSON here instead of stdout")
	merge := flag.String("merge", "", "start from this existing BENCH json, overlaying stdin and -load keys (missing file = empty start)")
	var loads loadList
	flag.Var(&loads, "load", "fold an avload -json report into the output (repeatable; [Prefix=]path, default prefix ServeLoad)")
	var flats loadList
	flag.Var(&flats, "flat", "fold a flat name→number JSON map into the output verbatim (repeatable; e.g. avlint -timings output)")
	flag.Parse()

	if err := run(*out, *merge, loads, flats, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run reads benchmark text from stdin and any avload reports or flat
// maps, then writes the merged flat JSON map. With -merge, keys from an
// earlier artifact survive so separate harnesses (bench-json, load-smoke,
// proxy-smoke, lint) can each fold their slice into one BENCH_<date>.json.
func run(outPath, mergePath string, loads, flats []string, stdin io.Reader, stdout io.Writer) error {
	base := make(map[string]float64)
	if mergePath != "" {
		raw, err := os.ReadFile(mergePath)
		switch {
		case err == nil:
			if err := json.Unmarshal(raw, &base); err != nil {
				return fmt.Errorf("parse -merge file %s: %w", mergePath, err)
			}
		case os.IsNotExist(err):
			// First harness to run: nothing to merge yet.
		default:
			return fmt.Errorf("read -merge file: %w", err)
		}
	}
	results, err := parse(stdin)
	if err != nil {
		return err
	}
	for k, v := range results {
		base[k] = v
	}
	results = base
	for _, entry := range loads {
		prefix, path := "ServeLoad", entry
		if name, rest, ok := strings.Cut(entry, "="); ok {
			prefix, path = name, rest
		}
		folded, err := loadReport(path, prefix)
		if err != nil {
			return err
		}
		for k, v := range folded {
			results[k] = v
		}
	}
	for _, path := range flats {
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("read -flat file: %w", err)
		}
		flat := make(map[string]float64)
		if err := json.Unmarshal(raw, &flat); err != nil {
			return fmt.Errorf("parse -flat file %s: %w", path, err)
		}
		for k, v := range flat {
			results[k] = v
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin (and no -load or -flat input)")
	}
	var w io.Writer = stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return write(w, results)
}

// loadReport flattens an avload/1 report into BENCH-style metrics under
// the given key prefix. Latency keys carry a _ns suffix (converted from
// the report's milliseconds) so they read on the same axis as ns/op
// micro-benchmarks; counters and rps are dimensioned by their suffix.
func loadReport(path, prefix string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read -load report: %w", err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse -load report %s: %w", path, err)
	}
	if rep.Schema != loadgen.ReportSchema {
		return nil, fmt.Errorf("-load report %s: schema %q, want %q", path, rep.Schema, loadgen.ReportSchema)
	}
	const msToNs = 1e6
	out := map[string]float64{
		prefix + "/rps":           rep.RPS,
		prefix + "/requests":      float64(rep.Requests),
		prefix + "/cold_requests": float64(rep.ColdRequests),
		prefix + "/errors":        float64(rep.Errors),
		prefix + "/p50_ns":        rep.Latency.P50ms * msToNs,
		prefix + "/p90_ns":        rep.Latency.P90ms * msToNs,
		prefix + "/p99_ns":        rep.Latency.P99ms * msToNs,
		prefix + "/p999_ns":       rep.Latency.P999ms * msToNs,
		prefix + "/mean_ns":       rep.Latency.MeanMs * msToNs,
	}
	if rep.NotModified > 0 {
		out[prefix+"/not_modified"] = float64(rep.NotModified)
	}
	for _, op := range rep.Ops {
		if op.Requests > 0 {
			out[prefix+"/op/"+op.Name+"/p99_ns"] = op.P99ms * msToNs
		}
	}
	return out, nil
}

// benchName matches a result row's leading benchmark name with its
// optional -GOMAXPROCS suffix.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?$`)

// derived aliases raw benchmark metrics onto the stable perf-trajectory
// keys pinned contracts are tracked under: the v1-vs-v2 snapshot cold-load
// pair and the v2 file size. Both spellings appear in the artifact.
var derived = map[string]string{
	"BenchmarkSnapshotLoad":         "Snapshot/load_ns",
	"BenchmarkSnapshotV2Load":       "Snapshot2/load_ns",
	"BenchmarkSnapshotV2Load/bytes": "Snapshot2/bytes",
}

// parse extracts every metric from benchmark result rows, passing through
// everything that is not a result row (package headers, PASS/ok lines). A
// row reads `<name>[-P] <iterations> (<value> <unit>)...`; ns/op keeps the
// bare benchmark name, any other unit is suffixed.
func parse(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // sub-benchmark header or other non-result line
		}
		name := m[1]
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			key := name
			if unit := fields[i+1]; unit != "ns/op" {
				key = name + "/" + strings.ReplaceAll(unit, "/", "_")
			}
			results[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for raw, alias := range derived {
		if v, ok := results[raw]; ok {
			results[alias] = v
		}
	}
	return results, nil
}

// write emits the results as indented JSON with sorted keys (Go's map
// marshalling is sorted) and a trailing newline.
func write(w io.Writer, results map[string]float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
