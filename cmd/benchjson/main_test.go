package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfda/internal/loadgen"
)

func TestParse(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: avfda/internal/snapshot
cpu: some CPU @ 3.00GHz
BenchmarkSnapshotLoad-8             	     166	   7106071 ns/op
BenchmarkSnapshotPipelineRebuild-8  	       3	 411447130 ns/op
BenchmarkSnapshotWrite              	     500	   2000000 ns/op
BenchmarkSnapshotV2Load-8           	    5000	    140000 ns/op	  840000 bytes
BenchmarkFractional-16              	    1000	     123.4 ns/op	   2 B/op
PASS
ok  	avfda/internal/snapshot	5.1s
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSnapshotLoad":            7106071,
		"BenchmarkSnapshotPipelineRebuild": 411447130,
		"BenchmarkSnapshotWrite":           2000000,
		"BenchmarkSnapshotV2Load":          140000,
		"BenchmarkSnapshotV2Load/bytes":    840000,
		"BenchmarkFractional":              123.4,
		"BenchmarkFractional/B_op":         2,
		// Stable aliases for the pinned v1-vs-v2 cold-load trajectory.
		"Snapshot/load_ns":  7106071,
		"Snapshot2/load_ns": 140000,
		"Snapshot2/bytes":   840000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	got, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from non-benchmark input", got)
	}
}

// -load folds an avload report into the flat map: quantiles in ns on the
// micro-benchmark axis, counters by suffix, per-op p99 for ops that ran.
func TestRunFoldsLoadReport(t *testing.T) {
	rep := loadgen.Report{
		Schema:       loadgen.ReportSchema,
		Requests:     1000,
		RPS:          250.5,
		ColdRequests: 40,
		Errors:       2,
		Latency:      loadgen.LatencyStats{P50ms: 1.5, P90ms: 3, P99ms: 12, P999ms: 30, MeanMs: 2},
		Ops: []loadgen.OpStats{
			{Name: "reliability", Requests: 400, P99ms: 10},
			{Name: "never-ran", Requests: 0, P99ms: 0},
		},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	bench := "BenchmarkSnapshotLoad-8 \t 10\t 7106071 ns/op\n"
	var out strings.Builder
	if err := run("", "", []string{path}, nil, strings.NewReader(bench), &out); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSnapshotLoad":           7106071,
		"Snapshot/load_ns":                7106071,
		"ServeLoad/rps":                   250.5,
		"ServeLoad/requests":              1000,
		"ServeLoad/cold_requests":         40,
		"ServeLoad/errors":                2,
		"ServeLoad/p50_ns":                1.5e6,
		"ServeLoad/p90_ns":                3e6,
		"ServeLoad/p99_ns":                12e6,
		"ServeLoad/p999_ns":               30e6,
		"ServeLoad/mean_ns":               2e6,
		"ServeLoad/op/reliability/p99_ns": 10e6,
	}
	if len(got) != len(want) {
		t.Fatalf("folded %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}

	// With -load, empty stdin is fine; without it, it stays an error.
	if err := run("", "", []string{path}, nil, strings.NewReader(""), &strings.Builder{}); err != nil {
		t.Errorf("empty stdin with -load: %v", err)
	}
	if err := run("", "", nil, nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("empty stdin without -load: want error")
	}
}

// Repeated -load entries with Prefix=path keys land side by side under
// their own prefixes — the proxy-smoke artifact shape.
func TestRunFoldsMultipleNamedReports(t *testing.T) {
	dir := t.TempDir()
	writeReport := func(name string, rps float64, notModified int64) string {
		rep := loadgen.Report{
			Schema:      loadgen.ReportSchema,
			Requests:    100,
			RPS:         rps,
			NotModified: notModified,
			Latency:     loadgen.LatencyStats{P50ms: 1, P90ms: 2, P99ms: 3, P999ms: 4, MeanMs: 1},
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	serve := writeReport("serve.json", 100, 0)
	proxy := writeReport("proxy.json", 180, 12)

	var out strings.Builder
	err := run("", "", []string{serve, "ProxyLoad=" + proxy}, nil, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got["ServeLoad/rps"] != 100 || got["ProxyLoad/rps"] != 180 {
		t.Errorf("rps keys = %v / %v, want 100 / 180", got["ServeLoad/rps"], got["ProxyLoad/rps"])
	}
	if got["ProxyLoad/not_modified"] != 12 {
		t.Errorf("ProxyLoad/not_modified = %v, want 12", got["ProxyLoad/not_modified"])
	}
	if _, ok := got["ServeLoad/not_modified"]; ok {
		t.Error("ServeLoad/not_modified present for a report with zero 304s")
	}
}

// -merge seeds the output from an existing artifact so a later harness
// adds its keys without erasing the earlier ones; stdin and -load keys win
// on collision, and a missing merge file is an empty start, not an error.
func TestRunMergesExistingArtifact(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(benchPath, []byte(`{"Snapshot2/load_ns": 164551, "ServeLoad/rps": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := loadgen.Report{
		Schema:  loadgen.ReportSchema,
		RPS:     250,
		Latency: loadgen.LatencyStats{P50ms: 1, P90ms: 2, P99ms: 3, P999ms: 4, MeanMs: 1},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	repPath := filepath.Join(dir, "report.json")
	if err := os.WriteFile(repPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run("", benchPath, []string{repPath}, nil, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got["Snapshot2/load_ns"] != 164551 {
		t.Errorf("merged key lost: %v", got)
	}
	if got["ServeLoad/rps"] != 250 {
		t.Errorf("ServeLoad/rps = %v, want the fresh report (250) to win", got["ServeLoad/rps"])
	}

	if err := run("", filepath.Join(dir, "absent.json"), []string{repPath}, nil, strings.NewReader(""), &strings.Builder{}); err != nil {
		t.Errorf("missing -merge file should be an empty start: %v", err)
	}
	if err := run("", repPath, nil, nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-merge over a non-BENCH json: want parse error")
	}
}

// A -load file that is not an avload/1 report is rejected, not silently
// folded as zeros.
func TestRunRejectsBadLoadReport(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"not-json.json":     "nope",
		"wrong-schema.json": `{"schema":"other/9"}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run("", "", []string{path}, nil, strings.NewReader(""), &strings.Builder{}); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if err := run("", "", []string{filepath.Join(dir, "missing.json")}, nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing -load file: want error")
	}
}

func TestWriteSortedJSON(t *testing.T) {
	var sb strings.Builder
	err := write(&sb, map[string]float64{"BenchmarkB": 2, "BenchmarkA": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"BenchmarkA\": 1.5,\n  \"BenchmarkB\": 2\n}\n"
	if sb.String() != want {
		t.Fatalf("write = %q, want %q", sb.String(), want)
	}
}

// -flat folds an already-flat name→number map (the avlint -timings shape)
// verbatim, makes stdin optional, and overlays -merge keys like any other
// input; malformed or missing files are errors.
func TestRunFoldsFlatFile(t *testing.T) {
	dir := t.TempDir()
	flat := filepath.Join(dir, "lint.json")
	if err := os.WriteFile(flat, []byte(`{"Lint/total_ns": 1500000000, "Lint/resleak_ns": 250000000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(base, []byte(`{"BenchmarkTableI": 42, "Lint/total_ns": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run("", base, nil, []string{flat}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTableI": 42,
		"Lint/total_ns":   1.5e9, // -flat overlays the stale merged value
		"Lint/resleak_ns": 2.5e8,
	}
	if len(got) != len(want) {
		t.Fatalf("folded %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`["not", "a", "map"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", nil, []string{bad}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("malformed -flat file: want error")
	}
	if err := run("", "", nil, []string{filepath.Join(dir, "missing.json")}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing -flat file: want error")
	}
}
