package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: avfda/internal/snapshot
cpu: some CPU @ 3.00GHz
BenchmarkSnapshotLoad-8             	     166	   7106071 ns/op
BenchmarkSnapshotPipelineRebuild-8  	       3	 411447130 ns/op
BenchmarkSnapshotWrite              	     500	   2000000 ns/op
BenchmarkFractional-16              	    1000	     123.4 ns/op	   2 B/op
PASS
ok  	avfda/internal/snapshot	5.1s
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSnapshotLoad":            7106071,
		"BenchmarkSnapshotPipelineRebuild": 411447130,
		"BenchmarkSnapshotWrite":           2000000,
		"BenchmarkFractional":              123.4,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	got, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from non-benchmark input", got)
	}
}

func TestWriteSortedJSON(t *testing.T) {
	var sb strings.Builder
	err := write(&sb, map[string]float64{"BenchmarkB": 2, "BenchmarkA": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"BenchmarkA\": 1.5,\n  \"BenchmarkB\": 2\n}\n"
	if sb.String() != want {
		t.Fatalf("write = %q, want %q", sb.String(), want)
	}
}
