// STPA: causal analysis of the paper's two case-study accidents over the
// Fig. 3 hierarchical control structure — which control loops broke, which
// unsafe-control-action forms appeared, and where each fault class lives
// in the structure.
package main

import (
	"fmt"
	"log"

	"avfda/internal/ontology"
	"avfda/internal/stpa"
)

func main() {
	structure := stpa.NewADSStructure()
	if err := structure.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== ADS hierarchical control structure (paper Fig. 3) ==")
	for _, c := range structure.Components() {
		fmt.Printf("  [%d] %-22s %s\n", c.Layer, c.Name, c.Description)
	}
	fmt.Println()
	for _, l := range structure.Loops() {
		fmt.Printf("%s: %s\n  path:", l.ID, l.Description)
		for _, id := range l.Path {
			fmt.Printf(" %s", id)
		}
		fmt.Println()
	}
	fmt.Println()

	// Localize every fault tag onto the structure.
	fmt.Println("fault-tag loci:")
	for _, tag := range ontology.AllTags() {
		locus, err := stpa.TagLocus(tag)
		if err != nil {
			fmt.Printf("  %-30s (no locus: unknown cause)\n", tag)
			continue
		}
		loops := structure.LoopsContaining(locus)
		ids := make([]string, len(loops))
		for i, l := range loops {
			ids[i] = l.ID
		}
		fmt.Printf("  %-30s -> %-12s loops %v\n", tag, locus, ids)
	}
	fmt.Println()

	// Walk the two real accidents from the paper's §II.
	for _, sc := range []stpa.Scenario{stpa.CaseStudyI(), stpa.CaseStudyII()} {
		fmt.Printf("== %s ==\n", sc.Name)
		fmt.Println(sc.Narrative)
		fmt.Printf("reported cause: %q -> tag %s\n\n", sc.ReportedCause, sc.Tag)
		analysis, err := structure.Analyze(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(analysis.Render())
		fmt.Println()
	}
}
