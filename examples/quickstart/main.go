// Quickstart: run the full study pipeline and print the headline results —
// the shortest path from `go run` to the paper's main findings.
package main

import (
	"fmt"
	"log"

	"avfda"
)

func main() {
	// A Study generates the calibrated two-release DMV corpus, renders it
	// to scanned documents, digitizes them with realistic OCR noise,
	// parses every vendor format, NLP-tags each disengagement cause, and
	// consolidates the failure database.
	study, err := avfda.NewStudy(avfda.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Study summary ==")
	fmt.Print(study.Summary())

	// The paper's headline comparison: AVs vs human drivers (Table VII).
	tableVII, err := study.TableVII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tableVII)

	// And the maturity signal: DPM falls with cumulative miles (Fig. 8).
	fig8, err := study.Figure8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fig8)

	// One-off classification of a raw disengagement cause.
	tag, category, err := avfda.ClassifyCause(
		"The AV didn't see the lead vehicle, driver safely disengaged")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample cause classified as: %s (%s)\n", tag, category)
}
