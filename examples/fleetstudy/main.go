// Fleetstudy: a per-manufacturer reliability deep dive using the public
// database API — the workflow a fleet-safety analyst would run on their
// own filings: per-car DPM spread, temporal trend, accident exposure, and
// a Kalra–Paddock read on how trustworthy each accident-rate estimate is.
package main

import (
	"fmt"
	"log"
	"sort"

	"avfda"
)

func main() {
	study, err := avfda.NewStudy(avfda.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	db := study.DB()

	fmt.Println("== Fleet reliability deep dive ==")
	fmt.Println()

	// Rank manufacturers by median per-car DPM (Fig. 4 data).
	dists := db.DPMPerCar()
	sort.Slice(dists, func(i, j int) bool {
		return dists[i].Box.Median < dists[j].Box.Median
	})
	fmt.Println("per-car disengagements/mile (best to worst):")
	for rank, d := range dists {
		fmt.Printf("  %d. %-14s median %.3g  IQR [%.3g, %.3g]  cars %d\n",
			rank+1, d.Manufacturer, d.Box.Median, d.Box.Q1, d.Box.Q3, d.Box.N)
	}
	fmt.Println()

	// Improvement trends (Fig. 9): who is actually getting better?
	trends, err := db.DPMTrend()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("improvement trend (log-log slope of DPM vs cumulative miles):")
	for _, tr := range trends {
		if !tr.FitOK {
			continue
		}
		verdict := "improving"
		if tr.Fit.Slope >= 0 {
			verdict = "NOT improving"
		}
		fmt.Printf("  %-14s slope %+.3f (R2 %.2f) — %s\n",
			tr.Manufacturer, tr.Fit.Slope, tr.Fit.R2, verdict)
	}
	fmt.Println()

	// Accident exposure and estimate quality (Tables VI/VII).
	rel, err := db.ReliabilityVsHuman()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accident-rate estimates vs human drivers (2e-6/mile):")
	for _, r := range rel {
		if r.MedianAPM < 0 {
			fmt.Printf("  %-14s no accidents reported — APM not estimable\n", r.Manufacturer)
			continue
		}
		confidence := "estimate NOT trustworthy (too few accidents)"
		if r.EstimateConfidence >= 0.9 {
			confidence = "estimate made at >90% confidence"
		}
		fmt.Printf("  %-14s APM %.3g (%.0fx human) — %s\n",
			r.Manufacturer, r.MedianAPM, r.RelToHuman, confidence)
	}
	fmt.Println()

	// Where do collisions actually happen? (Fig. 12 data.)
	speeds, err := db.AccidentSpeeds()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range speeds {
		fmt.Printf("%-22s n=%2d  exponential mean %.1f mph\n",
			s.Label+":", len(s.Values), 1/s.Fit.Lambda)
	}
	fmt.Printf("collisions under 10 mph relative speed: %.0f%%\n",
		100*db.RelativeSpeedUnder(10))
}
