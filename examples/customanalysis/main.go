// Customanalysis: answer a question the paper never asked, using the
// dataframe layer over the consolidated failure database — do weekday and
// weekend disengagements look different? Are morning faults different from
// afternoon ones? This is the template for exploring your own hypotheses
// on the corpus.
package main

import (
	"fmt"
	"log"
	"time"

	"avfda"
	"avfda/internal/frame"
	"avfda/internal/stats"
)

func main() {
	study, err := avfda.NewStudy(avfda.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	events, err := study.DB().EventsFrame()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Custom analysis over the events dataframe ==")
	fmt.Printf("events: %d rows x %d columns %v\n\n", events.NumRows(), events.NumCols(), events.Names())

	// Derive a day-of-week column.
	times, err := events.Times("time")
	if err != nil {
		log.Fatal(err)
	}
	dows := make([]string, len(times))
	periods := make([]string, len(times))
	for i, ts := range times {
		if ts.Weekday() == time.Saturday || ts.Weekday() == time.Sunday {
			dows[i] = "weekend"
		} else {
			dows[i] = "weekday"
		}
		if ts.Hour() < 12 {
			periods[i] = "morning"
		} else {
			periods[i] = "afternoon"
		}
	}
	if err := events.AddStrings("dayClass", dows); err != nil {
		log.Fatal(err)
	}
	if err := events.AddStrings("period", periods); err != nil {
		log.Fatal(err)
	}

	// Group-by + aggregate: mean reaction time per day class.
	meanPos := func(xs []float64) float64 {
		var sum, n float64
		for _, x := range xs {
			if x >= 0 && x < 3600 {
				sum += x
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	byDay, err := events.Aggregate([]string{"dayClass"}, []frame.Agg{
		{Col: "reactionSeconds", As: "meanReaction", Fn: meanPos},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean driver reaction by day class:")
	fmt.Print(byDay.String())
	fmt.Println()

	// Category mix per period, via filters.
	for _, period := range []string{"morning", "afternoon"} {
		p := period
		sub := events.Filter(func(r frame.Row) bool { return r.String("period") == p })
		ml := sub.Filter(func(r frame.Row) bool { return r.String("category") == "ML/Design" })
		fmt.Printf("%-10s %5d events, ML/Design share %.1f%%\n",
			period, sub.NumRows(), 100*float64(ml.NumRows())/float64(sub.NumRows()))
	}
	fmt.Println()

	// Statistical check: do weekend and weekday reaction times differ?
	collect := func(dayClass string) []float64 {
		var out []float64
		sub := events.Filter(func(r frame.Row) bool { return r.String("dayClass") == dayClass })
		vals, err := sub.Floats("reactionSeconds")
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vals {
			if v >= 0 && v < 3600 {
				out = append(out, v)
			}
		}
		return out
	}
	d, p, err := stats.KSTwoSample(collect("weekday"), collect("weekend"))
	if err != nil {
		log.Fatal(err)
	}
	verdict := "no evidence of a difference"
	if p < 0.05 {
		verdict = "distributions differ"
	}
	fmt.Printf("weekday-vs-weekend reaction KS: D=%.3f p=%.3f — %s\n", d, p, verdict)
	fmt.Println("(the synthetic corpus plants no day-of-week effect, so a large p is the correct answer)")
}
