// Faultinjection: the stochastic mission model the paper proposes as future
// work — fit per-mile fault rates from the field data, simulate fleets of
// missions forward, validate against the observed DPM/APM/DPA, and explore
// the counterfactuals behind the paper's findings (slower drivers, tighter
// action windows, better perception).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"avfda"
	"avfda/internal/mission"
	"avfda/internal/ontology"
)

func main() {
	study, err := avfda.NewStudy(avfda.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	model, err := study.MissionModel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Stochastic fault-injection mission model ==")
	fmt.Printf("fitted from field data: total fault rate %.3g /mile, "+
		"ADS detection prob %.2f,\n  driver reaction Weibull(k=%.2f, λ=%.2f), "+
		"action window Weibull(k=%.2f, λ=%.2f)\n\n",
		sumRates(model), model.DetectionProb,
		model.Reaction.K, model.Reaction.Lambda,
		model.ActionWindow.K, model.ActionWindow.Lambda)

	const missions = 300000
	rng := rand.New(rand.NewSource(1))
	base, _, err := mission.Campaign(model, missions, rng, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline campaign: %d missions (%.0f miles)\n", base.Missions, base.Miles)
	fmt.Printf("  simulated DPM %.3g  APM %.3g  DPA %.0f\n", base.DPM(), base.APM(), base.DPA())
	fmt.Printf("  field (paper):  DPM %.3g  APM %.3g  DPA ~127\n\n",
		5328.0/1116605, 42.0/1116605)

	// Counterfactuals.
	cases := []mission.Counterfactual{
		{Name: "drivers 2x slower (alertness decay)", Model: model.WithReactionScale(2)},
		{Name: "drivers 4x slower", Model: model.WithReactionScale(4)},
		{Name: "action window halved (denser traffic)", Model: model.WithWindowScale(0.5)},
		{Name: "perception faults cut 5x", Model: model.WithTagRateScale(ontology.TagRecognitionSystem, 0.2)},
		{Name: "perfect ADS self-detection", Model: withDetection(model, 1)},
	}
	fmt.Println("counterfactuals (same 300k missions):")
	for _, c := range cases {
		st, _, err := mission.Campaign(c.Model, missions, rand.New(rand.NewSource(1)), false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s DPM %.3g  APM %.3g (%.1fx base)\n",
			c.Name, st.DPM(), st.APM(), ratio(st.APM(), base.APM()))
	}
	fmt.Println()
	fmt.Println("the reaction-time sweeps show the paper's finding 1: with a small")
	fmt.Println("action window, reaction-time-based accidents become a frequent")
	fmt.Println("failure mode as driver alertness decays.")
}

func sumRates(m mission.Model) float64 {
	var r float64
	for _, v := range m.TagRates {
		r += v
	}
	return r
}

func withDetection(m mission.Model, p float64) mission.Model {
	m.DetectionProb = p
	return m
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
