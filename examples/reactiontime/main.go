// Reactiontime: the paper's Question 4 — how alert do safety drivers have
// to be? Fits reaction-time distributions, compares them to non-AV driver
// baselines, and measures how alertness decays as the system improves.
package main

import (
	"fmt"
	"log"

	"avfda"
	"avfda/internal/calib"
	"avfda/internal/schema"
)

func main() {
	study, err := avfda.NewStudy(avfda.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	db := study.DB()

	fmt.Println("== Driver alertness study (paper Q4) ==")
	fmt.Println()

	// Per-manufacturer reaction-time distributions (Fig. 10).
	fmt.Println("reaction-time distributions:")
	for _, r := range db.ReactionTimes() {
		fmt.Printf("  %-14s n=%4d  median %.2fs  mean %.2fs  p75 %.2fs  max %.0fs\n",
			r.Manufacturer, len(r.Values), r.Box.Median, r.Mean, r.Box.Q3, r.Box.Max)
	}
	fmt.Println()

	// The headline comparison: AV safety drivers vs ordinary drivers.
	mean, err := db.MeanReaction(3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet mean reaction: %.2f s (outliers above 1h excluded)\n", mean)
	fmt.Printf("non-AV braking reaction (Fambro): %.2f s; own-vehicle drivers: %.2f s\n",
		calib.NonAVBrakeReaction, calib.NonAVReaction)
	if mean <= calib.NonAVReaction {
		fmt.Println("=> AV safety drivers must stay AS alert as ordinary drivers —")
		fmt.Println("   the technology does not buy attention headroom (paper finding 1).")
	}
	fmt.Println()

	// Weibull fits (Fig. 11): Benz is long-tailed, Waymo tight.
	fmt.Println("Weibull fits:")
	for _, m := range []schema.Manufacturer{schema.MercedesBenz, schema.Waymo} {
		fit, err := db.FitReactionWeibull(m, 3600)
		if err != nil {
			log.Fatal(err)
		}
		shapeNote := "long-tailed (shape < 1)"
		if fit.Weibull.K >= 1 {
			shapeNote = "concentrated (shape >= 1)"
		}
		fmt.Printf("  %-14s k=%.2f lambda=%.2f  KS=%.3f — %s\n",
			m, fit.Weibull.K, fit.Weibull.Lambda, fit.KS, shapeNote)
	}
	pooled, n, err := db.PooledReactionFit(3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pooled exponentiated-Weibull: k=%.2f lambda=%.2f alpha=%.2f (n=%d)\n",
		pooled.K, pooled.Lambda, pooled.Alpha, n)
	fmt.Println()

	// Alertness decay: reaction time vs cumulative miles.
	trends, err := db.AlertnessTrends(3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alertness decay (corr. of reaction time with cumulative miles):")
	for _, tr := range trends {
		signif := "not significant"
		if tr.P < 0.01 {
			signif = "significant at 99%"
		}
		fmt.Printf("  %-14s r=%+.3f p=%.4f (%s)\n", tr.Manufacturer, tr.R, tr.P, signif)
	}
	fmt.Println()
	fmt.Println("paper: Waymo r=0.19 (p=0.01), Mercedes-Benz r=0.11 (p=0.007) —")
	fmt.Println("drivers relax as the system improves, shrinking the action window.")
}
