module avfda

go 1.22
