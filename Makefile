# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

BENCH_SMOKE := PipelineEndToEnd|ParseConcurrent|ClassifyAll|Snapshot
SERVE_ADDR ?= 127.0.0.1:18080
LOAD_ADDR ?= 127.0.0.1:18081
LOAD_DURATION ?= 10s
BENCH_DATE := $(shell date +%F)
FUZZ_TIME ?= 10s

.PHONY: build vet test race lint fuzz bench bench-json fmt serve load-smoke proxy-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race job covers every package: a hand-maintained list let newly added
# concurrent packages silently escape race coverage.
race:
	$(GO) test -race ./...

# Build the analyzer suite once, run it over the whole repository, and
# fold the per-analyzer wall times into the day's BENCH artifact so the
# lint cost is tracked like any other perf trajectory. See DESIGN.md
# systems #21, #25, and #26 for what each analyzer enforces. Two runs:
# the first is uncached, keeping the cold full-suite cost honest; the
# second goes through the .lintcache findings cache, so its LintWarm/
# keys track the incremental path (fully warm once the cache has been
# populated by a prior `make lint`). The fold runs only when the tree is
# clean — a lint failure fails the target first.
lint:
	$(GO) build -o bin/avlint ./cmd/avlint
	$(GO) build -o bin/benchjson ./cmd/benchjson
	./bin/avlint -timings lint-timings.json ./...
	./bin/avlint -cache-dir .lintcache -timings-prefix LintWarm \
		-timings lint-timings-warm.json ./...
	./bin/benchjson -merge BENCH_$(BENCH_DATE).json -flat lint-timings.json \
		-flat lint-timings-warm.json -o BENCH_$(BENCH_DATE).json < /dev/null
	@echo "folded lint timings into BENCH_$(BENCH_DATE).json"

# Short fuzz smoke over both snapshot readers: arbitrary bytes must yield
# a typed error or a valid DB/view, never a panic (and for v2, never a
# fault on a mapped page).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotRead$$' -fuzztime $(FUZZ_TIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshot2Read$$' -fuzztime $(FUZZ_TIME) ./internal/snapshot2

bench:
	$(GO) test -bench '$(BENCH_SMOKE)' -benchtime 1x -run '^$$' ./...

# Machine-readable benchmark artifact: the smoke benchmarks (including the
# snapshot load-vs-rebuild pair) rendered as name -> ns/op JSON. CI uploads
# the resulting BENCH_<date>.json.
bench-json:
	$(GO) test -bench '$(BENCH_SMOKE)' -benchtime 1x -run '^$$' ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

# Build avserve and smoke-test it: start on SERVE_ADDR, poll /healthz until
# it answers, then shut the server down. Fails if the probe never succeeds.
serve:
	$(GO) build -o bin/avserve ./cmd/avserve
	@./bin/avserve -addr $(SERVE_ADDR) & pid=$$!; \
	ok=0; \
	for i in $$(seq 1 50); do \
		if curl -fsS "http://$(SERVE_ADDR)/healthz" >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ "$$ok" != 1 ]; then echo "avserve never answered /healthz" >&2; exit 1; fi; \
	echo "avserve healthy on $(SERVE_ADDR)"

# End-to-end serving benchmark (the load-smoke CI job): validate the query
# mix offline, boot a self-terminating avserve, drive it with avload for
# LOAD_DURATION with -fail-on-errors (any transport failure or non-2xx
# fails the target), then fold the avload/1 report and the smoke
# micro-benchmarks into one BENCH_<date>.json perf-trajectory artifact.
# avload's warmup retries through connection refusals and study builds, so
# no separate /healthz poll is needed; avserve's -duration is a backstop
# that bounds the run even if avload dies without the kill below.
load-smoke:
	$(GO) build -o bin/avserve ./cmd/avserve
	$(GO) build -o bin/avload ./cmd/avload
	$(GO) build -o bin/benchjson ./cmd/benchjson
	./bin/avload -n 0 -print-mix
	@./bin/avserve -addr $(LOAD_ADDR) -duration 300s & pid=$$!; \
	status=0; \
	./bin/avload -url "http://$(LOAD_ADDR)" -duration $(LOAD_DURATION) -c 4 \
		-seeds 1,2 -warmup 240s -json -fail-on-errors -o load-report.json \
		|| status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	exit $$status
	$(GO) test -bench '$(BENCH_SMOKE)' -benchtime 1x -run '^$$' ./... \
		| ./bin/benchjson -load load-report.json -o BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

# Sharded serving smoke (the proxy-smoke CI job): 1 avserve -proxy over 2
# backends, the second peered to the first for snapshot pull-through. The
# script proves shard routing, 304 revalidation through the proxy,
# byte-identical answers from either backend, and a zero-build peer
# warm-start (see scripts/proxy_smoke.sh for the full checklist), then the
# two avload reports are folded into BENCH_<date>.json next to whatever
# keys it already carries.
proxy-smoke:
	$(GO) build -o bin/avserve ./cmd/avserve
	$(GO) build -o bin/avload ./cmd/avload
	$(GO) build -o bin/benchjson ./cmd/benchjson
	sh scripts/proxy_smoke.sh
	./bin/benchjson -merge BENCH_$(BENCH_DATE).json \
		-load ServeDirect=proxy-single-report.json \
		-load ProxyLoad=proxy-report.json \
		-o BENCH_$(BENCH_DATE).json < /dev/null
	@echo "wrote BENCH_$(BENCH_DATE).json"

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; \
	fi

ci: build vet test race lint fuzz fmt bench
