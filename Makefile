# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

RACE_PKGS := ./internal/pipeline ./internal/parse ./internal/nlp ./internal/ocr
BENCH_SMOKE := PipelineEndToEnd|ParseConcurrent|ClassifyAll

.PHONY: build vet test race bench fmt ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench '$(BENCH_SMOKE)' -benchtime 1x -run '^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; \
	fi

ci: build vet test race fmt bench
