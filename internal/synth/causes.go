package synth

import (
	"math/rand"

	"avfda/internal/calib"
	"avfda/internal/ontology"
)

// calibCategory aliases the calibration row type used to build decks.
type calibCategory = calib.CategoryPct

// causeTemplates holds the natural-language phrasings manufacturers use for
// each fault class. Wording varies per vendor in the real corpus; here each
// tag carries several phrasings, from dictionary-obvious to oblique, so the
// NLP stage is exercised rather than pattern-matched.
var causeTemplates = map[ontology.Tag][]string{
	ontology.TagEnvironment: {
		"Disengage for a recklessly behaving road user",
		"Undetected construction zones ahead, driver took over",
		"Emergency vehicle approaching with siren, safe operation takeover",
		"Debris on roadway forced manual takeover",
		"Unexpected cyclist crossing against the signal",
		"Heavy rain conditions degraded safe operation",
		"Sun glare blinding forward view at low elevation",
		"Jaywalking pedestrian entered the travel lane",
	},
	ontology.TagComputerSystem: {
		"Processors overloading on the onboard computer",
		"Compute unit fault required reboot",
		"CPU utilization exceeded safe threshold",
		"Memory exhaustion on onboard computer triggered takeover",
		"Hardware fault in main computer",
	},
	ontology.TagRecognitionSystem: {
		"The AV didn't see the lead vehicle, driver safely disengaged and resumed manual control",
		"Failing to detect traffic lights at the intersection",
		"Failed to detect lane markings after repaving",
		"Perception system failure on merging traffic",
		"False detection of obstacle caused hard braking",
		"Misclassifies objects on shoulder as in-path",
		"Failed to recognize pedestrian near crosswalk",
		"Incorrect object tracking through occlusion",
	},
	ontology.TagPlanner: {
		"Incorrect motion plan at four-way stop",
		"Improper planning of maneuver during lane change",
		"Planner producing infeasible paths around double-parked cars",
		"Failed to anticipate driver of adjacent vehicle",
		"Unwanted maneuver planned toward closed lane",
		"Poor lane change decision in dense traffic",
		"Trajectory planning error approaching roundabout",
	},
	ontology.TagSensor: {
		"LIDAR failed to localize in time",
		"GPS localization lost under overpass",
		"Sensor dropouts on front radar unit",
		"Radar return blocked by truck spray",
		"Camera obstructed by condensation",
		"Localization timed out during tunnel transit",
		"Sensor calibration drift beyond tolerance",
	},
	ontology.TagNetwork: {
		"Data rate exceeded network capacity",
		"CAN bus overload dropped safety messages",
		"Network latency exceeded threshold for control loop",
		"Dropped messages on vehicle bus during burst",
	},
	ontology.TagDesignBug: {
		"System was not designed to handle unprotected left with occluded view",
		"Situation outside design domain: flooded roadway",
		"Unsupported roadway configuration: diagonal crossing",
		"Unforeseen scenario encountered at railroad crossing",
	},
	ontology.TagSoftware: {
		"Software module froze. As a result driver safely disengaged and resumed manual control",
		"Software crashed in planning process",
		"Software hangs detected by health monitor",
		"Software bug detected in map matching",
		"Process terminated unexpectedly, takeover requested",
		"System software error required manual control",
		"Application fault caused restart of driving stack",
	},
	ontology.TagAVControllerSystem: {
		"Controller not responding to commands",
		"Controller unresponsive to commands from follower",
		"Actuation command ignored by low-level controller",
		"Steering command rejected by controller",
	},
	ontology.TagAVControllerML: {
		"Controller made wrong decisions at intersection approach",
		"Controller incorrect prediction of gap acceptance",
		"Bad control decision at intersection with cross traffic",
	},
	ontology.TagHangCrash: {
		"Takeover-Request - watchdog error",
		"Watchdog timers expired on control module",
		"Watchdog timeout reset the driving computer",
	},
	ontology.TagIncorrectBehaviorPrediction: {
		"Incorrect behavior prediction",
		"Behavior prediction wrong for merging vehicle",
		"Failed to predict behavior of road user at crosswalk",
	},
	// Unknown-T: deliberately information-free phrasings, the Tesla style
	// (98.35% of Tesla causes are Unknown-C in Table IV). These must share
	// no stems with any dictionary entry — "planned takeover" would vote
	// for the Planner tag via the "plan" stem.
	ontology.TagUnknownT: {
		"Disengagement reported",
		"Event recorded per company procedure",
		"Review pending",
		"Operational event, details on file",
		"Entry filed with internal reference number",
	},
}

// causeFor draws a cause text for tag using rng.
func causeFor(tag ontology.Tag, rng *rand.Rand) string {
	ts := causeTemplates[tag]
	if len(ts) == 0 {
		ts = causeTemplates[ontology.TagUnknownT]
	}
	return ts[rng.Intn(len(ts))]
}

// tagWeights maps each failure-category bucket to its per-tag composition.
// The splits are not published by the paper; they are chosen to produce
// Fig. 6's qualitative picture (recognition dominating perception,
// software dominating system faults).
var (
	perceptionTags = []weightedTag{
		{ontology.TagRecognitionSystem, 0.70},
		{ontology.TagEnvironment, 0.30},
	}
	plannerTags = []weightedTag{
		{ontology.TagPlanner, 0.55},
		{ontology.TagIncorrectBehaviorPrediction, 0.25},
		{ontology.TagDesignBug, 0.12},
		{ontology.TagAVControllerML, 0.08},
	}
	systemTags = []weightedTag{
		{ontology.TagSoftware, 0.35},
		{ontology.TagComputerSystem, 0.20},
		{ontology.TagSensor, 0.20},
		{ontology.TagHangCrash, 0.10},
		{ontology.TagAVControllerSystem, 0.10},
		{ontology.TagNetwork, 0.05},
	}
)

type weightedTag struct {
	tag ontology.Tag
	w   float64
}

// catKind indexes the four Table IV category buckets.
type catKind int

const (
	catPerception catKind = iota
	catPlanner
	catSystem
	catUnknown
)

// buildCategoryDeck apportions n events across the four category buckets by
// largest remainder (so Table IV percentages are reproduced exactly up to
// integer rounding) and shuffles the deck so categories land uniformly in
// time.
func buildCategoryDeck(n int, cat calibCategory, rng *rand.Rand) []catKind {
	counts := largestRemainder(n, []float64{
		cat.PerceptionPct, cat.PlannerPct, cat.SystemPct, cat.UnknownPct,
	})
	deck := make([]catKind, 0, n)
	for k, c := range counts {
		for i := 0; i < c; i++ {
			deck = append(deck, catKind(k))
		}
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// tagForCategory samples a concrete fault tag within a category bucket.
func tagForCategory(k catKind, rng *rand.Rand) ontology.Tag {
	switch k {
	case catPerception:
		return drawWeighted(perceptionTags, rng)
	case catPlanner:
		return drawWeighted(plannerTags, rng)
	case catSystem:
		return drawWeighted(systemTags, rng)
	default:
		return ontology.TagUnknownT
	}
}

// drawWeighted samples from a weighted tag list.
func drawWeighted(ws []weightedTag, rng *rand.Rand) ontology.Tag {
	var total float64
	for _, w := range ws {
		total += w.w
	}
	u := rng.Float64() * total
	var acc float64
	for _, w := range ws {
		acc += w.w
		if u < acc {
			return w.tag
		}
	}
	return ws[len(ws)-1].tag
}
