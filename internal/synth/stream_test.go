package synth

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// collect materializes a streamed corpus through a Truth sink.
func collect(t *testing.T, cfg Config, workers int) *Truth {
	t.Helper()
	truth := &Truth{}
	if err := GenerateStream(cfg, workers, truth.sink()); err != nil {
		t.Fatal(err)
	}
	return truth
}

// The streaming path must be byte-identical to the materialized path at
// any worker count: same records, same order, for every record type. This
// is the acceptance criterion that lets every scale consumer trust the
// bounded-memory path.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 11},
		{Seed: 11, Scale: 2, Fleets: 2},
	} {
		want, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7} {
			got := collect(t, cfg, workers)
			if !reflect.DeepEqual(got.Corpus.Fleets, want.Corpus.Fleets) {
				t.Fatalf("cfg %+v workers=%d: fleets differ", cfg, workers)
			}
			if !reflect.DeepEqual(got.Corpus.Mileage, want.Corpus.Mileage) {
				t.Fatalf("cfg %+v workers=%d: mileage differs", cfg, workers)
			}
			if !reflect.DeepEqual(got.Corpus.Disengagements, want.Corpus.Disengagements) {
				t.Fatalf("cfg %+v workers=%d: disengagements differ", cfg, workers)
			}
			if !reflect.DeepEqual(got.Tags, want.Tags) {
				t.Fatalf("cfg %+v workers=%d: tags differ", cfg, workers)
			}
			if !reflect.DeepEqual(got.Corpus.Accidents, want.Corpus.Accidents) {
				t.Fatalf("cfg %+v workers=%d: accidents differ", cfg, workers)
			}
		}
	}
}

// Fleet replication multiplies every count by Fleets, keeps vehicle IDs
// unique via the replica prefix, and still yields a valid corpus.
func TestStreamFleetsReplication(t *testing.T) {
	const fleets = 3
	tr := collect(t, Config{Seed: 5, Fleets: fleets}, 4)
	if got := len(tr.Corpus.Disengagements); got != fleets*calib.TotalDisengagements {
		t.Errorf("disengagements = %d, want %d", got, fleets*calib.TotalDisengagements)
	}
	if got := len(tr.Corpus.Accidents); got != fleets*calib.TotalAccidents {
		t.Errorf("accidents = %d, want %d", got, fleets*calib.TotalAccidents)
	}
	if err := tr.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every vehicle ID is globally unique to one fleet replica: replicas
	// 1..N-1 carry their f<NN>- prefix, replica 0 none.
	prefixes := make(map[string]bool)
	vids := make(map[schema.VehicleID]bool)
	for _, m := range tr.Corpus.Mileage {
		vids[m.Vehicle] = true
		if i := strings.Index(string(m.Vehicle), "-"); strings.HasPrefix(string(m.Vehicle), "f") && i == 3 {
			prefixes[string(m.Vehicle[:4])] = true
		}
	}
	for _, want := range []string{"f01-", "f02-"} {
		if !prefixes[want] {
			t.Errorf("no vehicles with replica prefix %q", want)
		}
	}
	baseVids := 0
	for v := range vids {
		if !strings.HasPrefix(string(v), "f0") {
			baseVids++
		}
	}
	if baseVids*fleets != len(vids) {
		t.Errorf("vehicle IDs = %d, want %d (3 disjoint replicas of %d)", len(vids), baseVids*fleets, baseVids)
	}
	// Replicas are independent draws, not copies: replica 1's event times
	// must differ from replica 0's.
	base := collect(t, Config{Seed: 5}, 1)
	same := 0
	for i, d := range base.Corpus.Disengagements {
		if tr.Corpus.Disengagements[calib.TotalDisengagements+i].Time.Equal(d.Time) {
			same++
		}
	}
	if same == len(base.Corpus.Disengagements) {
		t.Error("replica 1 is a verbatim copy of replica 0")
	}
}

// A sink error aborts the stream promptly and surfaces verbatim, with all
// worker goroutines unwound (no deadlock, no leaked send).
func TestStreamSinkErrorAborts(t *testing.T) {
	boom := errors.New("sink full")
	n := 0
	err := GenerateStream(Config{Seed: 3}, 4, Sink{
		Disengagement: func(schema.Disengagement, ontology.Tag) error {
			n++
			if n > 100 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n > 101 {
		t.Errorf("sink called %d times after erroring", n)
	}
}

// streamFleets sizes the bounded-memory corpus: 90 replicas of the 1.1M-
// mile calibrated roster is 100M+ miles — the tentpole scale, comfortably
// past the 10M-mile acceptance floor.
const streamFleets = 90

// streamBudgetBytes bounds the peak heap growth of the 100M-mile streaming
// run below. The materialized corpus at this scale retains several times
// this budget (pinned by TestStreamBudgetBelowMaterializedSize), so the
// bound genuinely pins streaming, not just a small corpus.
const streamBudgetBytes = 48 << 20

// The headline bounded-memory criterion: a 100M+ mile corpus (90 fleet
// replicas of the 1.1M-mile calibrated roster) streams through a counting
// sink while peak heap growth stays under streamBudgetBytes.
func TestStreamBoundedMemory100M(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-fleet generation in -short mode")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var (
		miles   float64
		records int
		events  int
		peak    uint64
	)
	sample := func() {
		records++
		if records%65536 == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	cfg := Config{Seed: 1, Fleets: streamFleets}
	err := GenerateStream(cfg, 4, Sink{
		Mileage: func(m schema.MonthlyMileage) error {
			miles += m.Miles
			sample()
			return nil
		},
		Disengagement: func(schema.Disengagement, ontology.Tag) error {
			events++
			sample()
			return nil
		},
		Accident: func(schema.Accident) error { sample(); return nil },
		Fleet:    func(schema.Fleet) error { sample(); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if miles < 100e6 {
		t.Errorf("streamed %.0f miles, want >= 100M", miles)
	}
	if want := streamFleets * calib.TotalDisengagements; events != want {
		t.Errorf("streamed %d events, want %d", events, want)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	growth := int64(peak) - int64(before.HeapAlloc)
	t.Logf("100M-mile stream: %d records, %.0f miles, peak heap growth %.1f MB (budget %d MB)",
		records, miles, float64(growth)/(1<<20), streamBudgetBytes>>20)
	if growth > streamBudgetBytes {
		t.Errorf("peak heap growth %d bytes exceeds the %d byte budget", growth, streamBudgetBytes)
	}
}

// For contrast with the budget above (and to keep the constant honest as
// the schema grows), materializing the same corpus must retain more than
// the streaming budget — otherwise the bounded-memory test proves nothing.
func TestStreamBudgetBelowMaterializedSize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-fleet generation in -short mode")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	tr := collect(t, Config{Seed: 1, Fleets: streamFleets}, 4)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	retained := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("materialized 100M-mile corpus: %d mileage rows, %d events, retained %.1f MB",
		len(tr.Corpus.Mileage), len(tr.Corpus.Disengagements), float64(retained)/(1<<20))
	if retained < streamBudgetBytes {
		t.Errorf("materialized corpus retains %.1f MB, below the %d MB streaming budget — tighten streamBudgetBytes",
			float64(retained)/(1<<20), streamBudgetBytes>>20)
	}
	runtime.KeepAlive(tr)
}
