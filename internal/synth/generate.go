package synth

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"avfda/internal/calib"
	"avfda/internal/ontology"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

// Config parameterizes corpus generation.
type Config struct {
	// Seed drives all randomness; equal seeds give byte-identical corpora.
	Seed int64
	// AlertnessDrift scales how much reaction times grow with cumulative
	// miles driven (the paper's Q4 observation that driver alertness
	// decays as the system improves). Default 0.6; zero disables the
	// effect.
	AlertnessDrift float64
	// CarSpread is the log-stddev of per-car mileage weights (Fig. 4
	// spread). Default 0.5.
	CarSpread float64
	// BadnessSpread is the log-stddev of per-car failure-proneness
	// (drives the per-car DPM quartiles). Default 0.6.
	BadnessSpread float64
	// MileageBadnessCoupling makes high-mileage cars proportionally less
	// failure-prone (badness ~ mileageWeight^-coupling). The paper's
	// Table VII medians sit *above* the fleet-wide rates, which requires
	// exactly this inverse relation. Default 0.7.
	MileageBadnessCoupling float64
	// Scale multiplies every fleet's cars, miles, and disengagement counts
	// (accident counts are left at the calibrated values). Default 1 — the
	// calibrated corpus. Use larger values only for throughput/scaling
	// benchmarks; scaled corpora no longer match Table I.
	Scale int
	// Fleets replicates the whole calibrated manufacturer roster into N
	// independent synthetic fleets, each generated from its own derived
	// seed with fleet-prefixed vehicle IDs (f01-, f02-, ...). Default 1 —
	// the calibrated corpus. Combined with Scale this reaches 100M+ miles
	// while per-fleet working memory stays calibrated-sized, which is what
	// makes the streaming path's bounded-memory guarantee useful. Like
	// Scale, replicated corpora no longer match Table I.
	Fleets int
}

func (c Config) withDefaults() Config {
	if c.AlertnessDrift == 0 {
		c.AlertnessDrift = 0.55
	}
	if c.CarSpread == 0 {
		c.CarSpread = 0.5
	}
	if c.BadnessSpread == 0 {
		c.BadnessSpread = 0.6
	}
	if c.MileageBadnessCoupling == 0 {
		c.MileageBadnessCoupling = 0.7
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Fleets <= 0 {
		c.Fleets = 1
	}
	return c
}

// Truth is a generated corpus together with its ground-truth labels, kept
// so the pipeline's recovered tags can be scored against what was planted.
type Truth struct {
	// Corpus is the normalized ground-truth dataset.
	Corpus schema.Corpus
	// Tags holds the planted fault tag of each disengagement, aligned
	// with Corpus.Disengagements.
	Tags []ontology.Tag
}

// Generate builds the full two-release synthetic corpus calibrated to the
// paper's Table I (exact counts) and distributional targets. It is the
// materialized path: every record is collected into a Truth and the whole
// corpus is validated before return. GenerateStream produces the identical
// record sequence without materializing it.
func Generate(cfg Config) (*Truth, error) {
	cfg = cfg.withDefaults()
	truth := &Truth{}
	if err := generateInto(cfg, truth.sink()); err != nil {
		return nil, err
	}
	if err := truth.Corpus.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated corpus invalid: %w", err)
	}
	return truth, nil
}

// sink returns the materializing Sink that appends every record to t — the
// reference emission order the streaming generator is pinned against.
func (t *Truth) sink() Sink {
	return Sink{
		Fleet: func(f schema.Fleet) error {
			t.Corpus.Fleets = append(t.Corpus.Fleets, f)
			return nil
		},
		Mileage: func(m schema.MonthlyMileage) error {
			t.Corpus.Mileage = append(t.Corpus.Mileage, m)
			return nil
		},
		Disengagement: func(d schema.Disengagement, tag ontology.Tag) error {
			t.Corpus.Disengagements = append(t.Corpus.Disengagements, d)
			t.Tags = append(t.Tags, tag)
			return nil
		},
		Accident: func(a schema.Accident) error {
			t.Corpus.Accidents = append(t.Corpus.Accidents, a)
			return nil
		},
	}
}

// generateInto runs every generation job sequentially, emitting into sink.
func generateInto(cfg Config, sink Sink) error {
	for _, j := range generationJobs(cfg) {
		if err := runJob(cfg, j, sink); err != nil {
			return err
		}
	}
	return nil
}

// genJob is one unit of generation work: a fleet replica of one
// manufacturer-year profile with its derived seed. Jobs are independent —
// each owns its RNG — which is what makes parallel streaming generation
// byte-identical to the sequential path at any worker count.
type genJob struct {
	p    profile
	seed int64
}

// generationJobs expands the configuration into the ordered job list:
// fleet-replica-major, then the stable profile order. Replica 0 keeps the
// exact legacy seed derivation and unprefixed vehicle IDs, so Fleets=1
// output is byte-identical to historical corpora for a given seed.
func generationJobs(cfg Config) []genJob {
	jobs := make([]genJob, 0, cfg.Fleets*20)
	for r := 0; r < cfg.Fleets; r++ {
		for _, p := range profiles() {
			if cfg.Scale > 1 {
				p = scaleProfile(p, cfg.Scale)
			}
			if r > 0 {
				p.vidPrefix = fmt.Sprintf("f%02d-", r)
			}
			jobs = append(jobs, genJob{p: p, seed: replicaSeed(cfg.Seed, r, p.mfr, p.year)})
		}
	}
	return jobs
}

// runJob generates one job's records into sink.
func runJob(cfg Config, j genJob, sink Sink) error {
	rng := rand.New(rand.NewSource(j.seed))
	if err := generateProfile(cfg, j.p, rng, sink); err != nil {
		return fmt.Errorf("synth: %s%s %s: %w", j.p.vidPrefix, j.p.mfr, j.p.year, err)
	}
	return nil
}

// scaleProfile multiplies a fleet's cars, miles, and disengagements for
// throughput benchmarks.
func scaleProfile(p profile, scale int) profile {
	out := p
	out.cars = p.cars * scale
	if out.stats.Miles > 0 {
		out.stats.Miles *= float64(scale)
	}
	if out.stats.Disengagements > 0 {
		out.stats.Disengagements *= scale
	}
	if out.stats.Cars > 0 {
		out.stats.Cars *= scale
	}
	return out
}

// profileSeed derives a stable per-profile seed from the master seed.
func profileSeed(seed int64, m schema.Manufacturer, y schema.ReportYear) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", m, y)
	return seed ^ int64(h.Sum64())
}

// replicaSeed derives the seed for one fleet replica of a profile. Replica
// 0 uses the legacy derivation unchanged so historical corpora stay
// byte-identical; later replicas mix the fleet index into the hash.
func replicaSeed(seed int64, fleet int, m schema.Manufacturer, y schema.ReportYear) int64 {
	if fleet == 0 {
		return profileSeed(seed, m, y)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|f%d", m, y, fleet)
	return seed ^ int64(h.Sum64())
}

// generateProfile emits one manufacturer-year's fleet, mileage,
// disengagements, and accidents into sink, in that per-type order.
func generateProfile(cfg Config, p profile, rng *rand.Rand, sink Sink) error {
	// Fleet row (Cars may be calib.Unreported, preserving Table I dashes).
	if err := sink.emitFleet(schema.Fleet{
		Manufacturer: p.mfr,
		ReportYear:   p.year,
		Cars:         p.stats.Cars,
	}); err != nil {
		return err
	}

	nCars := p.cars
	nMonths := len(p.activeMonths)
	if nCars <= 0 || nMonths == 0 {
		// Accident-only vendors (Uber) still file accident reports.
		return generateAccidents(p, rng, sink, nil, nil)
	}

	// Per-car mileage weights and failure proneness.
	carW := make([]float64, nCars)
	badness := make([]float64, nCars)
	for i := range carW {
		carW[i] = math.Exp(rng.NormFloat64() * cfg.CarSpread)
		badness[i] = math.Exp(rng.NormFloat64()*cfg.BadnessSpread) *
			math.Pow(carW[i], -cfg.MileageBadnessCoupling)
	}
	// Month weights ramp up linearly: testing programs grow over time.
	monthW := make([]float64, nMonths)
	for m := range monthW {
		monthW[m] = 1 + float64(m)/float64(max(nMonths-1, 1))
	}

	// Mileage split: car x month.
	cellW := make([]float64, nCars*nMonths)
	for i := 0; i < nCars; i++ {
		for m := 0; m < nMonths; m++ {
			cellW[i*nMonths+m] = carW[i] * monthW[m]
		}
	}
	totalMiles := p.stats.Miles
	if totalMiles < 0 {
		totalMiles = 0
	}
	cellMiles := splitAmount(totalMiles, cellW)

	// Event allocation: expected events per cell follow miles x per-car
	// badness x calendar-year improvement factor. A multinomial draw (not
	// largest-remainder) keeps the exact Table I total while giving cells
	// Poisson-like dispersion — deterministic apportionment would starve
	// every below-average car and collapse the per-car DPM medians of
	// Fig. 4 to zero.
	nEvents := p.stats.Disengagements
	if nEvents < 0 {
		nEvents = 0
	}
	eventW := make([]float64, nCars*nMonths)
	for i := 0; i < nCars; i++ {
		for m := 0; m < nMonths; m++ {
			yf := yearFactor(p.mfr, p.activeMonths[m].Year())
			eventW[i*nMonths+m] = cellMiles[i*nMonths+m] * badness[i] * yf
		}
	}
	cellEvents := multinomial(nEvents, eventW, rng)

	// Cumulative-mileage fractions per month for the alertness drift.
	// Progress is global across BOTH report years (a driver's exposure to
	// the program, not to one filing period), so the Q4 reaction-time
	// correlation spans the full study window.
	monthMiles := make([]float64, nMonths)
	for m := 0; m < nMonths; m++ {
		for i := 0; i < nCars; i++ {
			monthMiles[m] += cellMiles[i*nMonths+m]
		}
	}
	prevMiles, allMiles := programMiles(p.mfr, p.year)
	cumFrac := make([]float64, nMonths)
	acc := prevMiles
	for m := 0; m < nMonths; m++ {
		acc += monthMiles[m]
		if allMiles > 0 {
			cumFrac[m] = acc / allMiles
		}
	}

	// Emit mileage records and events. Category and modality decks are
	// apportioned by largest remainder so the Table IV/V percentages are
	// reproduced exactly up to rounding, then shuffled over events.
	var reaction *stats.Weibull
	if p.reaction != nil {
		reaction = &stats.Weibull{K: p.reaction.Shape, Lambda: p.reaction.Scale}
	}
	var events []schema.Disengagement
	var tags []ontology.Tag
	catDeck := buildCategoryDeck(nEvents, p.category, rng)
	modDeck := buildModalityDeck(nEvents, p.modality, rng)
	next := 0
	for i := 0; i < nCars; i++ {
		vid := p.vehicleID(i)
		for m := 0; m < nMonths; m++ {
			month := p.activeMonths[m]
			if err := sink.emitMileage(schema.MonthlyMileage{
				Manufacturer: p.mfr,
				Vehicle:      vid,
				ReportYear:   p.year,
				Month:        month,
				Miles:        cellMiles[i*nMonths+m],
			}); err != nil {
				return err
			}
			for e := 0; e < cellEvents[i*nMonths+m]; e++ {
				tag := tagForCategory(catDeck[next], rng)
				ev := synthesizeEvent(cfg, p, rng, vid, month, tag, modDeck[next], reaction, cumFrac[m])
				events = append(events, ev)
				tags = append(tags, tag)
				next++
			}
		}
	}

	// Volkswagen's famous ~4 hour reaction-time outlier (paper §V-A4).
	if p.mfr == schema.Volkswagen && len(events) > 0 {
		events[rng.Intn(len(events))].ReactionSeconds = calib.VWOutlierSeconds
	}

	// Deterministic ordering: by time, then vehicle. Sorting needs the
	// profile's events materialized, so streaming memory is bounded by the
	// largest single profile, never the whole corpus.
	type evTag struct {
		ev  schema.Disengagement
		tag ontology.Tag
	}
	pairs := make([]evTag, len(events))
	for i := range events {
		pairs[i] = evTag{events[i], tags[i]}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		if !pairs[a].ev.Time.Equal(pairs[b].ev.Time) {
			return pairs[a].ev.Time.Before(pairs[b].ev.Time)
		}
		return pairs[a].ev.Vehicle < pairs[b].ev.Vehicle
	})
	for _, pr := range pairs {
		if err := sink.emitDisengagement(pr.ev, pr.tag); err != nil {
			return err
		}
	}

	// Accident exposure scales with vehicle mileage: cars that drive more
	// have more collisions, producing the paper's strong positive per-
	// vehicle accidents-vs-miles correlation (§V-B).
	vehicles := make([]schema.VehicleID, nCars)
	carMiles := make([]float64, nCars)
	for i := 0; i < nCars; i++ {
		vehicles[i] = p.vehicleID(i)
		for m := 0; m < nMonths; m++ {
			carMiles[i] += cellMiles[i*nMonths+m]
		}
	}
	return generateAccidents(p, rng, sink, vehicles, carMiles)
}

// programMiles returns the manufacturer's miles in earlier report years and
// its total across all years, from the Table I calibration.
func programMiles(m schema.Manufacturer, y schema.ReportYear) (prev, total float64) {
	for _, yr := range schema.ReportYears() {
		st, ok := calib.TableI[m][yr]
		if !ok || st.Miles <= 0 {
			continue
		}
		total += st.Miles
		if yr < y {
			prev += st.Miles
		}
	}
	return prev, total
}

// buildModalityDeck apportions n events across modalities by largest
// remainder and shuffles.
func buildModalityDeck(n int, m calib.ModalityPct, rng *rand.Rand) []schema.Modality {
	weights := []float64{m.AutomaticPct, m.ManualPct, m.PlannedPct}
	if weights[0]+weights[1]+weights[2] <= 0 {
		// Unlisted manufacturers (Ford, BMW) default to automatic.
		weights = []float64{100, 0, 0}
	}
	counts := largestRemainder(n, weights)
	deck := make([]schema.Modality, 0, n)
	kinds := []schema.Modality{schema.ModalityAutomatic, schema.ModalityManual, schema.ModalityPlanned}
	for k, c := range counts {
		for i := 0; i < c; i++ {
			deck = append(deck, kinds[k])
		}
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// synthesizeEvent draws one disengagement event.
func synthesizeEvent(cfg Config, p profile, rng *rand.Rand, vid schema.VehicleID,
	month time.Time, tag ontology.Tag, modality schema.Modality,
	reaction *stats.Weibull, progress float64,
) schema.Disengagement {
	ev := schema.Disengagement{
		Manufacturer:    p.mfr,
		Vehicle:         vid,
		ReportYear:      p.year,
		Time:            randomInstantInMonth(month, rng),
		Cause:           causeFor(tag, rng),
		Modality:        modality,
		Road:            drawRoad(rng),
		Weather:         drawWeather(rng),
		ReactionSeconds: -1,
	}
	if reaction != nil {
		// Drift is centered on 1 so alertness decay (positive correlation
		// of reaction time with cumulative miles, paper Q4) does not move
		// the fleet-wide mean off the calibrated 0.85 s.
		drift := 1 + cfg.AlertnessDrift*(progress-0.5)
		if drift < 0.1 {
			drift = 0.1
		}
		ev.ReactionSeconds = reaction.Rand(rng) * drift
	}
	return ev
}

// yearFactor returns the calendar-year DPM multiplier for a manufacturer,
// defaulting to 1 for unlisted years.
func yearFactor(m schema.Manufacturer, year int) float64 {
	if f, ok := calib.YearDPMFactor[m][year]; ok {
		return f
	}
	return 1
}

// randomInstantInMonth picks a uniformly random second within the calendar
// month, biased into daytime testing hours (07:00–19:00 local).
func randomInstantInMonth(month time.Time, rng *rand.Rand) time.Time {
	next := month.AddDate(0, 1, 0)
	days := int(next.Sub(month).Hours() / 24)
	day := rng.Intn(days)
	hour := 7 + rng.Intn(12)
	minute := rng.Intn(60)
	second := rng.Intn(60)
	return month.AddDate(0, 0, day).
		Add(time.Duration(hour)*time.Hour +
			time.Duration(minute)*time.Minute +
			time.Duration(second)*time.Second)
}

// drawRoad samples a road type from the paper's §III-C road mix.
func drawRoad(rng *rand.Rand) schema.RoadType {
	u := rng.Float64()
	var acc float64
	for _, rt := range []schema.RoadType{
		schema.RoadCityStreet, schema.RoadHighway, schema.RoadInterstate,
		schema.RoadFreeway, schema.RoadParkingLot, schema.RoadSuburban,
		schema.RoadRural,
	} {
		acc += calib.RoadMix[rt]
		if u < acc {
			return rt
		}
	}
	return schema.RoadCityStreet
}

// drawWeather samples test-day weather (California-weighted).
func drawWeather(rng *rand.Rand) schema.Weather {
	u := rng.Float64()
	switch {
	case u < 0.70:
		return schema.WeatherSunny
	case u < 0.88:
		return schema.WeatherCloudy
	case u < 0.97:
		return schema.WeatherRaining
	default:
		return schema.WeatherFoggy
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
