package synth

import (
	"math/rand"
	"time"

	"avfda/internal/calib"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

// accidentLocations are intersection-adjacent urban locations in the AV
// testing areas; the paper observes that all reported accidents occurred at
// low speed near intersections on urban streets.
var accidentLocations = []string{
	"El Camino Real & Clark Av, Mountain View, CA",
	"South Shoreline Blvd & Highschool Way, Mountain View, CA",
	"Castro St & W El Camino Real, Mountain View, CA",
	"Valencia St & 16th St, San Francisco, CA",
	"Harrison St & 8th St, San Francisco, CA",
	"1st St & Santa Clara St, San Jose, CA",
	"Middlefield Rd & Moffett Blvd, Mountain View, CA",
	"Folsom St & 5th St, San Francisco, CA",
}

// accidentNarratives are human-written incident descriptions. Most are the
// minor rear-end and side-swipe collisions the paper reports.
var accidentNarratives = []string{
	"The AV was stopped at a red light when it was struck from behind by a conventional vehicle. Minor bumper damage, no injuries.",
	"While yielding to a pedestrian in the crosswalk, the AV braked and the following vehicle made contact with its rear bumper at low speed.",
	"The AV was proceeding through the intersection when another vehicle changing lanes side-swiped its left rear panel.",
	"The AV had signaled and begun a right turn when a vehicle in the adjacent lane moved into its path, causing a minor side-swipe.",
	"The AV was creeping forward to gain visibility at the intersection; the driver behind anticipated a departure and made rear contact.",
	"A vehicle backing out of a driveway contacted the stationary AV's front quarter panel at parking-lot speed.",
	"The AV slowed for cross traffic; the following driver, looking away, failed to stop in time and rear-ended the AV.",
	"During a lane change the AV aborted the maneuver for a fast-approaching vehicle and was clipped on the rear corner.",
}

// caseStudyAccidents encodes the paper's two §II case-study collisions,
// both Waymo vehicles in Mountain View within the 2015-2016 reporting
// window. vidPrefix keeps replica fleets' vehicles distinct.
func caseStudyAccidents(vidPrefix string) []schema.Accident {
	return []schema.Accident{
		{
			Manufacturer: schema.Waymo,
			Vehicle:      schema.VehicleID(vidPrefix + "Waymo-1-car01"),
			ReportYear:   schema.Report2016,
			Time:         time.Date(2015, time.October, 8, 15, 40, 0, 0, time.UTC),
			Location:     "South Shoreline Blvd & Highschool Way, Mountain View, CA",
			Narrative: "The AV in autonomous mode decided to yield to a pedestrian " +
				"crossing at the intersection but did not stop. The test driver " +
				"proactively took control as a precaution. A vehicle ahead was " +
				"also yielding and a vehicle to the rear in the adjacent lane was " +
				"changing lanes; the driver could only brake, and the rear vehicle " +
				"collided with the back of the AV. Disengagement logged as " +
				"incorrect behavior prediction.",
			AVSpeedMPH:       4,
			OtherSpeedMPH:    10,
			InAutonomousMode: false, // driver had taken over moments before impact
		},
		{
			Manufacturer: schema.Waymo,
			Vehicle:      schema.VehicleID(vidPrefix + "Waymo-1-car02"),
			ReportYear:   schema.Report2016,
			Time:         time.Date(2015, time.August, 20, 11, 5, 0, 0, time.UTC),
			Location:     "El Camino Real & Clark Av, Mountain View, CA",
			Narrative: "The AV in autonomous mode signaled a right turn, decelerated, " +
				"and came to a complete stop, then moved toward the intersection to " +
				"let the recognition system analyze cross traffic. The driver of the " +
				"rear vehicle interpreted the movement as the AV continuing its turn, " +
				"started moving, and collided with the rear of the AV. Disengagement " +
				"logged as: disengage for a recklessly behaving road user.",
			AVSpeedMPH:       1,
			OtherSpeedMPH:    5,
			InAutonomousMode: true,
		},
	}
}

// generateAccidents emits p's accident reports into sink. Waymo's
// 2015-2016 release includes the two case-study collisions first; remaining
// accidents are drawn from the narrative/location pools with exponential
// collision speeds (Fig. 12). Vehicles are assigned in proportion to their
// mileage weights so accident exposure tracks miles driven.
func generateAccidents(p profile, rng *rand.Rand, sink Sink,
	vehicles []schema.VehicleID, mileWeights []float64,
) error {
	n := accidentAllocation(p.mfr, p.year)
	if n == 0 {
		return nil
	}
	var out []schema.Accident
	if p.mfr == schema.Waymo && p.year == schema.Report2016 {
		cs := caseStudyAccidents(p.vidPrefix)
		out = append(out, cs...)
		n -= len(cs)
	}
	avSpeed := stats.Exponential{Lambda: 1 / calib.AVSpeedMean}
	relSpeed := stats.Exponential{Lambda: 1 / calib.RelSpeedMean}
	first, last := reportWindow(p.year)
	months := monthsBetween(first, last)
	for i := 0; i < n; i++ {
		month := months[rng.Intn(len(months))]
		av := clamp(avSpeed.Rand(rng), 0, 30)
		rel := relSpeed.Rand(rng)
		other := av + rel
		if rng.Float64() >= calib.FasterOtherShare {
			other = av - rel
		}
		a := schema.Accident{
			Manufacturer:     p.mfr,
			ReportYear:       p.year,
			Time:             randomInstantInMonth(month, rng),
			Location:         accidentLocations[rng.Intn(len(accidentLocations))],
			Narrative:        accidentNarratives[rng.Intn(len(accidentNarratives))],
			AVSpeedMPH:       av,
			OtherSpeedMPH:    clamp(other, 0, 40),
			InAutonomousMode: rng.Float64() < 0.8,
		}
		// The DMV redacted vehicle identification on a subset of reports
		// (paper §V-B), preventing per-vehicle APM computation. GM
		// Cruise's filings are modeled fully redacted.
		redactP := 0.3
		if p.mfr == schema.GMCruise {
			redactP = 1
		}
		if rng.Float64() < redactP || len(vehicles) == 0 {
			a.Redacted = true
		} else {
			a.Vehicle = vehicles[drawIndexWeighted(mileWeights, rng)]
		}
		out = append(out, a)
	}
	for _, a := range out {
		if err := sink.emitAccident(a); err != nil {
			return err
		}
	}
	return nil
}

// drawIndexWeighted samples an index proportionally to weights, falling
// back to uniform when weights are degenerate.
func drawIndexWeighted(weights []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
