// Package synth generates the synthetic AV field-data corpus that stands in
// for the proprietary CA DMV scans (see DESIGN.md §3).
//
// Generation is calibrated against every aggregate the paper publishes
// (package calib): per-manufacturer fleet sizes, autonomous miles,
// disengagement and accident counts are matched exactly; fault-category
// mixes, modalities, reaction-time distributions, temporal DPM trends, and
// accident speeds are matched in distribution. Event counts are allocated
// with largest-remainder rounding so totals are exact while attribute
// sampling stays random (seeded, deterministic).
package synth

import (
	"fmt"
	"time"

	"avfda/internal/calib"
	"avfda/internal/schema"
)

// reportWindow returns the month range [first, last] covered by a DMV
// report year. The 2015–2016 release spans the program start (September
// 2014) through November 2015; the 2016–2017 release spans December 2015
// through November 2016.
func reportWindow(y schema.ReportYear) (first, last time.Time) {
	switch y {
	case schema.Report2016:
		return monthOf(2014, time.September), monthOf(2015, time.November)
	default:
		return monthOf(2015, time.December), monthOf(2016, time.November)
	}
}

// monthOf returns the first instant of a calendar month, UTC.
func monthOf(year int, m time.Month) time.Time {
	return time.Date(year, m, 1, 0, 0, 0, 0, time.UTC)
}

// monthsBetween lists month starts from first to last inclusive.
func monthsBetween(first, last time.Time) []time.Time {
	var out []time.Time
	for m := first; !m.After(last); m = m.AddDate(0, 1, 0) {
		out = append(out, m)
	}
	return out
}

// profile carries everything needed to generate one manufacturer's data in
// one report year.
type profile struct {
	mfr   schema.Manufacturer
	year  schema.ReportYear
	stats calib.FleetStats
	// cars is the modeled vehicle count (Table I value, or the synth
	// substitute when the report shows a dash).
	cars int
	// activeMonths is the subset of the report window in which this
	// manufacturer tested.
	activeMonths []time.Time
	// category is the fault-category mix target.
	category calib.CategoryPct
	// modality is the disengagement modality mix target.
	modality calib.ModalityPct
	// reaction is the reaction-time distribution; nil when the vendor
	// does not report reaction times.
	reaction *calib.WeibullParams
	// accidents to generate for this vendor-year.
	accidents int
	// vidPrefix distinguishes fleet replicas (Config.Fleets): "" for the
	// calibrated fleet, "f01-" etc. for replicas, keeping vehicle IDs
	// unique across the whole multi-fleet corpus.
	vidPrefix string
}

// vehicleID names the i-th (zero-based) car of this profile's fleet.
func (p profile) vehicleID(i int) schema.VehicleID {
	return schema.VehicleID(fmt.Sprintf("%s%s-%d-car%02d", p.vidPrefix, p.mfr, int(p.year), i+1))
}

// activityWindow returns the months a manufacturer was actually testing in
// a report year. Most tested through the whole window; late entrants
// (Tesla, Ford, BMW, GM Cruise in year one) have shorter spans, mirroring
// the miles they reported.
func activityWindow(m schema.Manufacturer, y schema.ReportYear) []time.Time {
	first, last := reportWindow(y)
	switch {
	case m == schema.GMCruise && y == schema.Report2016:
		first = monthOf(2015, time.June)
	case m == schema.Tesla && y == schema.Report2017:
		first = monthOf(2016, time.October)
	case m == schema.Ford && y == schema.Report2017:
		first = monthOf(2016, time.October)
	case m == schema.BMW && y == schema.Report2017:
		first = monthOf(2016, time.April)
		last = monthOf(2016, time.April)
	}
	return monthsBetween(first, last)
}

// profiles builds the generation profile list for every manufacturer-year
// with reported activity (Table I), in stable order.
func profiles() []profile {
	var out []profile
	for _, m := range schema.AllManufacturers() {
		for _, y := range schema.ReportYears() {
			st, ok := calib.TableI[m][y]
			if !ok || !st.Reported() {
				continue
			}
			p := profile{
				mfr:          m,
				year:         y,
				stats:        st,
				cars:         calib.CarCountForSynth(m, y),
				activeMonths: activityWindow(m, y),
				category:     calib.SynthCategory[m],
				modality:     calib.TableV[m],
			}
			if w, ok := calib.ReactionDist[m]; ok {
				wc := w
				p.reaction = &wc
			}
			out = append(out, p)
		}
	}
	return out
}

// accidentAllocation returns the number of accidents to generate per
// manufacturer-year, from Table I's accident column (Uber's single
// accident-only report included).
func accidentAllocation(m schema.Manufacturer, y schema.ReportYear) int {
	st, ok := calib.TableI[m][y]
	if !ok || st.Accidents == calib.Unreported {
		return 0
	}
	return st.Accidents
}
