package synth

import (
	"math/rand"
	"sort"
)

// largestRemainder apportions total integer units across buckets in
// proportion to weights, with the classic largest-remainder (Hamilton)
// method: floors first, then one extra unit to the buckets with the biggest
// fractional parts. The result always sums exactly to total. Zero or
// negative weights receive nothing unless every weight is non-positive, in
// which case units are spread evenly from the front.
func largestRemainder(total int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	if total <= 0 || n == 0 {
		return out
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		for i := 0; i < total; i++ {
			out[i%n]++
		}
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, n)
	assigned := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / sum
		fl := int(exact)
		out[i] = fl
		assigned += fl
		fracs = append(fracs, frac{idx: i, rem: exact - float64(fl)})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx // deterministic tie-break
	})
	for i := 0; assigned < total && len(fracs) > 0; i++ {
		out[fracs[i%len(fracs)].idx]++
		assigned++
	}
	return out
}

// multinomial draws total units into buckets with probabilities
// proportional to weights: each unit lands independently, so bucket counts
// have the natural (Poisson-like) dispersion while the total stays exact.
// Degenerate weights fall back to even spreading.
func multinomial(total int, weights []float64, rng *rand.Rand) []int {
	n := len(weights)
	out := make([]int, n)
	if total <= 0 || n == 0 {
		return out
	}
	prefix := make([]float64, n)
	var sum float64
	for i, w := range weights {
		if w > 0 {
			sum += w
		}
		prefix[i] = sum
	}
	if sum <= 0 {
		for i := 0; i < total; i++ {
			out[i%n]++
		}
		return out
	}
	for d := 0; d < total; d++ {
		u := rng.Float64() * sum
		idx := sort.SearchFloat64s(prefix, u)
		if idx >= n {
			idx = n - 1
		}
		// Skip zero-weight buckets the search may land on (their prefix
		// equals the previous bucket's).
		for idx < n-1 && weights[idx] <= 0 {
			idx++
		}
		out[idx]++
	}
	return out
}

// splitAmount divides a float total across buckets proportionally to
// weights (no rounding; the pieces sum to total up to float error, with the
// residual folded into the largest bucket for exactness).
func splitAmount(total float64, weights []float64) []float64 {
	n := len(weights)
	out := make([]float64, n)
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 || n == 0 {
		if n > 0 {
			out[0] = total
		}
		return out
	}
	var acc float64
	maxIdx := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		out[i] = total * w / sum
		acc += out[i]
		if out[i] > out[maxIdx] {
			maxIdx = i
		}
	}
	out[maxIdx] += total - acc
	return out
}
