package synth

import (
	"testing"

	"avfda/internal/nlp"
	"avfda/internal/ontology"
)

// The synthetic cause templates and the NLP seed dictionary must stay
// consistent: every Unknown-T template must classify to Unknown-T (no
// accidental stem overlap with a tag's keywords), and every tagged
// template must classify at least to the correct category, with a strong
// majority recovering the exact tag. These pins keep Table IV reproducible
// end to end.

func TestUnknownTemplatesStayUnknown(t *testing.T) {
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range causeTemplates[ontology.TagUnknownT] {
		res := cls.Classify(text)
		if res.Tag != ontology.TagUnknownT {
			t.Errorf("Unknown template %q classified as %s (matched %v)", text, res.Tag, res.Matched)
		}
	}
}

func TestTaggedTemplatesRecoverTag(t *testing.T) {
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var total, tagHit, catHit int
	for tag, texts := range causeTemplates {
		if tag == ontology.TagUnknownT {
			continue
		}
		for _, text := range texts {
			res := cls.Classify(text)
			total++
			if res.Tag == tag {
				tagHit++
			}
			if res.Category == ontology.CategoryOf(tag) {
				catHit++
			} else {
				t.Errorf("template %q (tag %s): category %s, want %s (got tag %s, matched %v)",
					text, tag, res.Category, ontology.CategoryOf(tag), res.Tag, res.Matched)
			}
		}
	}
	if float64(tagHit) < 0.9*float64(total) {
		t.Errorf("only %d/%d templates recover their exact tag", tagHit, total)
	}
}
