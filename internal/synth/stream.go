package synth

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// Sink receives generated records as they are produced. Callbacks are
// optional — a nil callback discards that record type — and are always
// invoked from the caller's goroutine, one at a time, in the exact order
// the materialized path appends records of that type. A callback returning
// an error aborts generation; the error is returned from GenerateStream.
type Sink struct {
	Fleet         func(schema.Fleet) error
	Mileage       func(schema.MonthlyMileage) error
	Disengagement func(schema.Disengagement, ontology.Tag) error
	Accident      func(schema.Accident) error
}

func (s Sink) emitFleet(f schema.Fleet) error {
	if s.Fleet == nil {
		return nil
	}
	return s.Fleet(f)
}

func (s Sink) emitMileage(m schema.MonthlyMileage) error {
	if s.Mileage == nil {
		return nil
	}
	return s.Mileage(m)
}

func (s Sink) emitDisengagement(d schema.Disengagement, tag ontology.Tag) error {
	if s.Disengagement == nil {
		return nil
	}
	return s.Disengagement(d, tag)
}

func (s Sink) emitAccident(a schema.Accident) error {
	if s.Accident == nil {
		return nil
	}
	return s.Accident(a)
}

// streamChunkSize is the record count at which a worker flushes its buffer
// to the sequencer. Together with streamChunkDepth it bounds streaming
// memory to O(workers x chunk) beyond the per-profile working state.
const streamChunkSize = 2048

// streamChunkDepth is each job's channel capacity in chunks. Workers that
// run ahead of the consumer block here — backpressure, not buffering.
const streamChunkDepth = 2

// errStreamCanceled is the internal signal workers see when the consumer
// stopped early (sink error); it never escapes GenerateStream.
var errStreamCanceled = errors.New("synth: stream canceled")

// chunk is one bounded batch of generated records in emission order. Each
// record type keeps its own slice because corpus ordering is per-type: the
// concatenation of every chunk's per-type slice, in chunk order, equals the
// materialized path's per-type append order exactly.
type chunk struct {
	fleets    []schema.Fleet
	mileage   []schema.MonthlyMileage
	events    []schema.Disengagement
	tags      []ontology.Tag
	accidents []schema.Accident
}

func (c *chunk) len() int {
	return len(c.fleets) + len(c.mileage) + len(c.events) + len(c.accidents)
}

// replay forwards the chunk's records to sink, per-type in emission order.
func (c *chunk) replay(sink Sink) error {
	for _, f := range c.fleets {
		if err := sink.emitFleet(f); err != nil {
			return err
		}
	}
	for _, m := range c.mileage {
		if err := sink.emitMileage(m); err != nil {
			return err
		}
	}
	for i, d := range c.events {
		if err := sink.emitDisengagement(d, c.tags[i]); err != nil {
			return err
		}
	}
	for _, a := range c.accidents {
		if err := sink.emitAccident(a); err != nil {
			return err
		}
	}
	return nil
}

// chunkSink batches one job's records into bounded chunks and ships them to
// the sequencer over the job's channel, blocking (backpressure) when the
// consumer has not caught up. done aborts a blocked send on early exit.
type chunkSink struct {
	buf  chunk
	ch   chan *chunk
	done <-chan struct{}
}

func (cs *chunkSink) send() error {
	if cs.buf.len() == 0 {
		return nil
	}
	out := cs.buf
	cs.buf = chunk{}
	select {
	case cs.ch <- &out:
		return nil
	case <-cs.done:
		return errStreamCanceled
	}
}

// maybeFlush ships the buffer once it reaches the chunk size.
func (cs *chunkSink) maybeFlush() error {
	if cs.buf.len() >= streamChunkSize {
		return cs.send()
	}
	return nil
}

// sink adapts the chunkSink to the Sink callback surface.
func (cs *chunkSink) sink() Sink {
	return Sink{
		Fleet: func(f schema.Fleet) error {
			cs.buf.fleets = append(cs.buf.fleets, f)
			return cs.maybeFlush()
		},
		Mileage: func(m schema.MonthlyMileage) error {
			cs.buf.mileage = append(cs.buf.mileage, m)
			return cs.maybeFlush()
		},
		Disengagement: func(d schema.Disengagement, tag ontology.Tag) error {
			cs.buf.events = append(cs.buf.events, d)
			cs.buf.tags = append(cs.buf.tags, tag)
			return cs.maybeFlush()
		},
		Accident: func(a schema.Accident) error {
			cs.buf.accidents = append(cs.buf.accidents, a)
			return cs.maybeFlush()
		},
	}
}

// GenerateStream produces the same record sequence as Generate for the same
// Config — byte-identical at any worker count — without materializing the
// corpus: records flow to sink in bounded chunks as generation proceeds, so
// peak memory is O(workers x largest profile), not O(corpus). Generation
// jobs (fleet replica x manufacturer-year) run on `workers` goroutines
// (<=0 means GOMAXPROCS); a sequencer forwards each job's chunks to sink in
// the sequential job order, so sink callbacks never run concurrently.
//
// Unlike Generate, no whole-corpus Validate pass runs — the corpus is never
// in memory to validate. The record stream is the same one Generate
// validates, pinned by the equivalence test.
func GenerateStream(cfg Config, workers int, sink Sink) error {
	cfg = cfg.withDefaults()
	jobs := generationJobs(cfg)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		return generateInto(cfg, sink)
	}

	// Per-job chunk channels plus a per-job terminal error, published
	// before the channel closes and read only after it is drained.
	chans := make([]chan *chunk, len(jobs))
	errs := make([]error, len(jobs))
	for i := range chans {
		chans[i] = make(chan *chunk, streamChunkDepth)
	}
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	// Every job index is claimed exactly once and its channel closed
	// exactly once — even after cancellation, when claimed jobs are
	// skipped — so the sequencer's drain below can never block forever.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				select {
				case <-done: // consumer gave up: close without generating
					close(chans[i])
					continue
				default:
				}
				cs := &chunkSink{ch: chans[i], done: done}
				err := runJob(cfg, jobs[i], cs.sink())
				if err == nil {
					err = cs.send() // flush the tail chunk
				}
				if err != nil && !errors.Is(err, errStreamCanceled) {
					errs[i] = err
				}
				close(chans[i])
			}
		}()
	}

	// Sequencer: drain jobs in order, forwarding chunks to the caller's
	// sink. On any error, close done so blocked workers abort, drain the
	// remaining channels so no worker stays parked on a send, then wait.
	var firstErr error
	for i := range jobs {
		if firstErr == nil {
			for c := range chans[i] {
				if err := c.replay(sink); err != nil {
					firstErr = err
					close(done)
					break
				}
			}
			if firstErr == nil && errs[i] != nil {
				firstErr = errs[i]
				close(done)
			}
		}
		// Drain whatever is left (no-op for fully consumed channels).
		for range chans[i] {
		}
	}
	wg.Wait()
	return firstErr
}
