package synth

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"avfda/internal/calib"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// genOnce caches one generated corpus across tests in this package.
var genCache *Truth

func generated(t *testing.T) *Truth {
	t.Helper()
	if genCache == nil {
		tr, err := Generate(Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		genCache = tr
	}
	return genCache
}

func TestGenerateMatchesTableICounts(t *testing.T) {
	tr := generated(t)
	// Per manufacturer-year disengagement counts are exact.
	counts := make(map[schema.Manufacturer]map[schema.ReportYear]int)
	for _, d := range tr.Corpus.Disengagements {
		if counts[d.Manufacturer] == nil {
			counts[d.Manufacturer] = make(map[schema.ReportYear]int)
		}
		counts[d.Manufacturer][d.ReportYear]++
	}
	for m, years := range calib.TableI {
		for y, st := range years {
			if st.Disengagements <= 0 {
				continue
			}
			if got := counts[m][y]; got != st.Disengagements {
				t.Errorf("%s %s: %d disengagements, want %d", m, y, got, st.Disengagements)
			}
		}
	}
	if got := len(tr.Corpus.Disengagements); got != calib.TotalDisengagements {
		t.Errorf("total disengagements = %d, want %d", got, calib.TotalDisengagements)
	}
	if got := len(tr.Tags); got != len(tr.Corpus.Disengagements) {
		t.Errorf("tags length %d != disengagements %d", got, len(tr.Corpus.Disengagements))
	}
}

func TestGenerateMatchesMiles(t *testing.T) {
	tr := generated(t)
	miles := make(map[schema.Manufacturer]map[schema.ReportYear]float64)
	for _, m := range tr.Corpus.Mileage {
		if miles[m.Manufacturer] == nil {
			miles[m.Manufacturer] = make(map[schema.ReportYear]float64)
		}
		miles[m.Manufacturer][m.ReportYear] += m.Miles
	}
	for m, years := range calib.TableI {
		for y, st := range years {
			if st.Miles <= 0 {
				continue
			}
			got := miles[m][y]
			if math.Abs(got-st.Miles) > 1e-6*st.Miles+1e-9 {
				t.Errorf("%s %s: %.3f miles, want %.3f", m, y, got, st.Miles)
			}
		}
	}
	total := tr.Corpus.TotalMiles()
	if math.Abs(total-calib.TotalMiles) > 1 {
		t.Errorf("total miles = %.1f, want ~%.1f", total, calib.TotalMiles)
	}
}

func TestGenerateAccidentCounts(t *testing.T) {
	tr := generated(t)
	if got := len(tr.Corpus.Accidents); got != calib.TotalAccidents {
		t.Fatalf("accidents = %d, want %d", got, calib.TotalAccidents)
	}
	byMfr := tr.Corpus.AccidentsBy()
	for m, row := range calib.TableVI {
		if got := byMfr[m]; got != row.Accidents {
			t.Errorf("%s accidents = %d, want %d", m, got, row.Accidents)
		}
	}
}

func TestGenerateCaseStudiesPresent(t *testing.T) {
	tr := generated(t)
	var creep, yield bool
	for _, a := range tr.Corpus.Accidents {
		if strings.Contains(a.Narrative, "recklessly behaving road user") {
			creep = true
		}
		if strings.Contains(a.Narrative, "incorrect behavior prediction") {
			yield = true
		}
	}
	if !creep || !yield {
		t.Errorf("case studies missing: creep=%v yield=%v", creep, yield)
	}
}

func TestGenerateCategoryMix(t *testing.T) {
	tr := generated(t)
	// Per-manufacturer category percentages should land near Table IV.
	type catCount struct{ perc, plan, sys, unk, total float64 }
	agg := make(map[schema.Manufacturer]*catCount)
	for i, d := range tr.Corpus.Disengagements {
		c := agg[d.Manufacturer]
		if c == nil {
			c = &catCount{}
			agg[d.Manufacturer] = c
		}
		c.total++
		tag := tr.Tags[i]
		switch ontology.CategoryOf(tag) {
		case ontology.CategoryMLDesign:
			if p, _ := ontology.MLSubclass(tag); p {
				c.perc++
			} else {
				c.plan++
			}
		case ontology.CategorySystem:
			c.sys++
		default:
			c.unk++
		}
	}
	const tolPP = 6.0 // percentage points
	for m, want := range calib.TableIV {
		got := agg[m]
		if got == nil || got.total == 0 {
			t.Errorf("%s: no events", m)
			continue
		}
		checks := []struct {
			name      string
			got, want float64
		}{
			{"perception", 100 * got.perc / got.total, want.PerceptionPct},
			{"planner", 100 * got.plan / got.total, want.PlannerPct},
			{"system", 100 * got.sys / got.total, want.SystemPct},
			{"unknown", 100 * got.unk / got.total, want.UnknownPct},
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > tolPP {
				t.Errorf("%s %s = %.1f%%, want %.1f%% (±%g)", m, c.name, c.got, c.want, tolPP)
			}
		}
	}
	// Headline: ML/Design share across the whole corpus ~64%.
	var ml, total float64
	for _, tag := range tr.Tags {
		total++
		if ontology.CategoryOf(tag) == ontology.CategoryMLDesign {
			ml++
		}
	}
	share := ml / total
	if math.Abs(share-calib.MLDesignShare) > 0.05 {
		t.Errorf("ML/Design share = %.3f, want ~%.2f", share, calib.MLDesignShare)
	}
}

func TestGenerateModalityMix(t *testing.T) {
	tr := generated(t)
	counts := make(map[schema.Manufacturer]map[schema.Modality]int)
	totals := make(map[schema.Manufacturer]int)
	for _, d := range tr.Corpus.Disengagements {
		if counts[d.Manufacturer] == nil {
			counts[d.Manufacturer] = make(map[schema.Modality]int)
		}
		counts[d.Manufacturer][d.Modality]++
		totals[d.Manufacturer]++
	}
	// Bosch and GM Cruise report 100% planned.
	for _, m := range []schema.Manufacturer{schema.Bosch, schema.GMCruise} {
		if counts[m][schema.ModalityPlanned] != totals[m] {
			t.Errorf("%s: %d/%d planned, want all", m, counts[m][schema.ModalityPlanned], totals[m])
		}
	}
	// Volkswagen 100% automatic.
	if counts[schema.Volkswagen][schema.ModalityAutomatic] != totals[schema.Volkswagen] {
		t.Error("Volkswagen should be all automatic")
	}
	// Waymo near 50/50.
	wa := float64(counts[schema.Waymo][schema.ModalityAutomatic]) / float64(totals[schema.Waymo])
	if math.Abs(wa-0.5032) > 0.05 {
		t.Errorf("Waymo automatic share = %.3f, want ~0.503", wa)
	}
}

func TestGenerateReactionTimes(t *testing.T) {
	tr := generated(t)
	var sum float64
	var n int
	sawOutlier := false
	for _, d := range tr.Corpus.Disengagements {
		switch d.Manufacturer {
		case schema.Bosch, schema.GMCruise, schema.Ford, schema.BMW:
			if d.HasReaction() {
				t.Fatalf("%s should not report reaction times", d.Manufacturer)
			}
			continue
		}
		if !d.HasReaction() {
			t.Fatalf("%s missing reaction time", d.Manufacturer)
		}
		if d.ReactionSeconds >= calib.VWOutlierSeconds {
			sawOutlier = true
			continue // exclude the planted outlier from the mean, as the paper does
		}
		sum += d.ReactionSeconds
		n++
	}
	if !sawOutlier {
		t.Error("VW 4-hour outlier not planted")
	}
	mean := sum / float64(n)
	if math.Abs(mean-calib.MeanReactionSeconds) > 0.25 {
		t.Errorf("mean reaction = %.3f s, want ~%.2f s", mean, calib.MeanReactionSeconds)
	}
}

func TestGenerateAccidentSpeeds(t *testing.T) {
	tr := generated(t)
	var under10, withSpeeds float64
	for _, a := range tr.Corpus.Accidents {
		rel := a.RelativeSpeedMPH()
		if rel < 0 {
			continue
		}
		withSpeeds++
		if rel < 10 {
			under10++
		}
		if a.AVSpeedMPH > 30 || a.OtherSpeedMPH > 40 {
			t.Errorf("accident speeds out of range: %g / %g", a.AVSpeedMPH, a.OtherSpeedMPH)
		}
	}
	if withSpeeds == 0 {
		t.Fatal("no accidents with speeds")
	}
	if frac := under10 / withSpeeds; frac < 0.65 {
		t.Errorf("relative speed <10mph fraction = %.2f, want > 0.65 (paper: >0.8)", frac)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Corpus.Disengagements) != len(b.Corpus.Disengagements) {
		t.Fatal("different event counts for same seed")
	}
	for i := range a.Corpus.Disengagements {
		da, db := a.Corpus.Disengagements[i], b.Corpus.Disengagements[i]
		if da != db {
			t.Fatalf("event %d differs: %+v vs %+v", i, da, db)
		}
		if a.Tags[i] != b.Tags[i] {
			t.Fatalf("tag %d differs", i)
		}
	}
	// Different seed gives different attribute draws.
	c, err := Generate(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Corpus.Disengagements {
		if a.Corpus.Disengagements[i].Time.Equal(c.Corpus.Disengagements[i].Time) {
			same++
		}
	}
	if same == len(a.Corpus.Disengagements) {
		t.Error("different seeds produced identical timestamps")
	}
}

func TestGenerateValidCorpus(t *testing.T) {
	tr := generated(t)
	if err := tr.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dash preservation: Benz 2016-17 and GM Cruise have unreported cars.
	for _, f := range tr.Corpus.Fleets {
		st := calib.TableI[f.Manufacturer][f.ReportYear]
		if f.Cars != st.Cars {
			t.Errorf("%s %s: fleet cars %d, want %d", f.Manufacturer, f.ReportYear, f.Cars, st.Cars)
		}
	}
	// Uber appears only as an accident.
	if tr.Corpus.DisengagementsBy()[schema.UberATC] != 0 {
		t.Error("Uber should have no disengagements")
	}
	if tr.Corpus.AccidentsBy()[schema.UberATC] != 1 {
		t.Error("Uber should have exactly one accident")
	}
}

func TestGenerateTemporalTrend(t *testing.T) {
	// Waymo's per-mile disengagement rate should fall sharply across
	// calendar years (paper: ~8x median drop).
	tr := generated(t)
	milesByYear := make(map[int]float64)
	eventsByYear := make(map[int]float64)
	for _, m := range tr.Corpus.Mileage {
		if m.Manufacturer == schema.Waymo {
			milesByYear[m.Month.Year()] += m.Miles
		}
	}
	for _, d := range tr.Corpus.Disengagements {
		if d.Manufacturer == schema.Waymo {
			eventsByYear[d.Time.Year()]++
		}
	}
	dpm2014 := eventsByYear[2014] / milesByYear[2014]
	dpm2016 := eventsByYear[2016] / milesByYear[2016]
	if dpm2014/dpm2016 < 3 {
		t.Errorf("Waymo DPM 2014/2016 ratio = %.2f, want >= 3 (paper ~8)", dpm2014/dpm2016)
	}
}

func TestLargestRemainder(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		wantSum int
	}{
		{10, []float64{1, 1, 1}, 10},
		{7, []float64{0.5, 0.25, 0.25}, 7},
		{0, []float64{1, 2}, 0},
		{5, []float64{0, 0, 0}, 5},
		{3, []float64{-1, 2, 0}, 3},
		{100, []float64{1e-9, 1e-9}, 100},
	}
	for _, c := range cases {
		got := largestRemainder(c.total, c.weights)
		sum := 0
		for _, g := range got {
			if g < 0 {
				t.Errorf("negative allocation in %v", got)
			}
			sum += g
		}
		if sum != c.wantSum {
			t.Errorf("largestRemainder(%d, %v) sums to %d", c.total, c.weights, sum)
		}
	}
	// Proportionality on a big allocation.
	got := largestRemainder(1000, []float64{3, 1})
	if got[0] != 750 || got[1] != 250 {
		t.Errorf("largestRemainder(1000, 3:1) = %v", got)
	}
}

func TestSplitAmount(t *testing.T) {
	out := splitAmount(100, []float64{1, 3})
	if math.Abs(out[0]-25) > 1e-9 || math.Abs(out[1]-75) > 1e-9 {
		t.Errorf("splitAmount = %v", out)
	}
	// Exactness: pieces sum to the total.
	weights := []float64{0.1, 0.7, 0.3, 1e-8}
	out = splitAmount(1116605, weights)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1116605) > 1e-6 {
		t.Errorf("splitAmount pieces sum to %.9f", sum)
	}
	// Degenerate weights.
	out = splitAmount(5, []float64{0, 0})
	if out[0] != 5 {
		t.Errorf("degenerate splitAmount = %v", out)
	}
}

func TestGenerateScale(t *testing.T) {
	tr, err := Generate(Config{Seed: 2, Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Corpus.Disengagements); got != 3*calib.TotalDisengagements {
		t.Errorf("scaled disengagements = %d, want %d", got, 3*calib.TotalDisengagements)
	}
	if got := tr.Corpus.TotalMiles(); math.Abs(got-3*calib.TotalMiles) > 5 {
		t.Errorf("scaled miles = %.0f, want %.0f", got, 3*calib.TotalMiles)
	}
	// Accidents stay at the calibrated count.
	if got := len(tr.Corpus.Accidents); got != calib.TotalAccidents {
		t.Errorf("scaled accidents = %d, want %d", got, calib.TotalAccidents)
	}
	if err := tr.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The BadnessSpread knob controls the per-car DPM dispersion that Fig. 4
// visualizes: a wider spread must widen the log-IQR of per-car rates.
func TestBadnessSpreadWidensDPMSpread(t *testing.T) {
	iqr := func(spread float64) float64 {
		tr, err := Generate(Config{Seed: 6, BadnessSpread: spread})
		if err != nil {
			t.Fatal(err)
		}
		miles := make(map[schema.VehicleID]float64)
		events := make(map[schema.VehicleID]float64)
		for _, m := range tr.Corpus.Mileage {
			if m.Manufacturer == schema.Waymo {
				miles[m.Vehicle] += m.Miles
			}
		}
		for _, d := range tr.Corpus.Disengagements {
			if d.Manufacturer == schema.Waymo {
				events[d.Vehicle]++
			}
		}
		var logDPM []float64
		for v, mi := range miles {
			if mi > 0 && events[v] > 0 {
				logDPM = append(logDPM, math.Log(events[v]/mi))
			}
		}
		if len(logDPM) < 10 {
			t.Fatalf("too few cars with events: %d", len(logDPM))
		}
		sortFloats(logDPM)
		q1 := logDPM[len(logDPM)/4]
		q3 := logDPM[3*len(logDPM)/4]
		return q3 - q1
	}
	narrow := iqr(0.2)
	wide := iqr(1.2)
	if wide <= narrow {
		t.Errorf("log-IQR narrow=%.3f wide=%.3f; spread knob has no effect", narrow, wide)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Property: largestRemainder always sums exactly to the total and never
// allocates to zero-weight buckets when positive weights exist.
func TestLargestRemainderProperty(t *testing.T) {
	prop := func(seed int64, totalSeed uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		weights := make([]float64, n)
		anyPositive := false
		for i := range weights {
			if r.Intn(4) == 0 {
				weights[i] = 0
			} else {
				weights[i] = r.Float64() * 100
				anyPositive = true
			}
		}
		total := int(totalSeed % 2000)
		got := largestRemainder(total, weights)
		sum := 0
		for i, g := range got {
			if g < 0 {
				return false
			}
			if anyPositive && weights[i] <= 0 && g > 0 {
				return false
			}
			sum += g
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(49))}); err != nil {
		t.Error(err)
	}
}

// Property: multinomial sums exactly to the total and tracks weights in
// expectation.
func TestMultinomialProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 10
		}
		total := 5000
		got := multinomial(total, weights, r)
		sum := 0
		for _, g := range got {
			if g < 0 {
				return false
			}
			sum += g
		}
		if sum != total {
			return false
		}
		// The largest-weight bucket should receive the most draws (with
		// 5000 draws and distinct random weights this holds w.h.p.).
		maxW, maxWi := weights[0], 0
		for i, w := range weights {
			if w > maxW {
				maxW, maxWi = w, i
			}
		}
		maxG, maxGi := got[0], 0
		for i, g := range got {
			if g > maxG {
				maxG, maxGi = g, i
			}
		}
		_ = maxG
		return maxWi == maxGi || weights[maxGi] > 0.8*maxW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(49))}); err != nil {
		t.Error(err)
	}
}

func TestMultinomialDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := multinomial(10, []float64{0, 0, 0}, rng)
	sum := 0
	for _, g := range got {
		sum += g
	}
	if sum != 10 {
		t.Errorf("degenerate multinomial sums to %d", sum)
	}
	if out := multinomial(0, []float64{1, 2}, rng); out[0]+out[1] != 0 {
		t.Error("zero total should allocate nothing")
	}
}

func TestReportWindows(t *testing.T) {
	f1, l1 := reportWindow(schema.Report2016)
	if f1.Year() != 2014 || l1.Year() != 2015 {
		t.Errorf("2016 window = %v..%v", f1, l1)
	}
	months := monthsBetween(f1, l1)
	if len(months) != 15 {
		t.Errorf("2016 window months = %d, want 15", len(months))
	}
	f2, l2 := reportWindow(schema.Report2017)
	if f2.Year() != 2015 || f2.Month() != 12 || l2.Month() != 11 {
		t.Errorf("2017 window = %v..%v", f2, l2)
	}
	if len(monthsBetween(f2, l2)) != 12 {
		t.Error("2017 window should be 12 months")
	}
}
