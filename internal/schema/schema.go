// Package schema defines the normalized data model shared by every stage of
// the AV field-data analysis pipeline.
//
// The CA DMV does not enforce a report format, so raw reports differ across
// manufacturers and across report years. Stage II of the pipeline (package
// parse) converts every vendor format into the types defined here; all later
// stages (NLP tagging, statistical analysis, reporting) operate exclusively
// on these types.
package schema

import (
	"fmt"
	"strings"
	"time"
)

// Manufacturer identifies an AV manufacturer present in the CA DMV dataset.
type Manufacturer string

// The twelve manufacturers covered by the 2016 and 2017 DMV data releases.
const (
	MercedesBenz Manufacturer = "Mercedes-Benz"
	Bosch        Manufacturer = "Bosch"
	Delphi       Manufacturer = "Delphi"
	GMCruise     Manufacturer = "GMCruise"
	Nissan       Manufacturer = "Nissan"
	Tesla        Manufacturer = "Tesla"
	Volkswagen   Manufacturer = "Volkswagen"
	Waymo        Manufacturer = "Waymo"
	UberATC      Manufacturer = "Uber ATC"
	Honda        Manufacturer = "Honda"
	Ford         Manufacturer = "Ford"
	BMW          Manufacturer = "BMW"
)

// AllManufacturers lists every manufacturer in the dataset in the order used
// by the paper's Table I.
func AllManufacturers() []Manufacturer {
	return []Manufacturer{
		MercedesBenz, Bosch, Delphi, GMCruise, Nissan, Tesla,
		Volkswagen, Waymo, UberATC, Honda, Ford, BMW,
	}
}

// AnalysisManufacturers lists the eight manufacturers with enough reported
// disengagements for statistically meaningful analysis. Uber, BMW, Ford, and
// Honda reported too few events and are excluded, as in the paper.
func AnalysisManufacturers() []Manufacturer {
	return []Manufacturer{
		MercedesBenz, Bosch, Delphi, GMCruise, Nissan, Tesla,
		Volkswagen, Waymo,
	}
}

// ParseManufacturer resolves the many vendor-name spellings found in raw
// reports ("Google", "Waymo (Google)", "Delphi Automotive", ...) to a
// canonical Manufacturer. The second return value reports whether the name
// was recognized.
func ParseManufacturer(name string) (Manufacturer, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.NewReplacer(".", "", ",", "", "(", " ", ")", " ").Replace(key)
	key = strings.Join(strings.Fields(key), " ")
	switch key {
	case "mercedes-benz", "mercedes benz", "benz", "mercedes", "daimler":
		return MercedesBenz, true
	case "bosch", "robert bosch", "robert bosch llc":
		return Bosch, true
	case "delphi", "delphi automotive", "aptiv":
		return Delphi, true
	case "gmcruise", "gm cruise", "cruise", "general motors", "gm", "cruise automation":
		return GMCruise, true
	case "nissan", "nissan north america":
		return Nissan, true
	case "tesla", "tesla motors":
		return Tesla, true
	case "volkswagen", "vw", "volkswagen group of america":
		return Volkswagen, true
	case "waymo", "google", "waymo google", "google auto", "google auto llc":
		return Waymo, true
	case "uber", "uber atc", "uber advanced technologies":
		return UberATC, true
	case "honda", "honda r&d americas":
		return Honda, true
	case "ford", "ford motor company":
		return Ford, true
	case "bmw", "bmw of north america":
		return BMW, true
	default:
		return "", false
	}
}

// ReportYear identifies one of the two annual DMV data releases covered by
// the study.
type ReportYear int

const (
	// Report2016 is the 2015–2016 release (data through Nov 2015).
	Report2016 ReportYear = iota + 1
	// Report2017 is the 2016–2017 release (data through Nov 2016).
	Report2017
)

// String implements fmt.Stringer.
func (y ReportYear) String() string {
	switch y {
	case Report2016:
		return "2015-2016"
	case Report2017:
		return "2016-2017"
	default:
		return fmt.Sprintf("ReportYear(%d)", int(y))
	}
}

// ReportYears lists both releases in chronological order.
func ReportYears() []ReportYear { return []ReportYear{Report2016, Report2017} }

// StudyStart and StudyEnd bound the 26-month analysis window
// (September 2014 through November 2016).
var (
	StudyStart = time.Date(2014, time.September, 1, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2016, time.November, 30, 23, 59, 59, 0, time.UTC)
)

// Modality describes how a disengagement was initiated.
type Modality int

// Disengagement modalities. Manual disengagements are cautionary actions by
// the safety driver; automatic ones indicate the ADS detected its own
// failure; planned ones come from declared fault-injection campaigns
// (Bosch and GM Cruise report all disengagements as planned tests).
const (
	ModalityUnknown Modality = iota
	ModalityAutomatic
	ModalityManual
	ModalityPlanned
)

// String implements fmt.Stringer.
func (m Modality) String() string {
	switch m {
	case ModalityAutomatic:
		return "Automatic"
	case ModalityManual:
		return "Manual"
	case ModalityPlanned:
		return "Planned"
	default:
		return "Unknown"
	}
}

// ParseModality maps free-text modality descriptions to a Modality.
func ParseModality(s string) Modality {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "automatic", "auto", "automated", "system", "av":
		return ModalityAutomatic
	case "manual", "driver", "safe operation", "test driver":
		return ModalityManual
	case "planned", "planned test", "test":
		return ModalityPlanned
	default:
		return ModalityUnknown
	}
}

// RoadType categorizes where an event occurred. The dataset covers nine
// distinct road types; the paper aggregates them as below.
type RoadType int

// Road types in the dataset.
const (
	RoadUnknown RoadType = iota
	RoadCityStreet
	RoadHighway
	RoadInterstate
	RoadFreeway
	RoadParkingLot
	RoadSuburban
	RoadRural
)

// String implements fmt.Stringer.
func (r RoadType) String() string {
	switch r {
	case RoadCityStreet:
		return "city street"
	case RoadHighway:
		return "highway"
	case RoadInterstate:
		return "interstate"
	case RoadFreeway:
		return "freeway"
	case RoadParkingLot:
		return "parking lot"
	case RoadSuburban:
		return "suburban"
	case RoadRural:
		return "rural"
	default:
		return "unknown"
	}
}

// ParseRoadType maps free-text road descriptions to a RoadType.
func ParseRoadType(s string) RoadType {
	key := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.Contains(key, "city"), strings.Contains(key, "street"), strings.Contains(key, "urban") && !strings.Contains(key, "suburban"):
		return RoadCityStreet
	case strings.Contains(key, "interstate"):
		return RoadInterstate
	case strings.Contains(key, "freeway"):
		return RoadFreeway
	case strings.Contains(key, "highway"):
		return RoadHighway
	case strings.Contains(key, "parking"):
		return RoadParkingLot
	case strings.Contains(key, "suburban"):
		return RoadSuburban
	case strings.Contains(key, "rural"):
		return RoadRural
	default:
		return RoadUnknown
	}
}

// Weather categorizes reported conditions during an event.
type Weather int

// Weather conditions reported by manufacturers.
const (
	WeatherUnknown Weather = iota
	WeatherSunny
	WeatherCloudy
	WeatherRaining
	WeatherFoggy
)

// String implements fmt.Stringer.
func (w Weather) String() string {
	switch w {
	case WeatherSunny:
		return "sunny"
	case WeatherCloudy:
		return "cloudy"
	case WeatherRaining:
		return "raining"
	case WeatherFoggy:
		return "foggy"
	default:
		return "unknown"
	}
}

// ParseWeather maps free-text weather descriptions to a Weather value.
func ParseWeather(s string) Weather {
	key := strings.ToLower(s)
	switch {
	case strings.Contains(key, "sun"), strings.Contains(key, "dry"), strings.Contains(key, "clear"):
		return WeatherSunny
	case strings.Contains(key, "rain"), strings.Contains(key, "wet"), strings.Contains(key, "shower"):
		return WeatherRaining
	case strings.Contains(key, "fog"):
		return WeatherFoggy
	case strings.Contains(key, "cloud"), strings.Contains(key, "overcast"):
		return WeatherCloudy
	default:
		return WeatherUnknown
	}
}

// VehicleID identifies one AV prototype within a manufacturer's fleet.
type VehicleID string

// Disengagement is one normalized disengagement event: a transfer of control
// from the autonomous driving system to the human safety driver.
type Disengagement struct {
	// Manufacturer that reported the event.
	Manufacturer Manufacturer `json:"manufacturer"`
	// Vehicle involved. Empty when the vendor reports only fleet-level data.
	Vehicle VehicleID `json:"vehicle,omitempty"`
	// ReportYear is the DMV release the event came from.
	ReportYear ReportYear `json:"reportYear"`
	// Time of the event. Vendors report at varying granularity; Time is
	// always within the study window and at least month-accurate.
	Time time.Time `json:"time"`
	// Cause is the raw natural-language description of the disengagement
	// cause written by the manufacturer (post-OCR).
	Cause string `json:"cause"`
	// Modality records who initiated the disengagement.
	Modality Modality `json:"modality"`
	// Road and Weather are optional context fields; zero values mean
	// "not reported".
	Road    RoadType `json:"road,omitempty"`
	Weather Weather  `json:"weather,omitempty"`
	// ReactionSeconds is the driver reaction time in seconds: the elapsed
	// time from the takeover alert to the driver assuming manual control.
	// Negative when not reported.
	ReactionSeconds float64 `json:"reactionSeconds"`
}

// HasReaction reports whether a driver reaction time was reported.
func (d Disengagement) HasReaction() bool { return d.ReactionSeconds >= 0 }

// Accident is one normalized accident report: an actual collision involving
// an AV (with other vehicles, pedestrians, or property).
type Accident struct {
	Manufacturer Manufacturer `json:"manufacturer"`
	// Vehicle is empty when the DMV redacted the VIN/registration, which
	// prevents direct per-vehicle APM computation (paper §V-B).
	Vehicle    VehicleID  `json:"vehicle,omitempty"`
	ReportYear ReportYear `json:"reportYear"`
	Time       time.Time  `json:"time"`
	// Location is a free-text location ("El Camino Real & Clark Av,
	// Mountain View CA").
	Location string `json:"location"`
	// Narrative is the human-written description of the incident.
	Narrative string `json:"narrative"`
	// AVSpeedMPH and OtherSpeedMPH are the speeds of the AV and the other
	// vehicle at collision, in miles per hour. Negative when unknown.
	AVSpeedMPH    float64 `json:"avSpeedMPH"`
	OtherSpeedMPH float64 `json:"otherSpeedMPH"`
	// InAutonomousMode reports whether the AV was in autonomous mode at the
	// time of collision.
	InAutonomousMode bool `json:"inAutonomousMode"`
	// Redacted reports whether the DMV obfuscated vehicle identification.
	Redacted bool `json:"redacted"`
}

// RelativeSpeedMPH returns the absolute speed difference between the two
// vehicles at collision, or a negative value if either speed is unknown.
func (a Accident) RelativeSpeedMPH() float64 {
	if a.AVSpeedMPH < 0 || a.OtherSpeedMPH < 0 {
		return -1
	}
	diff := a.AVSpeedMPH - a.OtherSpeedMPH
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// MonthlyMileage is a per-vehicle, per-month autonomous-mileage record, the
// unit of the mileage tables every manufacturer must file.
type MonthlyMileage struct {
	Manufacturer Manufacturer `json:"manufacturer"`
	Vehicle      VehicleID    `json:"vehicle"`
	ReportYear   ReportYear   `json:"reportYear"`
	// Month is the first day of the calendar month, UTC.
	Month time.Time `json:"month"`
	// Miles driven in autonomous mode during the month.
	Miles float64 `json:"miles"`
}

// Fleet summarizes one manufacturer's testing program in one report year.
type Fleet struct {
	Manufacturer Manufacturer `json:"manufacturer"`
	ReportYear   ReportYear   `json:"reportYear"`
	// Cars is the number of AV prototypes registered; negative when the
	// report omits it (rendered as a dash in Table I).
	Cars int `json:"cars"`
}

// Corpus is a normalized dataset: the output of Stage II and the input to
// Stage III/IV. A Corpus may span both report years and all manufacturers.
type Corpus struct {
	Fleets         []Fleet          `json:"fleets"`
	Mileage        []MonthlyMileage `json:"mileage"`
	Disengagements []Disengagement  `json:"disengagements"`
	Accidents      []Accident       `json:"accidents"`
}

// TotalMiles sums autonomous miles across the whole corpus.
func (c *Corpus) TotalMiles() float64 {
	var total float64
	for _, m := range c.Mileage {
		total += m.Miles
	}
	return total
}

// MilesBy sums autonomous miles per manufacturer.
func (c *Corpus) MilesBy() map[Manufacturer]float64 {
	out := make(map[Manufacturer]float64)
	for _, m := range c.Mileage {
		out[m.Manufacturer] += m.Miles
	}
	return out
}

// DisengagementsBy counts disengagements per manufacturer.
func (c *Corpus) DisengagementsBy() map[Manufacturer]int {
	out := make(map[Manufacturer]int)
	for _, d := range c.Disengagements {
		out[d.Manufacturer]++
	}
	return out
}

// AccidentsBy counts accidents per manufacturer.
func (c *Corpus) AccidentsBy() map[Manufacturer]int {
	out := make(map[Manufacturer]int)
	for _, a := range c.Accidents {
		out[a.Manufacturer]++
	}
	return out
}

// Merge appends the contents of other into c. Slices are copied so later
// mutation of other does not alias c.
func (c *Corpus) Merge(other *Corpus) {
	c.Fleets = append(c.Fleets, other.Fleets...)
	c.Mileage = append(c.Mileage, other.Mileage...)
	c.Disengagements = append(c.Disengagements, other.Disengagements...)
	c.Accidents = append(c.Accidents, other.Accidents...)
}

// Validate checks internal consistency: events inside the study window,
// non-negative miles, recognized manufacturers. It returns a non-nil error
// describing the first violation found.
func (c *Corpus) Validate() error {
	known := make(map[Manufacturer]bool, 12)
	for _, m := range AllManufacturers() {
		known[m] = true
	}
	for i, m := range c.Mileage {
		if !known[m.Manufacturer] {
			return fmt.Errorf("mileage[%d]: unknown manufacturer %q", i, m.Manufacturer)
		}
		if m.Miles < 0 {
			return fmt.Errorf("mileage[%d]: negative miles %.2f", i, m.Miles)
		}
		if m.Month.Before(StudyStart) || m.Month.After(StudyEnd) {
			return fmt.Errorf("mileage[%d]: month %s outside study window", i, m.Month.Format("2006-01"))
		}
	}
	for i, d := range c.Disengagements {
		if !known[d.Manufacturer] {
			return fmt.Errorf("disengagement[%d]: unknown manufacturer %q", i, d.Manufacturer)
		}
		if d.Time.Before(StudyStart) || d.Time.After(StudyEnd) {
			return fmt.Errorf("disengagement[%d]: time %s outside study window", i, d.Time.Format(time.RFC3339))
		}
	}
	for i, a := range c.Accidents {
		if !known[a.Manufacturer] {
			return fmt.Errorf("accident[%d]: unknown manufacturer %q", i, a.Manufacturer)
		}
		if a.Time.Before(StudyStart) || a.Time.After(StudyEnd) {
			return fmt.Errorf("accident[%d]: time %s outside study window", i, a.Time.Format(time.RFC3339))
		}
	}
	return nil
}
