package schema

import (
	"testing"
	"time"
)

func TestParseManufacturerAliases(t *testing.T) {
	cases := []struct {
		in   string
		want Manufacturer
	}{
		{"Waymo", Waymo},
		{"Google", Waymo},
		{"Waymo (Google)", Waymo},
		{"GOOGLE AUTO LLC", Waymo},
		{"Mercedes-Benz", MercedesBenz},
		{"mercedes benz", MercedesBenz},
		{"Benz", MercedesBenz},
		{"Delphi Automotive", Delphi},
		{"GM Cruise", GMCruise},
		{"Cruise Automation", GMCruise},
		{"Tesla Motors", Tesla},
		{"VW", Volkswagen},
		{"Uber ATC", UberATC},
		{"Robert Bosch LLC", Bosch},
		{"Nissan North America", Nissan},
		{"Honda R&D Americas", Honda},
		{"Ford Motor Company", Ford},
		{"BMW of North America", BMW},
	}
	for _, c := range cases {
		got, ok := ParseManufacturer(c.in)
		if !ok || got != c.want {
			t.Errorf("ParseManufacturer(%q) = %q, %v; want %q", c.in, got, ok, c.want)
		}
	}
	if _, ok := ParseManufacturer("Atlantis Motors"); ok {
		t.Error("unknown name should not parse")
	}
	if _, ok := ParseManufacturer(""); ok {
		t.Error("empty name should not parse")
	}
}

func TestManufacturerLists(t *testing.T) {
	all := AllManufacturers()
	if len(all) != 12 {
		t.Errorf("AllManufacturers = %d, want 12", len(all))
	}
	analysis := AnalysisManufacturers()
	if len(analysis) != 8 {
		t.Errorf("AnalysisManufacturers = %d, want 8", len(analysis))
	}
	inAll := map[Manufacturer]bool{}
	for _, m := range all {
		inAll[m] = true
	}
	for _, m := range analysis {
		if !inAll[m] {
			t.Errorf("%s in analysis but not all", m)
		}
	}
	excluded := map[Manufacturer]bool{UberATC: true, BMW: true, Ford: true, Honda: true}
	for _, m := range analysis {
		if excluded[m] {
			t.Errorf("%s should be excluded from analysis", m)
		}
	}
}

func TestReportYearString(t *testing.T) {
	if Report2016.String() != "2015-2016" || Report2017.String() != "2016-2017" {
		t.Error("report year strings wrong")
	}
	if ReportYear(9).String() != "ReportYear(9)" {
		t.Error("fallback string wrong")
	}
	if len(ReportYears()) != 2 {
		t.Error("two report years expected")
	}
}

func TestParseModality(t *testing.T) {
	cases := []struct {
		in   string
		want Modality
	}{
		{"automatic", ModalityAutomatic},
		{"AUTO", ModalityAutomatic},
		{"manual", ModalityManual},
		{"Safe Operation", ModalityManual},
		{"planned test", ModalityPlanned},
		{"??", ModalityUnknown},
	}
	for _, c := range cases {
		if got := ParseModality(c.in); got != c.want {
			t.Errorf("ParseModality(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, m := range []Modality{ModalityAutomatic, ModalityManual, ModalityPlanned, ModalityUnknown} {
		if m.String() == "" {
			t.Errorf("modality %d has empty string", m)
		}
	}
}

func TestParseRoadType(t *testing.T) {
	cases := []struct {
		in   string
		want RoadType
	}{
		{"city street", RoadCityStreet},
		{"Urban", RoadCityStreet},
		{"highway", RoadHighway},
		{"Interstate", RoadInterstate},
		{"freeway", RoadFreeway},
		{"parking lot", RoadParkingLot},
		{"suburban", RoadSuburban},
		{"rural", RoadRural},
		{"???", RoadUnknown},
	}
	for _, c := range cases {
		if got := ParseRoadType(c.in); got != c.want {
			t.Errorf("ParseRoadType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round trip: String then Parse.
	for _, r := range []RoadType{RoadCityStreet, RoadHighway, RoadInterstate, RoadFreeway, RoadParkingLot, RoadSuburban, RoadRural} {
		if got := ParseRoadType(r.String()); got != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), got)
		}
	}
}

func TestParseWeather(t *testing.T) {
	cases := []struct {
		in   string
		want Weather
	}{
		{"Sunny/Dry", WeatherSunny},
		{"clear", WeatherSunny},
		{"light rain", WeatherRaining},
		{"overcast", WeatherCloudy},
		{"fog", WeatherFoggy},
		{"???", WeatherUnknown},
	}
	for _, c := range cases {
		if got := ParseWeather(c.in); got != c.want {
			t.Errorf("ParseWeather(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDisengagementHasReaction(t *testing.T) {
	d := Disengagement{ReactionSeconds: -1}
	if d.HasReaction() {
		t.Error("negative reaction should mean unreported")
	}
	d.ReactionSeconds = 0.5
	if !d.HasReaction() {
		t.Error("positive reaction should be reported")
	}
}

func TestAccidentRelativeSpeed(t *testing.T) {
	a := Accident{AVSpeedMPH: 4, OtherSpeedMPH: 10}
	if a.RelativeSpeedMPH() != 6 {
		t.Errorf("relative = %g", a.RelativeSpeedMPH())
	}
	a = Accident{AVSpeedMPH: 10, OtherSpeedMPH: 4}
	if a.RelativeSpeedMPH() != 6 {
		t.Errorf("relative abs = %g", a.RelativeSpeedMPH())
	}
	a = Accident{AVSpeedMPH: -1, OtherSpeedMPH: 4}
	if a.RelativeSpeedMPH() >= 0 {
		t.Error("unknown speed should give negative relative")
	}
}

func TestCorpusHelpers(t *testing.T) {
	c := Corpus{
		Mileage: []MonthlyMileage{
			{Manufacturer: Waymo, Vehicle: "w1", ReportYear: Report2016, Month: StudyStart, Miles: 100},
			{Manufacturer: Waymo, Vehicle: "w2", ReportYear: Report2016, Month: StudyStart, Miles: 50},
			{Manufacturer: Nissan, Vehicle: "n1", ReportYear: Report2016, Month: StudyStart, Miles: 25},
		},
		Disengagements: []Disengagement{
			{Manufacturer: Waymo, ReportYear: Report2016, Time: StudyStart},
			{Manufacturer: Nissan, ReportYear: Report2016, Time: StudyStart},
			{Manufacturer: Nissan, ReportYear: Report2016, Time: StudyStart},
		},
		Accidents: []Accident{
			{Manufacturer: Waymo, ReportYear: Report2016, Time: StudyStart},
		},
	}
	if c.TotalMiles() != 175 {
		t.Errorf("TotalMiles = %g", c.TotalMiles())
	}
	if c.MilesBy()[Waymo] != 150 {
		t.Errorf("MilesBy[Waymo] = %g", c.MilesBy()[Waymo])
	}
	if c.DisengagementsBy()[Nissan] != 2 {
		t.Error("DisengagementsBy wrong")
	}
	if c.AccidentsBy()[Waymo] != 1 {
		t.Error("AccidentsBy wrong")
	}
	var other Corpus
	other.Merge(&c)
	if other.TotalMiles() != 175 || len(other.Disengagements) != 3 {
		t.Error("Merge incomplete")
	}
}

func TestCorpusValidate(t *testing.T) {
	good := Corpus{
		Mileage: []MonthlyMileage{{Manufacturer: Waymo, Vehicle: "w", ReportYear: Report2016, Month: StudyStart, Miles: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid corpus rejected: %v", err)
	}
	bad := Corpus{Mileage: []MonthlyMileage{{Manufacturer: "Atlantis", Month: StudyStart}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown manufacturer should fail")
	}
	bad = Corpus{Mileage: []MonthlyMileage{{Manufacturer: Waymo, Month: StudyStart, Miles: -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative miles should fail")
	}
	bad = Corpus{Mileage: []MonthlyMileage{{Manufacturer: Waymo, Month: StudyStart.AddDate(-1, 0, 0), Miles: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-window month should fail")
	}
	bad = Corpus{Disengagements: []Disengagement{{Manufacturer: Waymo, Time: StudyEnd.Add(time.Hour)}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-window disengagement should fail")
	}
	bad = Corpus{Accidents: []Accident{{Manufacturer: "X", Time: StudyStart}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown accident manufacturer should fail")
	}
}

func TestStudyWindow(t *testing.T) {
	if StudyStart.Year() != 2014 || StudyStart.Month() != time.September {
		t.Error("study start wrong")
	}
	if StudyEnd.Year() != 2016 || StudyEnd.Month() != time.November {
		t.Error("study end wrong")
	}
	// 26-month window like the paper says (Sep 2014 .. Nov 2016
	// inclusive is 27 calendar months; the paper's "26-month period"
	// counts the span).
	months := 0
	for m := StudyStart; m.Before(StudyEnd); m = m.AddDate(0, 1, 0) {
		months++
	}
	if months < 26 || months > 27 {
		t.Errorf("study window = %d months", months)
	}
}
