package report

import (
	"os"
	"testing"
)

// TestTableIIIGolden pins the exact rendering of the static ontology table.
// Regenerate testdata/tableIII.golden deliberately when the ontology or the
// table renderer changes:
//
//	go test ./internal/report -run TestTableIIIGolden -update
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestTableIIIGolden(t *testing.T) {
	got := TableIII()
	const path = "testdata/tableIII.golden"
	if updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Table III rendering changed; set UPDATE_GOLDEN=1 to accept.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestStudyRenderingDeterminism pins that equal seeds render equal tables
// end to end (the whole pipeline is deterministic).
func TestStudyRenderingDeterminism(t *testing.T) {
	a := testDB(t)
	b := testDB(t)
	if TableI(a) != TableI(b) {
		t.Error("TableI nondeterministic for cached DB")
	}
	f4a, f4b := Figure4(a), Figure4(b)
	if f4a != f4b {
		t.Error("Figure4 nondeterministic")
	}
}
