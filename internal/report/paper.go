package report

import (
	"fmt"
	"strings"

	"avfda/internal/calib"
	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

// Paper-artifact renderers: one function per table/figure of the
// evaluation, each printing measured values side by side with the paper's
// published numbers (from package calib) wherever the paper prints them.

// TableI renders the fleet summary with the paper's values inline.
func TableI(db *core.DB) string {
	t := Table{
		Title:   "Table I — Fleet size, autonomous miles, and failure incidents",
		Headers: []string{"Manufacturer", "Report", "Cars", "Miles", "Diseng.", "Accidents", "paper(miles)", "paper(diseng.)"},
		Aligns:  []Align{Left, Left, Right, Right, Right, Right, Right, Right},
	}
	for _, r := range db.FleetSummary() {
		paper := calib.TableI[r.Manufacturer][r.ReportYear]
		t.AddRow(
			string(r.Manufacturer), r.ReportYear.String(), DashInt(r.Cars),
			fmt.Sprintf("%.2f", r.Miles), r.Disengagements, r.Accidents,
			Dash(paper.Miles, "%.2f"), DashInt(paper.Disengagements),
		)
	}
	t.Notes = append(t.Notes, "dashes mark fields the manufacturer's report omits")
	return t.Render()
}

// TableII renders the sample raw-log classifications (the paper's Table II
// rows run through the live NLP engine).
func TableII(rows []TableIIRow) string {
	t := Table{
		Title:   "Table II — Sample disengagement reports and NLP assignment",
		Headers: []string{"Manufacturer", "Raw log (excerpt)", "Category", "Tag"},
	}
	for _, r := range rows {
		log := r.RawLog
		if len(log) > 58 {
			log = log[:55] + "..."
		}
		t.AddRow(r.Manufacturer, log, r.Category, r.Tag)
	}
	return t.Render()
}

// TableIIRow is one classified sample log.
type TableIIRow struct {
	Manufacturer string
	RawLog       string
	Category     string
	Tag          string
}

// TableIII renders the fault-tag ontology.
func TableIII() string {
	t := Table{
		Title:   "Table III — Fault tags and categories",
		Headers: []string{"Tag", "Category", "Definition"},
	}
	for _, tag := range ontology.AllTags() {
		t.AddRow(tag.String(), ontology.CategoryOf(tag).String(), ontology.Definition(tag))
	}
	return t.Render()
}

// TableIV renders the per-manufacturer category breakdown vs the paper.
func TableIV(db *core.DB) string {
	t := Table{
		Title: "Table IV — Disengagement root-cause categories (%)",
		Headers: []string{"Manufacturer", "Planner", "Perception", "System", "Unknown-C",
			"paper(Plan)", "paper(Perc)", "paper(Sys)", "paper(Unk)"},
		Aligns: []Align{Left, Right, Right, Right, Right, Right, Right, Right, Right},
	}
	for _, r := range db.CategoryBreakdown() {
		paper, ok := core.PaperCategoryTargets(r.Manufacturer)
		pp := func(v float64) string {
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		t.AddRow(string(r.Manufacturer),
			fmt.Sprintf("%.2f", r.PlannerPct), fmt.Sprintf("%.2f", r.PerceptionPct),
			fmt.Sprintf("%.2f", r.SystemPct), fmt.Sprintf("%.2f", r.UnknownPct),
			pp(paper.PlannerPct), pp(paper.PerceptionPct), pp(paper.SystemPct), pp(paper.UnknownPct))
	}
	s := db.OverallCategoryShares()
	t.Notes = append(t.Notes,
		fmt.Sprintf("overall: perception %.1f%%, planner %.1f%%, system %.1f%%, ML total %.1f%% (paper: ~44/20/33.6/64)",
			100*s.Perception, 100*s.Planner, 100*s.System, 100*s.MLDesign))
	return t.Render()
}

// TableV renders the modality breakdown vs the paper.
func TableV(db *core.DB) string {
	t := Table{
		Title:   "Table V — Disengagement modality (%)",
		Headers: []string{"Manufacturer", "Automatic", "Manual", "Planned", "paper(Auto)", "paper(Man)", "paper(Plan)"},
		Aligns:  []Align{Left, Right, Right, Right, Right, Right, Right},
	}
	for _, r := range db.ModalityBreakdown() {
		paper := calib.TableV[r.Manufacturer]
		t.AddRow(string(r.Manufacturer),
			fmt.Sprintf("%.2f", r.AutomaticPct), fmt.Sprintf("%.2f", r.ManualPct), fmt.Sprintf("%.2f", r.PlannedPct),
			fmt.Sprintf("%.2f", paper.AutomaticPct), fmt.Sprintf("%.2f", paper.ManualPct), fmt.Sprintf("%.2f", paper.PlannedPct))
	}
	return t.Render()
}

// TableVI renders the accident summary vs the paper.
func TableVI(db *core.DB) string {
	t := Table{
		Title:   "Table VI — Accidents reported by manufacturers",
		Headers: []string{"Manufacturer", "Accidents", "Fraction %", "DPA", "paper(Acc)", "paper(DPA)"},
		Aligns:  []Align{Left, Right, Right, Right, Right, Right},
	}
	for _, r := range db.AccidentSummary() {
		paper := calib.TableVI[r.Manufacturer]
		t.AddRow(string(r.Manufacturer), r.Accidents,
			fmt.Sprintf("%.2f", r.FractionPct), Dash(r.DPA, "%.0f"),
			paper.Accidents, Dash(paper.DPA, "%.0f"))
	}
	return t.Render()
}

// TableVII renders AV-vs-human reliability vs the paper.
func TableVII(db *core.DB) (string, error) {
	rows, err := db.ReliabilityVsHuman()
	if err != nil {
		return "", err
	}
	t := Table{
		Title: "Table VII — Reliability of AVs compared to human drivers",
		Headers: []string{"Manufacturer", "Median DPM", "Median APM", "Rel. to human",
			"KP conf.", "paper(DPM)", "paper(rel)"},
		Aligns: []Align{Left, Right, Right, Right, Right, Right, Right},
	}
	for _, r := range rows {
		paper := calib.TableVII[r.Manufacturer]
		t.AddRow(string(r.Manufacturer),
			fmt.Sprintf("%.3g", r.MedianDPM), Dash(r.MedianAPM, "%.3g"),
			Dash(r.RelToHuman, "%.1fx"), Dash(r.EstimateConfidence, "%.3f"),
			Dash(paper.MedianDPM, "%.3g"), Dash(paper.RelToHuman, "%.1fx"))
	}
	t.Notes = append(t.Notes,
		"human APM = 2e-6/mile (NHTSA/FHWA)",
		"paper's Nissan rel-to-human (15.285) is inconsistent with its own APM column (152.85); see calib",
		"KP conf. = Kalra-Paddock confidence the true rate is below 2x the estimate")
	return t.Render(), nil
}

// TableVIII renders the cross-domain comparison vs the paper.
func TableVIII(db *core.DB) (string, error) {
	rows, err := db.CrossDomainTable()
	if err != nil {
		return "", err
	}
	t := Table{
		Title:   "Table VIII — AVs vs other safety-critical autonomous systems",
		Headers: []string{"Manufacturer", "APMi", "vs airline", "vs surgical robot", "paper(vs air)", "paper(vs SR)"},
		Aligns:  []Align{Left, Right, Right, Right, Right, Right},
	}
	for _, r := range rows {
		paper := calib.TableVIII[r.Manufacturer]
		t.AddRow(string(r.Manufacturer),
			fmt.Sprintf("%.3g", r.APMi), fmt.Sprintf("%.2f", r.VsAirline),
			fmt.Sprintf("%.4f", r.VsSurgicalRobot),
			Dash(paper.VsAirline, "%.2f"), Dash(paper.VsSurgicalBot, "%.4f"))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("airline APM %.3g/departure, surgical robot APM %.3g/procedure, mission = %.0f-mile trip",
			calib.AirlineAPM, calib.SurgicalRobotAPM, calib.MedianTripMiles))
	return t.Render(), nil
}

// Figure4 renders the per-car DPM box plots.
func Figure4(db *core.DB) string {
	c := BoxChart{
		Title:    "Figure 4 — Per-car disengagements/mile across manufacturers",
		LogScale: true,
		Unit:     "DPM",
	}
	for _, d := range db.DPMPerCar() {
		c.Rows = append(c.Rows, BoxRow{Label: string(d.Manufacturer), Box: d.Box})
	}
	return c.Render()
}

// Figure5 renders cumulative disengagements vs cumulative miles (log-log).
func Figure5(db *core.DB) (string, error) {
	series, err := db.CumulativeDisengagements()
	if err != nil {
		return "", err
	}
	c := ScatterChart{
		Title:  "Figure 5 — Cumulative disengagements vs cumulative miles (log-log)",
		XLabel: "cumulative miles",
		YLabel: "cumulative disengagements",
		LogX:   true,
		LogY:   true,
	}
	var fits strings.Builder
	for _, s := range series {
		sc := Series{Label: string(s.Manufacturer)}
		for _, p := range s.Points {
			sc.Xs = append(sc.Xs, p.Miles)
			sc.Ys = append(sc.Ys, p.Disengagements)
		}
		c.Series = append(c.Series, sc)
		fmt.Fprintf(&fits, "  %-14s fit: logD = %.3f + %.3f*logM (R2 %.3f)\n",
			s.Manufacturer, s.Fit.Intercept, s.Fit.Slope, s.Fit.R2)
	}
	return c.Render() + "linear fits in log-log space:\n" + fits.String(), nil
}

// Figure6 renders the fault-tag fraction stacks.
func Figure6(db *core.DB) string {
	c := StackedBar{Title: "Figure 6 — Fault tags behind disengagements (fraction per manufacturer)"}
	for _, r := range db.TagBreakdown() {
		row := StackedRow{Label: string(r.Manufacturer)}
		for _, tag := range ontology.AllTags() {
			if f := r.Fractions[tag]; f > 0 {
				row.Parts = append(row.Parts, StackedPart{Name: tag.String(), Fraction: f})
			}
		}
		c.Rows = append(c.Rows, row)
	}
	return c.Render()
}

// Figure7 renders the year-by-year DPM evolution.
func Figure7(db *core.DB) string {
	c := BoxChart{
		Title:    "Figure 7 — Per-car DPM by calendar year",
		LogScale: true,
		Unit:     "DPM",
	}
	for _, r := range db.DPMByYear() {
		c.Rows = append(c.Rows, BoxRow{
			Label: fmt.Sprintf("%s %d", r.Manufacturer, r.Year),
			Box:   r.Box,
		})
	}
	return c.Render()
}

// Figure8 renders the pooled log-log correlation.
func Figure8(db *core.DB) (string, error) {
	lc, err := db.PooledLogCorrelation()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Figure 8 — log(DPM) vs log(cumulative miles), pooled per-car-month\n"+
			"  measured: pearson r = %.3f (p = %.3g) over %d points\n"+
			"  paper:    pearson r = %.2f (p = %.0g)\n",
		lc.R, lc.P, lc.Points, calib.Fig8PearsonR, calib.Fig8PearsonP), nil
}

// Figure9 renders per-manufacturer DPM trend fits.
func Figure9(db *core.DB) (string, error) {
	series, err := db.DPMTrend()
	if err != nil {
		return "", err
	}
	c := ScatterChart{
		Title:  "Figure 9 — Monthly DPM vs cumulative miles (log-log)",
		XLabel: "cumulative miles",
		YLabel: "DPM",
		LogX:   true,
		LogY:   true,
	}
	var fits strings.Builder
	for _, s := range series {
		c.Series = append(c.Series, Series{Label: string(s.Manufacturer), Xs: s.CumMiles, Ys: s.DPM})
		if s.FitOK {
			fmt.Fprintf(&fits, "  %-14s slope %.3f (R2 %.3f)\n", s.Manufacturer, s.Fit.Slope, s.Fit.R2)
		}
	}
	return c.Render() + "trend slopes (negative = improving):\n" + fits.String(), nil
}

// Figure10 renders the reaction-time box plots.
func Figure10(db *core.DB) (string, error) {
	c := BoxChart{
		Title:    "Figure 10 — Driver reaction times per manufacturer",
		LogScale: true,
		Unit:     "seconds",
	}
	for _, r := range db.ReactionTimes() {
		c.Rows = append(c.Rows, BoxRow{Label: string(r.Manufacturer), Box: r.Box})
	}
	mean, err := db.MeanReaction(3600)
	if err != nil {
		return "", err
	}
	return c.Render() + fmt.Sprintf(
		"mean reaction %.2f s (paper: %.2f s); non-AV reference %.2f s\n",
		mean, calib.MeanReactionSeconds, calib.NonAVReaction), nil
}

// Figure11 renders the Weibull reaction-time fits for Mercedes-Benz and
// Waymo with histogram overlays.
func Figure11(db *core.DB) (string, error) {
	var sb strings.Builder
	for _, m := range []schema.Manufacturer{schema.MercedesBenz, schema.Waymo} {
		fit, err := db.FitReactionWeibull(m, 3600)
		if err != nil {
			return "", err
		}
		var vals []float64
		for _, r := range db.ReactionTimes() {
			if r.Manufacturer == m {
				for _, v := range r.Values {
					if v < 3600 {
						vals = append(vals, v)
					}
				}
			}
		}
		hist, err := stats.NewHistogram(vals, 0)
		if err != nil {
			return "", err
		}
		hc := HistogramChart{
			Title: fmt.Sprintf("Figure 11 — %s reaction times: Weibull(k=%.2f, λ=%.2f), KS=%.3f, n=%d",
				m, fit.Weibull.K, fit.Weibull.Lambda, fit.KS, fit.N),
			Hist: hist,
			PDF:  fit.Weibull.PDF,
		}
		sb.WriteString(hc.Render())
	}
	pooled, n, err := db.PooledReactionFit(3600)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "pooled exponentiated-Weibull fit: k=%.2f λ=%.2f α=%.2f (n=%d)\n",
		pooled.K, pooled.Lambda, pooled.Alpha, n)
	return sb.String(), nil
}

// Figure12 renders the accident speed distributions with exponential fits.
func Figure12(db *core.DB) (string, error) {
	samples, err := db.AccidentSpeeds()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, s := range samples {
		hist, err := stats.NewHistogram(s.Values, 8)
		if err != nil {
			return "", err
		}
		hc := HistogramChart{
			Title: fmt.Sprintf("Figure 12 — %s (mph): Exponential(mean %.1f), KS=%.3f, n=%d",
				s.Label, 1/s.Fit.Lambda, s.KS, len(s.Values)),
			Hist: hist,
			PDF:  s.Fit.PDF,
		}
		sb.WriteString(hc.Render())
	}
	fmt.Fprintf(&sb, "relative speed < 10 mph in %.0f%% of collisions (paper: >80%%)\n",
		100*db.RelativeSpeedUnder(10))
	return sb.String(), nil
}
