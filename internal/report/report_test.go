package report

import (
	"strings"
	"testing"

	"avfda/internal/core"
	"avfda/internal/stats"
	"avfda/internal/synth"
)

func testDB(t *testing.T) *core.DB {
	t.Helper()
	tr, err := synth.Generate(synth.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.BuildWithTags(&tr.Corpus, tr.Tags)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
		Aligns:  []Align{Left, Right},
		Notes:   []string{"a note"},
	}
	tab.AddRow("alpha", 12)
	tab.AddRow("much-longer-name", 3.5)
	out := tab.Render()
	for _, want := range []string{"demo", "| name", "| alpha", "much-longer-name", "note: a note", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Right alignment pads numbers on the left.
	if !strings.Contains(out, "   12 |") && !strings.Contains(out, " 12 |") {
		t.Errorf("right-aligned cell missing:\n%s", out)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
		Aligns:  []Align{Left, Right},
		Notes:   []string{"a note"},
	}
	tab.AddRow("alpha|beta", 12)
	out := tab.RenderMarkdown()
	for _, want := range []string{
		"**demo**", "| name | value |", "|---|---:|",
		`alpha\|beta`, "*a note*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestDashHelpers(t *testing.T) {
	if Dash(-1, "%.2f") != "-" || Dash(1.5, "%.1f") != "1.5" {
		t.Error("Dash wrong")
	}
	if DashInt(-1) != "-" || DashInt(7) != "7" {
		t.Error("DashInt wrong")
	}
}

func TestBoxChartRender(t *testing.T) {
	box, err := stats.BoxPlot([]float64{0.001, 0.01, 0.02, 0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	c := BoxChart{
		Title:    "boxes",
		Rows:     []BoxRow{{Label: "A", Box: box}, {Label: "BB", Box: box}},
		LogScale: true,
		Unit:     "DPM",
	}
	out := c.Render()
	if !strings.Contains(out, "boxes") || !strings.Contains(out, "M") ||
		!strings.Contains(out, "=") || !strings.Contains(out, "log10") {
		t.Errorf("box chart incomplete:\n%s", out)
	}
	empty := BoxChart{Title: "none"}
	if !strings.Contains(empty.Render(), "(no data)") {
		t.Error("empty box chart should say so")
	}
}

func TestScatterChartRender(t *testing.T) {
	c := ScatterChart{
		Title:  "scatter",
		XLabel: "x", YLabel: "y",
		LogX: true, LogY: true,
		Series: []Series{
			{Label: "s1", Xs: []float64{1, 10, 100}, Ys: []float64{1, 10, 100}},
			{Label: "s2", Xs: []float64{1, 10, 100}, Ys: []float64{100, 10, 1}},
		},
	}
	out := c.Render()
	for _, want := range []string{"scatter", "legend:", "s1", "s2", "[log10]"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q", want)
		}
	}
	// Non-positive points in log space are dropped, not fatal.
	c.Series[0].Xs = append(c.Series[0].Xs, -5)
	c.Series[0].Ys = append(c.Series[0].Ys, 3)
	_ = c.Render()
	empty := ScatterChart{Title: "none"}
	if !strings.Contains(empty.Render(), "(no data)") {
		t.Error("empty scatter should say so")
	}
}

func TestHistogramChartRender(t *testing.T) {
	hist, err := stats.NewHistogram([]float64{1, 1, 2, 2, 2, 3, 4, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fit := stats.Exponential{Lambda: 0.4}
	c := HistogramChart{Title: "hist", Hist: hist, PDF: fit.PDF}
	out := c.Render()
	if !strings.Contains(out, "#") || !strings.Contains(out, "fitted PDF") {
		t.Errorf("histogram incomplete:\n%s", out)
	}
	if !strings.Contains((&HistogramChart{Title: "x"}).Render(), "(no data)") {
		t.Error("empty histogram should say so")
	}
}

func TestStackedBarRender(t *testing.T) {
	c := StackedBar{
		Title: "stack",
		Rows: []StackedRow{
			{Label: "m1", Parts: []StackedPart{{"aa", 0.5}, {"bb", 0.5}}},
			{Label: "m2", Parts: []StackedPart{{"bb", 1.0}}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "legend: A=aa B=bb") {
		t.Errorf("stacked legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "AAA") || !strings.Contains(out, "BBB") {
		t.Errorf("stacked bars missing:\n%s", out)
	}
}

func TestPaperTables(t *testing.T) {
	db := testDB(t)
	t1 := TableI(db)
	for _, want := range []string{"Table I", "Waymo", "635868.00", "123"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t3 := TableIII()
	if !strings.Contains(t3, "Watchdog timer error") || !strings.Contains(t3, "ML/Design") {
		t.Error("Table III incomplete")
	}
	t4 := TableIV(db)
	if !strings.Contains(t4, "overall: perception") {
		t.Error("Table IV missing overall note")
	}
	t5 := TableV(db)
	if !strings.Contains(t5, "Bosch") || !strings.Contains(t5, "100.00") {
		t.Error("Table V incomplete")
	}
	t6 := TableVI(db)
	if !strings.Contains(t6, "Uber ATC") {
		t.Error("Table VI should include Uber")
	}
	t7, err := TableVII(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t7, "human APM") || !strings.Contains(t7, "Nissan rel-to-human") {
		t.Error("Table VII notes incomplete")
	}
	t8, err := TableVIII(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t8, "vs airline") {
		t.Error("Table VIII incomplete")
	}
	t2 := TableII([]TableIIRow{{
		Manufacturer: "Nissan",
		RawLog:       strings.Repeat("Software module froze and the driver resumed control ", 3),
		Category:     "System", Tag: "Software",
	}})
	if !strings.Contains(t2, "...") {
		t.Error("Table II should truncate long logs")
	}
}

func TestPaperFigures(t *testing.T) {
	db := testDB(t)
	if out := Figure4(db); !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Waymo") {
		t.Error("Figure 4 incomplete")
	}
	out, err := Figure5(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "linear fits") {
		t.Error("Figure 5 missing fits")
	}
	if out := Figure6(db); !strings.Contains(out, "legend:") {
		t.Error("Figure 6 missing legend")
	}
	if out := Figure7(db); !strings.Contains(out, "2014") || !strings.Contains(out, "2016") {
		t.Error("Figure 7 missing years")
	}
	out, err = Figure8(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paper:") || !strings.Contains(out, "measured:") {
		t.Error("Figure 8 missing comparison")
	}
	out, err = Figure9(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trend slopes") {
		t.Error("Figure 9 missing slopes")
	}
	out, err = Figure10(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean reaction") {
		t.Error("Figure 10 missing mean")
	}
	out, err = Figure11(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Weibull") || !strings.Contains(out, "exponentiated-Weibull") {
		t.Error("Figure 11 incomplete")
	}
	out, err = Figure12(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "relative speed < 10 mph") {
		t.Error("Figure 12 missing headline")
	}
}

func TestSVGOutputs(t *testing.T) {
	db := testDB(t)
	// Scatter SVG.
	sc := &ScatterChart{
		Title: "t", XLabel: "x", YLabel: "y", LogX: true, LogY: true,
		Series: []Series{{Label: "a", Xs: []float64{1, 10}, Ys: []float64{2, 20}}},
	}
	svg := SVGScatter(sc, map[string][2]float64{"a": {1, 0}})
	for _, want := range []string{"<svg", "</svg>", "circle", "line"} {
		if !strings.Contains(svg, want) {
			t.Errorf("scatter SVG missing %q", want)
		}
	}
	// Box SVG from real data.
	var rows []BoxRow
	for _, d := range db.DPMPerCar() {
		rows = append(rows, BoxRow{Label: string(d.Manufacturer), Box: d.Box})
	}
	bsvg := SVGBoxChart(&BoxChart{Title: "b", Rows: rows, LogScale: true})
	if !strings.Contains(bsvg, "rect") || !strings.Contains(bsvg, "Waymo") {
		t.Error("box SVG incomplete")
	}
	// Histogram SVG.
	hist, err := stats.NewHistogram([]float64{1, 2, 2, 3, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fit := stats.Exponential{Lambda: 0.5}
	hsvg := SVGHistogram(&HistogramChart{Title: "h", Hist: hist, PDF: fit.PDF})
	if !strings.Contains(hsvg, "polyline") {
		t.Error("histogram SVG missing fit line")
	}
	// Empty charts produce valid documents.
	if s := SVGBoxChart(&BoxChart{Title: "e"}); !strings.Contains(s, "</svg>") {
		t.Error("empty box SVG invalid")
	}
	if s := SVGHistogram(&HistogramChart{Title: "e"}); !strings.Contains(s, "</svg>") {
		t.Error("empty histogram SVG invalid")
	}
	if s := SVGScatter(&ScatterChart{Title: "e"}, nil); !strings.Contains(s, "</svg>") {
		t.Error("empty scatter SVG invalid")
	}
	// XML escaping.
	if !strings.Contains(escapeXML(`a<b>&"c"`), "&lt;b&gt;&amp;") {
		t.Error("escapeXML wrong")
	}
}
