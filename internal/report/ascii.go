package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"avfda/internal/stats"
)

// BoxRow is one labeled box plot in a horizontal ASCII box chart.
type BoxRow struct {
	Label string
	Box   stats.FiveNum
}

// BoxChart renders horizontal box-and-whisker rows on a shared axis.
// LogScale plots log10(x); non-positive values are clamped to the axis
// minimum.
type BoxChart struct {
	Title    string
	Rows     []BoxRow
	Width    int // plot columns (default 60)
	LogScale bool
	Unit     string
}

// Render draws the chart.
func (c *BoxChart) Render() string {
	if len(c.Rows) == 0 {
		return c.Title + "\n(no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 60
	}
	tr := func(v float64) float64 {
		if !c.LogScale {
			return v
		}
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(v)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range c.Rows {
		for _, v := range []float64{tr(r.Box.Min), tr(r.Box.Max)} {
			if math.IsInf(v, -1) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		lo, hi = lo-1, lo+1
	}
	span := hi - lo
	col := func(v float64) int {
		x := tr(v)
		if math.IsInf(x, -1) {
			return 0
		}
		p := int(math.Round((x - lo) / span * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for _, r := range c.Rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		wLo, q1, med, q3, wHi := col(r.Box.LowWhisker), col(r.Box.Q1), col(r.Box.Median), col(r.Box.Q3), col(r.Box.HighWhisker)
		for i := wLo; i <= wHi && i < width; i++ {
			line[i] = '-'
		}
		for i := q1; i <= q3 && i < width; i++ {
			line[i] = '='
		}
		line[wLo] = '|'
		line[wHi] = '|'
		line[med] = 'M'
		fmt.Fprintf(&sb, "%-*s [%s]\n", labelW, r.Label, string(line))
	}
	loLabel, hiLabel := lo, hi
	scale := ""
	if c.LogScale {
		scale = " (log10)"
	}
	fmt.Fprintf(&sb, "%-*s  %-10.3g%s%10.3g %s%s\n",
		labelW, "", loLabel, strings.Repeat(" ", maxInt(width-22, 0)), hiLabel, c.Unit, scale)
	return sb.String()
}

// Series is one named point set in a scatter chart.
type Series struct {
	Label  string
	Xs, Ys []float64
	// Marker is the rune plotted for this series (assigned automatically
	// when zero).
	Marker rune
}

// ScatterChart renders multiple series on one grid, optionally in log-log
// space, with per-series markers and a legend.
type ScatterChart struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	Width, Height  int
	LogX, LogY     bool
}

var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// Render draws the chart.
func (c *ScatterChart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 70
	}
	if height <= 0 {
		height = 20
	}
	trX := axisTransform(c.LogX)
	trY := axisTransform(c.LogY)
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.Xs {
			x, y := trX(s.Xs[i]), trY(s.Ys[i])
			if !finite(x) || !finite(y) {
				continue
			}
			loX, hiX = math.Min(loX, x), math.Max(hiX, x)
			loY, hiY = math.Min(loY, y), math.Max(hiY, y)
		}
	}
	if !finite(loX) || !finite(loY) {
		return c.Title + "\n(no data)\n"
	}
	if loX == hiX {
		loX, hiX = loX-1, hiX+1
	}
	if loY == hiY {
		loY, hiY = loY-1, hiY+1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	plot := func(x, y float64, marker rune) {
		tx, ty := trX(x), trY(y)
		if !finite(tx) || !finite(ty) {
			return
		}
		cx := int(math.Round((tx - loX) / (hiX - loX) * float64(width-1)))
		cy := int(math.Round((ty - loY) / (hiY - loY) * float64(height-1)))
		row := height - 1 - cy
		if cx >= 0 && cx < width && row >= 0 && row < height {
			grid[row][cx] = marker
		}
	}
	var legend []string
	for i, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[i%len(defaultMarkers)]
		}
		for j := range s.Xs {
			plot(s.Xs[j], s.Ys[j], marker)
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Label))
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	axisNote := func(log bool) string {
		if log {
			return " [log10]"
		}
		return ""
	}
	fmt.Fprintf(&sb, "y: %s%s\n", c.YLabel, axisNote(c.LogY))
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "x: %s%s, range [%.3g, %.3g]; y range [%.3g, %.3g]\n",
		c.XLabel, axisNote(c.LogX), unTr(loX, c.LogX), unTr(hiX, c.LogX),
		unTr(loY, c.LogY), unTr(hiY, c.LogY))
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "legend: %s\n", strings.Join(legend, "  "))
	}
	return sb.String()
}

// HistogramChart renders a density histogram with an optional fitted PDF
// overlay (the Fig. 11/12 style).
type HistogramChart struct {
	Title  string
	Hist   stats.Histogram
	PDF    func(float64) float64 // optional fitted density
	Width  int
	Height int
}

// Render draws vertical bars ('█'-free, ASCII '#') with the fit as '·'.
func (c *HistogramChart) Render() string {
	width, height := c.Width, c.Height
	if height <= 0 {
		height = 12
	}
	nb := len(c.Hist.Counts)
	if nb == 0 {
		return c.Title + "\n(no data)\n"
	}
	if width <= 0 {
		width = nb
		if width < 40 {
			width = 40
		}
	}
	// Resample bins onto the display width.
	barAt := make([]float64, width)
	fitAt := make([]float64, width)
	lo := c.Hist.Edges[0]
	hi := c.Hist.Edges[len(c.Hist.Edges)-1]
	maxD := 0.0
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*(float64(i)+0.5)/float64(width)
		bin := sort.SearchFloat64s(c.Hist.Edges, x) - 1
		if bin < 0 {
			bin = 0
		}
		if bin >= nb {
			bin = nb - 1
		}
		barAt[i] = c.Hist.Density[bin]
		if c.PDF != nil {
			fitAt[i] = c.PDF(x)
		}
		maxD = math.Max(maxD, math.Max(barAt[i], fitAt[i]))
	}
	if maxD <= 0 {
		maxD = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for r := height; r >= 1; r-- {
		threshold := maxD * (float64(r) - 0.5) / float64(height)
		sb.WriteString("|")
		for i := 0; i < width; i++ {
			switch {
			case barAt[i] >= threshold && c.PDF != nil && math.Abs(fitAt[i]-threshold) < maxD/float64(height)/2:
				sb.WriteByte('*') // fit passing through a bar
			case barAt[i] >= threshold:
				sb.WriteByte('#')
			case c.PDF != nil && math.Abs(fitAt[i]-threshold) < maxD/float64(height)/2:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "x range [%.3g, %.3g], peak density %.3g\n", lo, hi, maxD)
	if c.PDF != nil {
		sb.WriteString("bars '#': data density; dots '.': fitted PDF\n")
	}
	return sb.String()
}

// StackedBar renders per-label fraction stacks (Fig. 6 style): each row is
// a label with segments keyed by a legend rune.
type StackedBar struct {
	Title string
	// Segments maps label -> ordered (name, fraction) pairs.
	Rows  []StackedRow
	Width int
}

// StackedRow is one bar.
type StackedRow struct {
	Label string
	Parts []StackedPart
}

// StackedPart is one segment of a bar.
type StackedPart struct {
	Name     string
	Fraction float64
}

// Render draws the stacked bars with a shared legend.
func (c *StackedBar) Render() string {
	width := c.Width
	if width <= 0 {
		width = 60
	}
	// Assign legend runes by first appearance.
	runes := map[string]rune{}
	var order []string
	for _, r := range c.Rows {
		for _, p := range r.Parts {
			if _, ok := runes[p.Name]; !ok {
				runes[p.Name] = rune('A' + len(order))
				order = append(order, p.Name)
			}
		}
	}
	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for _, r := range c.Rows {
		var bar strings.Builder
		used := 0
		for _, p := range r.Parts {
			n := int(math.Round(p.Fraction * float64(width)))
			if used+n > width {
				n = width - used
			}
			for i := 0; i < n; i++ {
				bar.WriteRune(runes[p.Name])
			}
			used += n
		}
		for used < width {
			bar.WriteByte(' ')
			used++
		}
		fmt.Fprintf(&sb, "%-*s [%s]\n", labelW, r.Label, bar.String())
	}
	sb.WriteString("legend:")
	for _, name := range order {
		fmt.Fprintf(&sb, " %c=%s", runes[name], name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func axisTransform(log bool) func(float64) float64 {
	if !log {
		return func(v float64) float64 { return v }
	}
	return func(v float64) float64 {
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(v)
	}
}

func unTr(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
