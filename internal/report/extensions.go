package report

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"avfda/internal/calib"
	"avfda/internal/core"
	"avfda/internal/mission"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// Extension renderers: analyses beyond the paper's printed artifacts —
// the §VI "not all miles are equivalent" context conditioning, the §V-C2
// proposed miles-between-disengagements metric, and the §VIII
// fault-injection mission model.

// RoadContext renders the road-type risk table.
func RoadContext(db *core.DB) string {
	risks, unknown := db.RoadBreakdown()
	t := Table{
		Title:   "Context — disengagements by road type (§VI: not all miles are equivalent)",
		Headers: []string{"Road type", "Events", "Event share", "Mile share", "Relative risk"},
		Aligns:  []Align{Left, Right, Right, Right, Right},
	}
	for _, r := range risks {
		t.AddRow(r.Road.String(), r.Events,
			fmt.Sprintf("%.1f%%", 100*r.EventShare),
			fmt.Sprintf("%.1f%%", 100*r.MileShare),
			fmt.Sprintf("%.2fx", r.RelativeRisk))
	}
	if unknown > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d events reported no road type", unknown))
	}
	t.Notes = append(t.Notes, "relative risk = event share / mileage share; >1 over-produces disengagements")
	return t.Render()
}

// WeatherContext renders the weather breakdown.
func WeatherContext(db *core.DB) string {
	wx := db.WeatherBreakdown()
	t := Table{
		Title:   "Context — disengagements by reported weather",
		Headers: []string{"Weather", "Events"},
		Aligns:  []Align{Left, Right},
	}
	for _, w := range []schema.Weather{
		schema.WeatherSunny, schema.WeatherCloudy, schema.WeatherRaining,
		schema.WeatherFoggy, schema.WeatherUnknown,
	} {
		if n := wx[w]; n > 0 {
			t.AddRow(w.String(), n)
		}
	}
	return t.Render()
}

// MilesBetween renders the paper's proposed §V-C2 metric as a box chart.
func MilesBetween(db *core.DB) string {
	c := BoxChart{
		Title:    "Proposed metric — per-vehicle miles between disengagements (§V-C2)",
		LogScale: true,
		Unit:     "miles",
	}
	var notes strings.Builder
	for _, d := range db.MilesBetweenDisengagements() {
		c.Rows = append(c.Rows, BoxRow{Label: string(d.Manufacturer), Box: d.Box})
		if d.CensoredVehicles > 0 {
			fmt.Fprintf(&notes, "  %s: %d event-free vehicles (right-censored at their mileage)\n",
				d.Manufacturer, d.CensoredVehicles)
		}
	}
	out := c.Render()
	if notes.Len() > 0 {
		out += "censoring:\n" + notes.String()
	}
	return out
}

// Survival renders the Kaplan–Meier miles-to-first-disengagement analysis:
// per-manufacturer medians with censoring counts, survival probabilities at
// reference mileages, and the Waymo-vs-field log-rank verdict.
func Survival(db *core.DB) (string, error) {
	curves, err := db.SurvivalCurves()
	if err != nil {
		return "", err
	}
	t := Table{
		Title: "Survival — Kaplan-Meier miles to first disengagement per vehicle",
		Headers: []string{"Manufacturer", "Vehicles", "Censored", "Median miles",
			"S(100 mi)", "S(1000 mi)"},
		Aligns: []Align{Left, Right, Right, Right, Right, Right},
	}
	for _, c := range curves {
		t.AddRow(string(c.Manufacturer), c.KM.N, c.KM.Censored,
			Dash(c.MedianMiles, "%.1f"),
			fmt.Sprintf("%.3f", c.KM.At(100)),
			fmt.Sprintf("%.3f", c.KM.At(1000)))
	}
	t.Notes = append(t.Notes,
		"censored = vehicles with mileage but no disengagement (survive past their total miles)",
		"dash median = curve never reaches 0.5 (more than half the fleet never disengaged)")
	out := t.Render()
	chi2, p, err := db.SurvivalLogRank(schema.Waymo, schema.MercedesBenz)
	if err == nil {
		out += fmt.Sprintf("log-rank Waymo vs Mercedes-Benz: chi2 = %.1f, p = %.3g\n", chi2, p)
	}
	return out, nil
}

// MissionValidation fits the stochastic fault-injection model, validates it
// against the field rates, and renders the counterfactual sweeps.
func MissionValidation(db *core.DB, missions int, seed int64) (string, error) {
	model, err := mission.Fit(db, calib.MedianTripMiles)
	if err != nil {
		return "", err
	}
	base, _, err := mission.Campaign(model, missions, rand.New(rand.NewSource(seed)), false)
	if err != nil {
		return "", err
	}
	var miles float64
	for _, m := range db.Mileage {
		miles += m.Miles
	}
	fieldDPM := float64(len(db.Events)) / miles
	fieldAPM := float64(len(db.Accidents)) / miles

	var sb strings.Builder
	sb.WriteString("Fault-injection mission model (§VIII future work)\n")
	fmt.Fprintf(&sb, "  fitted: fault rate %.3g/mile, ADS detection %.2f, reaction Weibull(k=%.2f, λ=%.2f)\n",
		totalRate(model), model.DetectionProb, model.Reaction.K, model.Reaction.Lambda)
	fmt.Fprintf(&sb, "  %d simulated %g-mile missions:\n", missions, model.TripMiles)
	fmt.Fprintf(&sb, "    DPM  simulated %.3g   field %.3g\n", base.DPM(), fieldDPM)
	fmt.Fprintf(&sb, "    APM  simulated %.3g   field %.3g\n", base.APM(), fieldAPM)
	fmt.Fprintf(&sb, "    DPA  simulated %.0f   field %.0f\n", base.DPA(),
		float64(len(db.Events))/float64(max(len(db.Accidents), 1)))

	// Where do simulated accidents originate in the control structure?
	if len(base.ByOutcomeLocus) > 0 {
		type locusCount struct {
			locus string
			n     int
		}
		var loci []locusCount
		for l, n := range base.ByOutcomeLocus {
			loci = append(loci, locusCount{string(l), n})
		}
		sort.Slice(loci, func(i, j int) bool {
			if loci[i].n != loci[j].n {
				return loci[i].n > loci[j].n
			}
			return loci[i].locus < loci[j].locus
		})
		sb.WriteString("  accident loci (STPA components):")
		for _, lc := range loci {
			fmt.Fprintf(&sb, " %s=%d", lc.locus, lc.n)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  counterfactuals (accident-rate multiple of baseline):\n")
	for _, c := range []mission.Counterfactual{
		{Name: "drivers 2x slower", Model: model.WithReactionScale(2)},
		{Name: "action window halved", Model: model.WithWindowScale(0.5)},
		{Name: "perception faults cut 5x", Model: model.WithTagRateScale(ontology.TagRecognitionSystem, 0.2)},
	} {
		st, _, err := mission.Campaign(c.Model, missions, rand.New(rand.NewSource(seed)), false)
		if err != nil {
			return "", err
		}
		mult := 0.0
		if base.APM() > 0 {
			mult = st.APM() / base.APM()
		}
		fmt.Fprintf(&sb, "    %-26s APM %.3g (%.1fx)\n", c.Name, st.APM(), mult)
	}
	return sb.String(), nil
}

func totalRate(m mission.Model) float64 {
	var r float64
	for _, v := range m.TagRates {
		r += v
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
