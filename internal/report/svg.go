package report

import (
	"fmt"
	"math"
	"strings"
)

// SVG rendering: the same chart models as the ASCII renderers, emitted as
// standalone SVG documents for inclusion in reports. The implementation is
// intentionally small — axes, points, lines, boxes — with no external
// dependencies.

// svgPalette cycles through distinguishable stroke colors.
var svgPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	svgW, svgH = 640, 420
	svgMargin  = 56.0
	svgPlotW   = float64(svgW) - 2*svgMargin
	svgPlotH   = float64(svgH) - 2*svgMargin
)

// svgDoc accumulates SVG elements.
type svgDoc struct {
	sb strings.Builder
}

func newSVGDoc(title string) *svgDoc {
	d := &svgDoc{}
	fmt.Fprintf(&d.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", svgW, svgH, svgW, svgH)
	d.sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&d.sb, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", svgW/2-len(title)*3, escapeXML(title))
	return d
}

func (d *svgDoc) finish() string {
	d.sb.WriteString("</svg>\n")
	return d.sb.String()
}

// axes draws the plot frame and min/max tick labels.
func (d *svgDoc) axes(xLabel, yLabel string, loX, hiX, loY, hiY float64, logX, logY bool) {
	fmt.Fprintf(&d.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n",
		svgMargin, svgMargin, svgPlotW, svgPlotH)
	lab := func(v float64, log bool) string {
		return fmt.Sprintf("%.3g", unTr(v, log))
	}
	fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
		svgMargin, svgMargin+svgPlotH+16, lab(loX, logX))
	fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
		svgMargin+svgPlotW, svgMargin+svgPlotH+16, lab(hiX, logX))
	fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
		svgMargin-6, svgMargin+svgPlotH, lab(loY, logY))
	fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
		svgMargin-6, svgMargin+10, lab(hiY, logY))
	fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		svgMargin+svgPlotW/2, float64(svgH)-10, escapeXML(xLabel+axisSuffix(logX)))
	fmt.Fprintf(&d.sb, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`+"\n",
		svgMargin+svgPlotH/2, svgMargin+svgPlotH/2, escapeXML(yLabel+axisSuffix(logY)))
}

func axisSuffix(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}

// SVGScatter renders a ScatterChart as SVG, with one optional fitted line
// per series (slope/intercept in the transformed space).
func SVGScatter(c *ScatterChart, fits map[string][2]float64) string {
	trX := axisTransform(c.LogX)
	trY := axisTransform(c.LogY)
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.Xs {
			x, y := trX(s.Xs[i]), trY(s.Ys[i])
			if !finite(x) || !finite(y) {
				continue
			}
			loX, hiX = math.Min(loX, x), math.Max(hiX, x)
			loY, hiY = math.Min(loY, y), math.Max(hiY, y)
		}
	}
	d := newSVGDoc(c.Title)
	if !finite(loX) || !finite(loY) {
		return d.finish()
	}
	if loX == hiX {
		loX, hiX = loX-1, hiX+1
	}
	if loY == hiY {
		loY, hiY = loY-1, hiY+1
	}
	px := func(x float64) float64 { return svgMargin + (x-loX)/(hiX-loX)*svgPlotW }
	py := func(y float64) float64 { return svgMargin + svgPlotH - (y-loY)/(hiY-loY)*svgPlotH }
	d.axes(c.XLabel, c.YLabel, loX, hiX, loY, hiY, c.LogX, c.LogY)
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		for i := range s.Xs {
			x, y := trX(s.Xs[i]), trY(s.Ys[i])
			if !finite(x) || !finite(y) {
				continue
			}
			fmt.Fprintf(&d.sb, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s" fill-opacity="0.75"/>`+"\n", px(x), py(y), color)
		}
		if fit, ok := fits[s.Label]; ok {
			y1 := fit[1] + fit[0]*loX
			y2 := fit[1] + fit[0]*hiX
			fmt.Fprintf(&d.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.4" stroke-dasharray="5,3"/>`+"\n",
				px(loX), py(clampF(y1, loY, hiY)), px(hiX), py(clampF(y2, loY, hiY)), color)
		}
		fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
			svgMargin+svgPlotW+4-130, svgMargin+14*float64(si+1), color, escapeXML(s.Label))
	}
	return d.finish()
}

// SVGBoxChart renders a BoxChart as SVG.
func SVGBoxChart(c *BoxChart) string {
	d := newSVGDoc(c.Title)
	if len(c.Rows) == 0 {
		return d.finish()
	}
	tr := axisTransform(c.LogScale)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range c.Rows {
		for _, v := range []float64{tr(r.Box.LowWhisker), tr(r.Box.HighWhisker)} {
			if !finite(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if !finite(lo) || lo == hi {
		lo, hi = lo-1, lo+1
	}
	px := func(v float64) float64 {
		t := tr(v)
		if !finite(t) {
			t = lo
		}
		return svgMargin + (t-lo)/(hi-lo)*svgPlotW
	}
	rowH := svgPlotH / float64(len(c.Rows))
	d.axes(c.Unit, "", lo, hi, 0, float64(len(c.Rows)), c.LogScale, false)
	for i, r := range c.Rows {
		cy := svgMargin + rowH*(float64(i)+0.5)
		color := svgPalette[i%len(svgPalette)]
		// Whisker line.
		fmt.Fprintf(&d.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
			px(r.Box.LowWhisker), cy, px(r.Box.HighWhisker), cy, color)
		// IQR box.
		fmt.Fprintf(&d.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.35" stroke="%s"/>`+"\n",
			px(r.Box.Q1), cy-rowH*0.3, math.Max(px(r.Box.Q3)-px(r.Box.Q1), 1), rowH*0.6, color, color)
		// Median tick.
		fmt.Fprintf(&d.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			px(r.Box.Median), cy-rowH*0.33, px(r.Box.Median), cy+rowH*0.33, color)
		fmt.Fprintf(&d.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			svgMargin-6, cy+4, escapeXML(r.Label))
	}
	return d.finish()
}

// SVGHistogram renders a HistogramChart as SVG.
func SVGHistogram(c *HistogramChart) string {
	d := newSVGDoc(c.Title)
	nb := len(c.Hist.Counts)
	if nb == 0 {
		return d.finish()
	}
	lo := c.Hist.Edges[0]
	hi := c.Hist.Edges[nb]
	maxD := 0.0
	for _, v := range c.Hist.Density {
		maxD = math.Max(maxD, v)
	}
	if c.PDF != nil {
		for i := 0; i <= 100; i++ {
			x := lo + (hi-lo)*float64(i)/100
			maxD = math.Max(maxD, c.PDF(x))
		}
	}
	if maxD <= 0 {
		maxD = 1
	}
	px := func(x float64) float64 { return svgMargin + (x-lo)/(hi-lo)*svgPlotW }
	py := func(y float64) float64 { return svgMargin + svgPlotH - y/maxD*svgPlotH }
	d.axes("value", "density", lo, hi, 0, maxD, false, false)
	for i := 0; i < nb; i++ {
		x1 := px(c.Hist.Edges[i])
		x2 := px(c.Hist.Edges[i+1])
		y := py(c.Hist.Density[i])
		fmt.Fprintf(&d.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#1f77b4" fill-opacity="0.55" stroke="#1f77b4"/>`+"\n",
			x1, y, math.Max(x2-x1-0.5, 0.5), svgMargin+svgPlotH-y)
	}
	if c.PDF != nil {
		var pts []string
		for i := 0; i <= 200; i++ {
			x := lo + (hi-lo)*float64(i)/200
			y := c.PDF(x)
			if !finite(y) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(math.Min(y, maxD))))
		}
		fmt.Fprintf(&d.sb, `<polyline points="%s" fill="none" stroke="#d62728" stroke-width="1.6"/>`+"\n", strings.Join(pts, " "))
	}
	return d.finish()
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
