package report

import (
	"strings"
	"testing"
)

func TestRoadContext(t *testing.T) {
	db := testDB(t)
	out := RoadContext(db)
	for _, want := range []string{"city street", "Relative risk", "mileage share"} {
		if !strings.Contains(out, want) {
			t.Errorf("road context missing %q", want)
		}
	}
}

func TestWeatherContext(t *testing.T) {
	db := testDB(t)
	out := WeatherContext(db)
	if !strings.Contains(out, "sunny") {
		t.Errorf("weather context missing sunny:\n%s", out)
	}
}

func TestMilesBetween(t *testing.T) {
	db := testDB(t)
	out := MilesBetween(db)
	if !strings.Contains(out, "miles between disengagements") {
		t.Error("MBD title missing")
	}
	if !strings.Contains(out, "Waymo") {
		t.Error("MBD missing Waymo row")
	}
	if !strings.Contains(out, "censoring:") {
		t.Error("MBD missing censoring note")
	}
}

func TestMissionValidation(t *testing.T) {
	db := testDB(t)
	out, err := MissionValidation(db, 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fault-injection mission model", "DPM  simulated", "DPA  simulated",
		"counterfactuals", "drivers 2x slower",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mission validation missing %q:\n%s", want, out)
		}
	}
}

func TestSurvivalSection(t *testing.T) {
	db := testDB(t)
	out, err := Survival(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Kaplan-Meier", "Waymo", "log-rank", "Censored"} {
		if !strings.Contains(out, want) {
			t.Errorf("survival section missing %q", want)
		}
	}
}

func TestMissionValidationEmptyDB(t *testing.T) {
	if _, err := MissionValidation(nil, 100, 1); err == nil {
		t.Error("nil db: want error")
	}
}
