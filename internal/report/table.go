// Package report renders the analysis results of package core into the
// paper's tables and figures: aligned text tables and ASCII charts for the
// terminal (the source of truth for EXPERIMENTS.md), and SVG for richer
// viewing. Rendering is pure: every function maps data to strings/bytes.
package report

import (
	"fmt"
	"strings"
)

// Align selects column alignment in a text table.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Aligns  []Align // optional; defaults to Left
	Rows    [][]string
	// Notes are printed under the table, one per line, prefixed "note:".
	Notes []string
}

// AddRow appends a row, converting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with box-drawing rules.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	align := func(i int) Align {
		if i < len(t.Aligns) {
			return t.Aligns[i]
		}
		return Left
	}
	pad := func(s string, i int) string {
		w := widths[i]
		gap := w - len([]rune(s))
		if gap <= 0 {
			return s
		}
		if align(i) == Right {
			return strings.Repeat(" ", gap) + s
		}
		return s + strings.Repeat(" ", gap)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	rule := func() {
		for i := 0; i < cols; i++ {
			sb.WriteString("+")
			sb.WriteString(strings.Repeat("-", widths[i]+2))
		}
		sb.WriteString("+\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			sb.WriteString("| ")
			sb.WriteString(pad(cell, i))
			sb.WriteString(" ")
		}
		sb.WriteString("|\n")
	}
	rule()
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		rule()
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	rule()
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// RenderMarkdown draws the table as GitHub-flavored markdown: a bold title
// line, a header row with alignment markers, and the notes as italic lines.
func (t *Table) RenderMarkdown() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	writeRow := func(row []string) {
		sb.WriteString("|")
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = esc(row[i])
			}
			sb.WriteString(" ")
			sb.WriteString(cell)
			sb.WriteString(" |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sb.WriteString("|")
	for i := 0; i < cols; i++ {
		if i < len(t.Aligns) && t.Aligns[i] == Right {
			sb.WriteString("---:|")
		} else {
			sb.WriteString("---|")
		}
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", esc(n))
	}
	return sb.String()
}

// Dash renders negative sentinel values as the paper's dash.
func Dash(v float64, format string) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// DashInt renders negative counts as a dash.
func DashInt(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
