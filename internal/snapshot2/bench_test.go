package snapshot2

import (
	"context"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/pipeline"
	"avfda/internal/query"
	"avfda/internal/snapshot"
	"avfda/internal/synth"
)

// buildStudy runs the full Stage I-IV pipeline for a seed — the cost both
// snapshot tiers exist to avoid.
func buildStudy(tb testing.TB, seed int64) *core.DB {
	tb.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Synth = synth.Config{Seed: seed}
	cfg.OCR.Seed = seed
	res, err := pipeline.Run(context.Background(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return res.DB
}

// openV2 is the cold-open path avserve's v2 tier takes: map, validate, and
// stand a query engine directly on the columns — no deserialization.
func openV2(tb testing.TB, dir string, seed int64) (*View, *query.Engine) {
	tb.Helper()
	v, err := OpenSeed(dir, seed)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := query.NewFromSource(v, v.Database)
	if err != nil {
		tb.Fatal(err)
	}
	return v, eng
}

// BenchmarkSnapshotV2Load measures the v2 warm-start path on the
// calibrated seed-1 study: map the file, checksum + structural validation,
// and engine construction over the raw columns. Compare against the v1
// pair in internal/snapshot (BenchmarkSnapshotLoad, deserializing, and
// BenchmarkSnapshotPipelineRebuild); the acceptance bar — v2 at least 10x
// faster than v1 — is pinned by TestSnapshotV2LoadSpeedup. The snapshot's
// byte size is reported alongside ns/op for the perf-trajectory artifact.
func BenchmarkSnapshotV2Load(b *testing.B) {
	dir := b.TempDir()
	if _, err := WriteSeed(dir, 1, buildStudy(b, 1)); err != nil {
		b.Fatal(err)
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := openV2(b, dir, 1)
		size = v.Size()
		v.Close()
	}
	b.ReportMetric(float64(size), "bytes")
}

// BenchmarkSnapshotV2Write measures the export cost avpipe -snapshot-out
// and the cache's v2 write-through tier pay per study.
func BenchmarkSnapshotV2Write(b *testing.B) {
	db := buildStudy(b, 1)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WriteSeed(dir, 1, db); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSnapshotV2LoadSpeedup pins the performance contract that justifies
// the second format: cold-opening a v2 snapshot into a serving engine must
// be at least 10x faster than the v1 deserializing load of the same study.
// Both sides are measured in this process on the calibrated seed-1 study,
// each iteration doing everything its cache tier does on a miss.
func TestSnapshotV2LoadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build in -short mode")
	}
	dir := t.TempDir()
	db := buildStudy(t, 1)
	if err := snapshot.WriteSeed(dir, 1, db); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSeed(dir, 1, db); err != nil {
		t.Fatal(err)
	}

	// Warm the page cache on both files so the comparison is CPU-bound, the
	// regime that dominates once a replica has run for more than a moment.
	if _, err := snapshot.ReadSeed(dir, 1); err != nil {
		t.Fatal(err)
	}
	v, _ := openV2(t, dir, 1)
	v.Close()

	const loads = 5
	start := time.Now()
	for i := 0; i < loads; i++ {
		dbV1, err := snapshot.ReadSeed(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := query.New(dbV1); err != nil {
			t.Fatal(err)
		}
	}
	v1 := time.Since(start) / loads

	start = time.Now()
	for i := 0; i < loads; i++ {
		v, _ := openV2(t, dir, 1)
		v.Close()
	}
	v2 := time.Since(start) / loads

	t.Logf("v1 deserializing load %v, v2 mapped open %v (%.0fx)", v1, v2, float64(v1)/float64(v2))
	if v2*10 > v1 {
		t.Errorf("v2 open %v is not 10x faster than v1 load %v", v2, v1)
	}
}
