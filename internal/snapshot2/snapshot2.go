// Package snapshot2 persists a built study — the consolidated failure
// database (core.DB) — in a memory-mappable columnar layout (system #23 in
// DESIGN.md §2), the second-generation sibling of package snapshot.
//
// The v1 format deserializes the whole database into heap objects before
// the query engine can touch a single row: O(study) allocation per cold
// load. The v2 layout is arranged so the query engine reads the file bytes
// in place — a View implements the column read surface query.Engine needs
// (interface query.Source) directly over the mapped file, with lazy string
// materialization and no per-row decoding. Opening a snapshot costs a
// checksum pass and a structural validation of the section directory;
// resident cost is pages of the mapped file, not heap, which is what makes
// thousands of concurrently-hot studies per node feasible.
//
// File layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "AVSNAP2\x00"
//	8       2     format version (currently 2)
//	10      8     payload length in bytes
//	18      4     CRC-32C (Castagnoli) of the payload
//	22      ...   payload
//
// The payload starts with a section directory — a count followed by
// {id uint32, offset uint64, length uint64} entries whose offsets are
// relative to the payload start — and the sections themselves, which must
// tile the payload contiguously in directory order. Sections:
//
//	meta          record counts for every table plus the string count
//	string table  cumulative uint32 offsets + a deduplicated UTF-8 blob
//	columns       one fixed-width section per column (uint32 string ids,
//	              int64 scalars, float64 bit patterns, uint8 flag bytes)
//	posting lists delta-encoded ascending row ids per distinct value of
//	              the manufacturer/tag/category inverted indexes
//
// Encoding the same database always yields the same bytes, so
// write→read→re-write round-trips are byte-identical (property-tested).
//
// Compatibility policy matches v1: readers reject every version other than
// their own, and a v1 reader rejects a v2 file (and vice versa) on the
// magic. Truncated or bit-flipped files are rejected with typed errors
// (*FormatError, *VersionError, *ChecksumError) before any byte is
// trusted; callers fall back to the v1 snapshot or a pipeline rebuild.
// CRC-32C is an integrity check against accidental corruption (it catches
// every single-byte flip and every truncation, via the length field), not
// a cryptographic seal — snapshots are local cache artifacts, the same
// trust model v1's SHA-256 served.
package snapshot2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"avfda/internal/core"
)

// Version is the current snapshot2 format version. Readers accept exactly
// this version; see the package comment for the compatibility policy.
const Version uint16 = 2

// magic identifies a v2 snapshot file; eight bytes keep the header scalars
// that follow naturally aligned, and it differs from v1's magic so each
// reader rejects the other's files with a clean *FormatError.
const magic = "AVSNAP2\x00"

// headerLen is the byte length of the fixed header preceding the payload.
const headerLen = len(magic) + 2 + 8 + 4

// castagnoli is the CRC-32C table used for the payload checksum; the
// polynomial is hardware-accelerated on every deployment target, so the
// open-time integrity pass runs at memory bandwidth.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section ids, in the order sections appear in the payload. The directory
// must list exactly these ids, ascending, and the sections must tile the
// payload contiguously — self-description for forward evolution, strict
// validation for today.
const (
	secMeta uint32 = 1 + iota
	secStrOffsets
	secStrBlob
	secEvMfr
	secEvVehicle
	secEvYear
	secEvTimeSec
	secEvTimeNsec
	secEvCause
	secEvModality
	secEvRoad
	secEvWeather
	secEvReaction
	secEvTag
	secEvCategory
	secMlMfr
	secMlVehicle
	secMlYear
	secMlMonthSec
	secMlMonthNsec
	secMlMiles
	secFlMfr
	secFlYear
	secFlCars
	secAcMfr
	secAcVehicle
	secAcYear
	secAcTimeSec
	secAcTimeNsec
	secAcLocation
	secAcNarrative
	secAcAVSpeed
	secAcOtherSpeed
	secAcFlags
	secIdxMfr
	secIdxTag
	secIdxCategory
	numSections = iota
)

// accident flag bits packed into the secAcFlags byte column.
const (
	flagAutonomous = 1 << 0
	flagRedacted   = 1 << 1
)

// FormatError reports a structurally invalid snapshot: wrong magic,
// truncation, a malformed section directory, or column data that violates
// the layout invariants.
type FormatError struct {
	// Reason describes the structural violation.
	Reason string
}

// Error implements the error interface.
func (e *FormatError) Error() string { return "snapshot2: " + e.Reason }

// VersionError reports a snapshot written by an incompatible format version.
type VersionError struct {
	Got, Want uint16
}

// Error implements the error interface.
func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot2: format version %d, want %d", e.Got, e.Want)
}

// ChecksumError reports payload corruption: the stored CRC-32C does not
// match the payload bytes.
type ChecksumError struct {
	// Got and Want are the recomputed and stored CRC-32C values.
	Got, Want uint32
}

// Error implements the error interface.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot2: payload checksum %08x, header says %08x", e.Got, e.Want)
}

// Path returns the canonical v2 snapshot file name for a study seed inside
// dir. It sits beside the v1 file (study-<seed>.avsnap) so one snapshot
// directory serves both tiers.
func Path(dir string, seed int64) string {
	return filepath.Join(dir, fmt.Sprintf("study-%d.avsnap2", seed))
}

// Encode serializes the database into the v2 columnar wire format.
// Encoding is deterministic: the string table interns values in a fixed
// traversal order and posting-list keys are sorted, so identical databases
// encode to identical bytes.
func Encode(db *core.DB) ([]byte, error) {
	if db == nil {
		return nil, errors.New("snapshot2: nil database")
	}
	var e encoder
	e.strIndex = make(map[string]uint32)
	e.intern("") // id 0 is always the empty string

	nEv, nMl, nFl, nAc := len(db.Events), len(db.Mileage), len(db.Fleets), len(db.Accidents)

	// Event columns. String-valued columns store string-table ids; enum
	// columns store the raw integer (the View renders display strings on
	// access), timestamps store Unix seconds + in-second nanoseconds.
	evMfr := make([]uint32, nEv)
	evVeh := make([]uint32, nEv)
	evYear := make([]int64, nEv)
	evSec := make([]int64, nEv)
	evNsec := make([]int64, nEv)
	evCause := make([]uint32, nEv)
	evModality := make([]int64, nEv)
	evRoad := make([]int64, nEv)
	evWeather := make([]int64, nEv)
	evReaction := make([]float64, nEv)
	evTag := make([]int64, nEv)
	evCategory := make([]int64, nEv)
	for i, ev := range db.Events {
		evMfr[i] = e.intern(string(ev.Manufacturer))
		evVeh[i] = e.intern(string(ev.Vehicle))
		evYear[i] = int64(ev.ReportYear)
		evSec[i] = ev.Time.Unix()
		evNsec[i] = int64(ev.Time.Nanosecond())
		evCause[i] = e.intern(ev.Cause)
		evModality[i] = int64(ev.Modality)
		evRoad[i] = int64(ev.Road)
		evWeather[i] = int64(ev.Weather)
		evReaction[i] = ev.ReactionSeconds
		evTag[i] = int64(ev.Tag)
		evCategory[i] = int64(ev.Category)
	}

	mlMfr := make([]uint32, nMl)
	mlVeh := make([]uint32, nMl)
	mlYear := make([]int64, nMl)
	mlSec := make([]int64, nMl)
	mlNsec := make([]int64, nMl)
	mlMiles := make([]float64, nMl)
	for i, m := range db.Mileage {
		mlMfr[i] = e.intern(string(m.Manufacturer))
		mlVeh[i] = e.intern(string(m.Vehicle))
		mlYear[i] = int64(m.ReportYear)
		mlSec[i] = m.Month.Unix()
		mlNsec[i] = int64(m.Month.Nanosecond())
		mlMiles[i] = m.Miles
	}

	flMfr := make([]uint32, nFl)
	flYear := make([]int64, nFl)
	flCars := make([]int64, nFl)
	for i, f := range db.Fleets {
		flMfr[i] = e.intern(string(f.Manufacturer))
		flYear[i] = int64(f.ReportYear)
		flCars[i] = int64(f.Cars)
	}

	acMfr := make([]uint32, nAc)
	acVeh := make([]uint32, nAc)
	acYear := make([]int64, nAc)
	acSec := make([]int64, nAc)
	acNsec := make([]int64, nAc)
	acLoc := make([]uint32, nAc)
	acNarr := make([]uint32, nAc)
	acAV := make([]float64, nAc)
	acOther := make([]float64, nAc)
	acFlags := make([]byte, nAc)
	for i, a := range db.Accidents {
		acMfr[i] = e.intern(string(a.Manufacturer))
		acVeh[i] = e.intern(string(a.Vehicle))
		acYear[i] = int64(a.ReportYear)
		acSec[i] = a.Time.Unix()
		acNsec[i] = int64(a.Time.Nanosecond())
		acLoc[i] = e.intern(a.Location)
		acNarr[i] = e.intern(a.Narrative)
		acAV[i] = a.AVSpeedMPH
		acOther[i] = a.OtherSpeedMPH
		var flags byte
		if a.InAutonomousMode {
			flags |= flagAutonomous
		}
		if a.Redacted {
			flags |= flagRedacted
		}
		acFlags[i] = flags
	}

	// Inverted indexes over the event columns, keyed exactly like
	// query.Engine's in-heap indexes: lower-cased display value → ascending
	// row ids. Index keys are interned after the row columns so row data
	// dominates string-table locality.
	idxMfr := e.encodePostings(db, func(ev *core.Event) string { return string(ev.Manufacturer) })
	idxTag := e.encodePostings(db, func(ev *core.Event) string { return ev.Tag.String() })
	idxCat := e.encodePostings(db, func(ev *core.Event) string { return ev.Category.String() })

	// Meta + string table sections.
	meta := make([]byte, 0, 5*8)
	for _, n := range []int{nEv, nMl, nFl, nAc, len(e.strs)} {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(n))
	}
	strOff := make([]byte, 0, 4*(len(e.strs)+1))
	var blobLen uint32
	strOff = binary.LittleEndian.AppendUint32(strOff, 0)
	var blob []byte
	for _, s := range e.strs {
		blob = append(blob, s...)
		blobLen += uint32(len(s))
		strOff = binary.LittleEndian.AppendUint32(strOff, blobLen)
	}

	sections := [][]byte{
		meta, strOff, blob,
		u32Bytes(evMfr), u32Bytes(evVeh), i64Bytes(evYear), i64Bytes(evSec),
		i64Bytes(evNsec), u32Bytes(evCause), i64Bytes(evModality), i64Bytes(evRoad),
		i64Bytes(evWeather), f64Bytes(evReaction), i64Bytes(evTag), i64Bytes(evCategory),
		u32Bytes(mlMfr), u32Bytes(mlVeh), i64Bytes(mlYear), i64Bytes(mlSec),
		i64Bytes(mlNsec), f64Bytes(mlMiles),
		u32Bytes(flMfr), i64Bytes(flYear), i64Bytes(flCars),
		u32Bytes(acMfr), u32Bytes(acVeh), i64Bytes(acYear), i64Bytes(acSec),
		i64Bytes(acNsec), u32Bytes(acLoc), u32Bytes(acNarr), f64Bytes(acAV),
		f64Bytes(acOther), acFlags,
		idxMfr, idxTag, idxCat,
	}

	// Section directory: ids are 1-based and consecutive, offsets relative
	// to the payload start, sections tiling the rest of the payload.
	dirLen := 4 + numSections*(4+8+8)
	payloadLen := dirLen
	for _, s := range sections {
		payloadLen += len(s)
	}
	payload := make([]byte, 0, payloadLen)
	payload = binary.LittleEndian.AppendUint32(payload, numSections)
	off := uint64(dirLen)
	for i, s := range sections {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(i+1))
		payload = binary.LittleEndian.AppendUint64(payload, off)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(s)))
		off += uint64(len(s))
	}
	for _, s := range sections {
		payload = append(payload, s...)
	}

	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = append(out, payload...)
	return out, nil
}

// encoder accumulates the deduplicated string table during Encode.
type encoder struct {
	strIndex map[string]uint32
	strs     []string
}

// intern returns the string-table id for s, assigning the next id on first
// use. Assignment order follows the encoder's fixed traversal, so the
// table is deterministic.
func (e *encoder) intern(s string) uint32 {
	if id, ok := e.strIndex[s]; ok {
		return id
	}
	id := uint32(len(e.strs))
	e.strIndex[s] = id
	e.strs = append(e.strs, s)
	return id
}

// encodePostings builds one inverted-index section: lower-cased value →
// delta-encoded ascending row ids, keys sorted so encoding is
// deterministic.
func (e *encoder) encodePostings(db *core.DB, value func(*core.Event) string) []byte {
	lists := make(map[string][]int)
	for i := range db.Events {
		k := strings.ToLower(value(&db.Events[i]))
		lists[k] = append(lists[k], i)
	}
	keys := make([]string, 0, len(lists))
	for k := range lists {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	blobs := make([][]byte, len(keys))
	var blobLen int
	for i, k := range keys {
		ids := lists[k]
		var b []byte
		prev := 0
		for j, id := range ids {
			delta := id - prev
			if j == 0 {
				delta = id
			}
			b = binary.AppendUvarint(b, uint64(delta))
			prev = id
		}
		blobs[i] = b
		blobLen += len(b)
	}

	out := make([]byte, 0, 4+len(keys)*12+blobLen)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(keys)))
	for i, k := range keys {
		out = binary.LittleEndian.AppendUint32(out, e.intern(k))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(lists[k])))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blobs[i])))
	}
	for _, b := range blobs {
		out = append(out, b...)
	}
	return out
}

// u32Bytes renders a uint32 column as little-endian bytes.
func u32Bytes(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// i64Bytes renders an int64 column as little-endian bytes.
func i64Bytes(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// f64Bytes renders a float64 column by IEEE-754 bit patterns.
func f64Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// Write atomically persists the database to path in v2 format: staged in a
// temporary file in the same directory and renamed into place, so readers
// never observe a half-written file. Atomic replacement also means a
// reader that already mapped the previous file keeps its (complete,
// consistent) bytes — the unlinked inode stays alive until unmapped. It
// returns the payload's CRC-32C, the same value View.Checksum reports for
// the written file, so write-through callers can derive ETags without
// re-reading what they just wrote.
func Write(path string, db *core.DB) (uint32, error) {
	data, err := Encode(db)
	if err != nil {
		return 0, err
	}
	crc := binary.LittleEndian.Uint32(data[len(magic)+10:])
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	return crc, nil
}

// WriteSeed persists the database under dir with the canonical per-seed v2
// file name, returning the payload checksum like Write.
func WriteSeed(dir string, seed int64, db *core.DB) (uint32, error) {
	return Write(Path(dir, seed), db)
}

// WriteSeedBytes atomically installs already-encoded snapshot bytes as the
// canonical v2 file for seed — the landing step of a peer snapshot fetch.
// The caller is responsible for having validated data (NewView) first;
// this function only guarantees the atomic, never-half-written placement.
func WriteSeedBytes(dir string, seed int64, data []byte) error {
	return writeFileAtomic(Path(dir, seed), data)
}

// writeFileAtomic stages data in a temporary file beside path and renames
// it into place.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot2: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot2: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot2: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot2: %w", err)
	}
	// CreateTemp opens 0600; a snapshot is a shippable artifact, so widen
	// to the usual umask-style file mode before publishing it.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot2: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot2: %w", err)
	}
	return nil
}
