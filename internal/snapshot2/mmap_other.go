//go:build !unix

package snapshot2

// Open loads and validates the snapshot at path. Platforms without the
// unix mmap surface read the file onto the heap; the View semantics —
// typed errors, lazy strings, zero-copy accessors over the loaded bytes —
// are identical, just without the page-cache residency win.
func Open(path string) (*View, error) {
	return openHeap(path)
}
