package snapshot2

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"avfda/internal/query"
)

// jsonBytes renders v the way the avserve API would, so "results are
// byte-identical" is checked at the serialization boundary clients see.
func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotV2QueryEquivalence is the contract that lets avserve swap a
// mapped View in where a deserialized database used to be: an engine
// backed by the v2 columns answers every query byte-identically to an
// engine built fresh on the original in-memory database. 250 randomized
// filters sweep the full query surface — event pages, accident pages,
// group counts over the typed columns and the dataframe-fallback columns,
// counts, indexed-vs-scan selection, reliability metrics, and CSV export.
func TestSnapshotV2QueryEquivalence(t *testing.T) {
	db := testDB(11, 400, 40)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := query.New(db)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := query.NewFromSource(v, v.Database)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != mapped.Len() {
		t.Fatalf("Len: fresh %d, mapped %d", fresh.Len(), mapped.Len())
	}

	rng := rand.New(rand.NewSource(99))
	pick := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
	groupBys := append(query.GroupColumns(), "cause", "vehicle", "reportYear")
	for i := 0; i < 250; i++ {
		f := query.Filter{
			Manufacturer: pick("", "Waymo", "bosch", "Delphi", "Nissan"),
			Tag:          pick("", "Planner", "software", "Recognition System"),
			Category:     pick("", "ML/Design", "system"),
			Road:         pick("", "highway", "city street"),
			Weather:      pick("", "raining", "sunny"),
			Modality:     pick("", "manual", "automatic"),
			From:         pick("", "2015-01", "2015-06"),
			To:           pick("", "2015-12", "2016-06"),
		}
		page := query.Page{Offset: rng.Intn(20), Limit: 1 + rng.Intn(50)}

		wantN, err := fresh.Count(f)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := mapped.Count(f)
		if err != nil {
			t.Fatal(err)
		}
		if wantN != gotN {
			t.Fatalf("filter %+v: count fresh %d, mapped %d", f, wantN, gotN)
		}

		wantEv, err := fresh.Events(f, page)
		if err != nil {
			t.Fatal(err)
		}
		gotEv, err := mapped.Events(f, page)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, wantEv), jsonBytes(t, gotEv)) {
			t.Fatalf("filter %+v: event pages diverge", f)
		}

		wantAcc, err := fresh.Accidents(f, page)
		if err != nil {
			t.Fatal(err)
		}
		gotAcc, err := mapped.Accidents(f, page)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, wantAcc), jsonBytes(t, gotAcc)) {
			t.Fatalf("filter %+v: accident pages diverge", f)
		}

		by := groupBys[rng.Intn(len(groupBys))]
		wantGr, err := fresh.GroupCount(f, by)
		if err != nil {
			t.Fatal(err)
		}
		gotGr, err := mapped.GroupCount(f, by)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, wantGr), jsonBytes(t, gotGr)) {
			t.Fatalf("filter %+v by %s: group counts diverge", f, by)
		}

		// The mapped engine's posting lists must agree with its own scan
		// path, the same invariant the in-heap indexes are held to.
		indexed, err := mapped.Select(f)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := mapped.SelectScan(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("filter %+v: mapped engine's index disagrees with scan", f)
		}

		if i%25 == 0 {
			var wantCSV, gotCSV bytes.Buffer
			wantFr, err := fresh.Frame(f)
			if err != nil {
				t.Fatal(err)
			}
			gotFr, err := mapped.Frame(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := wantFr.WriteCSV(&wantCSV); err != nil {
				t.Fatal(err)
			}
			if err := gotFr.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantCSV.Bytes(), gotCSV.Bytes()) {
				t.Fatalf("filter %+v: CSV export diverges", f)
			}
		}
	}

	wantRel, err := fresh.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	gotRel, err := mapped.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(t, wantRel), jsonBytes(t, gotRel)) {
		t.Fatal("reliability metrics diverge")
	}
}
