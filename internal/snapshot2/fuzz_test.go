package snapshot2

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshot2Read hardens the v2 reader against arbitrary input:
// whatever bytes land in the file, Open must either return a valid View or
// one of the typed corruption errors (*FormatError, *VersionError,
// *ChecksumError) — never panic, never fault on a page access, never hand
// back a view alongside an error. The seed corpus covers the boundary
// inputs from the property tests: a fully valid snapshot, header and
// payload truncations, single-bit flips in the version, checksum, section
// directory, and payload regions, re-sealed section-offset corruption
// (valid checksum over a broken directory), and trailing garbage.
func FuzzSnapshot2Read(f *testing.F) {
	valid, err := Encode(testDB(7, 12, 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))                  // bare magic, truncated header
	f.Add(valid[:headerLen])              // header only, missing payload
	f.Add(valid[:headerLen+len(valid)/4]) // mid-payload truncation
	f.Add(append(bytes.Clone(valid), 0))  // trailing byte
	for _, i := range []int{len(magic), len(magic) + 2, len(magic) + 10, headerLen, headerLen + 8, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	// Section-offset corruption behind a valid checksum: the directory
	// validators, not the CRC, must catch a broken tiling.
	payload := bytes.Clone(valid[headerLen:])
	off := binary.LittleEndian.Uint64(payload[4+20+4:])
	binary.LittleEndian.PutUint64(payload[4+20+4:], off+1)
	f.Add(reseal(valid, payload))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.avsnap2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		v, err := Open(path)
		if err != nil {
			if !typedSnapshotError(err) {
				t.Fatalf("untyped error for %d-byte input: %v", len(data), err)
			}
			if v != nil {
				t.Fatalf("Open returned both a view and error %v", err)
			}
			return
		}
		if v == nil {
			t.Fatal("Open returned nil view and nil error")
		}
		// A view that validated must be fully usable: every row readable,
		// every posting row id in range, and the materialized database must
		// re-encode — what the reader accepts, the writer can represent.
		for i := 0; i < v.NumRows(); i++ {
			_ = v.Manufacturer(i)
			_ = v.Time(i)
			_ = v.ReactionSeconds(i)
		}
		db, err := v.Database()
		if err != nil {
			t.Fatalf("validated view failed to materialize: %v", err)
		}
		reenc, err := Encode(db)
		if err != nil {
			t.Fatalf("materialized database does not re-encode: %v", err)
		}
		if _, err := NewView(reenc); err != nil {
			t.Fatalf("re-encoded database does not validate: %v", err)
		}
		v.Close()
	})
}
