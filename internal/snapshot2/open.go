package snapshot2

import "os"

// OpenSeed opens the canonical v2 snapshot for a study seed inside dir.
func OpenSeed(dir string, seed int64) (*View, error) {
	return Open(Path(dir, seed))
}

// openHeap reads the whole file into memory and validates it — the
// portable load path, also the fallback when mapping is unavailable.
func openHeap(path string) (*View, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewView(data)
}
