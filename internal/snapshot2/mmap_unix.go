//go:build unix

package snapshot2

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Open maps the snapshot at path read-only and returns a validated View
// over the mapping. A missing file surfaces as fs.ErrNotExist (a plain
// cache-tier miss, not corruption); anything structurally wrong yields the
// package's typed errors. The mapping is released by Close or, failing
// that, by a finalizer when the View is collected — cache eviction can
// simply drop the View even while late readers hold materialized results,
// because nothing handed out aliases the mapped bytes.
//
// The length and checksum are validated against the mapped bytes before
// the View is returned, so a file truncated at write time is rejected here
// rather than faulting (SIGBUS) on a later page access; see DESIGN.md §7.
// Snapshots are replaced only by atomic rename, never truncated in place,
// so a validated mapping stays readable for its lifetime.
func Open(path string) (*View, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot2: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		// Zero-length mappings are invalid at the syscall level; a v2 file
		// is never empty, so classify it as the truncation it is.
		return nil, &FormatError{Reason: "empty file"}
	}
	if int64(int(size)) != size {
		return nil, &FormatError{Reason: "file too large to map"}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (or exhausted map areas) fall
		// back to a heap read: same validation, same View semantics.
		return openHeap(path)
	}
	v, verr := NewView(data)
	if verr != nil {
		syscall.Munmap(data)
		return nil, verr
	}
	v.closer = func() error { return syscall.Munmap(data) }
	runtime.SetFinalizer(v, (*View).Close)
	return v, nil
}
