package snapshot2

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// View is a validated window onto one v2 snapshot's bytes — typically a
// memory-mapped file. It implements the per-row read surface the query
// engine consumes (interface query.Source): every accessor reads the
// column bytes in place, materializing strings lazily (each distinct
// string is copied out of the mapping at most once and cached), so an
// opened study costs file pages rather than deserialized heap.
//
// NewView validates the whole structure up front — checksum, section
// tiling, string-table offsets, string ids, posting streams — so accessors
// cannot fail on any row index in [0, NumRows()): corruption surfaces as a
// typed error at open, never as a panic or wrong answer later.
//
// A View is safe for concurrent use. Close (or garbage collection, for
// views opened by Open) releases the mapping; the caller must not use
// column accessors after Close, but strings already materialized and any
// Database() result remain valid — they never alias the mapped bytes.
type View struct {
	data   []byte
	crc    uint32
	closer func() error
	closed atomic.Bool

	nEvents, nMileage, nFleets, nAccidents, nStrings int

	secs     [numSections][]byte
	strOff   []byte
	strBlob  []byte
	strCache []atomic.Pointer[string]

	idxMfr, idxTag, idxCategory map[string]*postingList

	dbOnce sync.Once
	db     *core.DB
}

// postingList is one inverted-index entry: the delta-encoded row-id stream
// for a single value, decoded lazily on first lookup. The stream was fully
// validated at open, so decoding cannot fail.
type postingList struct {
	once  sync.Once
	count int
	blob  []byte
	ids   []int
}

// rows decodes (once) and returns the ascending row ids.
func (p *postingList) rows() []int {
	p.once.Do(func() {
		ids := make([]int, p.count)
		rest := p.blob
		prev := 0
		for i := range ids {
			delta, n := binary.Uvarint(rest)
			rest = rest[n:]
			prev += int(delta)
			ids[i] = prev
		}
		p.ids = ids
	})
	return p.ids
}

// NewView validates data as a complete v2 snapshot and returns a View
// reading it in place. The caller keeps ownership of data and must not
// mutate it for the lifetime of the View. All structural invariants are
// checked here (see the package comment); any violation yields a
// *FormatError, *VersionError, or *ChecksumError.
func NewView(data []byte) (*View, error) {
	if len(data) < headerLen {
		return nil, &FormatError{Reason: fmt.Sprintf("truncated: %d bytes, header needs %d", len(data), headerLen)}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &FormatError{Reason: "bad magic (not a v2 snapshot)"}
	}
	if got := binary.LittleEndian.Uint16(data[len(magic):]); got != Version {
		return nil, &VersionError{Got: got, Want: Version}
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+2:])
	if plen != uint64(len(data)-headerLen) {
		return nil, &FormatError{Reason: fmt.Sprintf("payload length %d, file carries %d payload bytes", plen, len(data)-headerLen)}
	}
	payload := data[headerLen:]
	want := binary.LittleEndian.Uint32(data[len(magic)+10:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &ChecksumError{Got: got, Want: want}
	}

	v := &View{data: data, crc: want}
	if err := v.parseSections(payload); err != nil {
		return nil, err
	}
	if err := v.parseMeta(); err != nil {
		return nil, err
	}
	if err := v.validateColumns(); err != nil {
		return nil, err
	}
	var err error
	if v.idxMfr, err = v.parsePostings(secIdxMfr); err != nil {
		return nil, err
	}
	if v.idxTag, err = v.parsePostings(secIdxTag); err != nil {
		return nil, err
	}
	if v.idxCategory, err = v.parsePostings(secIdxCategory); err != nil {
		return nil, err
	}
	return v, nil
}

// parseSections decodes the section directory and checks that the declared
// sections tile the payload exactly: known ids in ascending order, each
// section starting where the previous ended, no trailing bytes.
func (v *View) parseSections(payload []byte) error {
	const dirLen = 4 + numSections*20
	if len(payload) < dirLen {
		return &FormatError{Reason: "payload too short for section directory"}
	}
	if got := binary.LittleEndian.Uint32(payload); got != numSections {
		return &FormatError{Reason: fmt.Sprintf("section count %d, want %d", got, numSections)}
	}
	off := uint64(dirLen)
	for i := 0; i < numSections; i++ {
		ent := payload[4+i*20:]
		id := binary.LittleEndian.Uint32(ent)
		start := binary.LittleEndian.Uint64(ent[4:])
		length := binary.LittleEndian.Uint64(ent[12:])
		if id != uint32(i+1) {
			return &FormatError{Reason: fmt.Sprintf("section directory entry %d has id %d, want %d", i, id, i+1)}
		}
		if start != off {
			return &FormatError{Reason: fmt.Sprintf("section %d starts at %d, want %d (sections must tile)", id, start, off)}
		}
		if length > uint64(len(payload))-off {
			return &FormatError{Reason: fmt.Sprintf("section %d overruns the payload", id)}
		}
		v.secs[i] = payload[off : off+length]
		off += length
	}
	if off != uint64(len(payload)) {
		return &FormatError{Reason: "payload bytes beyond the last section"}
	}
	return nil
}

// sec returns the raw bytes of a section by id.
func (v *View) sec(id uint32) []byte { return v.secs[id-1] }

// parseMeta reads the record counts and sizes the string cache.
func (v *View) parseMeta() error {
	meta := v.sec(secMeta)
	if len(meta) != 5*8 {
		return &FormatError{Reason: fmt.Sprintf("meta section is %d bytes, want %d", len(meta), 5*8)}
	}
	counts := [5]int{}
	for i := range counts {
		n := binary.LittleEndian.Uint64(meta[8*i:])
		if n > math.MaxInt32 {
			return &FormatError{Reason: fmt.Sprintf("meta count %d out of range", n)}
		}
		counts[i] = int(n)
	}
	v.nEvents, v.nMileage, v.nFleets, v.nAccidents, v.nStrings = counts[0], counts[1], counts[2], counts[3], counts[4]
	v.strCache = make([]atomic.Pointer[string], v.nStrings)
	return nil
}

// validateColumns checks every fixed-width section's size against its row
// count and validates the value ranges accessors rely on: string-table
// offsets monotonic and bounded, string-id columns within the table,
// nanosecond columns within a second, accident flags within the defined
// bits. After this pass no accessor can read out of bounds.
func (v *View) validateColumns() error {
	v.strOff = v.sec(secStrOffsets)
	v.strBlob = v.sec(secStrBlob)

	sized := []struct {
		id    uint32
		rows  int
		width int
	}{
		{secStrOffsets, v.nStrings + 1, 4},
		{secEvMfr, v.nEvents, 4}, {secEvVehicle, v.nEvents, 4}, {secEvYear, v.nEvents, 8},
		{secEvTimeSec, v.nEvents, 8}, {secEvTimeNsec, v.nEvents, 8}, {secEvCause, v.nEvents, 4},
		{secEvModality, v.nEvents, 8}, {secEvRoad, v.nEvents, 8}, {secEvWeather, v.nEvents, 8},
		{secEvReaction, v.nEvents, 8}, {secEvTag, v.nEvents, 8}, {secEvCategory, v.nEvents, 8},
		{secMlMfr, v.nMileage, 4}, {secMlVehicle, v.nMileage, 4}, {secMlYear, v.nMileage, 8},
		{secMlMonthSec, v.nMileage, 8}, {secMlMonthNsec, v.nMileage, 8}, {secMlMiles, v.nMileage, 8},
		{secFlMfr, v.nFleets, 4}, {secFlYear, v.nFleets, 8}, {secFlCars, v.nFleets, 8},
		{secAcMfr, v.nAccidents, 4}, {secAcVehicle, v.nAccidents, 4}, {secAcYear, v.nAccidents, 8},
		{secAcTimeSec, v.nAccidents, 8}, {secAcTimeNsec, v.nAccidents, 8}, {secAcLocation, v.nAccidents, 4},
		{secAcNarrative, v.nAccidents, 4}, {secAcAVSpeed, v.nAccidents, 8}, {secAcOtherSpeed, v.nAccidents, 8},
		{secAcFlags, v.nAccidents, 1},
	}
	for _, s := range sized {
		if len(v.sec(s.id)) != s.rows*s.width {
			return &FormatError{Reason: fmt.Sprintf("section %d is %d bytes, want %d rows of %d", s.id, len(v.sec(s.id)), s.rows, s.width)}
		}
	}

	prev := binary.LittleEndian.Uint32(v.strOff)
	if prev != 0 {
		return &FormatError{Reason: "string table does not start at offset 0"}
	}
	for i := 1; i <= v.nStrings; i++ {
		cur := binary.LittleEndian.Uint32(v.strOff[4*i:])
		if cur < prev {
			return &FormatError{Reason: "string table offsets not monotonic"}
		}
		prev = cur
	}
	if prev != uint32(len(v.strBlob)) {
		return &FormatError{Reason: fmt.Sprintf("string table covers %d bytes, blob has %d", prev, len(v.strBlob))}
	}

	for _, id := range []uint32{
		secEvMfr, secEvVehicle, secEvCause,
		secMlMfr, secMlVehicle,
		secAcMfr, secAcVehicle, secAcLocation, secAcNarrative,
	} {
		b := v.sec(id)
		for off := 0; off < len(b); off += 4 {
			if sid := binary.LittleEndian.Uint32(b[off:]); sid >= uint32(v.nStrings) {
				return &FormatError{Reason: fmt.Sprintf("section %d references string %d of %d", id, sid, v.nStrings)}
			}
		}
	}

	for _, id := range []uint32{secEvTimeNsec, secMlMonthNsec, secAcTimeNsec} {
		b := v.sec(id)
		for off := 0; off < len(b); off += 8 {
			if ns := int64(binary.LittleEndian.Uint64(b[off:])); ns < 0 || ns >= int64(time.Second) {
				return &FormatError{Reason: fmt.Sprintf("section %d nanosecond value %d outside [0, 1s)", id, ns)}
			}
		}
	}

	for _, flags := range v.sec(secAcFlags) {
		if flags > flagAutonomous|flagRedacted {
			return &FormatError{Reason: fmt.Sprintf("accident flags byte %#x has undefined bits", flags)}
		}
	}
	return nil
}

// parsePostings validates one inverted-index section and returns its
// key → posting-list map. Keys must be in-table strings, strictly
// ascending; every delta stream must decode to exactly its declared count
// of strictly ascending in-range row ids; and the lists must partition the
// event rows (every row appears in exactly one list).
func (v *View) parsePostings(id uint32) (map[string]*postingList, error) {
	b := v.sec(id)
	if len(b) < 4 {
		return nil, &FormatError{Reason: fmt.Sprintf("posting section %d truncated", id)}
	}
	nKeys64 := binary.LittleEndian.Uint32(b)
	if uint64(nKeys64) > uint64(v.nEvents) {
		return nil, &FormatError{Reason: fmt.Sprintf("posting section %d declares %d keys for %d rows", id, nKeys64, v.nEvents)}
	}
	nKeys := int(nKeys64)
	if len(b) < 4+nKeys*12 {
		return nil, &FormatError{Reason: fmt.Sprintf("posting section %d truncated in key headers", id)}
	}
	blobs := b[4+nKeys*12:]
	out := make(map[string]*postingList, nKeys)
	prevKey := ""
	total, off := 0, 0
	for k := 0; k < nKeys; k++ {
		ent := b[4+k*12:]
		keyID := binary.LittleEndian.Uint32(ent)
		count := int(binary.LittleEndian.Uint32(ent[4:]))
		blobLen := int(binary.LittleEndian.Uint32(ent[8:]))
		if keyID >= uint32(v.nStrings) {
			return nil, &FormatError{Reason: fmt.Sprintf("posting section %d key references string %d of %d", id, keyID, v.nStrings)}
		}
		key := v.str(keyID)
		if k > 0 && key <= prevKey {
			return nil, &FormatError{Reason: fmt.Sprintf("posting section %d keys out of order", id)}
		}
		prevKey = key
		if count > v.nEvents-total {
			return nil, &FormatError{Reason: fmt.Sprintf("posting section %d lists more rows than exist", id)}
		}
		if blobLen < 0 || blobLen > len(blobs)-off {
			return nil, &FormatError{Reason: fmt.Sprintf("posting section %d stream overruns the section", id)}
		}
		blob := blobs[off : off+blobLen]
		if err := checkDeltaStream(blob, count, v.nEvents); err != nil {
			return nil, &FormatError{Reason: fmt.Sprintf("posting section %d key %q: %s", id, key, err)}
		}
		out[key] = &postingList{count: count, blob: blob}
		total += count
		off += blobLen
	}
	if off != len(blobs) {
		return nil, &FormatError{Reason: fmt.Sprintf("posting section %d has trailing stream bytes", id)}
	}
	if total != v.nEvents {
		return nil, &FormatError{Reason: fmt.Sprintf("posting section %d covers %d of %d rows", id, total, v.nEvents)}
	}
	return out, nil
}

// checkDeltaStream validates one delta-encoded row-id stream: exactly
// count varints consuming the whole blob, decoding to strictly ascending
// ids below n.
func checkDeltaStream(blob []byte, count, n int) error {
	rest := blob
	prev := 0
	for i := 0; i < count; i++ {
		delta, w := binary.Uvarint(rest)
		if w <= 0 {
			return fmt.Errorf("bad varint at element %d", i)
		}
		rest = rest[w:]
		if i > 0 && delta == 0 {
			return fmt.Errorf("row ids not strictly ascending at element %d", i)
		}
		if delta > uint64(n) || prev+int(delta) >= n {
			return fmt.Errorf("row id out of range at element %d", i)
		}
		prev += int(delta)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d bytes beyond the declared stream", len(rest))
	}
	return nil
}

// str materializes string id (copying it out of the backing bytes) and
// caches the copy. Concurrent first calls may both copy; both copies are
// equal and either may win the cache slot.
func (v *View) str(id uint32) string {
	if p := v.strCache[id].Load(); p != nil {
		return *p
	}
	start := binary.LittleEndian.Uint32(v.strOff[4*id:])
	end := binary.LittleEndian.Uint32(v.strOff[4*(id+1):])
	s := string(v.strBlob[start:end])
	v.strCache[id].Store(&s)
	return s
}

// Raw little-endian column readers. Row bounds are the caller's contract
// (indexes in [0, rows)); section sizes were validated against the row
// counts at open, so in-range reads cannot overrun the mapping.

func (v *View) u32(id uint32, i int) uint32 {
	return binary.LittleEndian.Uint32(v.sec(id)[4*i:])
}

func (v *View) i64(id uint32, i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.sec(id)[8*i:]))
}

func (v *View) f64(id uint32, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.sec(id)[8*i:]))
}

func (v *View) timeAt(secSec, secNsec uint32, i int) time.Time {
	return time.Unix(v.i64(secSec, i), v.i64(secNsec, i)).UTC()
}

// NumRows returns the number of disengagement events.
func (v *View) NumRows() int { return v.nEvents }

// The event-row accessors below produce exactly the string forms
// core.DB.EventsFrame puts in the engine's columns, so a View-backed
// engine answers byte-identically to a freshly built one.

// Manufacturer returns event i's manufacturer name.
func (v *View) Manufacturer(i int) string { return v.str(v.u32(secEvMfr, i)) }

// Vehicle returns event i's vehicle id ("" when fleet-level).
func (v *View) Vehicle(i int) string { return v.str(v.u32(secEvVehicle, i)) }

// ReportYear returns event i's report-year display form (e.g. "2015-2016").
func (v *View) ReportYear(i int) string {
	return schema.ReportYear(v.i64(secEvYear, i)).String()
}

// Time returns event i's timestamp (UTC, as snapshots store wall time).
func (v *View) Time(i int) time.Time { return v.timeAt(secEvTimeSec, secEvTimeNsec, i) }

// Cause returns event i's raw cause text.
func (v *View) Cause(i int) string { return v.str(v.u32(secEvCause, i)) }

// Tag returns event i's fault-tag display name.
func (v *View) Tag(i int) string { return ontology.Tag(v.i64(secEvTag, i)).String() }

// Category returns event i's fault-category display name.
func (v *View) Category(i int) string {
	return ontology.Category(v.i64(secEvCategory, i)).String()
}

// Modality returns event i's modality display name.
func (v *View) Modality(i int) string {
	return schema.Modality(v.i64(secEvModality, i)).String()
}

// Road returns event i's road-type display name.
func (v *View) Road(i int) string { return schema.RoadType(v.i64(secEvRoad, i)).String() }

// Weather returns event i's weather display name.
func (v *View) Weather(i int) string { return schema.Weather(v.i64(secEvWeather, i)).String() }

// ReactionSeconds returns event i's driver reaction time (negative when
// not reported).
func (v *View) ReactionSeconds(i int) float64 { return v.f64(secEvReaction, i) }

// ManufacturerIDs returns the ascending event rows whose lower-cased
// manufacturer equals key, or nil for an unknown key.
func (v *View) ManufacturerIDs(key string) []int { return lookup(v.idxMfr, key) }

// TagIDs returns the ascending event rows whose lower-cased tag display
// name equals key, or nil for an unknown key.
func (v *View) TagIDs(key string) []int { return lookup(v.idxTag, key) }

// CategoryIDs returns the ascending event rows whose lower-cased category
// display name equals key, or nil for an unknown key.
func (v *View) CategoryIDs(key string) []int { return lookup(v.idxCategory, key) }

// lookup resolves one posting list; the returned slice is shared and must
// be treated as read-only.
func lookup(idx map[string]*postingList, key string) []int {
	p := idx[key]
	if p == nil {
		return nil
	}
	return p.rows()
}

// Database materializes the full failure database from the columns —
// heap-allocated, independent of the mapping — built once and cached. The
// engine calls this lazily for the analyses that genuinely need whole
// tables (accident listings, reliability metrics, dataframe export);
// filter/group-by traffic never pays for it. The error is always nil for
// a validated View; the signature matches the engine's lazy-database hook.
func (v *View) Database() (*core.DB, error) {
	v.dbOnce.Do(func() { v.db = v.materialize() })
	return v.db, nil
}

// materialize decodes every table. Empty tables stay nil slices, matching
// what pipeline construction and the v1 decoder produce.
func (v *View) materialize() *core.DB {
	db := &core.DB{}
	if v.nEvents > 0 {
		db.Events = make([]core.Event, v.nEvents)
		for i := range db.Events {
			db.Events[i] = core.Event{
				Disengagement: schema.Disengagement{
					Manufacturer:    schema.Manufacturer(v.Manufacturer(i)),
					Vehicle:         schema.VehicleID(v.Vehicle(i)),
					ReportYear:      schema.ReportYear(v.i64(secEvYear, i)),
					Time:            v.Time(i),
					Cause:           v.Cause(i),
					Modality:        schema.Modality(v.i64(secEvModality, i)),
					Road:            schema.RoadType(v.i64(secEvRoad, i)),
					Weather:         schema.Weather(v.i64(secEvWeather, i)),
					ReactionSeconds: v.ReactionSeconds(i),
				},
				Tag:      ontology.Tag(v.i64(secEvTag, i)),
				Category: ontology.Category(v.i64(secEvCategory, i)),
			}
		}
	}
	if v.nMileage > 0 {
		db.Mileage = make([]schema.MonthlyMileage, v.nMileage)
		for i := range db.Mileage {
			db.Mileage[i] = schema.MonthlyMileage{
				Manufacturer: schema.Manufacturer(v.str(v.u32(secMlMfr, i))),
				Vehicle:      schema.VehicleID(v.str(v.u32(secMlVehicle, i))),
				ReportYear:   schema.ReportYear(v.i64(secMlYear, i)),
				Month:        v.timeAt(secMlMonthSec, secMlMonthNsec, i),
				Miles:        v.f64(secMlMiles, i),
			}
		}
	}
	if v.nFleets > 0 {
		db.Fleets = make([]schema.Fleet, v.nFleets)
		for i := range db.Fleets {
			db.Fleets[i] = schema.Fleet{
				Manufacturer: schema.Manufacturer(v.str(v.u32(secFlMfr, i))),
				ReportYear:   schema.ReportYear(v.i64(secFlYear, i)),
				Cars:         int(v.i64(secFlCars, i)),
			}
		}
	}
	if v.nAccidents > 0 {
		db.Accidents = make([]schema.Accident, v.nAccidents)
		for i := range db.Accidents {
			flags := v.sec(secAcFlags)[i]
			db.Accidents[i] = schema.Accident{
				Manufacturer:     schema.Manufacturer(v.str(v.u32(secAcMfr, i))),
				Vehicle:          schema.VehicleID(v.str(v.u32(secAcVehicle, i))),
				ReportYear:       schema.ReportYear(v.i64(secAcYear, i)),
				Time:             v.timeAt(secAcTimeSec, secAcTimeNsec, i),
				Location:         v.str(v.u32(secAcLocation, i)),
				Narrative:        v.str(v.u32(secAcNarrative, i)),
				AVSpeedMPH:       v.f64(secAcAVSpeed, i),
				OtherSpeedMPH:    v.f64(secAcOtherSpeed, i),
				InAutonomousMode: flags&flagAutonomous != 0,
				Redacted:         flags&flagRedacted != 0,
			}
		}
	}
	return db
}

// Size returns the snapshot's total byte length (header + payload).
func (v *View) Size() int { return len(v.data) }

// Checksum returns the snapshot's CRC-32C payload checksum, verified at
// open. Encoding is deterministic, so the checksum identifies the study's
// content: every node serving the same seed reports the same value, which
// is what lets the serving layer derive HTTP ETags from it.
func (v *View) Checksum() uint32 { return v.crc }

// Close releases the backing mapping for views opened by Open; it is
// idempotent and a no-op for views over caller-owned bytes (NewView).
// After Close, column accessors must not be used; previously materialized
// strings and Database() results remain valid.
func (v *View) Close() error {
	if v.closer == nil || !v.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(v, nil)
	return v.closer()
}
