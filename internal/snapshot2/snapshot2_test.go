package snapshot2

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/query"
	"avfda/internal/schema"
)

// The whole point of the format: a View is a query.Source, so the engine
// can read the mapped bytes with no deserialization step between.
var _ query.Source = (*View)(nil)

// testDB builds a randomized but deterministic database: every field the
// wire format carries is exercised, including empty strings, duplicate
// strings (interning), negative floats, and all flag combinations.
func testDB(seed int64, nEvents, nAccidents int) *core.DB {
	rng := rand.New(rand.NewSource(seed))
	mfrs := []schema.Manufacturer{"Waymo", "Bosch", "Delphi", "Nissan", ""}
	tags := ontology.AllTags()
	base := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)

	db := &core.DB{}
	for i, m := range mfrs {
		db.Fleets = append(db.Fleets, schema.Fleet{
			Manufacturer: m,
			ReportYear:   schema.ReportYear(1 + i%2),
			Cars:         rng.Intn(60),
		})
		db.Mileage = append(db.Mileage, schema.MonthlyMileage{
			Manufacturer: m,
			Vehicle:      schema.VehicleID(fmt.Sprintf("V%03d", i)),
			ReportYear:   schema.ReportYear(1 + i%2),
			Month:        base.AddDate(0, i, 0),
			Miles:        rng.Float64() * 10000,
		})
	}
	for i := 0; i < nEvents; i++ {
		tag := tags[rng.Intn(len(tags))]
		db.Events = append(db.Events, core.Event{
			Disengagement: schema.Disengagement{
				Manufacturer:    mfrs[rng.Intn(len(mfrs))],
				Vehicle:         schema.VehicleID(fmt.Sprintf("V%03d", rng.Intn(8))),
				ReportYear:      schema.ReportYear(1 + rng.Intn(2)),
				Time:            base.AddDate(0, rng.Intn(27), rng.Intn(28)),
				Cause:           fmt.Sprintf("cause %d: sensor glitch é", i),
				Modality:        schema.Modality(rng.Intn(4)),
				Road:            schema.RoadType(rng.Intn(8)),
				Weather:         schema.Weather(rng.Intn(5)),
				ReactionSeconds: rng.Float64()*3 - 0.5,
			},
			Tag:      tag,
			Category: ontology.CategoryOf(tag),
		})
	}
	for i := 0; i < nAccidents; i++ {
		db.Accidents = append(db.Accidents, schema.Accident{
			Manufacturer:     mfrs[rng.Intn(len(mfrs))],
			Vehicle:          schema.VehicleID(fmt.Sprintf("V%03d", rng.Intn(8))),
			ReportYear:       schema.ReportYear(1 + rng.Intn(2)),
			Time:             base.AddDate(0, rng.Intn(27), rng.Intn(28)),
			Location:         fmt.Sprintf("El Camino Real & %dth", i),
			Narrative:        "",
			AVSpeedMPH:       float64(rng.Intn(40)),
			OtherSpeedMPH:    rng.Float64() * 50,
			InAutonomousMode: rng.Intn(2) == 0,
			Redacted:         rng.Intn(3) == 0,
		})
	}
	return db
}

// typedSnapshotError reports whether err is one of the package's typed
// corruption errors — the contract callers classify on.
func typedSnapshotError(err error) bool {
	var fe *FormatError
	var ve *VersionError
	var ce *ChecksumError
	return errors.As(err, &fe) || errors.As(err, &ve) || errors.As(err, &ce)
}

// TestViewRoundTrip pins the core property: a View over encode(db)
// materializes the database exactly, and re-encoding the materialized
// database is byte-identical — the determinism avlint's byte-identity
// contract (and the write→read→re-write test below) relies on.
func TestViewRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		db := testDB(seed, 200, 30)
		data, err := Encode(db)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewView(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := v.Database()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, db) {
			t.Fatalf("seed %d: materialized database differs from original", seed)
		}
		again, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: re-encoding the materialized database changed the bytes", seed)
		}
		if v.Size() != len(data) {
			t.Fatalf("seed %d: Size() = %d, want %d", seed, v.Size(), len(data))
		}
	}
}

// TestViewRoundTripEmpty covers the degenerate database: four zero counts
// must map to nil tables, matching pipeline construction.
func TestViewRoundTripEmpty(t *testing.T) {
	data, err := Encode(&core.DB{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 0 {
		t.Fatalf("NumRows = %d for an empty study", v.NumRows())
	}
	db, err := v.Database()
	if err != nil {
		t.Fatal(err)
	}
	if db.Events != nil || db.Mileage != nil || db.Fleets != nil || db.Accidents != nil {
		t.Fatalf("empty database materialized non-nil tables: %+v", db)
	}
}

// TestWriteReadRewrite is the on-disk half of the byte-identity property:
// write → open → materialize → write again produces an identical file, and
// the atomic write leaves no staging files behind.
func TestWriteReadRewrite(t *testing.T) {
	dir := t.TempDir()
	db := testDB(7, 120, 15)
	if _, err := WriteSeed(dir, 7, db); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(Path(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenSeed(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := v.Database()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil { // Close is idempotent
		t.Fatal(err)
	}
	if _, err := WriteSeed(dir, 7, loaded); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(Path(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("rewriting a loaded snapshot changed the file bytes")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != filepath.Base(Path(dir, 7)) {
		t.Fatalf("snapshot dir left extra files: %v", entries)
	}
}

// TestTruncationRejected feeds every prefix of a valid snapshot to NewView;
// all of them must fail with a typed error, never a panic or a silently
// partial view. This is also the SIGBUS guard: Open validates the length
// and checksum before any accessor touches the mapping (DESIGN.md §7).
func TestTruncationRejected(t *testing.T) {
	data, err := Encode(testDB(3, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		v, err := NewView(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes opened to %v", n, len(data), v)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

// TestBitFlipRejected flips every byte of a valid snapshot in turn; the
// CRC-32C (or header validation) must catch each one.
func TestBitFlipRejected(t *testing.T) {
	data, err := Encode(testDB(5, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		v, err := NewView(mut)
		if err == nil {
			t.Fatalf("flip at byte %d opened to %v", i, v)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

// TestTrailingBytesRejected appends garbage after a valid payload.
func TestTrailingBytesRejected(t *testing.T) {
	data, err := Encode(testDB(9, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := NewView(append(bytes.Clone(data), 0xFF)); !errors.As(err, &fe) {
		t.Fatalf("trailing byte: got %v, want *FormatError", err)
	}
}

// TestVersionRejected patches the header version; readers must refuse any
// version other than their own, per the compatibility policy.
func TestVersionRejected(t *testing.T) {
	data, err := Encode(testDB(13, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	binary.LittleEndian.PutUint16(mut[len(magic):], Version+1)
	var ve *VersionError
	if _, err := NewView(mut); !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	} else if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

// TestV1MagicRejected pins the cross-format contract: a v1 snapshot fed to
// the v2 reader fails cleanly on the magic, not deeper in.
func TestV1MagicRejected(t *testing.T) {
	var fe *FormatError
	if _, err := NewView([]byte("AVFDSNAP\x01\x00________padding_to_header_len")); !errors.As(err, &fe) {
		t.Fatalf("v1 magic: got %v, want *FormatError", err)
	}
}

// TestChecksumRejected corrupts a payload byte without touching the header;
// only the checksum can catch it.
func TestChecksumRejected(t *testing.T) {
	data, err := Encode(testDB(17, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	mut[len(mut)-1] ^= 1
	var ce *ChecksumError
	if _, err := NewView(mut); !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ChecksumError", err)
	} else if ce.Got == ce.Want {
		t.Fatalf("ChecksumError checksums match: %+v", ce)
	}
}

// reseal recomputes the payload length and CRC-32C over a mutated payload,
// producing a file that passes the header checks so the structural
// validators must catch the damage themselves.
func reseal(header, payload []byte) []byte {
	out := append([]byte(nil), header[:headerLen]...)
	binary.LittleEndian.PutUint64(out[len(magic)+2:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[len(magic)+10:], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// sectionRange locates a section's [start, end) within the payload via the
// directory, for surgical corruption.
func sectionRange(t *testing.T, payload []byte, id uint32) (int, int) {
	t.Helper()
	ent := payload[4+int(id-1)*20:]
	if got := binary.LittleEndian.Uint32(ent); got != id {
		t.Fatalf("directory entry for section %d carries id %d", id, got)
	}
	start := binary.LittleEndian.Uint64(ent[4:])
	length := binary.LittleEndian.Uint64(ent[12:])
	return int(start), int(start + length)
}

// TestCorruptPayloadBehindValidChecksum re-seals structurally invalid
// payloads with a correct checksum: the directory, column, string-table,
// and posting validators must each reject their own class of damage with a
// *FormatError — corruption can never surface later as a panic or a wrong
// answer from an accessor.
func TestCorruptPayloadBehindValidChecksum(t *testing.T) {
	db := testDB(19, 60, 8)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(t *testing.T, payload []byte)
	}{
		{"section count", func(t *testing.T, p []byte) {
			binary.LittleEndian.PutUint32(p, numSections+1)
		}},
		{"directory id", func(t *testing.T, p []byte) {
			binary.LittleEndian.PutUint32(p[4:], 99)
		}},
		{"section tiling", func(t *testing.T, p []byte) {
			// Shift the second section's declared start: tiling breaks.
			off := binary.LittleEndian.Uint64(p[4+20+4:])
			binary.LittleEndian.PutUint64(p[4+20+4:], off+1)
		}},
		{"meta count out of range", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secMeta)
			binary.LittleEndian.PutUint64(p[start:], 1<<40)
		}},
		{"meta count vs section size", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secMeta)
			binary.LittleEndian.PutUint64(p[start:], uint64(len(db.Events)+1))
		}},
		{"string offsets start", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secStrOffsets)
			binary.LittleEndian.PutUint32(p[start:], 1)
		}},
		{"string offsets monotonic", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secStrOffsets)
			binary.LittleEndian.PutUint32(p[start+4:], 0xFFFFFFFF)
		}},
		{"string id out of range", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secEvMfr)
			binary.LittleEndian.PutUint32(p[start:], 0xFFFFFFFF)
		}},
		{"nanoseconds out of range", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secEvTimeNsec)
			binary.LittleEndian.PutUint64(p[start:], 2_000_000_000)
		}},
		{"undefined flag bits", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secAcFlags)
			p[start] = 0xFF
		}},
		{"posting count overrun", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secIdxMfr)
			// First key header: {keyID, count, blobLen}; inflate the count.
			binary.LittleEndian.PutUint32(p[start+4+4:], uint32(len(db.Events)+1))
		}},
		{"posting stream length", func(t *testing.T, p []byte) {
			start, _ := sectionRange(t, p, secIdxMfr)
			// Inflate the first key's declared stream length by one byte: the
			// stream either overruns the section or carries a trailing byte.
			blobLen := binary.LittleEndian.Uint32(p[start+4+8:])
			binary.LittleEndian.PutUint32(p[start+4+8:], blobLen+1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := bytes.Clone(data[headerLen:])
			tc.mutate(t, payload)
			mut := reseal(data, payload)
			v, err := NewView(mut)
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("got view=%v err=%v, want *FormatError", v, err)
			}
		})
	}
}

// TestPostingsMatchHeapIndex cross-checks every stored inverted index
// against an index built the way query.Engine builds its in-heap ones:
// identical keys, identical ascending row ids, nil for unknown keys.
func TestPostingsMatchHeapIndex(t *testing.T) {
	db := testDB(23, 300, 10)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(data)
	if err != nil {
		t.Fatal(err)
	}
	indexes := []struct {
		name   string
		value  func(*core.Event) string
		lookup func(string) []int
	}{
		{"manufacturer", func(e *core.Event) string { return string(e.Manufacturer) }, v.ManufacturerIDs},
		{"tag", func(e *core.Event) string { return e.Tag.String() }, v.TagIDs},
		{"category", func(e *core.Event) string { return e.Category.String() }, v.CategoryIDs},
	}
	for _, idx := range indexes {
		want := make(map[string][]int)
		for i := range db.Events {
			k := strings.ToLower(idx.value(&db.Events[i]))
			want[k] = append(want[k], i)
		}
		keys := make([]string, 0, len(want))
		for k := range want {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if got := idx.lookup(k); !reflect.DeepEqual(got, want[k]) {
				t.Fatalf("%s[%q] = %v, want %v", idx.name, k, got, want[k])
			}
		}
		if got := idx.lookup("no such key"); got != nil {
			t.Fatalf("%s lookup of unknown key returned %v", idx.name, got)
		}
	}
}

// TestOpenMissing maps a nonexistent file to fs.ErrNotExist so cache tiers
// can tell "no snapshot yet" from corruption.
func TestOpenMissing(t *testing.T) {
	if _, err := OpenSeed(t.TempDir(), 404); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
}

// TestOpenEmptyFile classifies a zero-length file as the truncation it is
// instead of attempting an invalid zero-length mapping.
func TestOpenEmptyFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(Path(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := OpenSeed(dir, 1); !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FormatError", err)
	}
}

// TestEncodeNil rejects a nil database instead of writing an empty study.
func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("want error for nil database")
	}
}

// TestPathShape pins the cross-binary file naming contract: the v2 file
// sits beside the v1 study-<seed>.avsnap under a distinct extension.
func TestPathShape(t *testing.T) {
	if got := Path("snaps", 42); got != filepath.Join("snaps", "study-42.avsnap2") {
		t.Fatalf("Path = %q", got)
	}
}
