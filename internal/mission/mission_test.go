package mission

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/stats"
	"avfda/internal/synth"
)

var fittedCache *Model

func fitted(t *testing.T) Model {
	t.Helper()
	if fittedCache == nil {
		tr, err := synth.Generate(synth.Config{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		db, err := core.BuildWithTags(&tr.Corpus, tr.Tags)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Fit(db, 10)
		if err != nil {
			t.Fatal(err)
		}
		fittedCache = &m
	}
	return *fittedCache
}

func TestFitBasics(t *testing.T) {
	m := fitted(t)
	// Total fault rate equals the corpus DPM (5328 / 1,116,605).
	want := 5328.0 / 1116605.0
	if math.Abs(m.totalRate()-want)/want > 1e-6 {
		t.Errorf("total rate %.3g, want %.3g", m.totalRate(), want)
	}
	// Every analysis tag has a rate.
	if len(m.TagRates) < 10 {
		t.Errorf("only %d tags fitted", len(m.TagRates))
	}
	// Detection probability near the observed automatic share among
	// auto+manual events (event-weighted; Tesla and VW's all-automatic
	// fleets pull it above the paper's unweighted 48% average).
	if m.DetectionProb < 0.45 || m.DetectionProb > 0.72 {
		t.Errorf("detection prob %.3f", m.DetectionProb)
	}
	// Reaction fit near the 0.85 s fleet mean.
	if mean := m.Reaction.Mean(); math.Abs(mean-0.85) > 0.3 {
		t.Errorf("reaction mean %.2f", mean)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 10); err == nil {
		t.Error("nil db: want error")
	}
	db := &core.DB{}
	if _, err := Fit(db, 10); err == nil {
		t.Error("no miles: want error")
	}
	tr, err := synth.Generate(synth.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.BuildWithTags(&tr.Corpus, tr.Tags)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(full, 0); err == nil {
		t.Error("zero trip length: want error")
	}
}

func TestCampaignReproducesFieldRates(t *testing.T) {
	m := fitted(t)
	rng := rand.New(rand.NewSource(9))
	st, _, err := Campaign(m, 200000, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated fault rate per mile matches the fitted rate.
	simRate := float64(st.Faults) / st.Miles
	if math.Abs(simRate-m.totalRate())/m.totalRate() > 0.05 {
		t.Errorf("simulated fault rate %.3g vs fitted %.3g", simRate, m.totalRate())
	}
	// DPM + APM partitions the fault rate.
	if got := st.DPM() + st.APM(); math.Abs(got-simRate) > 1e-12 {
		t.Errorf("outcome partition broken: %.3g vs %.3g", got, simRate)
	}
	// Nearly all faults resolve as disengagements (the field data: 42
	// accidents per 5328 disengagements, DPA ~127).
	if st.Accidents == 0 {
		t.Fatal("no simulated accidents — action-window race never lost")
	}
	if dpa := st.DPA(); dpa < 15 || dpa > 2000 {
		t.Errorf("simulated DPA = %.0f, want within an order of magnitude of 127", dpa)
	}
	// Tag mix follows the rates: recognition dominates.
	if st.ByTag[ontology.TagRecognitionSystem] < st.ByTag[ontology.TagNetwork] {
		t.Error("tag sampling mix inverted")
	}
}

func TestCampaignErrors(t *testing.T) {
	m := fitted(t)
	if _, _, err := Campaign(m, 10, nil, false); err == nil {
		t.Error("nil rng: want error")
	}
	if _, _, err := Campaign(m, 0, rand.New(rand.NewSource(1)), false); err == nil {
		t.Error("zero missions: want error")
	}
}

func TestCampaignCollectEvents(t *testing.T) {
	m := fitted(t)
	rng := rand.New(rand.NewSource(5))
	st, events, err := Campaign(m, 20000, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != st.Faults {
		t.Fatalf("collected %d events for %d faults", len(events), st.Faults)
	}
	for _, ev := range events[:min(len(events), 200)] {
		if ev.Mile < 0 || ev.Mile >= m.TripMiles {
			t.Errorf("event mile %.2f outside trip", ev.Mile)
		}
		if ev.Outcome == OutcomeManualDisengage && m.DetectionDelay+ev.Reaction > ev.Window {
			t.Error("manual disengage with lost race")
		}
		if ev.Outcome == OutcomeAccident && ev.Reaction > 0 && m.DetectionDelay+ev.Reaction <= ev.Window {
			t.Error("accident with won race")
		}
		if ev.Locus == "" {
			t.Error("event missing locus")
		}
	}
}

// The paper's finding 1: with the small action window, reaction-time-based
// accidents become a frequent failure mode. Slower drivers and smaller
// windows must both raise the accident rate.
func TestCounterfactualSlowDriversAndSmallWindows(t *testing.T) {
	m := fitted(t)
	base, _, err := Campaign(m, 120000, rand.New(rand.NewSource(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := Campaign(m.WithReactionScale(3), 120000, rand.New(rand.NewSource(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	if slow.APM() <= base.APM() {
		t.Errorf("3x slower drivers: APM %.3g not above base %.3g", slow.APM(), base.APM())
	}
	tight, _, err := Campaign(m.WithWindowScale(0.3), 120000, rand.New(rand.NewSource(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	if tight.APM() <= base.APM() {
		t.Errorf("0.3x action window: APM %.3g not above base %.3g", tight.APM(), base.APM())
	}
	// Better perception cuts the perception-tag fault count.
	better := m.WithTagRateScale(ontology.TagRecognitionSystem, 0.2)
	improved, _, err := Campaign(better, 120000, rand.New(rand.NewSource(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	if improved.ByTag[ontology.TagRecognitionSystem] >= base.ByTag[ontology.TagRecognitionSystem] {
		t.Error("recognition-rate cut did not reduce recognition faults")
	}
	if float64(improved.Faults) >= float64(base.Faults) {
		t.Error("total faults should drop with a tag-rate cut")
	}
}

func TestZeroRateModelIsSilent(t *testing.T) {
	m := Model{
		TagRates:     map[ontology.Tag]float64{},
		Reaction:     stats.Weibull{K: 1.3, Lambda: 0.9},
		ActionWindow: DefaultActionWindow(),
		TripMiles:    10,
	}
	st, events, err := Campaign(m, 1000, rand.New(rand.NewSource(1)), true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != 0 || len(events) != 0 {
		t.Errorf("zero-rate model produced %d faults", st.Faults)
	}
	if st.Miles != 10000 {
		t.Errorf("miles = %g", st.Miles)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeAutoDisengage, OutcomeManualDisengage, OutcomeAccident} {
		if o.String() == "" || o.String()[0] == 'O' {
			t.Errorf("outcome %d has bad display name %q", o, o.String())
		}
	}
	if Outcome(9).String() != "Outcome(9)" {
		t.Error("fallback string wrong")
	}
}

// Property: campaign determinism and monotonicity of accidents in reaction
// scale.
func TestCampaignDeterminismProperty(t *testing.T) {
	m := fitted(t)
	prop := func(seed int64) bool {
		a, _, err := Campaign(m, 5000, rand.New(rand.NewSource(seed)), false)
		if err != nil {
			return false
		}
		b, _, err := Campaign(m, 5000, rand.New(rand.NewSource(seed)), false)
		if err != nil {
			return false
		}
		return statsEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

func statsEqual(a, b Stats) bool {
	if a.Missions != b.Missions || a.Faults != b.Faults ||
		a.Automatic != b.Automatic || a.Manual != b.Manual ||
		a.Accidents != b.Accidents {
		return false
	}
	for t, n := range a.ByTag {
		if b.ByTag[t] != n {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
