// Package mission implements the stochastic fault-injection model the paper
// calls for in its conclusions: "the machine learning systems responsible
// for perception and control need further research and assessment under
// fault conditions via stochastic modeling and fault injection to augment
// data collection."
//
// The model is generative: per-mile fault rates for every fault tag are
// fitted from the consolidated failure database, and missions (trips over
// the STPA control structure) are then simulated forward. Each injected
// fault either is detected by the ADS (automatic disengagement), is caught
// by the safety driver inside the action window (manual disengagement), or
// becomes an accident — reproducing the paper's detection-time +
// reaction-time failure mode (finding 1). Simulated DPM/APM/DPA can then be
// compared against the observed field metrics, and counterfactuals (slower
// drivers, smaller action windows, better perception) explored.
package mission

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/schema"
	"avfda/internal/stats"
	"avfda/internal/stpa"
)

// Model is a fitted stochastic fault model of one fleet.
type Model struct {
	// TagRates holds per-autonomous-mile fault rates per fault tag.
	TagRates map[ontology.Tag]float64
	// DetectionProb is the probability the ADS detects an injected fault
	// itself (automatic disengagement). Fitted from the observed
	// automatic-vs-manual modality split.
	DetectionProb float64
	// Reaction is the safety-driver reaction-time distribution (seconds).
	Reaction stats.Weibull
	// ActionWindow is the distribution of time available between fault
	// manifestation and an unavoidable accident (seconds). The paper's
	// case studies show this window is small in complex traffic.
	ActionWindow stats.Weibull
	// DetectionDelay is the mean fault-detection latency (seconds) spent
	// before the driver is alerted; it consumes part of the action window
	// (the paper: reaction time excludes detection time, but both fit
	// inside the same window).
	DetectionDelay float64
	// TripMiles is the mission length in miles.
	TripMiles float64
}

// DefaultActionWindow is calibrated so that, with the fleet's fitted
// reaction-time distribution, the simulated disengagements-per-accident
// lands near the observed ~127: most faults leave several seconds to act,
// but the left tail (complex intersections, the paper's case studies)
// leaves less than the detection delay plus a slow reaction.
func DefaultActionWindow() stats.Weibull {
	return stats.Weibull{K: 2.2, Lambda: 8.6} // mean ~7.6 s; DPA lands near the field ~127
}

// Fit estimates a Model from the consolidated failure database: tag rates
// from tag counts over total autonomous miles, detection probability from
// the automatic share of non-planned disengagements, and the reaction
// distribution from a Weibull fit of the pooled reaction times.
func Fit(db *core.DB, tripMiles float64) (Model, error) {
	if db == nil {
		return Model{}, errors.New("mission: nil database")
	}
	if tripMiles <= 0 {
		return Model{}, errors.New("mission: trip length must be positive")
	}
	var miles float64
	for _, m := range db.Mileage {
		miles += m.Miles
	}
	if miles <= 0 {
		return Model{}, errors.New("mission: no autonomous miles in database")
	}
	m := Model{
		TagRates:       make(map[ontology.Tag]float64),
		ActionWindow:   DefaultActionWindow(),
		DetectionDelay: 0.5,
		TripMiles:      tripMiles,
	}
	var auto, manual float64
	var reactions []float64
	for _, e := range db.Events {
		m.TagRates[e.Tag] += 1 / miles
		switch e.Modality {
		case schema.ModalityAutomatic:
			auto++
		case schema.ModalityManual:
			manual++
		}
		if e.HasReaction() && e.ReactionSeconds < 3600 && e.ReactionSeconds > 0 {
			reactions = append(reactions, e.ReactionSeconds)
		}
	}
	if auto+manual > 0 {
		m.DetectionProb = auto / (auto + manual)
	} else {
		m.DetectionProb = 0.5
	}
	if len(reactions) >= 3 {
		w, err := stats.FitWeibull(reactions)
		if err != nil {
			return Model{}, fmt.Errorf("mission: reaction fit: %w", err)
		}
		m.Reaction = w
	} else {
		m.Reaction = stats.Weibull{K: 1.3, Lambda: 0.9}
	}
	return m, nil
}

// totalRate sums the per-mile fault rate over all tags.
func (m Model) totalRate() float64 {
	var r float64
	for _, v := range m.TagRates {
		r += v
	}
	return r
}

// Outcome classifies one injected fault's resolution.
type Outcome int

// Fault outcomes.
const (
	// OutcomeAutoDisengage: the ADS detected its own fault and handed over
	// safely.
	OutcomeAutoDisengage Outcome = iota + 1
	// OutcomeManualDisengage: the driver caught the fault inside the
	// action window.
	OutcomeManualDisengage
	// OutcomeAccident: neither the system nor the driver resolved the
	// fault in time.
	OutcomeAccident
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeAutoDisengage:
		return "automatic disengagement"
	case OutcomeManualDisengage:
		return "manual disengagement"
	case OutcomeAccident:
		return "accident"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Event is one injected fault and its resolution.
type Event struct {
	Mission int
	Mile    float64
	Tag     ontology.Tag
	// Locus is the STPA component the fault was injected into.
	Locus stpa.ComponentID
	// Window and Reaction are the drawn action window and driver reaction
	// times (seconds) for this fault.
	Window, Reaction float64
	Outcome          Outcome
}

// Stats aggregates a simulation campaign.
type Stats struct {
	Missions       int
	Miles          float64
	Faults         int
	Automatic      int
	Manual         int
	Accidents      int
	ByTag          map[ontology.Tag]int
	ByOutcomeLocus map[stpa.ComponentID]int
}

// DPM returns simulated disengagements per mile.
func (s Stats) DPM() float64 {
	if s.Miles == 0 {
		return 0
	}
	return float64(s.Automatic+s.Manual) / s.Miles
}

// APM returns simulated accidents per mile.
func (s Stats) APM() float64 {
	if s.Miles == 0 {
		return 0
	}
	return float64(s.Accidents) / s.Miles
}

// DPA returns simulated disengagements per accident.
func (s Stats) DPA() float64 {
	if s.Accidents == 0 {
		return 0
	}
	return float64(s.Automatic+s.Manual) / float64(s.Accidents)
}

// Campaign runs n missions under the model and returns aggregate stats and
// (optionally, when collect is true) the individual fault events.
func Campaign(m Model, n int, rng *rand.Rand, collect bool) (Stats, []Event, error) {
	if rng == nil {
		return Stats{}, nil, errors.New("mission: nil random source")
	}
	if n <= 0 {
		return Stats{}, nil, errors.New("mission: need at least one mission")
	}
	total := m.totalRate()
	if total < 0 {
		return Stats{}, nil, errors.New("mission: negative fault rate")
	}
	// Sorted tags for deterministic cumulative sampling.
	tags := make([]ontology.Tag, 0, len(m.TagRates))
	for t := range m.TagRates {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })

	st := Stats{
		Missions:       n,
		Miles:          float64(n) * m.TripMiles,
		ByTag:          make(map[ontology.Tag]int),
		ByOutcomeLocus: make(map[stpa.ComponentID]int),
	}
	var events []Event
	interArrival := stats.Exponential{Lambda: total}
	for mission := 0; mission < n; mission++ {
		pos := 0.0
		for total > 0 {
			pos += interArrival.Rand(rng)
			if pos >= m.TripMiles {
				break
			}
			tag := drawTag(tags, m.TagRates, total, rng)
			ev := m.resolveFault(mission, pos, tag, rng)
			st.Faults++
			st.ByTag[tag]++
			switch ev.Outcome {
			case OutcomeAutoDisengage:
				st.Automatic++
			case OutcomeManualDisengage:
				st.Manual++
			default:
				st.Accidents++
				st.ByOutcomeLocus[ev.Locus]++
			}
			if collect {
				events = append(events, ev)
			}
		}
	}
	return st, events, nil
}

// drawTag samples a fault tag proportional to its rate.
func drawTag(tags []ontology.Tag, rates map[ontology.Tag]float64, total float64, rng *rand.Rand) ontology.Tag {
	u := rng.Float64() * total
	var acc float64
	for _, t := range tags {
		acc += rates[t]
		if u < acc {
			return t
		}
	}
	return tags[len(tags)-1]
}

// resolveFault plays out one injected fault: ADS detection, else the
// driver's race between (detection delay + reaction time) and the action
// window.
func (m Model) resolveFault(mission int, mile float64, tag ontology.Tag, rng *rand.Rand) Event {
	locus, err := stpa.TagLocus(tag)
	if err != nil {
		locus = stpa.CompPlanner
	}
	ev := Event{
		Mission: mission,
		Mile:    mile,
		Tag:     tag,
		Locus:   locus,
		Window:  m.ActionWindow.Rand(rng),
	}
	if rng.Float64() < m.DetectionProb {
		ev.Outcome = OutcomeAutoDisengage
		return ev
	}
	ev.Reaction = m.Reaction.Rand(rng)
	if m.DetectionDelay+ev.Reaction <= ev.Window {
		ev.Outcome = OutcomeManualDisengage
	} else {
		ev.Outcome = OutcomeAccident
	}
	return ev
}

// Counterfactual is a named model variant for what-if analysis.
type Counterfactual struct {
	Name  string
	Model Model
}

// WithReactionScale returns a variant with all driver reaction times scaled
// (e.g. 2.0 = drivers twice as slow — the paper's alertness-decay risk).
func (m Model) WithReactionScale(scale float64) Model {
	out := m
	out.Reaction = stats.Weibull{K: m.Reaction.K, Lambda: m.Reaction.Lambda * scale}
	return out
}

// WithWindowScale returns a variant with the action window scaled (smaller
// = denser traffic / later fault manifestation).
func (m Model) WithWindowScale(scale float64) Model {
	out := m
	out.ActionWindow = stats.Weibull{K: m.ActionWindow.K, Lambda: m.ActionWindow.Lambda * scale}
	return out
}

// WithTagRateScale returns a variant with one tag's fault rate scaled
// (e.g. 0.5 = perception faults halved by a better recognition system).
func (m Model) WithTagRateScale(tag ontology.Tag, scale float64) Model {
	out := m
	out.TagRates = make(map[ontology.Tag]float64, len(m.TagRates))
	for t, r := range m.TagRates {
		if t == tag {
			r *= scale
		}
		out.TagRates[t] = r
	}
	return out
}
