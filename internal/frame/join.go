package frame

import (
	"fmt"
	"strings"
	"time"
)

// JoinKind selects join semantics.
type JoinKind int

// Join kinds.
const (
	// InnerJoin keeps rows with a match on both sides.
	InnerJoin JoinKind = iota + 1
	// LeftJoin keeps every left row; unmatched right columns get zero
	// values ("" / 0 / NaN is not used — numeric columns get 0, string
	// columns get "").
	LeftJoin
)

// Join combines two frames on equality of the named key columns (which
// must exist on both sides with identical kinds). Right-side key columns
// are dropped from the output; non-key right columns that clash with left
// column names are suffixed "_right". When the right side has multiple
// rows per key, the left row is repeated for each (inner) or matched to
// the first (left join keeps all matches too).
func (f *Frame) Join(right *Frame, keys []string, kind JoinKind) (*Frame, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("frame: join requires at least one key")
	}
	leftKeyCols := make([]*Column, len(keys))
	rightKeyCols := make([]*Column, len(keys))
	for i, k := range keys {
		lc, err := f.Column(k)
		if err != nil {
			return nil, fmt.Errorf("frame: join left: %w", err)
		}
		rc, err := right.Column(k)
		if err != nil {
			return nil, fmt.Errorf("frame: join right: %w", err)
		}
		if lc.Kind != rc.Kind {
			return nil, fmt.Errorf("frame: join key %q kinds differ (%s vs %s)", k, lc.Kind, rc.Kind)
		}
		leftKeyCols[i] = lc
		rightKeyCols[i] = rc
	}
	// Index the right side by key.
	rightIndex := make(map[string][]int)
	var sb strings.Builder
	keyOf := func(cols []*Column, row int) string {
		sb.Reset()
		for _, c := range cols {
			sb.WriteString(c.keyString(row))
			sb.WriteByte(0)
		}
		return sb.String()
	}
	for i := 0; i < right.NumRows(); i++ {
		k := keyOf(rightKeyCols, i)
		rightIndex[k] = append(rightIndex[k], i)
	}
	// Build row index pairs.
	var leftRows, rightRows []int // rightRows[i] == -1 for unmatched left join rows
	for i := 0; i < f.NumRows(); i++ {
		matches := rightIndex[keyOf(leftKeyCols, i)]
		if len(matches) == 0 {
			if kind == LeftJoin {
				leftRows = append(leftRows, i)
				rightRows = append(rightRows, -1)
			}
			continue
		}
		for _, j := range matches {
			leftRows = append(leftRows, i)
			rightRows = append(rightRows, j)
		}
	}
	// Assemble output: all left columns, then right non-key columns.
	out := New()
	for _, c := range f.cols {
		if err := out.addColumn(c.take(leftRows)); err != nil {
			return nil, err
		}
	}
	isKey := make(map[string]bool, len(keys))
	for _, k := range keys {
		isKey[k] = true
	}
	for _, c := range right.cols {
		if isKey[c.Name] {
			continue
		}
		name := c.Name
		if _, clash := out.index[name]; clash {
			name = name + "_right"
		}
		col := takeWithMissing(c, rightRows)
		col.Name = name
		if err := out.addColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// takeWithMissing copies rows from c at idx, substituting zero values where
// idx is -1 (unmatched left-join rows).
func takeWithMissing(c *Column, idx []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		out.Floats = make([]float64, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.Floats[j] = c.Floats[i]
			}
		}
	case Int:
		out.Ints = make([]int64, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.Ints[j] = c.Ints[i]
			}
		}
	case String:
		out.Strings = make([]string, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.Strings[j] = c.Strings[i]
			}
		}
	case Time:
		out.Times = make([]time.Time, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.Times[j] = c.Times[i]
			}
		}
	}
	return out
}
