package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvTimeLayout is the on-disk timestamp format for Time columns.
const csvTimeLayout = time.RFC3339

// WriteCSV writes the frame as CSV with a header row. Time columns are
// RFC 3339; floats use the shortest round-trippable representation.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return fmt.Errorf("frame: write CSV header: %w", err)
	}
	rec := make([]string, len(f.cols))
	for i := 0; i < f.NumRows(); i++ {
		for j, c := range f.cols {
			switch c.Kind {
			case Float:
				rec[j] = strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
			case Int:
				rec[j] = strconv.FormatInt(c.Ints[i], 10)
			case String:
				rec[j] = c.Strings[i]
			case Time:
				rec[j] = c.Times[i].Format(csvTimeLayout)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frame: write CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ColumnSpec declares the expected kind of one CSV column for ReadCSV.
type ColumnSpec struct {
	Name string
	Kind Kind
}

// ReadCSV parses CSV with a header row into a frame. specs gives the type
// of each expected column, by name; header columns not in specs are read as
// strings. Missing spec'd columns are an error.
func ReadCSV(r io.Reader, specs []ColumnSpec) (*Frame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: read CSV header: %w", err)
	}
	kinds := make([]Kind, len(header))
	specByName := make(map[string]Kind, len(specs))
	for _, s := range specs {
		specByName[s.Name] = s.Kind
	}
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		seen[name] = true
		if k, ok := specByName[name]; ok {
			kinds[i] = k
		} else {
			kinds[i] = String
		}
	}
	for _, s := range specs {
		if !seen[s.Name] {
			return nil, fmt.Errorf("frame: CSV missing column %q", s.Name)
		}
	}

	floats := make([][]float64, len(header))
	ints := make([][]int64, len(header))
	strs := make([][]string, len(header))
	times := make([][]time.Time, len(header))

	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("frame: read CSV row %d: %w", rowNum, err)
		}
		for j, cell := range rec {
			switch kinds[j] {
			case Float:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("frame: row %d column %q: %w", rowNum, header[j], err)
				}
				floats[j] = append(floats[j], v)
			case Int:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("frame: row %d column %q: %w", rowNum, header[j], err)
				}
				ints[j] = append(ints[j], v)
			case Time:
				v, err := time.Parse(csvTimeLayout, cell)
				if err != nil {
					return nil, fmt.Errorf("frame: row %d column %q: %w", rowNum, header[j], err)
				}
				times[j] = append(times[j], v)
			default:
				strs[j] = append(strs[j], cell)
			}
		}
		rowNum++
	}

	out := New()
	for j, name := range header {
		var err error
		switch kinds[j] {
		case Float:
			err = out.AddFloats(name, floats[j])
		case Int:
			err = out.AddInts(name, ints[j])
		case Time:
			err = out.AddTimes(name, times[j])
		default:
			err = out.AddStrings(name, strs[j])
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
