// Package frame is a small typed columnar dataframe: the Go-native stand-in
// for the pandas layer that the paper's analysis workflow implies.
//
// A Frame is a set of equal-length named columns of float64, int64, string,
// or time.Time. It supports row filtering, sorting, group-by with ordered
// groups (deterministic iteration for reproducible analyses), aggregation,
// column arithmetic, and CSV round-tripping. It is deliberately not a query
// engine: operations copy, the zero value is unusable, and every error is
// explicit.
package frame

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Kind enumerates supported column element types.
type Kind int

// Column kinds.
const (
	Float Kind = iota + 1
	Int
	String
	Time
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is one typed column. Exactly one of the data slices is non-nil,
// matching Kind.
type Column struct {
	Name    string
	Kind    Kind
	Floats  []float64
	Ints    []int64
	Strings []string
	Times   []time.Time
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case Float:
		return len(c.Floats)
	case Int:
		return len(c.Ints)
	case String:
		return len(c.Strings)
	case Time:
		return len(c.Times)
	default:
		return 0
	}
}

// value returns the i-th element boxed, for printing and comparison.
func (c *Column) value(i int) any {
	switch c.Kind {
	case Float:
		return c.Floats[i]
	case Int:
		return c.Ints[i]
	case String:
		return c.Strings[i]
	case Time:
		return c.Times[i]
	default:
		return nil
	}
}

// keyString renders the i-th element as a group-by key component.
func (c *Column) keyString(i int) string {
	switch c.Kind {
	case Float:
		return fmt.Sprintf("%g", c.Floats[i])
	case Int:
		return fmt.Sprintf("%d", c.Ints[i])
	case String:
		return c.Strings[i]
	case Time:
		return c.Times[i].Format(time.RFC3339Nano)
	default:
		return ""
	}
}

// take returns a copy of the column restricted to rows idx.
func (c *Column) take(idx []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		out.Floats = make([]float64, len(idx))
		for j, i := range idx {
			out.Floats[j] = c.Floats[i]
		}
	case Int:
		out.Ints = make([]int64, len(idx))
		for j, i := range idx {
			out.Ints[j] = c.Ints[i]
		}
	case String:
		out.Strings = make([]string, len(idx))
		for j, i := range idx {
			out.Strings[j] = c.Strings[i]
		}
	case Time:
		out.Times = make([]time.Time, len(idx))
		for j, i := range idx {
			out.Times[j] = c.Times[i]
		}
	}
	return out
}

// Frame is an ordered collection of equal-length columns.
type Frame struct {
	cols  []*Column
	index map[string]int
}

// New creates an empty frame.
func New() *Frame {
	return &Frame{index: make(map[string]int)}
}

// NumRows returns the row count (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// addColumn validates and registers col.
func (f *Frame) addColumn(col *Column) error {
	if col.Name == "" {
		return errors.New("frame: column name must be non-empty")
	}
	if _, dup := f.index[col.Name]; dup {
		return fmt.Errorf("frame: duplicate column %q", col.Name)
	}
	if len(f.cols) > 0 && col.Len() != f.NumRows() {
		return fmt.Errorf("frame: column %q has %d rows, frame has %d", col.Name, col.Len(), f.NumRows())
	}
	f.index[col.Name] = len(f.cols)
	f.cols = append(f.cols, col)
	return nil
}

// AddFloats appends a float64 column. The data is copied.
func (f *Frame) AddFloats(name string, data []float64) error {
	cp := make([]float64, len(data))
	copy(cp, data)
	return f.addColumn(&Column{Name: name, Kind: Float, Floats: cp})
}

// AddInts appends an int64 column. The data is copied.
func (f *Frame) AddInts(name string, data []int64) error {
	cp := make([]int64, len(data))
	copy(cp, data)
	return f.addColumn(&Column{Name: name, Kind: Int, Ints: cp})
}

// AddStrings appends a string column. The data is copied.
func (f *Frame) AddStrings(name string, data []string) error {
	cp := make([]string, len(data))
	copy(cp, data)
	return f.addColumn(&Column{Name: name, Kind: String, Strings: cp})
}

// AddTimes appends a time.Time column. The data is copied.
func (f *Frame) AddTimes(name string, data []time.Time) error {
	cp := make([]time.Time, len(data))
	copy(cp, data)
	return f.addColumn(&Column{Name: name, Kind: Time, Times: cp})
}

// Column returns the named column, or an error if absent. The returned
// column shares storage with the frame; callers must not mutate it.
func (f *Frame) Column(name string) (*Column, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("frame: no column %q", name)
	}
	return f.cols[i], nil
}

// Floats returns a copy of the named float column's data.
func (f *Frame) Floats(name string) ([]float64, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != Float {
		return nil, fmt.Errorf("frame: column %q is %s, not float", name, c.Kind)
	}
	out := make([]float64, len(c.Floats))
	copy(out, c.Floats)
	return out, nil
}

// Ints returns a copy of the named int column's data.
func (f *Frame) Ints(name string) ([]int64, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != Int {
		return nil, fmt.Errorf("frame: column %q is %s, not int", name, c.Kind)
	}
	out := make([]int64, len(c.Ints))
	copy(out, c.Ints)
	return out, nil
}

// StringsCol returns a copy of the named string column's data.
func (f *Frame) StringsCol(name string) ([]string, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != String {
		return nil, fmt.Errorf("frame: column %q is %s, not string", name, c.Kind)
	}
	out := make([]string, len(c.Strings))
	copy(out, c.Strings)
	return out, nil
}

// Times returns a copy of the named time column's data.
func (f *Frame) Times(name string) ([]time.Time, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != Time {
		return nil, fmt.Errorf("frame: column %q is %s, not time", name, c.Kind)
	}
	out := make([]time.Time, len(c.Times))
	copy(out, c.Times)
	return out, nil
}

// Select returns a new frame containing only the named columns, in the
// given order.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New()
	all := allRows(f.NumRows())
	for _, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		if err := out.addColumn(c.take(all)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns a new frame with only the rows where keep returns true.
// keep receives a Row view that reads directly from the frame.
func (f *Frame) Filter(keep func(r Row) bool) *Frame {
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		if keep(Row{f: f, i: i}) {
			idx = append(idx, i)
		}
	}
	return f.takeRows(idx)
}

// Take returns a copy of the frame restricted to the given rows, in the
// given order. Indexes may repeat; each must be in [0, NumRows). This is
// the public row-projection used by index-backed query layers that compute
// row ids outside the frame.
func (f *Frame) Take(idx []int) (*Frame, error) {
	n := f.NumRows()
	for _, i := range idx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("frame: take index %d out of range [0,%d)", i, n)
		}
	}
	return f.takeRows(idx), nil
}

// takeRows copies the frame restricted to rows idx.
func (f *Frame) takeRows(idx []int) *Frame {
	out := New()
	for _, c := range f.cols {
		// addColumn cannot fail here: names are unique and lengths match.
		_ = out.addColumn(c.take(idx))
	}
	return out
}

// allRows returns [0, 1, ..., n-1].
func allRows(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Row is a read-only view of one frame row.
type Row struct {
	f *Frame
	i int
}

// Float returns the float value in the named column. Missing or mistyped
// columns return NaN; analysis code filters NaNs explicitly.
func (r Row) Float(name string) float64 {
	c, err := r.f.Column(name)
	if err != nil || c.Kind != Float {
		return math.NaN()
	}
	return c.Floats[r.i]
}

// Int returns the int value in the named column, or 0 when absent.
func (r Row) Int(name string) int64 {
	c, err := r.f.Column(name)
	if err != nil || c.Kind != Int {
		return 0
	}
	return c.Ints[r.i]
}

// String returns the string value in the named column, or "" when absent.
func (r Row) String(name string) string {
	c, err := r.f.Column(name)
	if err != nil || c.Kind != String {
		return ""
	}
	return c.Strings[r.i]
}

// Time returns the time value in the named column, or the zero time.
func (r Row) Time(name string) time.Time {
	c, err := r.f.Column(name)
	if err != nil || c.Kind != Time {
		return time.Time{}
	}
	return c.Times[r.i]
}

// Index returns the row's position in the frame.
func (r Row) Index() int { return r.i }

// SortBy returns a new frame sorted ascending by the named columns
// (lexicographic over the column list). The sort is stable.
func (f *Frame) SortBy(names ...string) (*Frame, error) {
	cols := make([]*Column, len(names))
	for i, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	idx := allRows(f.NumRows())
	sort.SliceStable(idx, func(a, b int) bool {
		for _, c := range cols {
			cmp := compareAt(c, idx[a], idx[b])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return f.takeRows(idx), nil
}

// compareAt orders two cells of one column.
func compareAt(c *Column, a, b int) int {
	switch c.Kind {
	case Float:
		switch {
		case c.Floats[a] < c.Floats[b]:
			return -1
		case c.Floats[a] > c.Floats[b]:
			return 1
		}
	case Int:
		switch {
		case c.Ints[a] < c.Ints[b]:
			return -1
		case c.Ints[a] > c.Ints[b]:
			return 1
		}
	case String:
		return strings.Compare(c.Strings[a], c.Strings[b])
	case Time:
		switch {
		case c.Times[a].Before(c.Times[b]):
			return -1
		case c.Times[a].After(c.Times[b]):
			return 1
		}
	}
	return 0
}

// Group is one group-by partition: the key values and the sub-frame.
type Group struct {
	// Key holds the group's key column values, aligned with the GroupBy
	// column names.
	Key []string
	// Frame is the partition.
	Frame *Frame
}

// GroupBy partitions the frame by the named columns. Groups are returned in
// order of first appearance, making downstream analyses deterministic.
func (f *Frame) GroupBy(names ...string) ([]Group, error) {
	keyCols := make([]*Column, len(names))
	for i, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	order := make([]string, 0)
	buckets := make(map[string][]int)
	keys := make(map[string][]string)
	var sb strings.Builder
	for i := 0; i < f.NumRows(); i++ {
		sb.Reset()
		parts := make([]string, len(keyCols))
		for j, c := range keyCols {
			parts[j] = c.keyString(i)
			sb.WriteString(parts[j])
			sb.WriteByte(0)
		}
		k := sb.String()
		if _, seen := buckets[k]; !seen {
			order = append(order, k)
			keys[k] = parts
		}
		buckets[k] = append(buckets[k], i)
	}
	out := make([]Group, 0, len(order))
	for _, k := range order {
		out = append(out, Group{Key: keys[k], Frame: f.takeRows(buckets[k])})
	}
	return out, nil
}

// Agg is a named aggregation over a float column.
type Agg struct {
	// Col is the source float column.
	Col string
	// As names the output column.
	As string
	// Fn reduces the group's column values to one number.
	Fn func([]float64) float64
}

// Aggregate group-bys the frame and applies each aggregation, producing one
// row per group with the key columns (as strings) plus one float column per
// aggregation.
func (f *Frame) Aggregate(by []string, aggs []Agg) (*Frame, error) {
	groups, err := f.GroupBy(by...)
	if err != nil {
		return nil, err
	}
	out := New()
	keyData := make([][]string, len(by))
	for i := range keyData {
		keyData[i] = make([]string, len(groups))
	}
	aggData := make([][]float64, len(aggs))
	for i := range aggData {
		aggData[i] = make([]float64, len(groups))
	}
	for gi, g := range groups {
		for ki := range by {
			keyData[ki][gi] = g.Key[ki]
		}
		for ai, a := range aggs {
			vals, err := g.Frame.Floats(a.Col)
			if err != nil {
				return nil, err
			}
			aggData[ai][gi] = a.Fn(vals)
		}
	}
	for ki, name := range by {
		if err := out.AddStrings(name, keyData[ki]); err != nil {
			return nil, err
		}
	}
	for ai, a := range aggs {
		if err := out.AddFloats(a.As, aggData[ai]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Head returns the first n rows (or the whole frame if shorter).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	return f.takeRows(allRows(n))
}

// String renders a compact table for debugging.
func (f *Frame) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(f.Names(), "\t"))
	sb.WriteByte('\n')
	n := f.NumRows()
	const maxRows = 20
	show := n
	if show > maxRows {
		show = maxRows
	}
	for i := 0; i < show; i++ {
		for j, c := range f.cols {
			if j > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", c.value(i))
		}
		sb.WriteByte('\n')
	}
	if show < n {
		fmt.Fprintf(&sb, "... (%d more rows)\n", n-show)
	}
	return sb.String()
}
