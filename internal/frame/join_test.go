package frame

import "testing"

func joinFixtures(t *testing.T) (*Frame, *Frame) {
	t.Helper()
	left := New()
	if err := left.AddStrings("mfr", []string{"Waymo", "Bosch", "Nissan", "Waymo"}); err != nil {
		t.Fatal(err)
	}
	if err := left.AddFloats("dpm", []float64{0.001, 0.8, 0.04, 0.002}); err != nil {
		t.Fatal(err)
	}
	right := New()
	if err := right.AddStrings("mfr", []string{"Waymo", "Nissan", "Tesla"}); err != nil {
		t.Fatal(err)
	}
	if err := right.AddFloats("accidents", []float64{25, 1, 0}); err != nil {
		t.Fatal(err)
	}
	return left, right
}

func TestInnerJoin(t *testing.T) {
	left, right := joinFixtures(t)
	out, err := left.Join(right, []string{"mfr"}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Bosch has no match, Waymo matches twice (two left rows).
	if out.NumRows() != 3 {
		t.Fatalf("inner join rows = %d, want 3", out.NumRows())
	}
	mfrs, _ := out.StringsCol("mfr")
	acc, _ := out.Floats("accidents")
	for i, m := range mfrs {
		switch m {
		case "Waymo":
			if acc[i] != 25 {
				t.Errorf("Waymo accidents = %g", acc[i])
			}
		case "Nissan":
			if acc[i] != 1 {
				t.Errorf("Nissan accidents = %g", acc[i])
			}
		default:
			t.Errorf("unexpected row %q", m)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	left, right := joinFixtures(t)
	out, err := left.Join(right, []string{"mfr"}, LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatalf("left join rows = %d, want 4", out.NumRows())
	}
	mfrs, _ := out.StringsCol("mfr")
	acc, _ := out.Floats("accidents")
	foundBosch := false
	for i, m := range mfrs {
		if m == "Bosch" {
			foundBosch = true
			if acc[i] != 0 {
				t.Errorf("unmatched Bosch accidents = %g, want zero value", acc[i])
			}
		}
	}
	if !foundBosch {
		t.Error("left join dropped unmatched Bosch row")
	}
}

func TestJoinNameClash(t *testing.T) {
	left, right := joinFixtures(t)
	if err := right.AddFloats("dpm", []float64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	out, err := left.Join(right, []string{"mfr"}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out.Floats("dpm_right"); err != nil {
		t.Errorf("clashing column not suffixed: %v", err)
	}
	// Original left column preserved.
	dpm, err := out.Floats("dpm")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dpm {
		if v == 9 {
			t.Error("left dpm overwritten by right")
		}
	}
}

func TestJoinErrors(t *testing.T) {
	left, right := joinFixtures(t)
	if _, err := left.Join(right, nil, InnerJoin); err == nil {
		t.Error("no keys: want error")
	}
	if _, err := left.Join(right, []string{"ghost"}, InnerJoin); err == nil {
		t.Error("missing left key: want error")
	}
	other := New()
	if err := other.AddFloats("mfr", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := left.Join(other, []string{"mfr"}, InnerJoin); err == nil {
		t.Error("kind mismatch: want error")
	}
}

func TestJoinMultiKey(t *testing.T) {
	left := New()
	if err := left.AddStrings("mfr", []string{"Waymo", "Waymo"}); err != nil {
		t.Fatal(err)
	}
	if err := left.AddStrings("year", []string{"2015-2016", "2016-2017"}); err != nil {
		t.Fatal(err)
	}
	right := New()
	if err := right.AddStrings("mfr", []string{"Waymo"}); err != nil {
		t.Fatal(err)
	}
	if err := right.AddStrings("year", []string{"2016-2017"}); err != nil {
		t.Fatal(err)
	}
	if err := right.AddFloats("miles", []float64{635868}); err != nil {
		t.Fatal(err)
	}
	out, err := left.Join(right, []string{"mfr", "year"}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("multi-key join rows = %d", out.NumRows())
	}
	years, _ := out.StringsCol("year")
	if years[0] != "2016-2017" {
		t.Errorf("joined year = %q", years[0])
	}
}
