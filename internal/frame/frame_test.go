package frame

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func demo(t *testing.T) *Frame {
	t.Helper()
	f := New()
	if err := f.AddStrings("mfr", []string{"Waymo", "Bosch", "Waymo", "Nissan", "Bosch"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFloats("miles", []float64{100, 20, 300, 50, 10}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddInts("events", []int64{1, 5, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := f.AddTimes("month", []time.Time{
		base, base.AddDate(0, 1, 0), base.AddDate(0, 2, 0),
		base.AddDate(0, 3, 0), base.AddDate(0, 4, 0),
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddAndShape(t *testing.T) {
	f := demo(t)
	if f.NumRows() != 5 || f.NumCols() != 4 {
		t.Fatalf("shape = %dx%d, want 5x4", f.NumRows(), f.NumCols())
	}
	want := []string{"mfr", "miles", "events", "month"}
	got := f.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v", got)
		}
	}
}

func TestAddErrors(t *testing.T) {
	f := New()
	if err := f.AddFloats("", []float64{1}); err == nil {
		t.Error("empty name: want error")
	}
	if err := f.AddFloats("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFloats("x", []float64{3, 4}); err == nil {
		t.Error("duplicate name: want error")
	}
	if err := f.AddInts("y", []int64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestColumnAccessors(t *testing.T) {
	f := demo(t)
	miles, err := f.Floats("miles")
	if err != nil {
		t.Fatal(err)
	}
	if miles[2] != 300 {
		t.Errorf("miles[2] = %g", miles[2])
	}
	// Mutating the returned copy must not affect the frame.
	miles[0] = -1
	again, _ := f.Floats("miles")
	if again[0] != 100 {
		t.Error("Floats returned aliased storage")
	}
	if _, err := f.Floats("mfr"); err == nil {
		t.Error("kind mismatch: want error")
	}
	if _, err := f.Floats("nope"); err == nil {
		t.Error("missing column: want error")
	}
	ev, err := f.Ints("events")
	if err != nil || ev[1] != 5 {
		t.Errorf("Ints: %v, %v", ev, err)
	}
	ms, err := f.StringsCol("mfr")
	if err != nil || ms[3] != "Nissan" {
		t.Errorf("StringsCol: %v, %v", ms, err)
	}
	ts, err := f.Times("month")
	if err != nil || ts[0].Month() != time.January {
		t.Errorf("Times: %v, %v", ts, err)
	}
}

func TestSelect(t *testing.T) {
	f := demo(t)
	sub, err := f.Select("events", "mfr")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 2 || sub.Names()[0] != "events" {
		t.Errorf("Select shape/order wrong: %v", sub.Names())
	}
	if _, err := f.Select("ghost"); err == nil {
		t.Error("missing column: want error")
	}
}

func TestFilter(t *testing.T) {
	f := demo(t)
	sub := f.Filter(func(r Row) bool { return r.String("mfr") == "Waymo" })
	if sub.NumRows() != 2 {
		t.Fatalf("filtered rows = %d, want 2", sub.NumRows())
	}
	miles, _ := sub.Floats("miles")
	if miles[0] != 100 || miles[1] != 300 {
		t.Errorf("filtered miles = %v", miles)
	}
	empty := f.Filter(func(r Row) bool { return false })
	if empty.NumRows() != 0 {
		t.Errorf("empty filter rows = %d", empty.NumRows())
	}
}

func TestRowAccessors(t *testing.T) {
	f := demo(t)
	var got Row
	f.Filter(func(r Row) bool {
		if r.Index() == 1 {
			got = r
		}
		return false
	})
	if got.String("mfr") != "Bosch" || got.Float("miles") != 20 || got.Int("events") != 5 {
		t.Errorf("row accessors wrong: %s %g %d", got.String("mfr"), got.Float("miles"), got.Int("events"))
	}
	if !math.IsNaN(got.Float("mfr")) || !math.IsNaN(got.Float("ghost")) {
		t.Error("Float on non-float should be NaN")
	}
	if got.Int("miles") != 0 || got.String("events") != "" || !got.Time("events").IsZero() {
		t.Error("mistyped row accessors should return zero values")
	}
	if got.Time("month").Month() != time.February {
		t.Errorf("row time = %v", got.Time("month"))
	}
}

func TestSortBy(t *testing.T) {
	f := demo(t)
	sorted, err := f.SortBy("mfr", "miles")
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := sorted.StringsCol("mfr")
	miles, _ := sorted.Floats("miles")
	wantM := []string{"Bosch", "Bosch", "Nissan", "Waymo", "Waymo"}
	wantMi := []float64{10, 20, 50, 100, 300}
	for i := range wantM {
		if ms[i] != wantM[i] || miles[i] != wantMi[i] {
			t.Fatalf("sorted = %v / %v", ms, miles)
		}
	}
	if _, err := f.SortBy("ghost"); err == nil {
		t.Error("missing sort column: want error")
	}
}

func TestGroupByOrdered(t *testing.T) {
	f := demo(t)
	groups, err := f.GroupBy("mfr")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// First-appearance order: Waymo, Bosch, Nissan.
	wantOrder := []string{"Waymo", "Bosch", "Nissan"}
	for i, g := range groups {
		if g.Key[0] != wantOrder[i] {
			t.Errorf("group %d key = %v, want %s", i, g.Key, wantOrder[i])
		}
	}
	if groups[0].Frame.NumRows() != 2 || groups[2].Frame.NumRows() != 1 {
		t.Error("group sizes wrong")
	}
	if _, err := f.GroupBy("ghost"); err == nil {
		t.Error("missing group column: want error")
	}
}

func TestAggregate(t *testing.T) {
	f := demo(t)
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	out, err := f.Aggregate([]string{"mfr"}, []Agg{
		{Col: "miles", As: "totalMiles", Fn: sum},
		{Col: "miles", As: "maxMiles", Fn: func(xs []float64) float64 {
			m := xs[0]
			for _, x := range xs {
				if x > m {
					m = x
				}
			}
			return m
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("agg rows = %d", out.NumRows())
	}
	total, _ := out.Floats("totalMiles")
	if total[0] != 400 { // Waymo 100+300
		t.Errorf("Waymo total = %g, want 400", total[0])
	}
	maxes, _ := out.Floats("maxMiles")
	if maxes[1] != 20 { // Bosch max
		t.Errorf("Bosch max = %g, want 20", maxes[1])
	}
	if _, err := f.Aggregate([]string{"mfr"}, []Agg{{Col: "mfr", As: "x", Fn: sum}}); err == nil {
		t.Error("aggregating a string column: want error")
	}
}

func TestHeadAndString(t *testing.T) {
	f := demo(t)
	h := f.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("Head rows = %d", h.NumRows())
	}
	if f.Head(99).NumRows() != 5 {
		t.Error("Head beyond length should clamp")
	}
	s := f.String()
	if !strings.Contains(s, "mfr") || !strings.Contains(s, "Waymo") {
		t.Errorf("String output missing content:\n%s", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := demo(t)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, []ColumnSpec{
		{Name: "miles", Kind: Float},
		{Name: "events", Kind: Int},
		{Name: "month", Kind: Time},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != f.NumRows() || got.NumCols() != f.NumCols() {
		t.Fatalf("round-trip shape %dx%d", got.NumRows(), got.NumCols())
	}
	m1, _ := f.Floats("miles")
	m2, _ := got.Floats("miles")
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("miles differ at %d: %g vs %g", i, m1[i], m2[i])
		}
	}
	t1, _ := f.Times("month")
	t2, _ := got.Times("month")
	for i := range t1 {
		if !t1[i].Equal(t2[i]) {
			t.Fatalf("times differ at %d", i)
		}
	}
}

// failingWriter errors after n bytes, exercising WriteCSV's error paths.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = errFailed{}

type errFailed struct{}

func (errFailed) Error() string { return "write failed" }

func TestWriteCSVWriterFailure(t *testing.T) {
	f := demo(t)
	if err := f.WriteCSV(&failingWriter{left: 0}); err == nil {
		t.Error("immediate write failure: want error")
	}
	if err := f.WriteCSV(&failingWriter{left: 30}); err == nil {
		t.Error("mid-stream write failure: want error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), []ColumnSpec{{Name: "c", Kind: Float}}); err == nil {
		t.Error("missing spec'd column: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a\nxyz\n"), []ColumnSpec{{Name: "a", Kind: Float}}); err == nil {
		t.Error("bad float cell: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a\nxyz\n"), []ColumnSpec{{Name: "a", Kind: Int}}); err == nil {
		t.Error("bad int cell: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a\nnot-a-time\n"), []ColumnSpec{{Name: "a", Kind: Time}}); err == nil {
		t.Error("bad time cell: want error")
	}
}

// Property: group-by is a partition — group sizes sum to NumRows and every
// group is homogeneous in its key.
func TestGroupByPartitionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		keys := make([]string, n)
		vals := make([]float64, n)
		pool := []string{"a", "b", "c", "d"}
		for i := 0; i < n; i++ {
			keys[i] = pool[r.Intn(len(pool))]
			vals[i] = r.Float64()
		}
		f := New()
		if err := f.AddStrings("k", keys); err != nil {
			return false
		}
		if err := f.AddFloats("v", vals); err != nil {
			return false
		}
		groups, err := f.GroupBy("k")
		if err != nil {
			return false
		}
		total := 0
		for _, g := range groups {
			total += g.Frame.NumRows()
			ks, err := g.Frame.StringsCol("k")
			if err != nil {
				return false
			}
			for _, k := range ks {
				if k != g.Key[0] {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(46))}); err != nil {
		t.Error(err)
	}
}

// Property: SortBy produces a permutation in non-decreasing key order.
func TestSortByPermutationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		vals := make([]float64, n)
		var sum float64
		for i := range vals {
			vals[i] = math.Floor(r.Float64() * 20)
			sum += vals[i]
		}
		f := New()
		if err := f.AddFloats("v", vals); err != nil {
			return false
		}
		sorted, err := f.SortBy("v")
		if err != nil {
			return false
		}
		got, _ := sorted.Floats("v")
		var sum2, prev float64
		prev = math.Inf(-1)
		for _, v := range got {
			if v < prev {
				return false
			}
			prev = v
			sum2 += v
		}
		return math.Abs(sum-sum2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(46))}); err != nil {
		t.Error(err)
	}
}

func TestTake(t *testing.T) {
	f := demo(t)
	out, err := f.Take([]int{4, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 || out.NumCols() != f.NumCols() {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	mfr, err := out.StringsCol("mfr")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Bosch", "Waymo", "Waymo"}
	for i := range want {
		if mfr[i] != want[i] {
			t.Fatalf("mfr = %v, want %v", mfr, want)
		}
	}
	miles, err := out.Floats("miles")
	if err != nil {
		t.Fatal(err)
	}
	if miles[0] != 10 || miles[1] != 100 || miles[2] != 100 {
		t.Errorf("miles = %v", miles)
	}

	// Take copies: mutating the projection leaves the source intact.
	miles[0] = -1
	orig, _ := f.Floats("miles")
	if orig[4] != 10 {
		t.Errorf("Take aliased the source column: %v", orig)
	}

	// Empty selection keeps the schema with zero rows.
	empty, err := f.Take(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 || empty.NumCols() != f.NumCols() {
		t.Errorf("empty take shape = %dx%d", empty.NumRows(), empty.NumCols())
	}

	for _, bad := range [][]int{{-1}, {5}, {0, 99}} {
		if _, err := f.Take(bad); err == nil {
			t.Errorf("Take(%v): want out-of-range error", bad)
		}
	}
}
