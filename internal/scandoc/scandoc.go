// Package scandoc renders a normalized corpus into the document form the
// pipeline ingests: per-manufacturer annual disengagement reports (with the
// schema fragmentation the paper describes — each vendor family uses its
// own layout) and per-incident accident reports (OL 316 style).
//
// Rendered documents are line-oriented page grids; package ocr then decodes
// them with a configurable noise model, reproducing the paper's Stage I→II
// digitization path.
package scandoc

import (
	"fmt"
	"strings"

	"avfda/internal/schema"
)

// DocKind distinguishes the document classes in the DMV releases.
type DocKind int

// Document kinds.
const (
	DisengagementReport DocKind = iota + 1
	AccidentReport
)

// String implements fmt.Stringer.
func (k DocKind) String() string {
	switch k {
	case DisengagementReport:
		return "disengagement-report"
	case AccidentReport:
		return "accident-report"
	default:
		return fmt.Sprintf("DocKind(%d)", int(k))
	}
}

// Format identifies a vendor's report layout family.
type Format int

// Layout families. The real corpus is fragmented across vendor-specific
// formats; we model the three families the data exhibits.
const (
	// FormatTabular is a pipe-separated table (Mercedes-Benz, Bosch,
	// Volkswagen, GM Cruise).
	FormatTabular Format = iota + 1
	// FormatLogLine is em-dash-separated log lines (Nissan, Delphi,
	// Tesla, Ford, BMW), as in the paper's Table II.
	FormatLogLine
	// FormatMonthly is Waymo's month-granular narrative style.
	FormatMonthly
)

// FormatFor returns the layout family a manufacturer files in.
func FormatFor(m schema.Manufacturer) Format {
	switch m {
	case schema.MercedesBenz, schema.Bosch, schema.Volkswagen, schema.GMCruise:
		return FormatTabular
	case schema.Waymo:
		return FormatMonthly
	default:
		return FormatLogLine
	}
}

// Page is one page of a scanned document: a slice of text lines.
type Page struct {
	Lines []string
	// Handwritten pages OCR worse (accident narratives are handwritten
	// in the real corpus).
	Handwritten bool
}

// Document is one logical report.
type Document struct {
	ID           string
	Kind         DocKind
	Manufacturer schema.Manufacturer
	ReportYear   schema.ReportYear
	Pages        []Page
}

// Lines flattens all pages into a single line slice.
func (d *Document) Lines() []string {
	var out []string
	for _, p := range d.Pages {
		out = append(out, p.Lines...)
	}
	return out
}

const linesPerPage = 56

// paginate splits lines into pages.
func paginate(lines []string, handwritten bool) []Page {
	var pages []Page
	for start := 0; start < len(lines); start += linesPerPage {
		end := start + linesPerPage
		if end > len(lines) {
			end = len(lines)
		}
		chunk := make([]string, end-start)
		copy(chunk, lines[start:end])
		pages = append(pages, Page{Lines: chunk, Handwritten: handwritten})
	}
	if len(pages) == 0 {
		pages = []Page{{Handwritten: handwritten}}
	}
	return pages
}

// Render converts a corpus into the full document set: one disengagement
// report per manufacturer-year (with its mileage table) and one accident
// report per collision.
func Render(c *schema.Corpus) []Document {
	var docs []Document

	// Group fleet/mileage/events per manufacturer-year, preserving corpus
	// order.
	type key struct {
		m schema.Manufacturer
		y schema.ReportYear
	}
	var order []key
	seen := make(map[key]bool)
	note := func(k key) {
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	fleets := make(map[key]schema.Fleet)
	for _, f := range c.Fleets {
		k := key{f.Manufacturer, f.ReportYear}
		note(k)
		fleets[k] = f
	}
	mileage := make(map[key][]schema.MonthlyMileage)
	for _, m := range c.Mileage {
		k := key{m.Manufacturer, m.ReportYear}
		note(k)
		mileage[k] = append(mileage[k], m)
	}
	events := make(map[key][]schema.Disengagement)
	for _, d := range c.Disengagements {
		k := key{d.Manufacturer, d.ReportYear}
		note(k)
		events[k] = append(events[k], d)
	}

	for _, k := range order {
		if len(mileage[k]) == 0 && len(events[k]) == 0 {
			// Accident-only vendors file no disengagement report.
			if f, ok := fleets[k]; !ok || f.Cars <= 0 {
				continue
			}
		}
		docs = append(docs, renderDisengagementReport(
			k.m, k.y, fleets[k], mileage[k], events[k]))
	}

	for i, a := range c.Accidents {
		docs = append(docs, renderAccidentReport(i, a))
	}
	return docs
}

// renderDisengagementReport builds one manufacturer-year report document.
func renderDisengagementReport(m schema.Manufacturer, y schema.ReportYear,
	fleet schema.Fleet, miles []schema.MonthlyMileage, events []schema.Disengagement,
) Document {
	var lines []string
	lines = append(lines,
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufacturer: "+string(m),
		"Reporting Period: "+y.String(),
		"Fleet Size: "+fleetSize(fleet),
		"",
		"SECTION 1: AUTONOMOUS MILES BY VEHICLE AND MONTH",
		"VEHICLE | MONTH | MILES",
	)
	for _, mm := range miles {
		lines = append(lines, fmt.Sprintf("%s | %s | %.2f",
			mm.Vehicle, mm.Month.Format("2006-01"), mm.Miles))
	}
	lines = append(lines, "",
		fmt.Sprintf("SECTION 2: DISENGAGEMENT EVENTS (%d TOTAL)", len(events)))
	switch FormatFor(m) {
	case FormatTabular:
		lines = append(lines, "DATE TIME | VEHICLE | MODE | ROAD | WEATHER | REACTION | CAUSE")
		for _, e := range events {
			lines = append(lines, renderTabularEvent(e))
		}
	case FormatMonthly:
		for _, e := range events {
			lines = append(lines, renderMonthlyEvent(e))
		}
	default:
		for _, e := range events {
			lines = append(lines, renderLogLineEvent(e))
		}
	}
	return Document{
		ID:           fmt.Sprintf("disengagements-%s-%d", sanitize(string(m)), int(y)),
		Kind:         DisengagementReport,
		Manufacturer: m,
		ReportYear:   y,
		Pages:        paginate(lines, false),
	}
}

// fleetSize renders the fleet-size field, preserving the Table I dashes.
func fleetSize(f schema.Fleet) string {
	if f.Cars < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", f.Cars)
}

// renderTabularEvent renders the pipe-table family row.
func renderTabularEvent(e schema.Disengagement) string {
	return fmt.Sprintf("%s | %s | %s | %s | %s | %s | %s",
		e.Time.Format("2006-01-02 15:04:05"),
		orDash(string(e.Vehicle)),
		e.Modality,
		e.Road,
		e.Weather,
		reactionField(e),
		e.Cause)
}

// renderLogLineEvent renders the em-dash log family row (Table II style).
func renderLogLineEvent(e schema.Disengagement) string {
	return fmt.Sprintf("%s — %s — %s — %s — %s — %s — %s — %s",
		e.Time.Format("1/2/06"),
		e.Time.Format("3:04:05 PM"),
		orDash(string(e.Vehicle)),
		e.Cause,
		e.Road,
		e.Weather,
		reactionField(e),
		strings.ToLower(e.Modality.String()))
}

// renderMonthlyEvent renders Waymo's month-granular style.
func renderMonthlyEvent(e schema.Disengagement) string {
	return fmt.Sprintf("%s — %s — %s — %s — %s — %s — %s",
		e.Time.Format("Jan-06"),
		orDash(string(e.Vehicle)),
		e.Road,
		e.Modality.String(),
		e.Cause,
		reactionField(e),
		e.Time.Format("2006-01-02 15:04:05"))
}

// reactionField renders the driver reaction time, "-" when unreported.
func reactionField(e schema.Disengagement) string {
	if !e.HasReaction() {
		return "-"
	}
	return fmt.Sprintf("%.3f s", e.ReactionSeconds)
}

// orDash substitutes "-" for empty strings.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// renderAccidentReport builds one OL 316-style accident document. The
// narrative section is flagged handwritten, which the OCR model degrades
// more aggressively.
func renderAccidentReport(idx int, a schema.Accident) Document {
	head := []string{
		"REPORT OF TRAFFIC COLLISION INVOLVING AN AUTONOMOUS VEHICLE (OL 316)",
		"Manufacturer: " + string(a.Manufacturer),
		"Reporting Period: " + a.ReportYear.String(),
		"Date/Time: " + a.Time.Format("2006-01-02 15:04"),
		"Vehicle: " + redactable(a),
		"Location: " + a.Location,
		"AV Speed (mph): " + speedField(a.AVSpeedMPH),
		"Other Vehicle Speed (mph): " + speedField(a.OtherSpeedMPH),
		"Autonomous Mode: " + yesNo(a.InAutonomousMode),
		"",
		"NARRATIVE:",
	}
	narrative := wrapText(a.Narrative, 90)
	return Document{
		ID:           fmt.Sprintf("accident-%03d-%s", idx+1, sanitize(string(a.Manufacturer))),
		Kind:         AccidentReport,
		Manufacturer: a.Manufacturer,
		ReportYear:   a.ReportYear,
		Pages: append(paginate(head, false),
			paginate(narrative, true)...),
	}
}

// redactable renders the vehicle field, with DMV-style redaction.
func redactable(a schema.Accident) string {
	if a.Redacted || a.Vehicle == "" {
		return "[REDACTED]"
	}
	return string(a.Vehicle)
}

// speedField renders a speed, "-" when unknown.
func speedField(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// yesNo renders a boolean form field.
func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

// wrapText greedily wraps s at width columns.
func wrapText(s string, width int) []string {
	words := strings.Fields(s)
	var lines []string
	var cur strings.Builder
	for _, w := range words {
		if cur.Len() > 0 && cur.Len()+1+len(w) > width {
			lines = append(lines, cur.String())
			cur.Reset()
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(w)
	}
	if cur.Len() > 0 {
		lines = append(lines, cur.String())
	}
	return lines
}

// sanitize converts a name into an id-safe token.
func sanitize(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}
