package scandoc

import (
	"strings"
	"testing"
	"time"

	"avfda/internal/schema"
)

func miniCorpus() *schema.Corpus {
	t0 := time.Date(2015, time.March, 14, 10, 22, 31, 0, time.UTC)
	return &schema.Corpus{
		Fleets: []schema.Fleet{
			{Manufacturer: schema.Waymo, ReportYear: schema.Report2016, Cars: 2},
			{Manufacturer: schema.GMCruise, ReportYear: schema.Report2016, Cars: -1},
		},
		Mileage: []schema.MonthlyMileage{
			{Manufacturer: schema.Waymo, Vehicle: "Waymo-1-car01", ReportYear: schema.Report2016,
				Month: time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC), Miles: 1234.56},
			{Manufacturer: schema.GMCruise, Vehicle: "GMCruise-1-car01", ReportYear: schema.Report2016,
				Month: time.Date(2015, time.July, 1, 0, 0, 0, 0, time.UTC), Miles: 88},
		},
		Disengagements: []schema.Disengagement{
			{Manufacturer: schema.Waymo, Vehicle: "Waymo-1-car01", ReportYear: schema.Report2016,
				Time: t0, Cause: "Disengage for a recklessly behaving road user",
				Modality: schema.ModalityManual, Road: schema.RoadHighway,
				Weather: schema.WeatherSunny, ReactionSeconds: 0.832},
			{Manufacturer: schema.GMCruise, Vehicle: "GMCruise-1-car01", ReportYear: schema.Report2016,
				Time: t0.AddDate(0, 4, 0), Cause: "Planned test of fault injection",
				Modality: schema.ModalityPlanned, Road: schema.RoadCityStreet,
				Weather: schema.WeatherCloudy, ReactionSeconds: -1},
		},
		Accidents: []schema.Accident{
			{Manufacturer: schema.Waymo, Vehicle: "Waymo-1-car01", ReportYear: schema.Report2016,
				Time: t0.AddDate(0, 1, 2), Location: "El Camino Real & Clark Av, Mountain View, CA",
				Narrative:  "The AV was rear-ended at low speed while yielding to a pedestrian.",
				AVSpeedMPH: 4, OtherSpeedMPH: 10, InAutonomousMode: true},
		},
	}
}

func TestRenderProducesAllDocuments(t *testing.T) {
	docs := Render(miniCorpus())
	var dis, acc int
	for _, d := range docs {
		switch d.Kind {
		case DisengagementReport:
			dis++
		case AccidentReport:
			acc++
		}
	}
	if dis != 2 {
		t.Errorf("disengagement reports = %d, want 2", dis)
	}
	if acc != 1 {
		t.Errorf("accident reports = %d, want 1", acc)
	}
}

func TestRenderHeaderFields(t *testing.T) {
	docs := Render(miniCorpus())
	var waymoDoc *Document
	for i := range docs {
		if docs[i].Kind == DisengagementReport && docs[i].Manufacturer == schema.Waymo {
			waymoDoc = &docs[i]
		}
	}
	if waymoDoc == nil {
		t.Fatal("no Waymo disengagement report")
	}
	text := strings.Join(waymoDoc.Lines(), "\n")
	for _, want := range []string{
		"Manufacturer: Waymo",
		"Reporting Period: 2015-2016",
		"Fleet Size: 2",
		"SECTION 1",
		"SECTION 2",
		"1234.56",
		"recklessly behaving road user",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Waymo report missing %q", want)
		}
	}
}

func TestRenderPreservesDashes(t *testing.T) {
	docs := Render(miniCorpus())
	for _, d := range docs {
		if d.Kind == DisengagementReport && d.Manufacturer == schema.GMCruise {
			text := strings.Join(d.Lines(), "\n")
			if !strings.Contains(text, "Fleet Size: -") {
				t.Error("GM Cruise dash fleet size not preserved")
			}
			// GM Cruise uses the tabular family.
			if !strings.Contains(text, "DATE TIME | VEHICLE |") {
				t.Error("GM Cruise should use the tabular layout")
			}
		}
	}
}

func TestRenderAccidentDocument(t *testing.T) {
	docs := Render(miniCorpus())
	var acc *Document
	for i := range docs {
		if docs[i].Kind == AccidentReport {
			acc = &docs[i]
		}
	}
	if acc == nil {
		t.Fatal("no accident report")
	}
	text := strings.Join(acc.Lines(), "\n")
	for _, want := range []string{
		"OL 316", "AV Speed (mph): 4.0", "Other Vehicle Speed (mph): 10.0",
		"Autonomous Mode: YES", "NARRATIVE:", "rear-ended",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("accident report missing %q", want)
		}
	}
	// Narrative pages are handwritten.
	last := acc.Pages[len(acc.Pages)-1]
	if !last.Handwritten {
		t.Error("narrative page should be handwritten")
	}
	if acc.Pages[0].Handwritten {
		t.Error("form page should not be handwritten")
	}
}

func TestFormatFamilies(t *testing.T) {
	cases := []struct {
		m schema.Manufacturer
		f Format
	}{
		{schema.MercedesBenz, FormatTabular},
		{schema.Bosch, FormatTabular},
		{schema.Volkswagen, FormatTabular},
		{schema.GMCruise, FormatTabular},
		{schema.Waymo, FormatMonthly},
		{schema.Nissan, FormatLogLine},
		{schema.Delphi, FormatLogLine},
		{schema.Tesla, FormatLogLine},
	}
	for _, c := range cases {
		if got := FormatFor(c.m); got != c.f {
			t.Errorf("FormatFor(%s) = %v, want %v", c.m, got, c.f)
		}
	}
}

func TestPagination(t *testing.T) {
	lines := make([]string, 130)
	for i := range lines {
		lines[i] = "line"
	}
	pages := paginate(lines, false)
	if len(pages) != 3 {
		t.Fatalf("pages = %d, want 3", len(pages))
	}
	total := 0
	for _, p := range pages {
		if len(p.Lines) > linesPerPage {
			t.Errorf("page has %d lines", len(p.Lines))
		}
		total += len(p.Lines)
	}
	if total != 130 {
		t.Errorf("paginated lines = %d", total)
	}
	if got := paginate(nil, true); len(got) != 1 || !got[0].Handwritten {
		t.Error("empty pagination should yield one empty page")
	}
}

func TestWrapText(t *testing.T) {
	lines := wrapText("alpha beta gamma delta epsilon", 11)
	for _, l := range lines {
		if len(l) > 11 {
			t.Errorf("wrapped line %q exceeds width", l)
		}
	}
	joined := strings.Join(lines, " ")
	if joined != "alpha beta gamma delta epsilon" {
		t.Errorf("wrap lost content: %q", joined)
	}
	if wrapText("", 10) != nil {
		t.Error("empty text should wrap to nil")
	}
}

// Golden row renderings: the parsers depend on these exact layouts, so a
// change here must be deliberate and matched in package parse.
func TestRowRenderingGolden(t *testing.T) {
	ev := schema.Disengagement{
		Manufacturer: schema.Nissan, Vehicle: "Nissan-1-car01",
		ReportYear: schema.Report2016,
		Time:       time.Date(2016, time.January, 4, 13, 25, 5, 0, time.UTC),
		Cause:      "Software module froze",
		Modality:   schema.ModalityManual, Road: schema.RoadHighway,
		Weather: schema.WeatherSunny, ReactionSeconds: 0.9,
	}
	if got, want := renderLogLineEvent(ev),
		"1/4/16 — 1:25:05 PM — Nissan-1-car01 — Software module froze — highway — sunny — 0.900 s — manual"; got != want {
		t.Errorf("log row:\n got %q\nwant %q", got, want)
	}
	if got, want := renderTabularEvent(ev),
		"2016-01-04 13:25:05 | Nissan-1-car01 | Manual | highway | sunny | 0.900 s | Software module froze"; got != want {
		t.Errorf("tabular row:\n got %q\nwant %q", got, want)
	}
	if got, want := renderMonthlyEvent(ev),
		"Jan-16 — Nissan-1-car01 — highway — Manual — Software module froze — 0.900 s — 2016-01-04 13:25:05"; got != want {
		t.Errorf("monthly row:\n got %q\nwant %q", got, want)
	}
	// Missing reaction renders a dash.
	ev.ReactionSeconds = -1
	if got := renderTabularEvent(ev); !strings.Contains(got, "| - |") {
		t.Errorf("dash reaction missing: %q", got)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Mercedes-Benz"); got != "mercedes-benz" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("Uber ATC"); got != "uber-atc" {
		t.Errorf("sanitize = %q", got)
	}
}
