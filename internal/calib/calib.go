// Package calib holds the ground-truth constants digitized from the paper
// "Hands Off the Wheel in Autonomous Vehicles?" (DSN 2018).
//
// The real study inputs — scanned CA DMV disengagement and accident reports —
// are not redistributable, so this reproduction generates a synthetic corpus
// (package synth) calibrated against every aggregate the paper publishes.
// The same constants serve as the expected values that the benchmark harness
// compares measured results against (EXPERIMENTS.md).
//
// Every table in this package cites the paper table/figure it was read from.
package calib

import "avfda/internal/schema"

// Unreported marks a value rendered as a dash in the paper's tables.
const Unreported = -1

// FleetStats is one cell block of Table I: a manufacturer's fleet size,
// autonomous miles, disengagement count, and accident count in one report
// year. Unreported fields hold Unreported (-1).
type FleetStats struct {
	Cars           int
	Miles          float64
	Disengagements int
	Accidents      int
}

// Reported returns true when the manufacturer filed any data that year.
func (f FleetStats) Reported() bool {
	return f.Cars != Unreported || f.Miles != Unreported ||
		f.Disengagements != Unreported || f.Accidents != Unreported
}

// TableI reproduces the paper's Table I: fleet size, autonomous miles
// driven, and failure incidents across all manufacturers and both DMV
// report years. A missing inner entry means the manufacturer's whole row is
// dashes for that year.
var TableI = map[schema.Manufacturer]map[schema.ReportYear]FleetStats{
	schema.MercedesBenz: {
		schema.Report2016: {Cars: 2, Miles: 1739.08, Disengagements: 1024, Accidents: Unreported},
		schema.Report2017: {Cars: Unreported, Miles: 673.41, Disengagements: 336, Accidents: Unreported},
	},
	schema.Bosch: {
		schema.Report2016: {Cars: 2, Miles: 935.1, Disengagements: 625, Accidents: Unreported},
		schema.Report2017: {Cars: 3, Miles: 983, Disengagements: 1442, Accidents: Unreported},
	},
	schema.Delphi: {
		schema.Report2016: {Cars: 2, Miles: 16661, Disengagements: 405, Accidents: 1},
		schema.Report2017: {Cars: 2, Miles: 3090, Disengagements: 167, Accidents: Unreported},
	},
	schema.GMCruise: {
		schema.Report2016: {Cars: Unreported, Miles: 285.4, Disengagements: 135, Accidents: Unreported},
		schema.Report2017: {Cars: Unreported, Miles: 9729.8, Disengagements: 149, Accidents: 14},
	},
	schema.Nissan: {
		schema.Report2016: {Cars: 4, Miles: 1485.4, Disengagements: 106, Accidents: Unreported},
		schema.Report2017: {Cars: 3, Miles: 4099, Disengagements: 29, Accidents: 1},
	},
	schema.Tesla: {
		schema.Report2017: {Cars: 5, Miles: 550, Disengagements: 182, Accidents: Unreported},
	},
	schema.Volkswagen: {
		schema.Report2016: {Cars: 2, Miles: 14946.11, Disengagements: 260, Accidents: Unreported},
	},
	schema.Waymo: {
		schema.Report2016: {Cars: 49, Miles: 424332, Disengagements: 341, Accidents: 9},
		schema.Report2017: {Cars: 70, Miles: 635868, Disengagements: 123, Accidents: 16},
	},
	schema.UberATC: {
		schema.Report2017: {Cars: Unreported, Miles: Unreported, Disengagements: Unreported, Accidents: 1},
	},
	schema.Honda: {
		schema.Report2017: {Cars: 0, Miles: 0, Disengagements: 0, Accidents: Unreported},
	},
	schema.Ford: {
		schema.Report2017: {Cars: 2, Miles: 590, Disengagements: 3, Accidents: Unreported},
	},
	schema.BMW: {
		schema.Report2017: {Cars: Unreported, Miles: 638, Disengagements: 1, Accidents: Unreported},
	},
}

// Table I totals row, used as a cross-check of the per-cell entries.
//
// Known inconsistency in the source: the paper's 2016-2017 totals row
// prints 83 cars, but the column's own cells sum to 85 (3+2+3+5+70+2). The
// headline fleet size of 144 (= 61 + 83) inherits it. We record both the
// printed total and the cell sum.
const (
	TotalCars2016           = 61
	TotalMiles2016          = 460384.1
	TotalDisengagements2016 = 2896
	TotalAccidents2016      = 10
	TotalCars2017           = 83 // as printed; cells sum to CellCars2017
	CellCars2017            = 85 // sum of the per-manufacturer cells
	TotalMiles2017          = 656221.0
	TotalDisengagements2017 = 2432
	TotalAccidents2017      = 32

	// TotalMiles is the headline cumulative autonomous mileage. The paper
	// rounds the sum of the per-report totals to 1,116,605.
	TotalMiles = 1116605.0
	// TotalDisengagements and TotalAccidents across both releases.
	TotalDisengagements = 5328
	TotalAccidents      = 42
	// TotalAVs is the fleet size across both releases.
	TotalAVs = 144
)

// CategoryPct is one row of Table IV: the percentage of a manufacturer's
// disengagements attributed to each root failure category. PlannerPct and
// PerceptionPct subdivide ML/Design.
type CategoryPct struct {
	PlannerPct    float64 // ML/Design: planning and control faults
	PerceptionPct float64 // ML/Design: perception/recognition faults
	SystemPct     float64 // computing-system (hardware/software) faults
	UnknownPct    float64 // Unknown-C
}

// TableIV reproduces the paper's Table IV: disengagements across
// manufacturers (as percentages) categorized by root failure category.
// Only the five manufacturers printed in the paper appear here.
var TableIV = map[schema.Manufacturer]CategoryPct{
	schema.Delphi:     {PlannerPct: 37.59, PerceptionPct: 50.17, SystemPct: 12.24, UnknownPct: 0},
	schema.Nissan:     {PlannerPct: 36.30, PerceptionPct: 49.63, SystemPct: 14.07, UnknownPct: 0},
	schema.Tesla:      {PlannerPct: 0, PerceptionPct: 0, SystemPct: 1.65, UnknownPct: 98.35},
	schema.Volkswagen: {PlannerPct: 0, PerceptionPct: 3.08, SystemPct: 83.08, UnknownPct: 13.85},
	schema.Waymo:      {PlannerPct: 10.13, PerceptionPct: 53.45, SystemPct: 36.42, UnknownPct: 0},
}

// SynthCategory extends TableIV with calibration targets for the
// manufacturers whose per-category splits the paper does not print
// (Mercedes-Benz, Bosch, GM Cruise, Ford, BMW). Their values are chosen so
// the corpus-wide marginals land on the paper's headline numbers:
// perception ~44%, planner/control ~20%, system ~33.6% of all 5,328
// disengagements (ML/Design total 64%).
var SynthCategory = func() map[schema.Manufacturer]CategoryPct {
	m := make(map[schema.Manufacturer]CategoryPct, 10)
	for k, v := range TableIV {
		m[k] = v
	}
	m[schema.MercedesBenz] = CategoryPct{PlannerPct: 20.0, PerceptionPct: 46.0, SystemPct: 34.0}
	m[schema.Bosch] = CategoryPct{PlannerPct: 20.5, PerceptionPct: 46.5, SystemPct: 33.0}
	m[schema.GMCruise] = CategoryPct{PlannerPct: 19.0, PerceptionPct: 47.0, SystemPct: 34.0}
	m[schema.Ford] = CategoryPct{PerceptionPct: 100}
	m[schema.BMW] = CategoryPct{PerceptionPct: 100}
	return m
}()

// Headline category shares of all disengagements (paper §V-A2).
const (
	PerceptionShare = 0.44  // ~44% perception-related ML faults
	PlannerShare    = 0.20  // ~20% decision-and-control ML faults
	SystemShare     = 0.336 // ~33.6% computing-system faults
	MLDesignShare   = 0.64  // 64% of disengagements from the ML system
)

// ModalityPct is one row of Table V: the percentage of a manufacturer's
// disengagements by initiation modality.
type ModalityPct struct {
	AutomaticPct float64
	ManualPct    float64
	PlannedPct   float64
}

// TableV reproduces the paper's Table V: distribution of disengagements
// across manufacturers categorized by modality.
var TableV = map[schema.Manufacturer]ModalityPct{
	schema.MercedesBenz: {AutomaticPct: 47.11, ManualPct: 52.89},
	schema.Bosch:        {PlannedPct: 100},
	schema.GMCruise:     {PlannedPct: 100},
	schema.Nissan:       {AutomaticPct: 54.20, ManualPct: 45.80},
	schema.Tesla:        {AutomaticPct: 98.35, ManualPct: 1.65},
	schema.Volkswagen:   {AutomaticPct: 100},
	schema.Waymo:        {AutomaticPct: 50.32, ManualPct: 49.67},
}

// MeanAutomaticShare is the average share of automatically initiated
// disengagements across manufacturers (paper §V-A2).
const MeanAutomaticShare = 0.48

// AccidentRow is one row of Table VI.
type AccidentRow struct {
	Accidents   int
	FractionPct float64
	DPA         float64 // disengagements per accident; Unreported if dash
}

// TableVI reproduces the paper's Table VI: summary of accidents reported by
// manufacturers.
var TableVI = map[schema.Manufacturer]AccidentRow{
	schema.Waymo:    {Accidents: 25, FractionPct: 59.52, DPA: 18},
	schema.Delphi:   {Accidents: 1, FractionPct: 2.38, DPA: 572},
	schema.Nissan:   {Accidents: 1, FractionPct: 2.38, DPA: 135},
	schema.GMCruise: {Accidents: 14, FractionPct: 33.33, DPA: 20},
	schema.UberATC:  {Accidents: 1, FractionPct: 2.38, DPA: Unreported},
}

// MeanMilesPerDisengagement and MeanDisengagementsPerAccident are the
// aggregate ratios quoted in §III-C.
//
// Known inconsistency in the source: the paper quotes "an average of 262
// autonomous miles driven per disengagement", but its own Table I totals
// give 1,116,605 / 5,328 = 209.6. The 262 figure is not derivable from the
// published counts (it would require ~4,262 disengagements); we record both
// and the reproduction reports the computed 209.6 (see EXPERIMENTS.md).
const (
	MeanMilesPerDisengagement     = 262.0
	ComputedMilesPerDisengagement = TotalMiles / TotalDisengagements // 209.6
	MeanDisengagementsPerAccident = 127.0
)

// ReliabilityRow is one row of Table VII.
type ReliabilityRow struct {
	MedianDPM  float64 // median per-car disengagements per mile
	MedianAPM  float64 // accidents per mile = DPM/DPA; Unreported if dash
	RelToHuman float64 // MedianAPM / HumanAPM; Unreported if dash
}

// TableVII reproduces the paper's Table VII: reliability of AVs compared to
// human drivers.
//
// Known inconsistency in the source: the Nissan row prints RelToHuman =
// 15.285, but its own APM column gives 3.057e-4 / 2e-6 = 152.85 — the
// printed value is off by exactly 10x (the abstract's "15x" lower bound
// inherits the slip). We record the printed value; the reproduction
// computes 152.85 and flags the discrepancy (see EXPERIMENTS.md).
var TableVII = map[schema.Manufacturer]ReliabilityRow{
	schema.MercedesBenz: {MedianDPM: 0.565, MedianAPM: Unreported, RelToHuman: Unreported},
	schema.Volkswagen:   {MedianDPM: 0.0181, MedianAPM: Unreported, RelToHuman: Unreported},
	schema.Waymo:        {MedianDPM: 0.000745, MedianAPM: 4.140e-5, RelToHuman: 20.7},
	schema.Delphi:       {MedianDPM: 0.0263, MedianAPM: 4.599e-5, RelToHuman: 22.99},
	schema.Nissan:       {MedianDPM: 0.0413, MedianAPM: 3.057e-4, RelToHuman: 15.285},
	schema.Bosch:        {MedianDPM: 0.811, MedianAPM: Unreported, RelToHuman: Unreported},
	schema.GMCruise:     {MedianDPM: 0.177, MedianAPM: 8.843e-3, RelToHuman: 4421.5},
	schema.Tesla:        {MedianDPM: 0.250, MedianAPM: Unreported, RelToHuman: Unreported},
}

// CrossDomainRow is one row of Table VIII.
type CrossDomainRow struct {
	APMi          float64 // accidents per mission (10-mile median trip)
	VsAirline     float64 // APMi / airline accidents-per-departure
	VsSurgicalBot float64 // APMi / surgical-robot accidents-per-procedure
}

// TableVIII reproduces the paper's Table VIII: reliability of AVs compared
// to other safety-critical autonomous systems.
var TableVIII = map[schema.Manufacturer]CrossDomainRow{
	schema.Waymo:    {APMi: 4.140e-4, VsAirline: 4.22, VsSurgicalBot: 0.0398},
	schema.Delphi:   {APMi: 4.599e-4, VsAirline: 4.69, VsSurgicalBot: 0.0442},
	schema.Nissan:   {APMi: 3.057e-3, VsAirline: 31.19, VsSurgicalBot: 0.293},
	schema.GMCruise: {APMi: 8.843e-2, VsAirline: 902.34, VsSurgicalBot: 8.502},
}

// External baselines used by the paper's comparisons (§V-B, §V-C).
const (
	// HumanAPM is the human-driver accident rate: one accident per 500,000
	// miles (NHTSA 2015 / FHWA traffic-volume trends) [37][38].
	HumanAPM = 2e-6
	// AirlineAPM is 9.8 accidents per 100,000 departures (NTSB) [41].
	AirlineAPM = 9.8e-5
	// SurgicalRobotAPM is 1,043 accidents per 100,000 procedures (FDA
	// MAUDE analysis) [42]. The paper's Table VIII footnote rounds it to
	// 1.04e-2.
	SurgicalRobotAPM = 1.04e-2
	// MedianTripMiles is the median length of a US vehicle trip (FHWA
	// National Household Travel Survey) [43].
	MedianTripMiles = 10.0
	// AnnualAVTrips and AnnualAirlineTrips scale the per-mission comparison
	// in §V-C1 (96 billion car trips vs 9.6 million airline departures).
	AnnualAVTrips      = 96e9
	AnnualAirlineTrips = 9.6e6
)

// Reaction-time constants (paper §V-A4).
const (
	// MeanReactionSeconds is the observed mean safety-driver reaction time.
	MeanReactionSeconds = 0.85
	// NonAVBrakeReaction is the braking reaction time in test vehicles
	// reported by Fambro et al. [35].
	NonAVBrakeReaction = 0.82
	// OwnershipPenalty is the additional reaction time for drivers of their
	// own vehicles [35]; NonAVReaction = 0.82 + 0.27.
	OwnershipPenalty = 0.27
	NonAVReaction    = 1.09
	// VWOutlierSeconds is Volkswagen's suspect ~4 hour reaction-time
	// record, kept to reproduce the long-tail discussion.
	VWOutlierSeconds = 4 * 3600.0
)

// ReactionCorr holds the Pearson correlations between cumulative miles and
// reaction time reported in §V-A4.
var ReactionCorr = map[schema.Manufacturer]struct{ R, P float64 }{
	schema.Waymo:        {R: 0.19, P: 0.01},
	schema.MercedesBenz: {R: 0.11, P: 0.007},
}

// Figure-8 pooled correlation between log(DPM) and log(cumulative miles).
const (
	Fig8PearsonR = -0.87
	Fig8PearsonP = 7e-56
)

// AccidentAPMCorr is the §V-B correlation between per-mile accidents and
// cumulative autonomous miles for identifiable vehicles.
const AccidentAPMCorr = 0.98

// RoadMix is the fraction of autonomous miles per road type (§III-C).
var RoadMix = map[schema.RoadType]float64{
	schema.RoadCityStreet: 0.317,
	schema.RoadHighway:    0.2926,
	schema.RoadInterstate: 0.1463,
	schema.RoadFreeway:    0.0975,
	schema.RoadParkingLot: 0.0487,
	schema.RoadSuburban:   0.0487,
	schema.RoadRural:      0.0486,
}

// WeibullParams parameterizes a two-parameter Weibull distribution.
type WeibullParams struct {
	Shape float64 // k
	Scale float64 // lambda, seconds
}

// ReactionDist gives per-manufacturer reaction-time generation parameters
// for Fig. 10/11. Manufacturers absent from this map do not report reaction
// times (Bosch and GM Cruise report planned tests only).
//
// Shapes < 1 produce the long-tailed behaviour the paper observes; scales
// are set so the fleet-wide mean reaction time is ~0.85 s.
var ReactionDist = map[schema.Manufacturer]WeibullParams{
	schema.MercedesBenz: {Shape: 0.85, Scale: 0.90}, // long tail (Fig 11a)
	schema.Waymo:        {Shape: 1.6, Scale: 0.90},  // tight, sub-4 s (Fig 11b)
	schema.Nissan:       {Shape: 1.2, Scale: 0.75},
	schema.Tesla:        {Shape: 1.1, Scale: 0.70},
	schema.Delphi:       {Shape: 1.3, Scale: 0.85},
	schema.Volkswagen:   {Shape: 0.75, Scale: 0.80}, // plus the 4 h outlier
}

// Accident speed model (Fig. 12): empirically exponential. Means in mph.
// The relative speed is generated directly (a collision correlates the two
// vehicles' speeds — most are rear-ends at small closing speed), with the
// other vehicle's speed derived as AV speed +/- relative.
const (
	AVSpeedMean        = 4.5  // AV speed at collision
	RelSpeedMean       = 4.8  // closing speed at collision
	RelSpeedUnder10Pct = 0.80 // >80% of collisions at relative speed <10 mph
	// FasterOtherShare is the fraction of collisions where the other
	// vehicle is the faster one (rear-end collisions on the AV).
	FasterOtherShare = 0.75
)

// YearDPMFactor shapes the temporal DPM trend per calendar year (Fig. 7).
// Values are multipliers applied to a manufacturer's base DPM; the synth
// generator normalizes totals back to Table I, so only the *relative* trend
// matters. Waymo shows the paper's ~8x three-year improvement; Bosch's rate
// rises (planned fault-injection campaigns); Volkswagen and GM Cruise do not
// improve.
var YearDPMFactor = map[schema.Manufacturer]map[int]float64{
	schema.Waymo:        {2014: 4.0, 2015: 1.6, 2016: 0.5},
	schema.MercedesBenz: {2014: 2.2, 2015: 1.2, 2016: 0.6},
	schema.Nissan:       {2014: 2.0, 2015: 1.3, 2016: 0.5},
	schema.Delphi:       {2014: 1.6, 2015: 1.1, 2016: 0.8},
	schema.Tesla:        {2016: 1.0},
	schema.Volkswagen:   {2014: 1.0, 2015: 1.0},
	schema.Bosch:        {2014: 0.7, 2015: 1.0, 2016: 1.5},
	schema.GMCruise:     {2015: 1.0, 2016: 1.1},
	schema.Ford:         {2016: 1.0},
	schema.BMW:          {2016: 1.0},
}

// CarCountForSynth returns the number of vehicles the synthetic generator
// should model for a manufacturer-year, substituting plausible fleet sizes
// where Table I has a dash (the dash is preserved in the generated report;
// this constant only shapes per-car mileage splits).
func CarCountForSynth(m schema.Manufacturer, y schema.ReportYear) int {
	if row, ok := TableI[m][y]; ok && row.Cars > 0 {
		return row.Cars
	}
	switch {
	case m == schema.GMCruise && y == schema.Report2016:
		return 2
	case m == schema.GMCruise && y == schema.Report2017:
		return 2
	case m == schema.MercedesBenz && y == schema.Report2017:
		return 2
	case m == schema.BMW:
		return 1
	default:
		return 1
	}
}
