package calib

import (
	"math"
	"testing"

	"avfda/internal/schema"
)

// The calibration tables are transcriptions of the paper; these tests pin
// their internal consistency so a typo cannot silently skew the whole
// reproduction.

func TestTableITotalsRow(t *testing.T) {
	var cars2016, cars2017, dis2016, dis2017, acc2016, acc2017 int
	var miles2016, miles2017 float64
	for _, years := range TableI {
		for y, st := range years {
			add := func(cars, dis, acc *int, miles *float64) {
				if st.Cars > 0 {
					*cars += st.Cars
				}
				if st.Disengagements > 0 {
					*dis += st.Disengagements
				}
				if st.Accidents > 0 {
					*acc += st.Accidents
				}
				if st.Miles > 0 {
					*miles += st.Miles
				}
			}
			if y == schema.Report2016 {
				add(&cars2016, &dis2016, &acc2016, &miles2016)
			} else {
				add(&cars2017, &dis2017, &acc2017, &miles2017)
			}
		}
	}
	if cars2016 != TotalCars2016 {
		t.Errorf("2016 cars = %d, want %d", cars2016, TotalCars2016)
	}
	// Documented paper inconsistency: the printed 2017 total is 83, the
	// cells sum to 85.
	if cars2017 != CellCars2017 {
		t.Errorf("2017 cars cell sum = %d, want %d", cars2017, CellCars2017)
	}
	if TotalCars2017 != 83 {
		t.Error("printed 2017 total should stay recorded as 83")
	}
	if dis2016 != TotalDisengagements2016 {
		t.Errorf("2016 disengagements = %d, want %d", dis2016, TotalDisengagements2016)
	}
	if dis2017 != TotalDisengagements2017 {
		t.Errorf("2017 disengagements = %d, want %d", dis2017, TotalDisengagements2017)
	}
	if acc2016 != TotalAccidents2016 {
		t.Errorf("2016 accidents = %d, want %d", acc2016, TotalAccidents2016)
	}
	if acc2017 != TotalAccidents2017 {
		t.Errorf("2017 accidents = %d, want %d", acc2017, TotalAccidents2017)
	}
	if math.Abs(miles2016-TotalMiles2016) > 0.2 {
		t.Errorf("2016 miles = %.2f, want %.2f", miles2016, TotalMiles2016)
	}
	if math.Abs(miles2017-TotalMiles2017) > 0.5 {
		t.Errorf("2017 miles = %.2f, want %.2f", miles2017, TotalMiles2017)
	}
}

func TestHeadlineTotals(t *testing.T) {
	if TotalDisengagements2016+TotalDisengagements2017 != TotalDisengagements {
		t.Error("disengagement totals inconsistent")
	}
	if TotalAccidents2016+TotalAccidents2017 != TotalAccidents {
		t.Error("accident totals inconsistent")
	}
	if TotalCars2016+TotalCars2017 != TotalAVs {
		t.Error("fleet totals inconsistent")
	}
	if math.Abs(TotalMiles2016+TotalMiles2017-TotalMiles) > 1 {
		t.Errorf("miles totals inconsistent: %.1f", TotalMiles2016+TotalMiles2017)
	}
}

func TestTableVIFractions(t *testing.T) {
	var total int
	for _, row := range TableVI {
		total += row.Accidents
	}
	if total != TotalAccidents {
		t.Errorf("Table VI accidents sum to %d, want %d", total, TotalAccidents)
	}
	for m, row := range TableVI {
		want := 100 * float64(row.Accidents) / float64(TotalAccidents)
		if math.Abs(row.FractionPct-want) > 0.05 {
			t.Errorf("%s fraction %.2f, want %.2f", m, row.FractionPct, want)
		}
	}
}

func TestTableVIDPAConsistency(t *testing.T) {
	// DPA should equal total disengagements / accidents (both years).
	for m, row := range TableVI {
		if row.DPA == Unreported {
			continue
		}
		var dis int
		for _, st := range TableI[m] {
			if st.Disengagements > 0 {
				dis += st.Disengagements
			}
		}
		want := float64(dis) / float64(row.Accidents)
		// The paper rounds DPA to integers.
		if math.Abs(row.DPA-want) > 1.5 {
			t.Errorf("%s DPA %.0f, computed %.1f", m, row.DPA, want)
		}
	}
}

func TestTableVIIIConsistency(t *testing.T) {
	// APMi = APM * 10; ratios derive from the baselines.
	for m, row := range TableVIII {
		apm := TableVII[m].MedianAPM
		wantAPMi := apm * MedianTripMiles
		if math.Abs(row.APMi-wantAPMi)/wantAPMi > 0.01 {
			t.Errorf("%s APMi %.4g, computed %.4g", m, row.APMi, wantAPMi)
		}
		if math.Abs(row.VsAirline-row.APMi/AirlineAPM)/row.VsAirline > 0.01 {
			t.Errorf("%s vs airline inconsistent", m)
		}
		if math.Abs(row.VsSurgicalBot-row.APMi/SurgicalRobotAPM)/row.VsSurgicalBot > 0.02 {
			t.Errorf("%s vs SR inconsistent", m)
		}
	}
}

func TestTableVIIRelToHuman(t *testing.T) {
	for m, row := range TableVII {
		if row.MedianAPM == Unreported {
			if row.RelToHuman != Unreported {
				t.Errorf("%s has rel without APM", m)
			}
			continue
		}
		want := row.MedianAPM / HumanAPM
		if m == schema.Nissan {
			// Documented paper inconsistency: printed value is 10x off.
			if math.Abs(row.RelToHuman*10-want) > 0.5 {
				t.Errorf("Nissan: printed %.3f, computed %.2f — expected exactly 10x gap", row.RelToHuman, want)
			}
			continue
		}
		if math.Abs(row.RelToHuman-want)/want > 0.01 {
			t.Errorf("%s rel %.2f, computed %.2f", m, row.RelToHuman, want)
		}
	}
}

func TestCategoryRowsSumTo100(t *testing.T) {
	for m, row := range SynthCategory {
		sum := row.PlannerPct + row.PerceptionPct + row.SystemPct + row.UnknownPct
		if math.Abs(sum-100) > 0.1 {
			t.Errorf("%s category row sums to %.2f", m, sum)
		}
	}
}

func TestModalityRowsSumTo100(t *testing.T) {
	for m, row := range TableV {
		sum := row.AutomaticPct + row.ManualPct + row.PlannedPct
		if math.Abs(sum-100) > 0.1 {
			t.Errorf("%s modality row sums to %.2f", m, sum)
		}
	}
}

func TestRoadMixSumsToOne(t *testing.T) {
	var sum float64
	for _, f := range RoadMix {
		sum += f
	}
	if math.Abs(sum-1) > 0.005 {
		t.Errorf("road mix sums to %.4f", sum)
	}
}

func TestReactionCalibration(t *testing.T) {
	if math.Abs(NonAVBrakeReaction+OwnershipPenalty-NonAVReaction) > 1e-9 {
		t.Error("non-AV reaction components inconsistent")
	}
	for m, w := range ReactionDist {
		if w.Shape <= 0 || w.Scale <= 0 {
			t.Errorf("%s has degenerate Weibull params", m)
		}
	}
	// Bosch and GM Cruise must not report reaction times (planned tests).
	if _, ok := ReactionDist[schema.Bosch]; ok {
		t.Error("Bosch should not have reaction params")
	}
	if _, ok := ReactionDist[schema.GMCruise]; ok {
		t.Error("GM Cruise should not have reaction params")
	}
}

func TestCarCountForSynth(t *testing.T) {
	// Reported counts pass through.
	if CarCountForSynth(schema.Waymo, schema.Report2016) != 49 {
		t.Error("Waymo 2016 cars wrong")
	}
	// Dash rows get substitutes >= 1.
	for _, m := range schema.AllManufacturers() {
		for _, y := range schema.ReportYears() {
			if st, ok := TableI[m][y]; ok && st.Reported() {
				if CarCountForSynth(m, y) < 1 {
					t.Errorf("%s %s: no cars for synthesis", m, y)
				}
			}
		}
	}
}

func TestMilesPerDisengagementDiscrepancy(t *testing.T) {
	// The documented inconsistency: Table I totals give ~209.6, the prose
	// says 262.
	computed := TotalMiles / TotalDisengagements
	if math.Abs(computed-ComputedMilesPerDisengagement) > 1e-9 {
		t.Error("computed miles/disengagement constant drifted")
	}
	if math.Abs(computed-209.57) > 0.05 {
		t.Errorf("computed miles/disengagement = %.2f", computed)
	}
	if MeanMilesPerDisengagement != 262.0 {
		t.Error("paper's quoted value should stay recorded as 262")
	}
}
