package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// latencyBuckets are the histogram upper bounds in seconds. The spread
// covers sub-millisecond cache hits through multi-second first builds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// Metrics accumulates request counters and latency histograms and renders
// them in Prometheus text exposition format using only the standard
// library. All methods are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests map[requestKey]int64
	latency  map[string]*histogram
}

// requestKey labels one counter series.
type requestKey struct {
	route string
	code  int
}

// histogram is one route's cumulative latency histogram.
type histogram struct {
	counts []int64 // one per bucket, plus a final +Inf bucket
	sum    float64
	total  int64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[requestKey]int64),
		latency:  make(map[string]*histogram),
	}
}

// Observe records one completed request.
func (m *Metrics) Observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{route: route, code: code}]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.latency[route] = h
	}
	bucket := len(latencyBuckets) // +Inf
	for i, le := range latencyBuckets {
		if seconds <= le {
			bucket = i
			break
		}
	}
	h.counts[bucket]++
	h.sum += seconds
	h.total++
}

// WriteText renders every series, plus the given cache counters, in
// Prometheus text format with deterministic ordering.
//
// The counters are snapshotted under the lock and rendered outside it: w is
// usually a network connection, and holding m.mu across its writes would
// let one slow scrape client stall every request's Observe (the
// lock-across-I/O class lockcheck enforces).
func (m *Metrics) WriteText(w io.Writer, cache CacheStats) error {
	m.mu.Lock()
	requests := make(map[requestKey]int64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	latency := make(map[string]*histogram, len(m.latency))
	for r, h := range m.latency {
		latency[r] = &histogram{
			counts: append([]int64(nil), h.counts...),
			sum:    h.sum,
			total:  h.total,
		}
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP avserve_requests_total Completed HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE avserve_requests_total counter")
	reqKeys := make([]requestKey, 0, len(requests))
	for k := range requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(w, "avserve_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, requests[k])
	}

	fmt.Fprintln(w, "# HELP avserve_request_duration_seconds Request latency by route.")
	fmt.Fprintln(w, "# TYPE avserve_request_duration_seconds histogram")
	routes := make([]string, 0, len(latency))
	for r := range latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := latency[r]
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "avserve_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "avserve_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(w, "avserve_request_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "avserve_request_duration_seconds_count{route=%q} %d\n", r, h.total)
	}

	for _, c := range []struct {
		name, help string
		value      int64
	}{
		{"avserve_cache_hits_total", "Study cache hits.", cache.Hits},
		{"avserve_cache_misses_total", "Study cache misses.", cache.Misses},
		{"avserve_cache_builds_total", "Study pipeline builds started (singleflight-coalesced), whether or not they succeed; includes rebuilds triggered by snapshot rejects.", cache.Builds},
		{"avserve_cache_evictions_total", "Studies evicted to respect capacity.", cache.Evictions},
		{"avserve_snapshot2_loads_total", "Cache misses served by mapping a v2 columnar snapshot (zero-copy).", cache.Snapshot2Loads},
		{"avserve_snapshot2_writes_total", "V2 snapshots written through after a successful build.", cache.Snapshot2Writes},
		{"avserve_snapshot2_rejects_total", "V2 snapshot files refused by validation (checksum, version, or structure); each falls back to the v1 tier or a rebuild, and is not a build failure.", cache.Snapshot2Rejects},
		{"avserve_snapshot_loads_total", "Cache misses served from the legacy v1 snapshot tier (deserializing load).", cache.SnapshotLoads},
		{"avserve_snapshot_writes_total", "V1 snapshots written through after a successful build (v2 tier disabled).", cache.SnapshotWrites},
		{"avserve_snapshot_rejects_total", "V1 snapshot files refused by validation (checksum, version, or truncation); each triggers a pipeline rebuild, and is not a build failure.", cache.SnapshotRejects},
		{"avserve_snapshot_fetches_total", "Cache misses served by pulling the seed's v2 snapshot from a peer (CRC re-verified on receipt).", cache.SnapshotFetches},
		{"avserve_snapshot_fetch_misses_total", "Peer snapshot probes answered 404 on every peer (seed not held anywhere; falls back to a rebuild).", cache.SnapshotFetchMisses},
		{"avserve_snapshot_fetch_errors_total", "Peer snapshot probes that failed (transport error, unexpected status, or a fetched file flunking validation); each falls back to a rebuild.", cache.SnapshotFetchErrors},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintln(w, "# HELP avserve_cache_resident Studies currently cached.")
	fmt.Fprintln(w, "# TYPE avserve_cache_resident gauge")
	fmt.Fprintf(w, "avserve_cache_resident %d\n", cache.Resident)
	return nil
}
