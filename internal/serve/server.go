// Package serve is the HTTP serving layer over the failure database
// (system #19 in DESIGN.md §2): a stdlib-only JSON API that turns the
// batch toolchain into a long-running service.
//
// Studies are expensive to build (a full Stage I-IV pipeline run), so the
// server keeps a seed-keyed LRU cache guarded by singleflight: the first
// request for a seed builds the study exactly once no matter how many
// requests race, later requests are answered from memory, and an evicted
// study is simply rebuilt on next use. With Config.SnapshotDir set the
// cache gains a second tier: a miss first loads the seed's persisted
// study snapshot (internal/snapshot) and only falls back to the pipeline
// when none is usable, writing the built study through for the next cold
// process. Every request runs under a
// deadline (Config.RequestTimeout); a request that times out while its
// study is still building returns 504 without cancelling the build, which
// completes in the background and serves the retry. Request counts,
// latency histograms, and cache counters are exported in Prometheus text
// format at /metrics.
//
// Routes:
//
//	GET /healthz                                     liveness probe
//	GET /metrics                                     Prometheus text metrics
//	GET /v1/studies/{seed}/disengagements            filtered, paginated events
//	GET /v1/studies/{seed}/accidents                 filtered, paginated accidents
//	GET /v1/studies/{seed}/groupby?by=tag            group-by counts
//	GET /v1/studies/{seed}/metrics/reliability       per-manufacturer DPM/DPA/APM
//	GET /v1/studies/{seed}/tables/{id}               rendered paper table (i..viii)
//	GET /v1/snapshots/{seed}                         raw v2 snapshot stream (peer distribution)
//
// Filter query parameters mirror the avquery flags: mfr, tag, category,
// road, weather, modality, from, to; listings also take offset and limit.
//
// Study responses carry HTTP validators when the study is snapshot-backed:
// an ETag derived from the v2 snapshot's CRC-32C (identical on every node
// serving the seed, see etag.go) and a Cache-Control window, so repeated
// conditional requests short-circuit to 304 before any query work. Bodies
// are gzipped when the client negotiates it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"avfda/internal/core"
	"avfda/internal/query"
	"avfda/internal/report"
	"avfda/internal/snapshot2"
)

// Config parameterizes a Server.
type Config struct {
	// Build constructs the study for a seed (required).
	Build BuildFunc
	// CacheSize bounds the number of resident studies; <= 0 means 4.
	CacheSize int
	// SnapshotDir, when non-empty, enables the cache's snapshot tier: a
	// miss loads the seed's persisted study from this directory before
	// falling back to Build, and successful builds are written through.
	SnapshotDir string
	// DisableSnapshotV2 restricts the snapshot tier to the legacy v1
	// format. By default a miss maps the seed's v2 columnar snapshot
	// (zero-copy) before trying v1, and write-through produces v2 files.
	DisableSnapshotV2 bool
	// RequestTimeout bounds each request, including any study build it
	// triggers; <= 0 means 60s.
	RequestTimeout time.Duration
	// SnapshotPeers lists base URLs (http://host:port) of peer avserve
	// backends. A cache miss that finds no local snapshot pulls the
	// seed's v2 snapshot from a peer (CRC re-verified on receipt) before
	// paying a pipeline rebuild. Requires the v2 snapshot tier.
	SnapshotPeers []string
	// SnapshotFetchTimeout bounds each peer snapshot probe; <= 0 means 10s.
	SnapshotFetchTimeout time.Duration
}

// Server is the HTTP API over cached studies. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	cache   *Cache
	metrics *Metrics
	timeout time.Duration
	snapDir string // v2 snapshot directory served to peers; "" disables
	snapV2  bool
	mux     *http.ServeMux
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected before the response was ready. It is
// deliberately not a 5xx — nothing server-side failed — and it gets its
// own metrics label so disconnect storms are distinguishable from real
// timeout pressure.
const statusClientClosedRequest = 499

// DefaultListLimit caps listing responses when no limit parameter is
// given; MaxListLimit is the largest accepted limit.
const (
	DefaultListLimit = 50
	MaxListLimit     = 1000
)

// New creates a Server around the given study builder.
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	cache, err := NewTieredCache(cfg.Build, cfg.CacheSize, cfg.SnapshotDir, !cfg.DisableSnapshotV2)
	if err != nil {
		return nil, err
	}
	if err := cache.SetSnapshotPeers(cfg.SnapshotPeers, cfg.SnapshotFetchTimeout); err != nil {
		return nil, err
	}
	s := &Server{
		cache:   cache,
		metrics: NewMetrics(),
		timeout: cfg.RequestTimeout,
		snapDir: cfg.SnapshotDir,
		snapV2:  !cfg.DisableSnapshotV2,
		mux:     http.NewServeMux(),
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /v1/studies/{seed}/disengagements", s.handleDisengagements)
	s.route("GET /v1/studies/{seed}/accidents", s.handleAccidents)
	s.route("GET /v1/studies/{seed}/groupby", s.handleGroupBy)
	s.route("GET /v1/studies/{seed}/metrics/reliability", s.handleReliability)
	s.route("GET /v1/studies/{seed}/tables/{id}", s.handleTable)
	s.route("GET /v1/snapshots/{seed}", s.handleSnapshot)
	return s, nil
}

// CacheStats exposes the study cache counters (for tests and operators).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// route registers a handler wrapped with the per-request deadline, gzip
// negotiation, and the metrics middleware. The mux pattern (minus the
// method) is the metrics route label, so labels have bounded cardinality.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	label := pattern
	if _, path, ok := strings.Cut(pattern, " "); ok {
		label = path
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		// Responses differ by negotiated encoding, so every cache between
		// here and the client must key on it.
		w.Header().Set("Vary", "Accept-Encoding")
		if acceptsGzip(r) {
			gz := newGzipResponseWriter(rec)
			h(gz, r.WithContext(ctx))
			gz.close()
		} else {
			h(rec, r.WithContext(ctx))
		}
		s.metrics.Observe(label, rec.code, time.Since(start).Seconds())
	})
}

// statusRecorder captures the response code for metrics. It forwards the
// optional streaming interfaces — hiding them would silently buffer whole
// responses on the proxy and snapshot-distribution paths.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status code.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher so a handler's flush reaches the client
// instead of dying in the wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards io.ReaderFrom, keeping the sendfile fast path for
// snapshot streaming; the fallback strips the method so io.Copy cannot
// recurse back into this one.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits a JSON error response. Any study validator stamped
// onto the headers before the failure was discovered is withdrawn first:
// an error response describes the failure, not the study, and must never
// be cached against the study's entity tag.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	h := w.Header()
	h.Del("ETag")
	h.Del("Cache-Control")
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// study resolves the {seed} path segment and returns the cached (or
// freshly built) study, after running the conditional-request check. A
// false return means the response — error or 304 — is written.
func (s *Server) study(w http.ResponseWriter, r *http.Request) (*Study, bool) {
	seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed %q: want an integer", r.PathValue("seed"))
		return nil, false
	}
	study, err := s.cache.Get(r.Context(), seed)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		// The request deadline expired while the build kept running in the
		// background; the retry the hint asks for hits the warm cache.
		writeError(w, http.StatusGatewayTimeout,
			"study %d still building; retry shortly", seed)
		return nil, false
	case errors.Is(err, context.Canceled):
		// The client hung up — not a timeout, and nobody is left to read a
		// retry hint. 499 keeps disconnects out of the 5xx budget; the
		// build still completes in the background for the next caller.
		writeError(w, statusClientClosedRequest, "study %d: client closed request", seed)
		return nil, false
	default:
		writeError(w, http.StatusInternalServerError, "build study %d: %v", seed, err)
		return nil, false
	}
	if conditional(w, r, study) {
		return nil, false
	}
	return study, true
}

// filterFromQuery maps the request's query parameters onto a query.Filter.
func filterFromQuery(r *http.Request) query.Filter {
	q := r.URL.Query()
	return query.Filter{
		Manufacturer: q.Get("mfr"),
		Tag:          q.Get("tag"),
		Category:     q.Get("category"),
		Road:         q.Get("road"),
		Weather:      q.Get("weather"),
		Modality:     q.Get("modality"),
		From:         q.Get("from"),
		To:           q.Get("to"),
	}
}

// pageFromQuery parses offset/limit with defaults and caps. An explicit
// limit of 0 is rejected like any other malformed value — it used to be
// silently promoted to MaxListLimit, handing the client asking for the
// smallest page the largest one — and only an over-max limit is clamped.
// A false return means the error response is written.
func pageFromQuery(w http.ResponseWriter, r *http.Request) (query.Page, bool) {
	p := query.Page{Limit: DefaultListLimit}
	q := r.URL.Query()
	for _, arg := range []struct {
		name string
		dst  *int
		min  int
		want string
	}{
		{"offset", &p.Offset, 0, "a non-negative integer"},
		{"limit", &p.Limit, 1, "a positive integer"},
	} {
		raw := q.Get(arg.name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < arg.min {
			writeError(w, http.StatusBadRequest, "bad %s %q: want %s", arg.name, raw, arg.want)
			return query.Page{}, false
		}
		*arg.dst = v
	}
	if p.Limit > MaxListLimit {
		p.Limit = MaxListLimit
	}
	return p, true
}

// handleHealthz answers liveness probes without touching the cache.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteText(w, s.cache.Stats())
}

// handleDisengagements lists filtered, paginated disengagement events.
// Cheap parameter validation runs before the study is resolved: a
// malformed limit must cost a 400, not a multi-hundred-millisecond
// pipeline build on a cold cache.
func (s *Server) handleDisengagements(w http.ResponseWriter, r *http.Request) {
	page, ok := pageFromQuery(w, r)
	if !ok {
		return
	}
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	res, err := study.Engine.Events(filterFromQuery(r), page)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// AccidentPage is one page of accident reports, as produced by the shared
// query engine (the avquery CLI serves the identical structure).
type AccidentPage = query.AccidentPage

// handleAccidents lists accident reports, filtered by mfr and month range.
// The filtering lives in query.Engine.Accidents — one tested path shared
// with the CLI — instead of being reimplemented inline here.
func (s *Server) handleAccidents(w http.ResponseWriter, r *http.Request) {
	// Like handleDisengagements: validate the cheap paging parameters
	// before paying for (and caching) a study build.
	page, ok := pageFromQuery(w, r)
	if !ok {
		return
	}
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	f := query.Filter{Manufacturer: q.Get("mfr"), From: q.Get("from"), To: q.Get("to")}
	res, err := study.Engine.Accidents(f, page)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// GroupByResponse is the group-by endpoint's payload.
type GroupByResponse struct {
	By     string             `json:"by"`
	Total  int                `json:"total"`
	Groups []query.GroupCount `json:"groups"`
}

// handleGroupBy counts filtered events per value of the ?by= column.
func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	// Same ordering discipline as the listing handlers: a missing by
	// parameter is knowable without building the study.
	by := r.URL.Query().Get("by")
	if by == "" {
		writeError(w, http.StatusBadRequest,
			"missing by parameter: want one of %s", strings.Join(query.GroupColumns(), ", "))
		return
	}
	if !query.IsGroupColumn(by) {
		writeError(w, http.StatusBadRequest,
			"unknown group-by column %q: want one of %s", by, strings.Join(query.GroupColumns(), ", "))
		return
	}
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	groups, err := study.Engine.GroupCount(filterFromQuery(r), by)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := GroupByResponse{By: by, Groups: groups}
	for _, g := range groups {
		res.Total += g.Count
	}
	writeJSON(w, http.StatusOK, res)
}

// ReliabilityResponse is the reliability-metrics payload.
type ReliabilityResponse struct {
	Manufacturers []query.ReliabilityMetric `json:"manufacturers"`
}

// handleReliability reports per-manufacturer DPM/DPA/APM metrics.
func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	rows, err := study.Engine.Reliability()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reliability: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReliabilityResponse{Manufacturers: rows})
}

// tableRenderers maps a lower-cased table id to its renderer. Table II
// (sample NLP assignments) needs per-run sample rows and is not served.
var tableRenderers = map[string]func(*core.DB) (string, error){
	"i":    func(db *core.DB) (string, error) { return report.TableI(db), nil },
	"iii":  func(db *core.DB) (string, error) { return report.TableIII(), nil },
	"iv":   func(db *core.DB) (string, error) { return report.TableIV(db), nil },
	"v":    func(db *core.DB) (string, error) { return report.TableV(db), nil },
	"vi":   func(db *core.DB) (string, error) { return report.TableVI(db), nil },
	"vii":  report.TableVII,
	"viii": report.TableVIII,
}

// handleTable renders one paper table as plain text.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id := strings.ToLower(r.PathValue("id"))
	render, ok := tableRenderers[id]
	if !ok {
		writeError(w, http.StatusNotFound,
			"unknown table %q: want one of i, iii, iv, v, vi, vii, viii", r.PathValue("id"))
		return
	}
	study, okStudy := s.study(w, r)
	if !okStudy {
		return
	}
	db, err := study.Database()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render table %s: %v", id, err)
		return
	}
	text, err := render(db)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render table %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// handleSnapshot streams the seed's raw v2 snapshot file — the peer
// distribution endpoint. A backend that misses locally pulls from here
// instead of paying a pipeline rebuild; the puller re-verifies the CRC on
// receipt, so this side just streams bytes. 404 means "not held here"
// and is a normal miss for the fetcher, not an error.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed %q: want an integer", r.PathValue("seed"))
		return
	}
	if s.snapDir == "" || !s.snapV2 {
		writeError(w, http.StatusNotFound, "snapshot distribution disabled: no v2 snapshot directory")
		return
	}
	f, err := os.Open(snapshot2.Path(s.snapDir, seed))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no snapshot for seed %d", seed)
			return
		}
		writeError(w, http.StatusInternalServerError, "open snapshot for seed %d: %v", seed, err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stat snapshot for seed %d: %v", seed, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// ServeContent supplies Content-Length, range requests, and
	// If-Modified-Since for free; the gzip middleware leaves the
	// octet-stream body identity-encoded.
	http.ServeContent(w, r, "", st.ModTime(), f)
}

// writeQueryError maps engine errors to status codes: malformed client
// input — month bounds (*query.MonthError) and unknown columns
// (*query.ColumnError) — is 400, the rest 500. Classification is by typed
// error, never by message text, so rewording an error cannot silently turn
// client mistakes into server faults.
func writeQueryError(w http.ResponseWriter, err error) {
	var me *query.MonthError
	var ce *query.ColumnError
	if errors.As(err, &me) || errors.As(err, &ce) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}
