// Package serve is the HTTP serving layer over the failure database
// (system #19 in DESIGN.md §2): a stdlib-only JSON API that turns the
// batch toolchain into a long-running service.
//
// Studies are expensive to build (a full Stage I-IV pipeline run), so the
// server keeps a seed-keyed LRU cache guarded by singleflight: the first
// request for a seed builds the study exactly once no matter how many
// requests race, later requests are answered from memory, and an evicted
// study is simply rebuilt on next use. With Config.SnapshotDir set the
// cache gains a second tier: a miss first loads the seed's persisted
// study snapshot (internal/snapshot) and only falls back to the pipeline
// when none is usable, writing the built study through for the next cold
// process. Every request runs under a
// deadline (Config.RequestTimeout); a request that times out while its
// study is still building returns 504 without cancelling the build, which
// completes in the background and serves the retry. Request counts,
// latency histograms, and cache counters are exported in Prometheus text
// format at /metrics.
//
// Routes:
//
//	GET /healthz                                     liveness probe
//	GET /metrics                                     Prometheus text metrics
//	GET /v1/studies/{seed}/disengagements            filtered, paginated events
//	GET /v1/studies/{seed}/accidents                 filtered, paginated accidents
//	GET /v1/studies/{seed}/groupby?by=tag            group-by counts
//	GET /v1/studies/{seed}/metrics/reliability       per-manufacturer DPM/DPA/APM
//	GET /v1/studies/{seed}/tables/{id}               rendered paper table (i..viii)
//
// Filter query parameters mirror the avquery flags: mfr, tag, category,
// road, weather, modality, from, to; listings also take offset and limit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"avfda/internal/core"
	"avfda/internal/query"
	"avfda/internal/report"
)

// Config parameterizes a Server.
type Config struct {
	// Build constructs the study for a seed (required).
	Build BuildFunc
	// CacheSize bounds the number of resident studies; <= 0 means 4.
	CacheSize int
	// SnapshotDir, when non-empty, enables the cache's snapshot tier: a
	// miss loads the seed's persisted study from this directory before
	// falling back to Build, and successful builds are written through.
	SnapshotDir string
	// DisableSnapshotV2 restricts the snapshot tier to the legacy v1
	// format. By default a miss maps the seed's v2 columnar snapshot
	// (zero-copy) before trying v1, and write-through produces v2 files.
	DisableSnapshotV2 bool
	// RequestTimeout bounds each request, including any study build it
	// triggers; <= 0 means 60s.
	RequestTimeout time.Duration
}

// Server is the HTTP API over cached studies. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	cache   *Cache
	metrics *Metrics
	timeout time.Duration
	mux     *http.ServeMux
}

// DefaultListLimit caps listing responses when no limit parameter is
// given; MaxListLimit is the largest accepted limit.
const (
	DefaultListLimit = 50
	MaxListLimit     = 1000
)

// New creates a Server around the given study builder.
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	cache, err := NewTieredCache(cfg.Build, cfg.CacheSize, cfg.SnapshotDir, !cfg.DisableSnapshotV2)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cache:   cache,
		metrics: NewMetrics(),
		timeout: cfg.RequestTimeout,
		mux:     http.NewServeMux(),
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /v1/studies/{seed}/disengagements", s.handleDisengagements)
	s.route("GET /v1/studies/{seed}/accidents", s.handleAccidents)
	s.route("GET /v1/studies/{seed}/groupby", s.handleGroupBy)
	s.route("GET /v1/studies/{seed}/metrics/reliability", s.handleReliability)
	s.route("GET /v1/studies/{seed}/tables/{id}", s.handleTable)
	return s, nil
}

// CacheStats exposes the study cache counters (for tests and operators).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// route registers a handler wrapped with the per-request deadline and the
// metrics middleware. The mux pattern (minus the method) is the metrics
// route label, so labels have bounded cardinality.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	label := pattern
	if _, path, ok := strings.Cut(pattern, " "); ok {
		label = path
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		s.metrics.Observe(label, rec.code, time.Since(start).Seconds())
	})
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status code.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits a JSON error response.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// study resolves the {seed} path segment and returns the cached (or
// freshly built) study. A false return means the response is written.
func (s *Server) study(w http.ResponseWriter, r *http.Request) (*Study, bool) {
	seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed %q: want an integer", r.PathValue("seed"))
		return nil, false
	}
	study, err := s.cache.Get(r.Context(), seed)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout,
				"study %d still building; retry shortly", seed)
			return nil, false
		}
		writeError(w, http.StatusInternalServerError, "build study %d: %v", seed, err)
		return nil, false
	}
	return study, true
}

// filterFromQuery maps the request's query parameters onto a query.Filter.
func filterFromQuery(r *http.Request) query.Filter {
	q := r.URL.Query()
	return query.Filter{
		Manufacturer: q.Get("mfr"),
		Tag:          q.Get("tag"),
		Category:     q.Get("category"),
		Road:         q.Get("road"),
		Weather:      q.Get("weather"),
		Modality:     q.Get("modality"),
		From:         q.Get("from"),
		To:           q.Get("to"),
	}
}

// pageFromQuery parses offset/limit with defaults and caps. An explicit
// limit of 0 is rejected like any other malformed value — it used to be
// silently promoted to MaxListLimit, handing the client asking for the
// smallest page the largest one — and only an over-max limit is clamped.
// A false return means the error response is written.
func pageFromQuery(w http.ResponseWriter, r *http.Request) (query.Page, bool) {
	p := query.Page{Limit: DefaultListLimit}
	q := r.URL.Query()
	for _, arg := range []struct {
		name string
		dst  *int
		min  int
		want string
	}{
		{"offset", &p.Offset, 0, "a non-negative integer"},
		{"limit", &p.Limit, 1, "a positive integer"},
	} {
		raw := q.Get(arg.name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < arg.min {
			writeError(w, http.StatusBadRequest, "bad %s %q: want %s", arg.name, raw, arg.want)
			return query.Page{}, false
		}
		*arg.dst = v
	}
	if p.Limit > MaxListLimit {
		p.Limit = MaxListLimit
	}
	return p, true
}

// handleHealthz answers liveness probes without touching the cache.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteText(w, s.cache.Stats())
}

// handleDisengagements lists filtered, paginated disengagement events.
func (s *Server) handleDisengagements(w http.ResponseWriter, r *http.Request) {
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	page, ok := pageFromQuery(w, r)
	if !ok {
		return
	}
	res, err := study.Engine.Events(filterFromQuery(r), page)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// AccidentPage is one page of accident reports, as produced by the shared
// query engine (the avquery CLI serves the identical structure).
type AccidentPage = query.AccidentPage

// handleAccidents lists accident reports, filtered by mfr and month range.
// The filtering lives in query.Engine.Accidents — one tested path shared
// with the CLI — instead of being reimplemented inline here.
func (s *Server) handleAccidents(w http.ResponseWriter, r *http.Request) {
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	page, ok := pageFromQuery(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	f := query.Filter{Manufacturer: q.Get("mfr"), From: q.Get("from"), To: q.Get("to")}
	res, err := study.Engine.Accidents(f, page)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// GroupByResponse is the group-by endpoint's payload.
type GroupByResponse struct {
	By     string             `json:"by"`
	Total  int                `json:"total"`
	Groups []query.GroupCount `json:"groups"`
}

// handleGroupBy counts filtered events per value of the ?by= column.
func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		writeError(w, http.StatusBadRequest,
			"missing by parameter: want one of %s", strings.Join(query.GroupColumns(), ", "))
		return
	}
	groups, err := study.Engine.GroupCount(filterFromQuery(r), by)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := GroupByResponse{By: by, Groups: groups}
	for _, g := range groups {
		res.Total += g.Count
	}
	writeJSON(w, http.StatusOK, res)
}

// ReliabilityResponse is the reliability-metrics payload.
type ReliabilityResponse struct {
	Manufacturers []query.ReliabilityMetric `json:"manufacturers"`
}

// handleReliability reports per-manufacturer DPM/DPA/APM metrics.
func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	study, ok := s.study(w, r)
	if !ok {
		return
	}
	rows, err := study.Engine.Reliability()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reliability: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReliabilityResponse{Manufacturers: rows})
}

// tableRenderers maps a lower-cased table id to its renderer. Table II
// (sample NLP assignments) needs per-run sample rows and is not served.
var tableRenderers = map[string]func(*core.DB) (string, error){
	"i":    func(db *core.DB) (string, error) { return report.TableI(db), nil },
	"iii":  func(db *core.DB) (string, error) { return report.TableIII(), nil },
	"iv":   func(db *core.DB) (string, error) { return report.TableIV(db), nil },
	"v":    func(db *core.DB) (string, error) { return report.TableV(db), nil },
	"vi":   func(db *core.DB) (string, error) { return report.TableVI(db), nil },
	"vii":  report.TableVII,
	"viii": report.TableVIII,
}

// handleTable renders one paper table as plain text.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id := strings.ToLower(r.PathValue("id"))
	render, ok := tableRenderers[id]
	if !ok {
		writeError(w, http.StatusNotFound,
			"unknown table %q: want one of i, iii, iv, v, vi, vii, viii", r.PathValue("id"))
		return
	}
	study, okStudy := s.study(w, r)
	if !okStudy {
		return
	}
	db, err := study.Database()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render table %s: %v", id, err)
		return
	}
	text, err := render(db)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render table %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// writeQueryError maps engine errors to status codes: malformed client
// input — month bounds (*query.MonthError) and unknown columns
// (*query.ColumnError) — is 400, the rest 500. Classification is by typed
// error, never by message text, so rewording an error cannot silently turn
// client mistakes into server faults.
func writeQueryError(w http.ResponseWriter, err error) {
	var me *query.MonthError
	var ce *query.ColumnError
	if errors.As(err, &me) || errors.As(err, &ce) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}
