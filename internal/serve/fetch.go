package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"avfda/internal/snapshot2"
)

// errPeerMiss reports that every configured peer answered 404 for the
// seed: nobody holds the snapshot yet, so the caller should rebuild.
var errPeerMiss = errors.New("serve: no peer holds the snapshot")

const (
	// defaultFetchTimeout bounds one peer snapshot probe end to end
	// (connect, headers, and full body). Snapshots are tens of megabytes
	// at most, so ten seconds of intra-cluster transfer is generous.
	defaultFetchTimeout = 10 * time.Second
	// maxFetchBytes caps how much of a peer response is buffered before
	// validation, so a misbehaving peer cannot balloon this process.
	maxFetchBytes = 1 << 30
)

// snapshotFetcher pulls v2 snapshots from peer avserve backends over
// their /v1/snapshots/{seed} endpoint. Fetched bytes are re-verified
// end to end (magic, version, CRC-32C, structural bounds) before they
// are landed in the snapshot directory: a peer is a transport, never a
// trust root.
type snapshotFetcher struct {
	peers  []string
	client *http.Client
}

// newSnapshotFetcher builds a fetcher over the given peer base URLs.
func newSnapshotFetcher(peers []string, timeout time.Duration) *snapshotFetcher {
	if timeout <= 0 {
		timeout = defaultFetchTimeout
	}
	cleaned := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			cleaned = append(cleaned, p)
		}
	}
	return &snapshotFetcher{
		peers: cleaned,
		// The probe runs inside the cache's singleflight, which outlives
		// any one request on purpose (like the pipeline build it replaces),
		// so the client's hard timeout is the whole cancellation story.
		client: &http.Client{Timeout: timeout},
	}
}

// fetch asks each peer in order for seed's snapshot and lands the first
// verified copy in dir. It returns errPeerMiss when every peer answered
// 404; any other error is the last failure seen.
func (f *snapshotFetcher) fetch(dir string, seed int64) error {
	err := error(errPeerMiss)
	for _, peer := range f.peers {
		switch e := f.fetchOne(peer, dir, seed); {
		case e == nil:
			return nil
		case errors.Is(e, errPeerMiss):
			// Try the next peer; keep a prior hard error if there was one.
		default:
			err = e
		}
	}
	return err
}

// fetchOne probes a single peer and, on a verified 200, installs the
// snapshot atomically into dir.
func (f *snapshotFetcher) fetchOne(peer, dir string, seed int64) error {
	resp, err := f.client.Get(fmt.Sprintf("%s/v1/snapshots/%d", peer, seed))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return errPeerMiss
	case resp.StatusCode != http.StatusOK:
		return fmt.Errorf("serve: peer %s: snapshot %d: unexpected status %d", peer, seed, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes+1))
	if err != nil {
		return fmt.Errorf("serve: peer %s: snapshot %d: %w", peer, seed, err)
	}
	if len(data) > maxFetchBytes {
		return fmt.Errorf("serve: peer %s: snapshot %d exceeds %d-byte cap", peer, seed, maxFetchBytes)
	}
	// Re-verify before anything touches disk: NewView walks the full
	// format (magic, version, payload length, CRC-32C, section bounds),
	// so a truncated or corrupted transfer is rejected here with a typed
	// snapshot2 error rather than being discovered at query time.
	if _, err := snapshot2.NewView(data); err != nil {
		return fmt.Errorf("serve: peer %s: snapshot %d invalid: %w", peer, seed, err)
	}
	return snapshot2.WriteSeedBytes(dir, seed, data)
}
