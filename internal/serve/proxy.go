package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is the horizontal scale-out layer: a stdlib-only seed-sharding
// reverse proxy in front of N avserve backends. Every study URL carries
// its seed, so the proxy routes by consistent hashing on the seed — each
// backend's LRU and snapshot directory stay hot for its own shard of the
// study space instead of every backend churning through every seed. With
// Replicas > 1 each seed spills round-robin across its k consecutive ring
// owners, so a hot seed's traffic is spread while still touching only k
// caches; a connection failure retries on the next replica before the
// client sees an error. Health and metrics are answered locally;
// everything under /v1/ is forwarded with its seed's routing.
type Proxy struct {
	ring     *hashRing
	replicas int
	rt       http.RoundTripper
	metrics  *proxyMetrics
	debugf   func(format string, args ...any)
	cursor   atomic.Uint64 // round-robin spill across a seed's replicas
	mux      *http.ServeMux
}

// ProxyConfig parameterizes a Proxy.
type ProxyConfig struct {
	// Backends are the base URLs (http://host:port) of the avserve
	// replicas to shard across (required, at least one).
	Backends []string
	// Replicas is the spill factor k: each seed is served by its k
	// consecutive distinct owners on the hash ring, round-robin per
	// request. <= 0 means 1 (strict sharding); clamped to len(Backends).
	Replicas int
	// Transport overrides the outbound round-tripper (tests). The default
	// disables transparent compression so negotiated encodings relay
	// between client and backend untouched.
	Transport http.RoundTripper
	// Debugf, when set, receives operational debug lines (mid-stream relay
	// failures and the like). nil means silent.
	Debugf func(format string, args ...any)
}

// NewProxy builds the sharding proxy.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	backends := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		return nil, errors.New("serve: proxy needs at least one backend")
	}
	k := cfg.Replicas
	if k <= 0 {
		k = 1
	}
	if k > len(backends) {
		k = len(backends)
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			// The proxy is a pass-through for content negotiation: the
			// client's Accept-Encoding reaches the backend and gzip bodies
			// relay as-is, so ETag representations stay consistent
			// end to end.
			DisableCompression:  true,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	debugf := cfg.Debugf
	if debugf == nil {
		debugf = func(string, ...any) {}
	}
	p := &Proxy{
		ring:     newHashRing(backends),
		replicas: k,
		rt:       rt,
		metrics:  newProxyMetrics(),
		debugf:   debugf,
		mux:      http.NewServeMux(),
	}
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.HandleFunc("GET /v1/studies/{seed}/{rest...}", p.handleForward)
	p.mux.HandleFunc("GET /v1/snapshots/{seed}", p.handleForward)
	return p, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

// Backends returns the proxy's cleaned backend list, ring order aside
// (for logs and tests).
func (p *Proxy) Backends() []string {
	return append([]string(nil), p.ring.backends...)
}

// handleHealthz answers for the proxy itself; backend health shows up as
// forwarding errors, not as proxy liveness.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "proxy"})
}

// handleMetrics renders the proxy's own Prometheus counters.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.metrics.writeText(w)
}

// handleForward routes one study-addressed request by its seed.
func (p *Proxy) handleForward(w http.ResponseWriter, r *http.Request) {
	seed, err := strconv.ParseInt(r.PathValue("seed"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed %q: want an integer", r.PathValue("seed"))
		return
	}
	owners := p.ring.owners(seedKey(seed), p.replicas)
	// Spill round-robin across the seed's replicas: with k == 1 this is a
	// no-op, with k > 1 a hot seed's load spreads without widening its
	// cache footprint beyond k backends.
	start := int(p.cursor.Add(1) % uint64(len(owners)))
	var lastErr error
	for i := range owners {
		backend := owners[(start+i)%len(owners)]
		p.metrics.bumpBackend(backend, false)
		resp, err := p.roundTrip(backend, r)
		if err != nil {
			// Only transport-level failures land here — no response bytes
			// have been written, and study GETs are safe to replay — so
			// trying the next replica is always sound.
			lastErr = err
			p.metrics.bumpBackend(backend, true)
			if i+1 < len(owners) {
				p.metrics.bumpRetries()
			}
			continue
		}
		p.relayResponse(w, resp, r.URL.Path)
		return
	}
	writeError(w, http.StatusBadGateway,
		"seed %d: all %d replicas failed: %v", seed, len(owners), lastErr)
}

// roundTrip forwards the request to one backend, preserving path, query,
// and end-to-end headers.
func (p *Proxy) roundTrip(backend string, r *http.Request) (*http.Response, error) {
	out, err := http.NewRequestWithContext(r.Context(), http.MethodGet, backend+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	out.Header = r.Header.Clone()
	stripHopByHop(out.Header)
	if prior := out.Header.Get("X-Forwarded-For"); prior != "" {
		out.Header.Set("X-Forwarded-For", prior+", "+clientIP(r))
	} else {
		out.Header.Set("X-Forwarded-For", clientIP(r))
	}
	return p.rt.RoundTrip(out)
}

// relayResponse copies the backend's response to the client verbatim.
func (p *Proxy) relayResponse(w http.ResponseWriter, resp *http.Response, path string) {
	defer resp.Body.Close()
	stripHopByHop(resp.Header)
	h := w.Header()
	for key, values := range resp.Header {
		for _, v := range values {
			h.Add(key, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// A copy failure here means the client went away or the backend died
	// mid-stream. The status is already on the wire, so there is nothing
	// coherent left to send the client — but a silently truncated body is
	// exactly the kind of failure that otherwise only surfaces as a
	// checksum mismatch three hops later, so it is counted and logged
	// rather than dropped.
	if n, err := io.Copy(w, resp.Body); err != nil {
		p.metrics.bumpCopyErrors()
		p.debugf("proxy: relay of %s truncated after %d bytes: %v", path, n, err)
	}
}

// hopByHopHeaders are connection-scoped per RFC 9110 §7.6.1 and must not
// cross the proxy.
var hopByHopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// stripHopByHop removes hop-by-hop headers, including any the Connection
// header names.
func stripHopByHop(h http.Header) {
	for _, name := range strings.Split(h.Get("Connection"), ",") {
		if name = strings.TrimSpace(name); name != "" {
			h.Del(name)
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// clientIP is the host part of the request's remote address.
func clientIP(r *http.Request) string {
	if i := strings.LastIndex(r.RemoteAddr, ":"); i >= 0 {
		return r.RemoteAddr[:i]
	}
	return r.RemoteAddr
}

// seedKey hashes a seed onto the ring's keyspace.
func seedKey(seed int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// ringVnodes is how many virtual nodes each backend contributes. 64 keeps
// the shard imbalance within a few percent for small clusters while the
// whole ring still fits in a couple of cache lines per backend.
const ringVnodes = 64

// hashRing is a fixed consistent-hash ring over the backend set. Adding
// or removing one backend remaps only ~1/N of the seed space, which is
// what keeps the other backends' caches and snapshot directories warm
// through topology changes (the proxy is restarted with the new list).
type hashRing struct {
	backends []string
	hashes   []uint64 // sorted vnode positions
	owner    []int    // hashes[i] belongs to backends[owner[i]]
}

// newHashRing places every backend's vnodes on the ring.
func newHashRing(backends []string) *hashRing {
	type vnode struct {
		hash uint64
		idx  int
	}
	vnodes := make([]vnode, 0, len(backends)*ringVnodes)
	for i, b := range backends {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			_, _ = fmt.Fprintf(h, "%s#%d", b, v)
			vnodes = append(vnodes, vnode{hash: h.Sum64(), idx: i})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		return vnodes[i].idx < vnodes[j].idx
	})
	r := &hashRing{
		backends: backends,
		hashes:   make([]uint64, len(vnodes)),
		owner:    make([]int, len(vnodes)),
	}
	for i, vn := range vnodes {
		r.hashes[i] = vn.hash
		r.owner[i] = vn.idx
	}
	return r
}

// owners returns the k distinct backends owning key, clockwise from its
// ring position: the primary first, then the successors a spill or retry
// falls over to.
func (r *hashRing) owners(key uint64, k int) []string {
	if k > len(r.backends) {
		k = len(r.backends)
	}
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	out := make([]string, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; len(out) < k && i < len(r.hashes); i++ {
		idx := r.owner[(start+i)%len(r.hashes)]
		if !seen[idx] {
			seen[idx] = true
			out = append(out, r.backends[idx])
		}
	}
	return out
}

// proxyMetrics is the proxy's own counter registry. Like Metrics, it is
// snapshotted under its lock and rendered outside it (lockcheck: w is a
// network connection).
type proxyMetrics struct {
	mu       sync.Mutex
	requests map[string]int64 // forward attempts per backend
	errors   map[string]int64 // transport failures per backend
	retries  int64            // failovers to a next replica
	// copyErrors counts mid-stream relay failures: the backend's status
	// was already committed to the client when the body copy broke, so
	// the client saw a truncated response that no status rewrite can fix.
	copyErrors int64
}

// newProxyMetrics creates an empty registry.
func newProxyMetrics() *proxyMetrics {
	return &proxyMetrics{
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
	}
}

// bumpBackend counts one forward attempt (isErr false) or one transport
// failure (isErr true) against a backend.
func (m *proxyMetrics) bumpBackend(backend string, isErr bool) {
	m.mu.Lock()
	if isErr {
		m.errors[backend]++
	} else {
		m.requests[backend]++
	}
	m.mu.Unlock()
}

// bumpRetries counts one failover to the next replica.
func (m *proxyMetrics) bumpRetries() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// bumpCopyErrors counts one mid-stream relay failure.
func (m *proxyMetrics) bumpCopyErrors() {
	m.mu.Lock()
	m.copyErrors++
	m.mu.Unlock()
}

// writeText renders the counters in Prometheus text format with
// deterministic ordering.
func (m *proxyMetrics) writeText(w io.Writer) {
	m.mu.Lock()
	requests := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	errCounts := make(map[string]int64, len(m.errors))
	for k, v := range m.errors {
		errCounts[k] = v
	}
	retries := m.retries
	copyErrors := m.copyErrors
	m.mu.Unlock()

	writeBackendCounter := func(name, help string, counts map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		backends := make([]string, 0, len(counts))
		for b := range counts {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		for _, b := range backends {
			fmt.Fprintf(w, "%s{backend=%q} %d\n", name, b, counts[b])
		}
	}
	writeBackendCounter("avserve_proxy_backend_requests_total",
		"Requests forwarded to each backend (attempts, including ones that later failed).", requests)
	writeBackendCounter("avserve_proxy_backend_errors_total",
		"Transport-level forwarding failures per backend.", errCounts)
	fmt.Fprintf(w, "# HELP avserve_proxy_retries_total Failovers to a seed's next replica after a transport failure.\n")
	fmt.Fprintf(w, "# TYPE avserve_proxy_retries_total counter\navserve_proxy_retries_total %d\n", retries)
	fmt.Fprintf(w, "# HELP avserve_proxy_copy_errors_total Mid-stream relay failures after the status was committed (client saw a truncated body).\n")
	fmt.Fprintf(w, "# TYPE avserve_proxy_copy_errors_total counter\navserve_proxy_copy_errors_total %d\n", copyErrors)
}
