package serve

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfda/internal/query"
	"avfda/internal/snapshot2"
)

// countSnapshotMappings counts live .avsnap2 mappings in this process
// (linux-only; other platforms load v2 snapshots onto the heap).
func countSnapshotMappings(t *testing.T) int {
	t.Helper()
	maps, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Fatalf("read /proc/self/maps: %v", err)
	}
	return strings.Count(string(maps), ".avsnap2")
}

// TestEvictionChurnMappedViews is the mapped-view lifecycle test: a
// capacity-1 cache churned across many v2-backed seeds by concurrent
// requests, with queries still running against studies that have already
// been evicted. It pins the two halves of the release contract:
//
//  1. Safety — an evicted study's mapping stays valid while any request
//     still references its engine (the finalizer cannot run while a
//     reference is live), so no Get or query here can fault or misread.
//  2. Boundedness — once references drop, the finalizer unmaps; the
//     number of live .avsnap2 mappings converges to a small constant
//     (resident + in-flight) rather than growing with every seed ever
//     served. OpenSeed keeps no file descriptor at all (the fd is closed
//     as soon as the mapping exists), so fd exhaustion is structurally
//     impossible regardless of churn.
func TestEvictionChurnMappedViews(t *testing.T) {
	const seeds = 8
	dir := t.TempDir()
	db := testDB(t)
	for seed := int64(1); seed <= seeds; seed++ {
		if _, err := snapshot2.WriteSeed(dir, seed, db); err != nil {
			t.Fatal(err)
		}
	}
	var builds atomic.Int64
	cache, err := NewSnapshotCache(testBuilder(t, &builds, 0), 1, dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 8
		iterations = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iterations; i++ {
				seed := int64((g*7+i*3)%seeds) + 1
				study, err := cache.Get(ctx, seed)
				if err != nil {
					errs <- fmt.Errorf("worker %d get seed %d: %w", g, seed, err)
					return
				}
				// Query through the engine after the Get returned — by now
				// another worker has likely evicted this study, so this
				// exercises exactly the evicted-but-referenced window.
				page, err := study.Engine.Events(query.Filter{}, query.Page{Limit: 3})
				if err != nil || page.Total != 3 {
					errs <- fmt.Errorf("worker %d query seed %d: total %d, err %w", g, seed, page.Total, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if builds.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (every seed was snapshot-backed)", builds.Load())
	}
	stats := cache.Stats()
	if stats.Evictions == 0 || stats.Snapshot2Loads == 0 {
		t.Fatalf("stats = %+v: churn test never churned", stats)
	}
	if stats.Resident > 1 {
		t.Errorf("resident = %d, want <= 1 (capacity)", stats.Resident)
	}

	if runtime.GOOS != "linux" {
		t.Skip("mapping-count check needs /proc/self/maps")
	}
	// Boundedness: after references drop, finalizers unmap on GC. Poll a
	// few cycles — finalizer execution needs one GC to queue and another
	// to run — and require convergence well below the number of loads.
	limit := 2 // resident study + one straggler whose finalizer is queued
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := countSnapshotMappings(t); n <= limit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live .avsnap2 mappings = %d after churn (loads=%d, evictions=%d); want <= %d — evicted views are not being released",
				countSnapshotMappings(t), stats.Snapshot2Loads, stats.Evictions, limit)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
