package serve

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"avfda/internal/snapshot2"
)

// getFull performs one request with extra headers and returns the full
// recorded response.
func getFull(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// newSnapshotServer wires a Server over a snapshot directory that already
// holds the fixture study for seed 1, counting pipeline builds.
func newSnapshotServer(t *testing.T, calls *atomic.Int64) *Server {
	t.Helper()
	dir := t.TempDir()
	if _, err := snapshot2.WriteSeed(dir, 1, testDB(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Build: testBuilder(t, calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestETagRoundTrip: a snapshot-backed study response carries a validator
// derived from the snapshot checksum, and replaying it conditionally
// short-circuits to 304 with an empty body.
func TestETagRoundTrip(t *testing.T) {
	s := newSnapshotServer(t, nil)
	first := getFull(t, s, "/v1/studies/1/disengagements", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("code = %d (%s)", first.Code, first.Body.String())
	}
	tag := first.Header().Get("ETag")
	if len(tag) != 10 || tag[0] != '"' || tag[9] != '"' {
		t.Fatalf("ETag = %q, want a quoted 8-hex-digit tag", tag)
	}
	if cc := first.Header().Get("Cache-Control"); cc != cacheControl {
		t.Errorf("Cache-Control = %q, want %q", cc, cacheControl)
	}
	if vary := first.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Errorf("Vary = %q", vary)
	}

	second := getFull(t, s, "/v1/studies/1/disengagements", map[string]string{"If-None-Match": tag})
	if second.Code != http.StatusNotModified {
		t.Fatalf("conditional replay code = %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", second.Body.String())
	}
	if got := second.Header().Get("ETag"); got != tag {
		t.Errorf("304 ETag = %q, want %q", got, tag)
	}

	// A stale validator is served in full.
	third := getFull(t, s, "/v1/studies/1/disengagements", map[string]string{"If-None-Match": `"00000000"`})
	if third.Code != http.StatusOK || third.Body.Len() == 0 {
		t.Errorf("stale validator: code = %d, body %d bytes", third.Code, third.Body.Len())
	}
}

// TestETagContentAddressed: the validator is the snapshot checksum, so a
// freshly built study (write-through) and a cold server mapping the same
// snapshot report the identical tag — the fleet-wide property the proxy
// relies on.
func TestETagContentAddressed(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Build: testBuilder(t, nil, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	built := getFull(t, s1, "/v1/studies/1/disengagements", nil)
	if built.Code != http.StatusOK {
		t.Fatalf("built code = %d", built.Code)
	}
	builtTag := built.Header().Get("ETag")
	if builtTag == "" {
		t.Fatal("freshly built study with write-through carried no ETag")
	}

	s2, err := New(Config{Build: testBuilder(t, nil, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mapped := getFull(t, s2, "/v1/studies/1/disengagements", nil)
	if mapped.Code != http.StatusOK {
		t.Fatalf("mapped code = %d", mapped.Code)
	}
	if mappedTag := mapped.Header().Get("ETag"); mappedTag != builtTag {
		t.Errorf("mapped ETag = %q, built ETag = %q: want identical (content-addressed)", mappedTag, builtTag)
	}
}

// TestETagAbsentWithoutSnapshot: studies with no snapshot backing carry no
// validator and never 304.
func TestETagAbsentWithoutSnapshot(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	rec := getFull(t, s, "/v1/studies/1/disengagements", map[string]string{"If-None-Match": `*`})
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200 (no validator to match)", rec.Code)
	}
	if tag := rec.Header().Get("ETag"); tag != "" {
		t.Errorf("snapshotless study carried ETag %q", tag)
	}
}

// TestErrorResponsesCarryNoValidator: a request that resolves the study
// but then fails validation must not emit the study's ETag on the error.
func TestErrorResponsesCarryNoValidator(t *testing.T) {
	s := newSnapshotServer(t, nil)
	rec := getFull(t, s, "/v1/studies/1/disengagements?from=bogus", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400", rec.Code)
	}
	if tag := rec.Header().Get("ETag"); tag != "" {
		t.Errorf("error response carried ETag %q", tag)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "" {
		t.Errorf("error response carried Cache-Control %q", cc)
	}
}

func TestETagMatches(t *testing.T) {
	for _, tc := range []struct {
		header, tag string
		want        bool
	}{
		{"", `"abc"`, false},
		{`"abc"`, `"abc"`, true},
		{`"abc-gzip"`, `"abc"`, false},
		{`"xyz", "abc"`, `"abc"`, true},
		{`W/"abc"`, `"abc"`, true},
		{`*`, `"abc"`, true},
		{`"ABC"`, `"abc"`, false},
	} {
		if got := etagMatches(tc.header, tc.tag); got != tc.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", tc.header, tc.tag, got, tc.want)
		}
	}
}

// TestGzipNegotiation: a client that accepts gzip gets a compressed body
// that decodes byte-identically to the identity representation, under a
// "-gzip"-suffixed variant of the same validator; clients that don't stay
// untouched.
func TestGzipNegotiation(t *testing.T) {
	s := newSnapshotServer(t, nil)
	identity := getFull(t, s, "/v1/studies/1/disengagements", nil)
	if identity.Code != http.StatusOK || identity.Header().Get("Content-Encoding") != "" {
		t.Fatalf("identity response: code %d, encoding %q", identity.Code, identity.Header().Get("Content-Encoding"))
	}

	zipped := getFull(t, s, "/v1/studies/1/disengagements", map[string]string{"Accept-Encoding": "gzip"})
	if zipped.Code != http.StatusOK {
		t.Fatalf("gzip code = %d", zipped.Code)
	}
	if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(zipped.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(decoded) != identity.Body.String() {
		t.Error("gzip body does not decode to the identity body")
	}

	identityTag, zippedTag := identity.Header().Get("ETag"), zipped.Header().Get("ETag")
	want := identityTag[:len(identityTag)-1] + `-gzip"`
	if zippedTag != want {
		t.Errorf("gzip ETag = %q, want %q", zippedTag, want)
	}

	// The gzip representation revalidates against its own tag.
	replay := getFull(t, s, "/v1/studies/1/disengagements",
		map[string]string{"Accept-Encoding": "gzip", "If-None-Match": zippedTag})
	if replay.Code != http.StatusNotModified {
		t.Errorf("gzip conditional replay code = %d, want 304", replay.Code)
	}
	if enc := replay.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("304 carried Content-Encoding %q", enc)
	}
}

// TestGzipSkipsErrorsAndBinary: non-200 responses and octet-stream bodies
// pass through identity-encoded even when the client accepts gzip.
func TestGzipSkipsErrorsAndBinary(t *testing.T) {
	s := newSnapshotServer(t, nil)
	bad := getFull(t, s, "/v1/studies/1/disengagements?limit=nope", map[string]string{"Accept-Encoding": "gzip"})
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", bad.Code)
	}
	if enc := bad.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("400 carried Content-Encoding %q", enc)
	}

	snap := getFull(t, s, "/v1/snapshots/1", map[string]string{"Accept-Encoding": "gzip"})
	if snap.Code != http.StatusOK {
		t.Fatalf("snapshot code = %d (%s)", snap.Code, snap.Body.String())
	}
	if enc := snap.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("snapshot stream carried Content-Encoding %q", enc)
	}
	if _, err := snapshot2.NewView(snap.Body.Bytes()); err != nil {
		t.Errorf("streamed snapshot bytes invalid: %v", err)
	}
}

// TestBadParamsSkipStudyBuild is the validation-ordering regression test:
// a malformed limit (or missing group-by column) on a cold cache must
// cost a 400, not a pipeline build.
func TestBadParamsSkipStudyBuild(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 0, 0)
	for _, path := range []string{
		"/v1/studies/1/disengagements?limit=nope",
		"/v1/studies/1/disengagements?limit=0",
		"/v1/studies/1/disengagements?offset=-1",
		"/v1/studies/1/accidents?limit=bogus",
		"/v1/studies/1/groupby",
	} {
		if code, body := get(t, s, path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d (%s), want 400", path, code, strings.TrimSpace(body))
		}
	}
	if calls.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (params must validate before the study resolves)", calls.Load())
	}
	if stats := s.CacheStats(); stats.Builds != 0 || stats.Misses != 0 {
		t.Errorf("stats = %+v, want an untouched cold cache", stats)
	}
}

// TestClientDisconnectReturns499: a canceled request is not a timeout —
// it gets 499 (not 504), its own metrics label, and the build still lands
// for the next caller.
func TestClientDisconnectReturns499(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 150*time.Millisecond, 5*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/studies/1/disengagements", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(rec, req)
	}()
	// Let the request reach the build, then hang up.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never started building")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("code = %d (%s), want 499", rec.Code, strings.TrimSpace(rec.Body.String()))
	}
	if strings.Contains(rec.Body.String(), "retry") {
		t.Errorf("499 body advertises a retry to a client that hung up: %s", rec.Body.String())
	}

	// The abandoned build still completes and serves the next request.
	waitUntil := time.Now().Add(2 * time.Second)
	for s.CacheStats().Resident == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("background build never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Errorf("post-disconnect request code = %d", code)
	}

	_, metrics := get(t, s, "/metrics")
	for _, want := range []string{
		`avserve_requests_total{route="/v1/studies/{seed}/disengagements",code="499"} 1`,
		`avserve_requests_total{route="/v1/studies/{seed}/disengagements",code="200"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// flushTracker records Flush calls and how many body bytes had arrived by
// the first one.
type flushTracker struct {
	*httptest.ResponseRecorder
	flushes      int
	bytesAtFirst int
}

func (f *flushTracker) Flush() {
	if f.flushes == 0 {
		f.bytesAtFirst = f.Body.Len()
	}
	f.flushes++
}

// TestStatusRecorderForwardsFlush: a handler's Flush must reach the
// client through the metrics wrapper (it used to be swallowed, buffering
// whole streamed responses) — with and without gzip in between.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	for _, accept := range []string{"", "gzip"} {
		s := &Server{metrics: NewMetrics(), timeout: time.Second, mux: http.NewServeMux()}
		flusherSeen := false
		s.route("GET /stream", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, `{"part":1}`)
			if f, ok := w.(http.Flusher); ok {
				flusherSeen = true
				f.Flush()
			}
			_, _ = io.WriteString(w, `{"part":2}`)
		})
		ft := &flushTracker{ResponseRecorder: httptest.NewRecorder()}
		req := httptest.NewRequest(http.MethodGet, "/stream", nil)
		if accept != "" {
			req.Header.Set("Accept-Encoding", accept)
		}
		s.ServeHTTP(ft, req)
		if !flusherSeen {
			t.Fatalf("accept=%q: handler's writer does not expose http.Flusher", accept)
		}
		if ft.flushes == 0 {
			t.Errorf("accept=%q: handler Flush never reached the client", accept)
		}
		if ft.bytesAtFirst == 0 {
			t.Errorf("accept=%q: nothing had been written downstream at first Flush", accept)
		}
	}
}

// TestStatusRecorderForwardsReadFrom: the wrapper advertises io.ReaderFrom
// (the sendfile path ServeContent uses for snapshot streaming) and the
// fallback copy cannot recurse.
func TestStatusRecorderForwardsReadFrom(t *testing.T) {
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder(), code: http.StatusOK}
	var w http.ResponseWriter = rec
	rf, ok := w.(io.ReaderFrom)
	if !ok {
		t.Fatal("statusRecorder does not implement io.ReaderFrom")
	}
	n, err := rf.ReadFrom(strings.NewReader("snapshot bytes"))
	if err != nil || n != int64(len("snapshot bytes")) {
		t.Fatalf("ReadFrom = (%d, %v)", n, err)
	}
	if body := rec.ResponseWriter.(*httptest.ResponseRecorder).Body.String(); body != "snapshot bytes" {
		t.Errorf("body = %q", body)
	}
}

// TestSnapshotEndpoint pins the distribution endpoint's contract: 200
// with the exact file bytes when held, 404 when absent or disabled, 400
// on a malformed seed.
func TestSnapshotEndpoint(t *testing.T) {
	s := newSnapshotServer(t, nil)
	rec := getFull(t, s, "/v1/snapshots/1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	v, err := snapshot2.NewView(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("streamed snapshot invalid: %v", err)
	}
	if v.NumRows() != 3 {
		t.Errorf("streamed snapshot rows = %d, want 3", v.NumRows())
	}

	if rec := getFull(t, s, "/v1/snapshots/99", nil); rec.Code != http.StatusNotFound {
		t.Errorf("absent seed code = %d, want 404", rec.Code)
	}
	if rec := getFull(t, s, "/v1/snapshots/abc", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad seed code = %d, want 400", rec.Code)
	}

	noDir := newTestServer(t, nil, 0, 0)
	if rec := getFull(t, noDir, "/v1/snapshots/1", nil); rec.Code != http.StatusNotFound {
		t.Errorf("no snapshot dir code = %d, want 404", rec.Code)
	}
}
