package serve

import (
	"compress/gzip"
	"net/http"
	"strings"
	"sync"
)

// gzipWriters pools compressors so the per-response cost is a Reset, not
// an allocation of gzip's window buffers.
var gzipWriters = sync.Pool{
	New: func() any { return gzip.NewWriter(nil) },
}

// acceptsGzip reports whether the client negotiated gzip. The check is
// deliberately simple (token presence, no q-value parsing): every real
// client that sends "gzip" means it, and a q=0 opt-out is vanishingly
// rare — but "identity" and absent headers are honored.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.EqualFold(enc, "gzip") {
			return true
		}
	}
	return false
}

// compressible reports whether a content type is worth gzipping: the JSON
// and text bodies every study endpoint emits. Binary snapshot streams
// (application/octet-stream) pass through untouched — the v2 format's
// varint postings and deduplicated strings don't compress enough to repay
// burning CPU in the distribution path.
func compressible(contentType string) bool {
	return strings.HasPrefix(contentType, "application/json") ||
		strings.HasPrefix(contentType, "text/")
}

// gzipResponseWriter compresses 200-status compressible responses on the
// fly. The decision is deferred to WriteHeader time, when the status and
// Content-Type are known; error responses, 304s, and binary bodies pass
// through identity-encoded.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	wroteHeader bool
}

// newGzipResponseWriter wraps w for a client that accepts gzip. close
// must be called after the handler returns to flush the compressor and
// return it to the pool.
func newGzipResponseWriter(w http.ResponseWriter) *gzipResponseWriter {
	return &gzipResponseWriter{ResponseWriter: w}
}

// WriteHeader decides the encoding and forwards the status.
func (g *gzipResponseWriter) WriteHeader(code int) {
	if g.wroteHeader {
		g.ResponseWriter.WriteHeader(code)
		return
	}
	g.wroteHeader = true
	h := g.Header()
	if code == http.StatusOK && compressible(h.Get("Content-Type")) && h.Get("Content-Encoding") == "" {
		h.Set("Content-Encoding", "gzip")
		// The compressed length is unknowable up front; drop any length
		// the handler computed for the identity body.
		h.Del("Content-Length")
		g.gz = gzipWriters.Get().(*gzip.Writer)
		g.gz.Reset(g.ResponseWriter)
	}
	g.ResponseWriter.WriteHeader(code)
}

// Write compresses the body when WriteHeader elected gzip.
func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.gz != nil {
		return g.gz.Write(p)
	}
	return g.ResponseWriter.Write(p)
}

// Flush pushes buffered compressed bytes downstream so streaming handlers
// still stream when their output is gzipped.
func (g *gzipResponseWriter) Flush() {
	if g.gz != nil {
		_ = g.gz.Flush()
	}
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// close finalizes the gzip stream (writing the trailer) and recycles the
// compressor. It must run after the handler, exactly once.
func (g *gzipResponseWriter) close() {
	if g.gz == nil {
		return
	}
	_ = g.gz.Close()
	g.gz.Reset(nil)
	gzipWriters.Put(g.gz)
	g.gz = nil
}
