package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// echoBackend answers every request with its own name plus what it saw,
// so routing tests can tell backends apart.
func echoBackend(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"backend":   name,
			"uri":       r.URL.RequestURI(),
			"forwarded": r.Header.Get("X-Forwarded-For"),
			"accept":    r.Header.Get("Accept-Encoding"),
		})
	})
}

// newEchoProxy stands up n echo backends and a proxy over them.
func newEchoProxy(t *testing.T, n, replicas int) (*Proxy, []string) {
	t.Helper()
	backends := make([]string, n)
	for i := range backends {
		srv := httptest.NewServer(echoBackend(fmt.Sprintf("b%d", i)))
		t.Cleanup(srv.Close)
		backends[i] = srv.URL
	}
	p, err := NewProxy(ProxyConfig{Backends: backends, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	return p, backends
}

// TestRingProperties pins the consistent-hash ring: owners are
// deterministic, distinct, and the seed space spreads over every backend
// without gross imbalance.
func TestRingProperties(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r := newHashRing(backends)
	counts := map[string]int{}
	const seeds = 3000
	for seed := int64(0); seed < seeds; seed++ {
		owners := r.owners(seedKey(seed), 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("seed %d owners = %v, want 2 distinct", seed, owners)
		}
		again := r.owners(seedKey(seed), 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("seed %d owners not deterministic: %v vs %v", seed, owners, again)
		}
		counts[owners[0]]++
	}
	for _, b := range backends {
		if frac := float64(counts[b]) / seeds; frac < 0.15 || frac > 0.55 {
			t.Errorf("backend %s owns %.1f%% of seeds; want a vaguely balanced ring (%v)",
				b, 100*frac, counts)
		}
	}
	// k exceeding the backend count is clamped, not an error.
	if owners := r.owners(seedKey(7), 99); len(owners) != len(backends) {
		t.Errorf("k=99 owners = %v", owners)
	}
}

// TestRingStabilityAcrossResize: removing one backend remaps only the
// seeds it owned — everyone else's shard stays put, which is what keeps
// surviving caches warm through a topology change.
func TestRingStabilityAcrossResize(t *testing.T) {
	full := newHashRing([]string{"http://a", "http://b", "http://c"})
	reduced := newHashRing([]string{"http://a", "http://b"})
	moved := 0
	const seeds = 2000
	for seed := int64(0); seed < seeds; seed++ {
		before := full.owners(seedKey(seed), 1)[0]
		after := reduced.owners(seedKey(seed), 1)[0]
		if before != "http://c" && before != after {
			moved++
		}
	}
	if frac := float64(moved) / seeds; frac > 0.05 {
		t.Errorf("%.1f%% of surviving seeds remapped on resize; consistent hashing should keep them", 100*frac)
	}
}

// TestProxyRoutesBySeed: the same seed always lands on the same backend,
// different seeds spread across both, and the per-backend counters see it.
func TestProxyRoutesBySeed(t *testing.T) {
	p, _ := newEchoProxy(t, 2, 1)
	owner := map[int]string{}
	for seed := 0; seed < 16; seed++ {
		for try := 0; try < 3; try++ {
			rec := getFull(t, p, fmt.Sprintf("/v1/studies/%d/disengagements?limit=5", seed), nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("seed %d code = %d (%s)", seed, rec.Code, rec.Body.String())
			}
			var got map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
				t.Fatal(err)
			}
			if prev, ok := owner[seed]; ok && prev != got["backend"] {
				t.Fatalf("seed %d flapped between %s and %s", seed, prev, got["backend"])
			}
			owner[seed] = got["backend"]
			if want := fmt.Sprintf("/v1/studies/%d/disengagements?limit=5", seed); got["uri"] != want {
				t.Errorf("forwarded uri = %q, want %q", got["uri"], want)
			}
			if got["forwarded"] == "" {
				t.Error("X-Forwarded-For not set")
			}
		}
	}
	sharded := map[string]bool{}
	for _, b := range owner {
		sharded[b] = true
	}
	if len(sharded) != 2 {
		t.Errorf("16 seeds all landed on %v; want both backends used", sharded)
	}

	metrics := getFull(t, p, "/metrics", nil).Body.String()
	if strings.Count(metrics, "avserve_proxy_backend_requests_total{backend=") != 2 {
		t.Errorf("per-backend request counters missing:\n%s", metrics)
	}
	if !strings.Contains(metrics, "avserve_proxy_retries_total 0") {
		t.Errorf("retries counter missing:\n%s", metrics)
	}
}

// TestProxyHeaderPassthrough: content negotiation crosses the proxy
// untouched in both directions — the backend sees Accept-Encoding, the
// client sees the backend's headers.
func TestProxyHeaderPassthrough(t *testing.T) {
	p, _ := newEchoProxy(t, 1, 1)
	rec := getFull(t, p, "/v1/studies/1/groupby?by=tag", map[string]string{"Accept-Encoding": "gzip"})
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	var got map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["accept"] != "gzip" {
		t.Errorf("backend saw Accept-Encoding %q, want gzip", got["accept"])
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("relayed Content-Type = %q", ct)
	}
}

// TestProxyRetryOnConnectionFailure: with a dead replica in the set, the
// proxy fails over to the live one — every request still succeeds and the
// failover is visible in the metrics.
func TestProxyRetryOnConnectionFailure(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	live := httptest.NewServer(echoBackend("live"))
	defer live.Close()

	p, err := NewProxy(ProxyConfig{Backends: []string{dead.URL, live.URL}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One fixed seed, several requests: its two owners are the dead and
	// live backends, and the round-robin spill cursor alternates which is
	// tried first, so the dead one is provably hit regardless of where the
	// ephemeral ports land on the hash ring (distinct seeds could all
	// round-robin onto the live owner first).
	for i := 0; i < 8; i++ {
		rec := getFull(t, p, "/v1/studies/1/disengagements", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d code = %d (%s)", i, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), `"backend":"live"`) {
			t.Fatalf("request %d served by %s", i, rec.Body.String())
		}
	}
	metrics := getFull(t, p, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, fmt.Sprintf("avserve_proxy_backend_errors_total{backend=%q}", dead.URL)) {
		t.Errorf("dead backend's error counter missing:\n%s", metrics)
	}
	if strings.Contains(metrics, "avserve_proxy_retries_total 0") {
		t.Errorf("failovers happened but retries counter is zero:\n%s", metrics)
	}
}

// TestProxyAllReplicasDown: when every owner is unreachable the client
// gets a 502, not a hang or a panic.
func TestProxyAllReplicasDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	p, err := NewProxy(ProxyConfig{Backends: []string{dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rec := getFull(t, p, "/v1/studies/1/disengagements", nil)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("code = %d, want 502", rec.Code)
	}
}

// TestProxyLocalEndpoints: health, metrics, and input validation are
// answered by the proxy itself, never forwarded.
func TestProxyLocalEndpoints(t *testing.T) {
	p, _ := newEchoProxy(t, 1, 1)
	if rec := getFull(t, p, "/healthz", nil); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"role":"proxy"`) {
		t.Errorf("healthz = %d %s", rec.Code, rec.Body.String())
	}
	if rec := getFull(t, p, "/v1/studies/abc/disengagements", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad seed code = %d, want 400", rec.Code)
	}
	if rec := getFull(t, p, "/v1/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path code = %d, want 404", rec.Code)
	}
}

// TestProxyConfigValidation: an empty backend list is rejected; blanks
// and trailing slashes are cleaned.
func TestProxyConfigValidation(t *testing.T) {
	if _, err := NewProxy(ProxyConfig{}); err == nil {
		t.Error("no backends: want error")
	}
	if _, err := NewProxy(ProxyConfig{Backends: []string{" ", ""}}); err == nil {
		t.Error("blank backends: want error")
	}
	p, err := NewProxy(ProxyConfig{Backends: []string{"http://a/", " http://b "}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Backends(); got[0] != "http://a" || got[1] != "http://b" {
		t.Errorf("cleaned backends = %v", got)
	}
}

// TestProxyEndToEndStudies drives the proxy over two real avserve
// backends sharing nothing, and checks the answers are byte-identical to
// asking a backend directly — the proxy adds routing, not content.
func TestProxyEndToEndStudies(t *testing.T) {
	s1 := newSnapshotServer(t, nil)
	s2 := newSnapshotServer(t, nil)
	b1, b2 := httptest.NewServer(s1), httptest.NewServer(s2)
	defer b1.Close()
	defer b2.Close()
	p, err := NewProxy(ProxyConfig{Backends: []string{b1.URL, b2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()

	direct := getFull(t, s1, "/v1/studies/1/groupby?by=tag", nil)
	// Pin the identity encoding: Go's default client would otherwise
	// negotiate gzip transparently, which is the -gzip representation
	// with its own tag.
	req0, _ := http.NewRequest(http.MethodGet, proxySrv.URL+"/v1/studies/1/groupby?by=tag", nil)
	req0.Header.Set("Accept-Encoding", "identity")
	resp, err := http.DefaultClient.Do(req0)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	viaProxy, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied code = %d (%s)", resp.StatusCode, viaProxy)
	}
	if string(viaProxy) != direct.Body.String() {
		t.Errorf("proxied body differs from direct:\n%s\nvs\n%s", viaProxy, direct.Body.String())
	}
	if got, want := resp.Header.Get("ETag"), direct.Header().Get("ETag"); got != want || got == "" {
		t.Errorf("proxied ETag = %q, direct = %q", got, want)
	}

	// Conditional revalidation works through the proxy.
	req, _ := http.NewRequest(http.MethodGet, proxySrv.URL+"/v1/studies/1/groupby?by=tag", nil)
	req.Header.Set("Accept-Encoding", "identity")
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Errorf("conditional through proxy = %d, want 304", cond.StatusCode)
	}
}

// brokenBody yields a few bytes and then a read error, simulating a
// backend dying mid-stream after the status has been committed.
type brokenBody struct{ sent bool }

func (b *brokenBody) Read(p []byte) (int, error) {
	if !b.sent {
		b.sent = true
		return copy(p, "partial"), nil
	}
	return 0, fmt.Errorf("backend reset mid-stream")
}

func (b *brokenBody) Close() error { return nil }

// brokenTransport always answers 200 with a body that breaks mid-copy.
type brokenTransport struct{}

func (brokenTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       &brokenBody{},
	}, nil
}

// TestProxyCopyErrorCounted: a relay that breaks after the status is on
// the wire cannot be turned into an error response, but it must not
// vanish either — the copy-errors counter and the debug log record it.
func TestProxyCopyErrorCounted(t *testing.T) {
	var logged []string
	p, err := NewProxy(ProxyConfig{
		Backends:  []string{"http://backend"},
		Transport: brokenTransport{},
		Debugf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := getFull(t, p, "/v1/studies/1/disengagements", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200 (status was committed before the break)", rec.Code)
	}
	if got := rec.Body.String(); got != "partial" {
		t.Errorf("client saw body %q, want the partial prefix", got)
	}
	metrics := getFull(t, p, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "avserve_proxy_copy_errors_total 1") {
		t.Errorf("copy-errors counter missing or wrong:\n%s", metrics)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "truncated after 7 bytes") {
		t.Errorf("debug log = %v, want one truncation line", logged)
	}
}

// TestProxyCleanRelayNotCounted: an intact relay leaves the counter at
// zero — the metric measures broken streams, not traffic.
func TestProxyCleanRelayNotCounted(t *testing.T) {
	p, _ := newEchoProxy(t, 1, 1)
	if rec := getFull(t, p, "/v1/studies/1/disengagements", nil); rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	metrics := getFull(t, p, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "avserve_proxy_copy_errors_total 0") {
		t.Errorf("counter should be zero:\n%s", metrics)
	}
}
