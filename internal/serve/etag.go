package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// HTTP caching for study responses.
//
// A study's v2 snapshot encoding is deterministic, so its CRC-32C payload
// checksum is a content address: every node that serves seed N computes
// the same checksum, whether it mapped a local snapshot, pulled one from
// a peer, or rebuilt from scratch and wrote through. That checksum is the
// entity tag — identical across the whole fleet, which is what makes
// validators work behind the consistent-hash proxy (a client's
// If-None-Match revalidates correctly no matter which backend answers).
//
// The tag is per representation: the gzip-encoded body is a different
// byte stream than the identity one, so the encoded representation's tag
// carries a "-gzip" suffix (mirroring how nginx degrades tags for
// on-the-fly compression, minus the weakening). Whether a response will
// be gzipped is decided up front from Accept-Encoding — every study
// endpoint emits compressible JSON or text — so the suffix is known
// before the 304 check runs.

// etagFromCRC renders a snapshot checksum as the study's entity-tag
// payload: fixed-width lower-case hex, no quotes.
func etagFromCRC(crc uint32) string { return fmt.Sprintf("%08x", crc) }

// cacheControl is sent with every response that carries a validator.
// Studies for a seed are deterministic but not formally immutable (a
// pipeline upgrade rebuilds them), so clients may reuse for five minutes
// and then revalidate — a 304 costs no query work.
const cacheControl = "public, max-age=300"

// conditional stamps the study's validator headers onto the response and
// answers true when the request's If-None-Match matches the current
// representation — in which case it has already written the 304 and the
// handler must not run the query. Studies without a snapshot-backed
// checksum carry no validator and are always served in full.
func conditional(w http.ResponseWriter, r *http.Request, study *Study) bool {
	if study.ETag == "" {
		return false
	}
	tag := `"` + study.ETag
	if acceptsGzip(r) {
		tag += "-gzip"
	}
	tag += `"`
	h := w.Header()
	h.Set("ETag", tag)
	h.Set("Cache-Control", cacheControl)
	if !etagMatches(r.Header.Get("If-None-Match"), tag) {
		return false
	}
	w.WriteHeader(http.StatusNotModified)
	return true
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, "*" matching anything, with the weak comparison
// RFC 9110 §13.1.2 prescribes for this header (a W/ prefix is ignored).
func etagMatches(header, tag string) bool {
	if header == "" {
		return false
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == tag {
			return true
		}
	}
	return false
}
