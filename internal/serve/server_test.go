package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/query"
	"avfda/internal/schema"
	"avfda/internal/snapshot"
	"avfda/internal/snapshot2"
)

// testDB hand-assembles a small failure database.
func testDB(t *testing.T) *core.DB {
	t.Helper()
	month := func(m int) time.Time { return time.Date(2015, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }
	ev := func(m schema.Manufacturer, v schema.VehicleID, mo int, tag ontology.Tag, cause string) core.Event {
		return core.Event{
			Disengagement: schema.Disengagement{
				Manufacturer: m, Vehicle: v, ReportYear: schema.Report2016,
				Time: month(mo).AddDate(0, 0, 9), Cause: cause,
				Modality: schema.ModalityManual,
			},
			Tag:      tag,
			Category: ontology.CategoryOf(tag),
		}
	}
	return &core.DB{
		Mileage: []schema.MonthlyMileage{
			{Manufacturer: schema.Waymo, Vehicle: "W1", ReportYear: schema.Report2016, Month: month(3), Miles: 100},
			{Manufacturer: schema.Bosch, Vehicle: "B1", ReportYear: schema.Report2016, Month: month(3), Miles: 40},
		},
		Events: []core.Event{
			ev(schema.Waymo, "W1", 3, ontology.TagSoftware, "software hang"),
			ev(schema.Waymo, "W1", 6, ontology.TagSensor, "sensor dropout"),
			ev(schema.Bosch, "B1", 6, ontology.TagSoftware, "crash"),
		},
		Accidents: []schema.Accident{
			{Manufacturer: schema.Waymo, Vehicle: "W1", ReportYear: schema.Report2016,
				Time: month(7).AddDate(0, 0, 3), Location: "El Camino Real",
				AVSpeedMPH: 5, OtherSpeedMPH: 10, InAutonomousMode: true},
			{Manufacturer: schema.Bosch, Vehicle: "B1", ReportYear: schema.Report2016,
				Time: month(9).AddDate(0, 0, 3), Location: "First St",
				AVSpeedMPH: 2, OtherSpeedMPH: 0},
		},
	}
}

// testBuilder builds the fixture study for any seed, counting builds.
func testBuilder(t *testing.T, calls *atomic.Int64, delay time.Duration) BuildFunc {
	db := testDB(t)
	return func(seed int64) (*Study, error) {
		if calls != nil {
			calls.Add(1)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		engine, err := query.New(db)
		if err != nil {
			return nil, err
		}
		return &Study{DB: db, Engine: engine}, nil
	}
}

// newTestServer wires a Server over the fixture builder.
func newTestServer(t *testing.T, calls *atomic.Int64, delay time.Duration, timeout time.Duration) *Server {
	t.Helper()
	s, err := New(Config{Build: testBuilder(t, calls, delay), CacheSize: 2, RequestTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the server and returns code + body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("body = %q", body)
	}
}

func TestDisengagementsRoundTrip(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/disengagements?mfr=Waymo")
	if code != http.StatusOK {
		t.Fatalf("code = %d body = %s", code, body)
	}
	var page query.EventPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 || len(page.Events) != 2 {
		t.Errorf("page = %+v", page)
	}
	if page.Events[0].Manufacturer != "Waymo" || page.Events[0].Tag != "Software" {
		t.Errorf("first event = %+v", page.Events[0])
	}

	// Filtered + paginated.
	code, body = get(t, s, "/v1/studies/1/disengagements?tag=Software&limit=1")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 || len(page.Events) != 1 || page.Limit != 1 {
		t.Errorf("paginated page = %+v", page)
	}
}

func TestAccidents(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/accidents?mfr=Bosch")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	var page AccidentPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Accidents) != 1 || page.Accidents[0].Location != "First St" {
		t.Errorf("accidents = %+v", page)
	}

	// Month range excludes the September accident.
	code, body = get(t, s, "/v1/studies/1/accidents?from=2015-01&to=2015-08")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Accidents[0].Location != "El Camino Real" {
		t.Errorf("ranged accidents = %+v", page)
	}
}

func TestGroupBy(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/groupby?by=tag")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	var res GroupByResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.By != "tag" || res.Total != 3 || len(res.Groups) != 2 {
		t.Errorf("groupby = %+v", res)
	}
	if res.Groups[0].Key != "Software" || res.Groups[0].Count != 2 {
		t.Errorf("top group = %+v", res.Groups[0])
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/metrics/reliability")
	if code != http.StatusOK {
		t.Fatalf("code = %d body = %s", code, body)
	}
	var res ReliabilityResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Manufacturers) != 2 {
		t.Fatalf("manufacturers = %+v", res.Manufacturers)
	}
	for _, m := range res.Manufacturers {
		if m.Manufacturer == "Waymo" && (m.Events != 2 || m.Accidents != 1 || m.DPM <= 0) {
			t.Errorf("Waymo metrics = %+v", m)
		}
	}
}

func TestTables(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/tables/iv")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "Table IV") {
		t.Errorf("table body = %q", body[:min(len(body), 120)])
	}
	// Upper-case roman ids resolve too.
	code, _ = get(t, s, "/v1/studies/1/tables/VI")
	if code != http.StatusOK {
		t.Errorf("tables/VI code = %d", code)
	}
}

func TestErrorPaths(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/studies/abc/disengagements", http.StatusBadRequest},
		{"/v1/studies/1/disengagements?from=bogus", http.StatusBadRequest},
		{"/v1/studies/1/disengagements?limit=nope", http.StatusBadRequest},
		{"/v1/studies/1/disengagements?offset=-4", http.StatusBadRequest},
		{"/v1/studies/1/groupby", http.StatusBadRequest},
		{"/v1/studies/1/groupby?by=bogus", http.StatusBadRequest},
		{"/v1/studies/1/accidents?to=2015-99", http.StatusBadRequest},
		{"/v1/studies/1/tables/xyz", http.StatusNotFound},
		{"/v1/studies/1/tables/ii", http.StatusNotFound},
		{"/v1/nope", http.StatusNotFound},
	} {
		code, body := get(t, s, tc.path)
		if code != tc.code {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, code, strings.TrimSpace(body), tc.code)
		}
	}
}

// TestCacheHitOnSecondRequest: the second request must not rebuild, and
// /metrics must report the hit.
func TestCacheHitOnSecondRequest(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 0, 0)
	for i := 0; i < 2; i++ {
		if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1", calls.Load())
	}
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"avserve_cache_hits_total 1",
		"avserve_cache_misses_total 1",
		"avserve_cache_builds_total 1",
		"avserve_cache_resident 1",
		`avserve_requests_total{route="/v1/studies/{seed}/disengagements",code="200"} 2`,
		`avserve_request_duration_seconds_count{route="/v1/studies/{seed}/disengagements"} 2`,
		`avserve_request_duration_seconds_bucket{route="/v1/studies/{seed}/disengagements",le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestMetricsHelpText pins the counter help lines: the build counter and
// the two reject counters must describe distinct events (a snapshot reject
// triggers a rebuild but is not a build failure — the descriptions used to
// conflate them), and every snapshot tier counter (v1 and v2) must render.
func TestMetricsHelpText(t *testing.T) {
	var buf strings.Builder
	if err := NewMetrics().WriteText(&buf, CacheStats{}); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# HELP avserve_cache_builds_total Study pipeline builds started (singleflight-coalesced), whether or not they succeed; includes rebuilds triggered by snapshot rejects.",
		"# HELP avserve_snapshot_rejects_total V1 snapshot files refused by validation (checksum, version, or truncation); each triggers a pipeline rebuild, and is not a build failure.",
		"# HELP avserve_snapshot2_rejects_total V2 snapshot files refused by validation (checksum, version, or structure); each falls back to the v1 tier or a rebuild, and is not a build failure.",
		"# HELP avserve_snapshot2_loads_total",
		"# HELP avserve_snapshot2_writes_total",
		"# HELP avserve_snapshot_loads_total",
		"# HELP avserve_snapshot_writes_total",
		"avserve_snapshot2_loads_total 0",
		"avserve_snapshot2_writes_total 0",
		"avserve_snapshot2_rejects_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics rendering missing %q", want)
		}
	}
}

// TestSingleflightOverHTTP: concurrent first requests for a seed share one
// build.
func TestSingleflightOverHTTP(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 50*time.Millisecond, 0)
	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = get(t, s, "/v1/studies/7/disengagements")
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d code = %d", i, code)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", calls.Load())
	}
}

// TestRequestTimeoutWhileBuilding: a request whose deadline fires before
// the build finishes gets 504; the build still lands in the cache.
func TestRequestTimeoutWhileBuilding(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 100*time.Millisecond, 15*time.Millisecond)
	code, body := get(t, s, "/v1/studies/1/disengagements")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d (%s), want 504", code, strings.TrimSpace(body))
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.CacheStats().Resident == 0 {
		if time.Now().After(deadline) {
			t.Fatal("build never completed in background")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ = get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Errorf("post-build code = %d", code)
	}
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1", calls.Load())
	}
}

// TestGracefulShutdownDrains: an in-flight request survives Shutdown, and
// new connections are refused afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, 150*time.Millisecond, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/studies/1/disengagements")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode}
	}()

	// Let the slow request reach the handler, then drain.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never started building")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-inflight
	if res.err != nil || res.code != http.StatusOK {
		t.Errorf("in-flight request = %+v, want drained 200", res)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("post-shutdown request succeeded; want connection error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil builder: want error")
	}
}

// TestPaginationLimitBounds is the regression test for the limit
// promotion bug: an explicit limit=0 used to be silently promoted to
// MaxListLimit (1000), handing the client asking for the smallest page the
// largest one. limit=0 is now a 400 like other bad values; only the
// over-max case is clamped.
func TestPaginationLimitBounds(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)

	code, body := get(t, s, "/v1/studies/1/disengagements?limit=0")
	if code != http.StatusBadRequest {
		t.Errorf("limit=0 code = %d (%s), want 400", code, strings.TrimSpace(body))
	}

	var page query.EventPage
	code, body = get(t, s, "/v1/studies/1/disengagements?limit=1000")
	if code != http.StatusOK {
		t.Fatalf("limit=1000 code = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Limit != MaxListLimit {
		t.Errorf("limit=1000 echoed limit = %d, want %d", page.Limit, MaxListLimit)
	}

	code, body = get(t, s, "/v1/studies/1/disengagements?limit=1001")
	if code != http.StatusOK {
		t.Fatalf("limit=1001 code = %d, want 200 with clamped limit", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Limit != MaxListLimit {
		t.Errorf("limit=1001 clamped limit = %d, want %d", page.Limit, MaxListLimit)
	}
}

// TestWriteQueryErrorClassifiesByType pins the 400-vs-500 contract on the
// error's type, not its message: typed client errors (month bounds, unknown
// columns) stay 400 even when wrapped or reworded; everything else is 500.
func TestWriteQueryErrorClassifiesByType(t *testing.T) {
	classify := func(err error) int {
		rec := httptest.NewRecorder()
		writeQueryError(rec, err)
		return rec.Code
	}
	colErr := &query.ColumnError{Column: "bogus", Err: errors.New("whatever text")}
	monErr := &query.MonthError{Field: "from", Value: "nope", Err: errors.New("parse")}
	for _, tc := range []struct {
		err  error
		want int
	}{
		{colErr, http.StatusBadRequest},
		{monErr, http.StatusBadRequest},
		{fmt.Errorf("engine: %w", colErr), http.StatusBadRequest},
		{fmt.Errorf("engine: %w", monErr), http.StatusBadRequest},
		// Message text that used to trip the substring matcher must not
		// turn a server fault into a client error.
		{errors.New(`frame corrupt near "group by" state, no column data`), http.StatusInternalServerError},
		{errors.New("boom"), http.StatusInternalServerError},
	} {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("writeQueryError(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestAccidentsGolden pins the accidents handler's exact payload across the
// refactor onto query.Engine.Accidents: same filtering, same pagination
// echo, same JSON field order, byte for byte.
func TestAccidentsGolden(t *testing.T) {
	s := newTestServer(t, nil, 0, 0)
	code, body := get(t, s, "/v1/studies/1/accidents")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	want := `{"total":2,"offset":0,"limit":50,"accidents":[` +
		`{"manufacturer":"Waymo","vehicle":"W1","reportYear":1,"time":"2015-07-04T00:00:00Z",` +
		`"location":"El Camino Real","narrative":"","avSpeedMPH":5,"otherSpeedMPH":10,` +
		`"inAutonomousMode":true,"redacted":false},` +
		`{"manufacturer":"Bosch","vehicle":"B1","reportYear":1,"time":"2015-09-04T00:00:00Z",` +
		`"location":"First St","narrative":"","avSpeedMPH":2,"otherSpeedMPH":0,` +
		`"inAutonomousMode":false,"redacted":false}]}` + "\n"
	if body != want {
		t.Errorf("accidents body:\n%q\nwant:\n%q", body, want)
	}

	// Filtered + paginated variant keeps the same envelope.
	code, body = get(t, s, "/v1/studies/1/accidents?mfr=waymo&limit=1")
	if code != http.StatusOK {
		t.Fatalf("filtered code = %d", code)
	}
	want = `{"total":1,"offset":0,"limit":1,"accidents":[` +
		`{"manufacturer":"Waymo","vehicle":"W1","reportYear":1,"time":"2015-07-04T00:00:00Z",` +
		`"location":"El Camino Real","narrative":"","avSpeedMPH":5,"otherSpeedMPH":10,` +
		`"inAutonomousMode":true,"redacted":false}]}` + "\n"
	if body != want {
		t.Errorf("filtered accidents body:\n%q\nwant:\n%q", body, want)
	}
}

// TestSnapshotTierColdStart is the v1 warm-start acceptance test: a cold
// server whose snapshot directory already holds the seed's study (in the
// legacy format only) serves it without a single pipeline build — the v2
// tier misses cleanly (no reject) and falls back to v1.
func TestSnapshotTierColdStart(t *testing.T) {
	dir := t.TempDir()
	if err := snapshot.WriteSeed(dir, 1, testDB(t)); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/v1/studies/1/disengagements?mfr=Waymo")
	if code != http.StatusOK {
		t.Fatalf("code = %d (%s)", code, strings.TrimSpace(body))
	}
	var page query.EventPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 {
		t.Errorf("snapshot-served page total = %d, want 2", page.Total)
	}
	if calls.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (snapshot tier)", calls.Load())
	}
	stats := s.CacheStats()
	if stats.Builds != 0 || stats.SnapshotLoads != 1 || stats.Snapshot2Loads != 0 || stats.Snapshot2Rejects != 0 {
		t.Errorf("stats = %+v, want Builds 0, SnapshotLoads 1, no v2 activity", stats)
	}
	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"avserve_snapshot_loads_total 1",
		"avserve_snapshot_writes_total 0",
		"avserve_snapshot_rejects_total 0",
		"avserve_snapshot2_loads_total 0",
		"avserve_snapshot2_writes_total 0",
		"avserve_snapshot2_rejects_total 0",
		"avserve_cache_builds_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSnapshot2TierColdStart is the v2 warm-start acceptance test: with a
// v2 columnar snapshot on disk, a cold server maps it and serves every
// endpoint — including the whole-table ones that force lazy database
// materialization — without a pipeline build or a v1 read.
func TestSnapshot2TierColdStart(t *testing.T) {
	dir := t.TempDir()
	if _, err := snapshot2.WriteSeed(dir, 1, testDB(t)); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s, "/v1/studies/1/disengagements?mfr=Waymo")
	if code != http.StatusOK {
		t.Fatalf("code = %d (%s)", code, strings.TrimSpace(body))
	}
	var page query.EventPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 {
		t.Errorf("v2-served page total = %d, want 2", page.Total)
	}
	// Whole-table endpoints exercise the lazy materialization path of a
	// mapped study (Study.DB is nil; Study.Database() decodes once).
	if code, body := get(t, s, "/v1/studies/1/accidents"); code != http.StatusOK {
		t.Fatalf("accidents over v2 study: code = %d (%s)", code, strings.TrimSpace(body))
	}
	if code, body := get(t, s, "/v1/studies/1/metrics/reliability"); code != http.StatusOK {
		t.Fatalf("reliability over v2 study: code = %d (%s)", code, strings.TrimSpace(body))
	}
	if code, body := get(t, s, "/v1/studies/1/tables/i"); code != http.StatusOK {
		t.Fatalf("table over v2 study: code = %d (%s)", code, strings.TrimSpace(body))
	}
	if calls.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (v2 tier)", calls.Load())
	}
	stats := s.CacheStats()
	if stats.Builds != 0 || stats.Snapshot2Loads != 1 || stats.SnapshotLoads != 0 {
		t.Errorf("stats = %+v, want Builds 0, Snapshot2Loads 1, SnapshotLoads 0", stats)
	}
	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"avserve_snapshot2_loads_total 1",
		"avserve_snapshot_loads_total 0",
		"avserve_cache_builds_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSnapshotWriteThrough: a miss with an empty snapshot directory builds
// once and persists the study as a v2 snapshot, so the next cold server
// maps it.
func TestSnapshotWriteThrough(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("first request failed")
	}
	if stats := s.CacheStats(); stats.Builds != 1 || stats.Snapshot2Writes != 1 || stats.Snapshot2Loads != 0 {
		t.Errorf("first server stats = %+v, want Builds 1, Snapshot2Writes 1", stats)
	}
	if _, err := os.Stat(snapshot2.Path(dir, 1)); err != nil {
		t.Fatalf("write-through left no v2 snapshot: %v", err)
	}

	// A second cold process over the same directory warm-starts from the
	// mapped v2 file.
	var calls2 atomic.Int64
	s2, err := New(Config{Build: testBuilder(t, &calls2, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s2, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("second server request failed")
	}
	if calls2.Load() != 0 {
		t.Errorf("second server pipeline builds = %d, want 0", calls2.Load())
	}
	if stats := s2.CacheStats(); stats.Builds != 0 || stats.Snapshot2Loads != 1 {
		t.Errorf("second server stats = %+v, want Builds 0, Snapshot2Loads 1", stats)
	}
}

// TestSnapshotWriteThroughLegacy pins the v1 compatibility knob: with the
// v2 tier disabled, write-through still produces v1 files and the next
// cold server (also v1-only) loads them.
func TestSnapshotWriteThroughLegacy(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir, DisableSnapshotV2: true})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("first request failed")
	}
	if stats := s.CacheStats(); stats.Builds != 1 || stats.SnapshotWrites != 1 || stats.Snapshot2Writes != 0 {
		t.Errorf("legacy server stats = %+v, want Builds 1, SnapshotWrites 1, no v2 writes", stats)
	}
	if _, err := os.Stat(snapshot.Path(dir, 1)); err != nil {
		t.Fatalf("legacy write-through left no v1 snapshot: %v", err)
	}
	if _, err := os.Stat(snapshot2.Path(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy server wrote a v2 snapshot: stat err = %v", err)
	}

	var calls2 atomic.Int64
	s2, err := New(Config{Build: testBuilder(t, &calls2, 0), CacheSize: 2, SnapshotDir: dir, DisableSnapshotV2: true})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s2, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("second server request failed")
	}
	if stats := s2.CacheStats(); stats.Builds != 0 || stats.SnapshotLoads != 1 {
		t.Errorf("second legacy server stats = %+v, want Builds 0, SnapshotLoads 1", stats)
	}
}

// TestSnapshotCorruptRejected: a bit-flipped v1 snapshot is refused by its
// checksum, counted as a reject, rebuilt from the pipeline, and superseded
// on disk by the write-through (now in v2 format).
func TestSnapshotCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	path := snapshot.Path(dir, 1)
	if err := snapshot.WriteSeed(dir, 1, testDB(t)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("request over corrupt snapshot failed")
	}
	if calls.Load() != 1 {
		t.Errorf("pipeline builds = %d, want 1 (corrupt snapshot rebuilt)", calls.Load())
	}
	stats := s.CacheStats()
	if stats.SnapshotRejects != 1 || stats.Builds != 1 || stats.Snapshot2Writes != 1 || stats.SnapshotLoads != 0 {
		t.Errorf("stats = %+v, want Rejects 1, Builds 1, Snapshot2Writes 1, Loads 0", stats)
	}
	// The rebuild's write-through persisted a good v2 file: open it back.
	v, err := snapshot2.OpenSeed(dir, 1)
	if err != nil {
		t.Errorf("post-rebuild v2 snapshot unreadable: %v", err)
	} else {
		v.Close()
	}
}

// TestSnapshot2CorruptFallsBackToV1 pins the full tier order: a corrupt v2
// file is rejected by validation, the intact v1 file beneath it still
// serves the study, and no pipeline build runs.
func TestSnapshot2CorruptFallsBackToV1(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t)
	if err := snapshot.WriteSeed(dir, 1, db); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot2.WriteSeed(dir, 1, db); err != nil {
		t.Fatal(err)
	}
	path := snapshot2.Path(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	s, err := New(Config{Build: testBuilder(t, &calls, 0), CacheSize: 2, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("request over corrupt v2 snapshot failed")
	}
	if calls.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (v1 fallback)", calls.Load())
	}
	stats := s.CacheStats()
	if stats.Snapshot2Rejects != 1 || stats.SnapshotLoads != 1 || stats.Builds != 0 {
		t.Errorf("stats = %+v, want Snapshot2Rejects 1, SnapshotLoads 1, Builds 0", stats)
	}
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"avserve_snapshot2_rejects_total 1",
		"avserve_snapshot_loads_total 1",
		"avserve_cache_builds_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
