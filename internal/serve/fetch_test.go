package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"avfda/internal/snapshot2"
)

// TestPeerSnapshotFetch is the snapshot-distribution acceptance test: a
// backend that misses locally pulls the seed's v2 snapshot from a peer
// and serves it with zero pipeline builds — the warm-start path a
// restarted shard takes behind the proxy.
func TestPeerSnapshotFetch(t *testing.T) {
	var peerBuilds atomic.Int64
	peer := newSnapshotServer(t, &peerBuilds)
	peerSrv := httptest.NewServer(peer)
	defer peerSrv.Close()

	var builds atomic.Int64
	s, err := New(Config{
		Build:         testBuilder(t, &builds, 0),
		CacheSize:     2,
		SnapshotDir:   t.TempDir(),
		SnapshotPeers: []string{peerSrv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := getFull(t, s, "/v1/studies/1/disengagements?mfr=Waymo", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d (%s)", rec.Code, rec.Body.String())
	}
	if builds.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (peer fetch)", builds.Load())
	}
	stats := s.CacheStats()
	// The load is attributed to the fetch tier, not double-counted as a
	// local v2 load.
	if stats.SnapshotFetches != 1 || stats.Builds != 0 || stats.Snapshot2Loads != 0 {
		t.Errorf("stats = %+v, want SnapshotFetches 1 and nothing else", stats)
	}
	// The peer never built either: it was seeded from disk.
	if peerBuilds.Load() != 0 {
		t.Errorf("peer pipeline builds = %d, want 0", peerBuilds.Load())
	}
	// The fetched snapshot landed locally, so the next cold process over
	// the same directory doesn't even need the peer.
	if _, body := get(t, s, "/metrics"); !strings.Contains(body, "avserve_snapshot_fetches_total 1") {
		t.Errorf("/metrics missing fetch counter\n%s", body)
	}

	// And the fetched study is content-identical: same ETag as the peer's.
	peerRec := getFull(t, peer, "/v1/studies/1/disengagements?mfr=Waymo", nil)
	if got, want := rec.Header().Get("ETag"), peerRec.Header().Get("ETag"); got != want || got == "" {
		t.Errorf("fetched ETag = %q, peer ETag = %q: want identical non-empty", got, want)
	}
	if rec.Body.String() != peerRec.Body.String() {
		t.Error("fetched study body differs from the peer's")
	}
}

// TestPeerFetchMissFallsBack: a peer that doesn't hold the seed is a
// normal miss — the backend rebuilds and counts the probe as a miss, not
// an error.
func TestPeerFetchMissFallsBack(t *testing.T) {
	peer := newTestServer(t, nil, 0, 0) // no snapshot dir: always 404s
	peerSrv := httptest.NewServer(peer)
	defer peerSrv.Close()

	var builds atomic.Int64
	s, err := New(Config{
		Build:         testBuilder(t, &builds, 0),
		CacheSize:     2,
		SnapshotDir:   t.TempDir(),
		SnapshotPeers: []string{peerSrv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, s, "/v1/studies/5/disengagements"); code != http.StatusOK {
		t.Fatalf("code = %d (%s)", code, body)
	}
	if builds.Load() != 1 {
		t.Errorf("pipeline builds = %d, want 1", builds.Load())
	}
	stats := s.CacheStats()
	if stats.SnapshotFetchMisses != 1 || stats.SnapshotFetches != 0 || stats.SnapshotFetchErrors != 0 {
		t.Errorf("stats = %+v, want exactly one fetch miss", stats)
	}
}

// TestPeerFetchCorruptRejected: a peer serving garbage (or a truncated
// transfer) fails CRC re-verification before anything touches disk; the
// backend rebuilds and nothing poisoned the snapshot directory.
func TestPeerFetchCorruptRejected(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write([]byte("AVSNAP2\x00 definitely not a valid snapshot"))
	}))
	defer evil.Close()

	dir := t.TempDir()
	var builds atomic.Int64
	s, err := New(Config{
		Build:         testBuilder(t, &builds, 0),
		CacheSize:     2,
		SnapshotDir:   dir,
		SnapshotPeers: []string{evil.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, s, "/v1/studies/3/disengagements"); code != http.StatusOK {
		t.Fatalf("code = %d (%s)", code, body)
	}
	if builds.Load() != 1 {
		t.Errorf("pipeline builds = %d, want 1 (corrupt fetch rejected)", builds.Load())
	}
	if stats := s.CacheStats(); stats.SnapshotFetchErrors != 1 || stats.SnapshotFetches != 0 {
		t.Errorf("stats = %+v, want exactly one fetch error", stats)
	}
}

// TestPeerFetchSecondPeerWins: the fetcher walks the peer list — a dead
// first peer doesn't mask a second peer that holds the seed.
func TestPeerFetchSecondPeerWins(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on
	peer := newSnapshotServer(t, nil)
	peerSrv := httptest.NewServer(peer)
	defer peerSrv.Close()

	var builds atomic.Int64
	s, err := New(Config{
		Build:         testBuilder(t, &builds, 0),
		CacheSize:     2,
		SnapshotDir:   t.TempDir(),
		SnapshotPeers: []string{dead.URL, peerSrv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, s, "/v1/studies/1/disengagements"); code != http.StatusOK {
		t.Fatalf("code = %d (%s)", code, body)
	}
	if builds.Load() != 0 {
		t.Errorf("pipeline builds = %d, want 0 (second peer held the seed)", builds.Load())
	}
	if stats := s.CacheStats(); stats.SnapshotFetches != 1 {
		t.Errorf("stats = %+v, want SnapshotFetches 1", stats)
	}
}

// TestSnapshotPeersRequireV2Tier: the pull-through tier lands v2 bytes,
// so configuring peers without a v2 snapshot directory is a config error,
// not a silent no-op.
func TestSnapshotPeersRequireV2Tier(t *testing.T) {
	if _, err := New(Config{Build: testBuilder(t, nil, 0), SnapshotPeers: []string{"http://peer"}}); err == nil {
		t.Error("peers without a snapshot dir: want error")
	}
	if _, err := New(Config{
		Build: testBuilder(t, nil, 0), SnapshotDir: t.TempDir(),
		DisableSnapshotV2: true, SnapshotPeers: []string{"http://peer"},
	}); err == nil {
		t.Error("peers with the v2 tier disabled: want error")
	}
}

// TestFetcherInstallsAtomically: the landed file is a complete, valid
// snapshot (WriteSeedBytes goes through a temp file + rename), and a
// failed probe leaves nothing behind.
func TestFetcherInstallsAtomically(t *testing.T) {
	peer := newSnapshotServer(t, nil)
	peerSrv := httptest.NewServer(peer)
	defer peerSrv.Close()

	dir := t.TempDir()
	f := newSnapshotFetcher([]string{peerSrv.URL}, 0)
	if err := f.fetch(dir, 1); err != nil {
		t.Fatal(err)
	}
	v, err := snapshot2.OpenSeed(dir, 1)
	if err != nil {
		t.Fatalf("landed snapshot unreadable: %v", err)
	}
	v.Close()

	if err := f.fetch(dir, 42); !errors.Is(err, errPeerMiss) {
		t.Fatalf("absent seed: err = %v, want errPeerMiss", err)
	}
	if _, err := os.Stat(snapshot2.Path(dir, 42)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("miss left a file behind: stat err = %v", err)
	}
}
