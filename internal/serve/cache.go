package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"avfda/internal/core"
	"avfda/internal/query"
)

// Study is one cached, fully built study: the consolidated failure
// database plus its query engine. Both are immutable after construction,
// so a cached study is served to any number of concurrent requests.
type Study struct {
	DB     *core.DB
	Engine *query.Engine
}

// BuildFunc builds the study for one seed. Builds are expensive (a full
// Stage I-IV pipeline run), which is exactly why the cache exists.
type BuildFunc func(seed int64) (*Study, error)

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts Gets answered from a resident study.
	Hits int64
	// Misses counts Gets that found no resident study (whether they
	// started a build or joined one already in flight).
	Misses int64
	// Builds counts builds started (each coalesces any number of
	// concurrent Gets for the same seed).
	Builds int64
	// Evictions counts studies dropped to respect the capacity.
	Evictions int64
	// Resident is the number of studies currently cached.
	Resident int
}

// Cache is a seed-keyed LRU of built studies. Concurrent Gets for an
// absent seed are coalesced singleflight-style: exactly one build runs and
// every waiter receives its result. A caller whose context expires stops
// waiting, but the build keeps running and populates the cache for later
// requests — abandoning a half-done pipeline run would only force the next
// caller to pay for it again.
type Cache struct {
	build BuildFunc
	cap   int

	mu      sync.Mutex
	order   *list.List              // of *cacheEntry, most recently used first
	entries map[int64]*list.Element // resident studies
	flights map[int64]*flight       // in-progress builds
	stats   CacheStats
}

// cacheEntry is one resident study.
type cacheEntry struct {
	seed  int64
	study *Study
}

// flight is one in-progress build; study/err are set before done closes.
type flight struct {
	done  chan struct{}
	study *Study
	err   error
}

// NewCache creates a cache holding at most capacity studies (minimum 1).
func NewCache(build BuildFunc, capacity int) (*Cache, error) {
	if build == nil {
		return nil, errors.New("serve: nil build function")
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		build:   build,
		cap:     capacity,
		order:   list.New(),
		entries: make(map[int64]*list.Element),
		flights: make(map[int64]*flight),
	}, nil
}

// Get returns the study for seed, building it on first use. It blocks
// until the study is ready or ctx expires; on expiry the error is the
// context's and the background build continues.
func (c *Cache) Get(ctx context.Context, seed int64) (*Study, error) {
	c.mu.Lock()
	if el, ok := c.entries[seed]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		study := el.Value.(*cacheEntry).study
		c.mu.Unlock()
		return study, nil
	}
	c.stats.Misses++
	fl, inFlight := c.flights[seed]
	if !inFlight {
		fl = &flight{done: make(chan struct{})}
		c.flights[seed] = fl
		c.stats.Builds++
		go c.run(seed, fl)
	}
	c.mu.Unlock()

	select {
	case <-fl.done:
		return fl.study, fl.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run executes one build and publishes its result.
func (c *Cache) run(seed int64, fl *flight) {
	study, err := c.build(seed)
	fl.study, fl.err = study, err

	c.mu.Lock()
	delete(c.flights, seed)
	if err == nil {
		el := c.order.PushFront(&cacheEntry{seed: seed, study: study})
		c.entries[seed] = el
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).seed)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = c.order.Len()
	return s
}
