package serve

import (
	"container/list"
	"context"
	"errors"
	"io/fs"
	"sync"
	"time"

	"avfda/internal/core"
	"avfda/internal/query"
	"avfda/internal/snapshot"
	"avfda/internal/snapshot2"
)

// Study is one cached, fully built study: the consolidated failure
// database plus its query engine. Both are immutable after construction,
// so a cached study is served to any number of concurrent requests.
type Study struct {
	// DB is the in-heap database for built and v1-loaded studies; it is
	// nil for studies served from a mapped v2 snapshot, whose engine
	// materializes tables lazily. Callers that need the database should go
	// through Database.
	DB     *core.DB
	Engine *query.Engine
	// ETag is the study's content fingerprint — the CRC-32C of its v2
	// snapshot payload, lower-case hex, no quotes — set when the study was
	// mapped from a v2 snapshot or written through as one. Deterministic
	// encoding makes it identical on every node serving the same seed, so
	// the HTTP layer derives ETag headers from it. Empty when no v2
	// snapshot exists for the study (v1 loads, snapshotless builds): those
	// responses simply carry no validator.
	ETag string
}

// Database returns the study's failure database, materializing it from
// the engine's backing snapshot when the study was loaded as a mapped v2
// view (whole-table consumers — the report tables — pay that cost once).
func (s *Study) Database() (*core.DB, error) {
	if s.DB != nil {
		return s.DB, nil
	}
	return s.Engine.Database()
}

// BuildFunc builds the study for one seed. Builds are expensive (a full
// Stage I-IV pipeline run), which is exactly why the cache exists.
type BuildFunc func(seed int64) (*Study, error)

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts Gets answered from a resident study.
	Hits int64
	// Misses counts Gets that found no resident study (whether they
	// started a build or joined one already in flight).
	Misses int64
	// Builds counts pipeline builds started (each coalesces any number of
	// concurrent Gets for the same seed). A Get served from the snapshot
	// tier does not count as a build.
	Builds int64
	// Evictions counts studies dropped to respect the capacity.
	Evictions int64
	// Snapshot2Loads counts misses satisfied by mapping a v2 columnar
	// snapshot — the cheapest possible path, no deserialization at all.
	Snapshot2Loads int64
	// Snapshot2Writes counts v2 snapshots written through after a
	// successful pipeline build.
	Snapshot2Writes int64
	// Snapshot2Rejects counts v2 snapshot files that existed but were
	// refused (version mismatch, checksum failure, truncation, structural
	// corruption) and fell back to the v1 tier or a rebuild.
	Snapshot2Rejects int64
	// SnapshotLoads counts misses satisfied from a legacy v1 snapshot
	// (deserializing load) after the v2 tier missed.
	SnapshotLoads int64
	// SnapshotWrites counts v1 snapshots written through after a
	// successful pipeline build (only when the v2 tier is disabled).
	SnapshotWrites int64
	// SnapshotRejects counts v1 snapshot files that existed but were
	// refused (version mismatch, checksum failure, truncation) and
	// triggered a rebuild instead.
	SnapshotRejects int64
	// SnapshotFetches counts misses satisfied by pulling the seed's v2
	// snapshot from a peer (CRC re-verified on receipt) instead of paying
	// a pipeline rebuild.
	SnapshotFetches int64
	// SnapshotFetchMisses counts peer probes that answered 404 — the peer
	// simply doesn't hold the seed either; not an error.
	SnapshotFetchMisses int64
	// SnapshotFetchErrors counts peer probes that failed (transport error,
	// non-200/404 status, or a fetched file that flunked CRC/structure
	// validation on receipt).
	SnapshotFetchErrors int64
	// Resident is the number of studies currently cached.
	Resident int
}

// Cache is a seed-keyed LRU of built studies with an optional second tier:
// a directory of persisted study snapshots. A miss walks the tiers from
// cheapest to dearest — map a v2 columnar snapshot (microseconds, zero
// deserialization), load a legacy v1 snapshot (milliseconds), run the
// pipeline (hundreds of milliseconds) — and a successful build is written
// through (as v2 when the tier is enabled) so the next cold process or
// post-eviction Get warm-starts. Corrupt or stale-version snapshots are
// never trusted: they fail the typed checksum/version/format checks in
// their package, count as rejects for their tier, and are overwritten by
// the rebuild's write-through.
//
// Concurrent Gets for an absent seed are coalesced singleflight-style:
// exactly one load-or-build runs and every waiter receives its result. A
// caller whose context expires stops waiting, but the work keeps running
// and populates the cache for later requests — abandoning a half-done
// pipeline run would only force the next caller to pay for it again.
type Cache struct {
	build   BuildFunc
	cap     int
	snapDir string           // "" disables the snapshot tier
	v2      bool             // serve and write v2 snapshots ahead of the v1 tier
	fetcher *snapshotFetcher // nil disables the peer pull-through tier

	mu      sync.Mutex
	order   *list.List              // of *cacheEntry, most recently used first
	entries map[int64]*list.Element // resident studies
	flights map[int64]*flight       // in-progress builds
	stats   CacheStats
}

// cacheEntry is one resident study.
type cacheEntry struct {
	seed  int64
	study *Study
}

// flight is one in-progress build; study/err are set before done closes.
type flight struct {
	done  chan struct{}
	study *Study
	err   error
}

// NewCache creates a cache holding at most capacity studies (minimum 1),
// with the snapshot tier disabled.
func NewCache(build BuildFunc, capacity int) (*Cache, error) {
	return NewSnapshotCache(build, capacity, "")
}

// NewSnapshotCache creates a cache whose misses go through the snapshot
// directory before the pipeline build, with the v2 (mmap) tier enabled.
// An empty dir disables snapshots entirely.
func NewSnapshotCache(build BuildFunc, capacity int, dir string) (*Cache, error) {
	return NewTieredCache(build, capacity, dir, true)
}

// NewTieredCache creates a cache with explicit control over the v2 tier:
// v2 false restricts the snapshot directory to the legacy v1 format (reads
// and write-through), for operators staging the v2 rollout.
func NewTieredCache(build BuildFunc, capacity int, dir string, v2 bool) (*Cache, error) {
	if build == nil {
		return nil, errors.New("serve: nil build function")
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		build:   build,
		cap:     capacity,
		snapDir: dir,
		v2:      v2,
		order:   list.New(),
		entries: make(map[int64]*list.Element),
		flights: make(map[int64]*flight),
	}, nil
}

// SetSnapshotPeers enables the peer pull-through tier: a miss that finds
// no local snapshot asks each peer base URL in order for the seed's v2
// snapshot before falling back to a pipeline build. It requires the v2
// snapshot tier (fetched files are landed in snapDir and then mapped).
// timeout bounds each peer probe; zero picks a sane default. Call before
// serving traffic; the peer list is fixed afterwards.
func (c *Cache) SetSnapshotPeers(peers []string, timeout time.Duration) error {
	if len(peers) == 0 {
		return nil
	}
	if c.snapDir == "" || !c.v2 {
		return errors.New("serve: snapshot peers require the v2 snapshot tier")
	}
	c.fetcher = newSnapshotFetcher(peers, timeout)
	return nil
}

// Get returns the study for seed, building it on first use. It blocks
// until the study is ready or ctx expires; on expiry the error is the
// context's and the background build continues.
func (c *Cache) Get(ctx context.Context, seed int64) (*Study, error) {
	c.mu.Lock()
	if el, ok := c.entries[seed]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		study := el.Value.(*cacheEntry).study
		c.mu.Unlock()
		return study, nil
	}
	c.stats.Misses++
	fl, inFlight := c.flights[seed]
	if !inFlight {
		fl = &flight{done: make(chan struct{})}
		c.flights[seed] = fl
		go c.run(seed, fl)
	}
	c.mu.Unlock()

	select {
	case <-fl.done:
		return fl.study, fl.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run executes one load-or-build and publishes its result.
func (c *Cache) run(seed int64, fl *flight) {
	study, err := c.acquire(seed)
	fl.study, fl.err = study, err

	c.mu.Lock()
	delete(c.flights, seed)
	if err == nil {
		el := c.order.PushFront(&cacheEntry{seed: seed, study: study})
		c.entries[seed] = el
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).seed)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// acquire produces the study for one coalesced miss: v2 snapshot tier,
// then v1 snapshot tier, then the pipeline build, with write-through after
// a successful build.
func (c *Cache) acquire(seed int64) (*Study, error) {
	if c.snapDir != "" {
		if c.v2 {
			study, err := c.loadSnapshot2(seed)
			switch {
			case err == nil:
				c.bump(&c.stats.Snapshot2Loads)
				return study, nil
			case errors.Is(err, fs.ErrNotExist):
				// Plain tier miss: no v2 file for this seed yet.
			default:
				// Present but unusable: never trust it, fall through to
				// the v1 tier (a pre-migration file may still be good).
				c.bump(&c.stats.Snapshot2Rejects)
			}
		}
		study, err := c.loadSnapshot(seed)
		switch {
		case err == nil:
			c.bump(&c.stats.SnapshotLoads)
			return study, nil
		case errors.Is(err, fs.ErrNotExist):
			// Plain tier miss: nothing persisted for this seed yet.
		default:
			// Present but unusable (bad checksum, old version, truncated,
			// or an engine rebuild failure): never trust it, rebuild.
			c.bump(&c.stats.SnapshotRejects)
		}
		if study, ok := c.fetchFromPeer(seed); ok {
			return study, nil
		}
	}
	c.bump(&c.stats.Builds)
	study, err := c.build(seed)
	if err != nil {
		return nil, err
	}
	if c.snapDir != "" && study != nil && study.DB != nil {
		// Write-through replaces whatever was on disk (including a
		// just-rejected file) via an atomic rename; a write failure only
		// costs the next cold process a rebuild, so it is not fatal. With
		// the v2 tier on, the v2 format is the write-through target — v1
		// files are read for compatibility but no longer produced here.
		if c.v2 {
			if crc, err := snapshot2.WriteSeed(c.snapDir, seed, study.DB); err == nil {
				c.bump(&c.stats.Snapshot2Writes)
				// The write-through fixes the study's content fingerprint,
				// so the freshly built study can carry a validator too.
				study.ETag = etagFromCRC(crc)
			}
		} else {
			if err := snapshot.WriteSeed(c.snapDir, seed, study.DB); err == nil {
				c.bump(&c.stats.SnapshotWrites)
			}
		}
	}
	return study, nil
}

// fetchFromPeer is the pull-through tier: with peers configured, ask each
// in turn for the seed's v2 snapshot, land the verified bytes in snapDir,
// and serve them through the normal mapped path. A false return means the
// caller should fall through to the pipeline build — peers that miss or
// misbehave never block a rebuild, they only count against their stats.
func (c *Cache) fetchFromPeer(seed int64) (*Study, bool) {
	if c.fetcher == nil {
		return nil, false
	}
	switch err := c.fetcher.fetch(c.snapDir, seed); {
	case err == nil:
	case errors.Is(err, errPeerMiss):
		c.bump(&c.stats.SnapshotFetchMisses)
		return nil, false
	default:
		c.bump(&c.stats.SnapshotFetchErrors)
		return nil, false
	}
	study, err := c.loadSnapshot2(seed)
	if err != nil {
		// The bytes validated before landing, so this is a local problem
		// (disk full mid-install, concurrent tampering); rebuild.
		c.bump(&c.stats.SnapshotFetchErrors)
		return nil, false
	}
	c.bump(&c.stats.SnapshotFetches)
	return study, true
}

// loadSnapshot reads the persisted v1 database for seed and rebuilds its
// query indexes, yielding a servable study.
func (c *Cache) loadSnapshot(seed int64) (*Study, error) {
	db, err := snapshot.ReadSeed(c.snapDir, seed)
	if err != nil {
		return nil, err
	}
	engine, err := query.New(db)
	if err != nil {
		return nil, err
	}
	return &Study{DB: db, Engine: engine}, nil
}

// loadSnapshot2 maps the v2 snapshot for seed and serves queries straight
// off the mapping: no deserialization, no DB materialization until an
// endpoint actually needs whole tables. The view is validated end-to-end
// at open, so a success here is as trustworthy as a fresh build.
//
// Release path: OpenSeed retains no file descriptor (the fd is closed as
// soon as the mapping exists), so an evicted study pins only its mapping.
// The mapping is torn down by the view's finalizer once the last request
// referencing the engine drops it — eviction under churn is bounded by
// cache capacity plus in-flight requests, never by how many seeds have
// ever been served. TestEvictionChurnMappedViews pins this.
func (c *Cache) loadSnapshot2(seed int64) (*Study, error) {
	v, err := snapshot2.OpenSeed(c.snapDir, seed)
	if err != nil {
		return nil, err
	}
	engine, err := query.NewFromSource(v, v.Database)
	if err != nil {
		v.Close()
		return nil, err
	}
	return &Study{Engine: engine, ETag: etagFromCRC(v.Checksum())}, nil
}

// bump increments one stats counter under the cache lock.
func (c *Cache) bump(counter *int64) {
	c.mu.Lock()
	*counter++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = c.order.Len()
	return s
}
