package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildErr is a typed build failure carrying which builder invocation
// produced it, so tests can assert error freshness with errors.As instead
// of matching message text.
type buildErr struct{ call int64 }

func (e *buildErr) Error() string { return fmt.Sprintf("boom %d", e.call) }

// countingBuilder returns a BuildFunc that counts invocations and
// optionally sleeps to widen race windows.
func countingBuilder(calls *atomic.Int64, delay time.Duration) BuildFunc {
	return func(seed int64) (*Study, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return &Study{}, nil
	}
}

func TestCacheHitSecondGet(t *testing.T) {
	var calls atomic.Int64
	c, err := NewCache(countingBuilder(&calls, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := c.Get(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Get(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second Get returned a different study")
	}
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1", calls.Load())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Builds != 1 || s.Resident != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var calls atomic.Int64
	c, err := NewCache(countingBuilder(&calls, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} { // 3 evicts 1
		if _, err := c.Get(ctx, seed); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Resident != 2 {
		t.Fatalf("after fill: stats = %+v", s)
	}
	// 2 and 3 are resident; 1 must rebuild.
	if _, err := c.Get(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("builds = %d, want 4 (three fills + one rebuild)", calls.Load())
	}
	// Rebuilding 1 evicted the least recently used seed (3, since 2 was
	// touched after the fill).
	if _, err := c.Get(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("2 was evicted; builds = %d", calls.Load())
	}
}

// TestCacheSingleflight is the singleflight observation required by the
// acceptance criteria: concurrent first requests build the study once.
func TestCacheSingleflight(t *testing.T) {
	var calls atomic.Int64
	c, err := NewCache(countingBuilder(&calls, 50*time.Millisecond), 2)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	studies := make([]*Study, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Get(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			studies[i] = s
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", calls.Load())
	}
	for i := 1; i < waiters; i++ {
		if studies[i] != studies[0] {
			t.Fatalf("waiter %d got a different study", i)
		}
	}
}

// TestCacheContextExpiry: a caller that gives up keeps the build alive,
// and the finished build serves later requests.
func TestCacheContextExpiry(t *testing.T) {
	var calls atomic.Int64
	c, err := NewCache(countingBuilder(&calls, 80*time.Millisecond), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Get error = %v, want deadline exceeded", err)
	}
	// The abandoned build completes in the background and is cached.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s := c.Stats(); s.Resident == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background build never landed in the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Get(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("builds = %d, want 1", calls.Load())
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	c, err := NewCache(func(seed int64) (*Study, error) {
		calls.Add(1)
		return nil, &buildErr{call: calls.Load()}
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Get(ctx, 1); err == nil {
		t.Fatal("want build error")
	}
	_, err = c.Get(ctx, 1)
	var be *buildErr
	if !errors.As(err, &be) || be.call != 2 {
		t.Fatalf("second Get error = %v, want a fresh build attempt (call 2)", err)
	}
	if s := c.Stats(); s.Resident != 0 || s.Builds != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(nil, 1); err == nil {
		t.Error("nil builder: want error")
	}
	c, err := NewCache(countingBuilder(new(atomic.Int64), 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.cap != 1 {
		t.Errorf("capacity floor = %d, want 1", c.cap)
	}
}
