package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every built-in mix must load by name and validate.
func TestBuiltinMixesValid(t *testing.T) {
	names := BuiltinMixNames()
	if len(names) == 0 {
		t.Fatal("no built-in mixes")
	}
	for _, name := range names {
		m, err := LoadMix(name)
		if err != nil {
			t.Errorf("LoadMix(%q): %v", name, err)
			continue
		}
		if m.Name != name || len(m.Ops) == 0 {
			t.Errorf("LoadMix(%q) = %+v", name, m)
		}
		for _, op := range m.Ops {
			if !strings.Contains(op.Path, "{seed}") {
				t.Errorf("mix %q op %q has no {seed} placeholder: %q", name, op.Name, op.Path)
			}
		}
	}
}

// A typo'd bare mix name yields a typed MixError listing the built-ins,
// not a file-not-found.
func TestLoadMixUnknownName(t *testing.T) {
	_, err := LoadMix("defualt")
	var merr *MixError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want *MixError", err)
	}
	if !strings.Contains(merr.Reason, "default") {
		t.Errorf("reason %q does not list built-in names", merr.Reason)
	}
}

// Mixes load from JSON files, and invalid entries are rejected with typed
// errors naming the offending op.
func TestLoadMixFromFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "mix.json")
	if err := os.WriteFile(good, []byte(`[
		{"name": "only", "weight": 2.5, "path": "/v1/studies/{seed}/groupby?by=tag"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMix(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ops) != 1 || m.Ops[0].Name != "only" || m.TotalWeight() != 2.5 {
		t.Fatalf("loaded mix = %+v", m)
	}

	for name, body := range map[string]string{
		"bad-json.json":    `{"not": "an array"}`,
		"zero-weight.json": `[{"name": "x", "weight": 0, "path": "/y"}]`,
		"rel-path.json":    `[{"name": "x", "weight": 1, "path": "y"}]`,
		"no-name.json":     `[{"weight": 1, "path": "/y"}]`,
		"empty.json":       `[]`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadMix(p)
		var merr *MixError
		if !errors.As(err, &merr) {
			t.Errorf("%s: err = %v, want *MixError", name, err)
		}
	}

	if _, err := LoadMix(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

// Describe (the -print-mix output) shows every op with its normalized
// percentage share summing to ~100.
func TestMixDescribe(t *testing.T) {
	m, err := LoadMix("default")
	if err != nil {
		t.Fatal(err)
	}
	out := m.Describe()
	if !strings.Contains(out, "mix default: 12 operations") {
		t.Errorf("header missing: %q", out)
	}
	for _, op := range m.Ops {
		if !strings.Contains(out, op.Name) || !strings.Contains(out, op.Path) {
			t.Errorf("op %q missing from describe output", op.Name)
		}
	}
}

// Weighted pick converges to the configured proportions.
func TestMixPickProportions(t *testing.T) {
	m := Mix{Name: "t", Ops: []Op{
		{Name: "a", Weight: 1, Path: "/a"},
		{Name: "b", Weight: 3, Path: "/b"},
	}}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 2)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	frac := float64(counts[1]) / n
	if frac < 0.73 || frac > 0.77 {
		t.Errorf("op b picked %.3f of the time, want ~0.75", frac)
	}
}

// resolvePath substitutes {seed} everywhere and {offset} with a multiple
// of 50 below 1000.
func TestResolvePath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := resolvePath("/v1/studies/{seed}/x?seed={seed}", 42, rng)
	if got != "/v1/studies/42/x?seed=42" {
		t.Errorf("resolvePath = %q", got)
	}
	for i := 0; i < 100; i++ {
		p := resolvePath("/x?offset={offset}", 1, rng)
		var off int
		if _, err := fmt.Sscanf(p, "/x?offset=%d", &off); err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		if off%50 != 0 || off < 0 || off >= 1000 {
			t.Fatalf("offset %d out of contract", off)
		}
	}
}
