// Package loadgen is a stdlib-only HTTP load generator for the avserve
// API (system #22 in DESIGN.md §2): it drives a configurable, weighted mix
// of realistic study queries — filtered listings, group-bys, reliability
// metrics, pagination, rendered tables — against a base URL and reports
// throughput, error counts, and an HDR-histogram latency profile.
//
// Two driving disciplines are supported:
//
//   - closed-loop (Rate == 0): Concurrency workers issue requests
//     back-to-back, measuring service latency under full pressure;
//   - open-loop (Rate > 0): workers issue on a fixed schedule targeting
//     Rate requests/second in aggregate, and each request's latency is
//     measured from its *scheduled* start, so queueing delay when the
//     server falls behind is charged to the server (no coordinated
//     omission).
//
// Seeds rotate between a warm pool (cache hits) and, every ColdEvery-th
// request, a fresh never-seen seed (cold study build / snapshot load), so
// a run exercises both tiers of the serving cache.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080"
	// (required).
	BaseURL string
	// Mix is the weighted operation mix (required; see LoadMix).
	Mix Mix
	// Seeds is the warm study-seed pool; requests draw uniformly from it.
	// Default [1].
	Seeds []int64
	// ColdEvery, when > 0, makes every ColdEvery-th request target a fresh
	// never-before-used seed starting at ColdSeedStart, forcing a cold
	// study build or snapshot load. 0 disables cold traffic.
	ColdEvery int
	// ColdSeedStart is the first cold seed. Default 1_000_000, far from
	// any warm pool.
	ColdSeedStart int64
	// ConditionalEvery, when > 0, makes every ConditionalEvery-th request
	// a conditional replay: the worker re-issues a URL it has already seen
	// with If-None-Match set to the ETag that response carried, exercising
	// the server's 304 short-circuit. A 304 counts as a success (and in
	// Report.NotModified), not an error. 0 disables conditional traffic.
	ConditionalEvery int
	// Concurrency is the worker count (and, closed-loop, the number of
	// outstanding requests). Default 8.
	Concurrency int
	// Rate is the aggregate open-loop target in requests/second; 0 selects
	// closed-loop driving.
	Rate float64
	// Duration bounds the run. Default 10s. In-flight requests at the
	// deadline are allowed to complete and are counted.
	Duration time.Duration
	// MaxRequests, when > 0, stops the run after that many requests even
	// if Duration has not elapsed.
	MaxRequests int64
	// Timeout is the per-request client timeout. Default 10s.
	Timeout time.Duration
	// Seed drives the generator's own randomness (mix choices, warm-seed
	// rotation, pagination offsets); equal seeds give the same request
	// schedule. Default 1.
	Seed int64
	// Client overrides the HTTP client (tests); nil builds one with
	// Timeout and per-host connection reuse sized to Concurrency.
	Client *http.Client
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1}
	}
	if c.ColdSeedStart == 0 {
		c.ColdSeedStart = 1_000_000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Report is the result of one run. The JSON encoding is a stable schema
// (Schema names its version) consumed by cmd/benchjson, CI artifacts, and
// the BENCH_* perf trajectory.
type Report struct {
	Schema          string           `json:"schema"`
	BaseURL         string           `json:"baseURL"`
	Mix             string           `json:"mix"`
	Mode            string           `json:"mode"`
	Concurrency     int              `json:"concurrency"`
	TargetRPS       float64          `json:"targetRPS,omitempty"`
	DurationSeconds float64          `json:"durationSeconds"`
	Requests        int64            `json:"requests"`
	RPS             float64          `json:"rps"`
	ColdRequests    int64            `json:"coldRequests"`
	NotModified     int64            `json:"notModified,omitempty"`
	Errors          int64            `json:"errors"`
	TransportErrors int64            `json:"transportErrors"`
	StatusNon2xx    map[string]int64 `json:"statusNon2xx,omitempty"`
	Latency         LatencyStats     `json:"latency"`
	Ops             []OpStats        `json:"ops"`
}

// LatencyStats summarizes the merged latency histogram in milliseconds.
type LatencyStats struct {
	P50ms  float64 `json:"p50ms"`
	P90ms  float64 `json:"p90ms"`
	P99ms  float64 `json:"p99ms"`
	P999ms float64 `json:"p999ms"`
	MeanMs float64 `json:"meanMs"`
	MaxMs  float64 `json:"maxMs"`
}

// OpStats is the per-operation breakdown, in mix order.
type OpStats struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P50ms    float64 `json:"p50ms"`
	P99ms    float64 `json:"p99ms"`
}

// ReportSchema is the Report JSON schema identifier.
const ReportSchema = "avload/1"

// workerStats is one worker's private shard of counters and histograms;
// shards are merged after every worker has exited, so no locks are taken
// on the request path.
type workerStats struct {
	hist        Histogram
	ops         []Histogram
	opReqs      []int64
	opErrs      []int64
	non2xx      map[int]int64
	transport   int64
	requests    int64
	cold        int64
	notModified int64
}

func newWorkerStats(nOps int) *workerStats {
	return &workerStats{
		ops:    make([]Histogram, nOps),
		opReqs: make([]int64, nOps),
		opErrs: make([]int64, nOps),
		non2xx: make(map[int]int64),
	}
}

// Run executes one load-generation run and returns its report. ctx cancels
// the run early (stopping new requests; in-flight ones complete under the
// client timeout). Run only fails on configuration errors — request
// failures are data, reported in Errors/TransportErrors/StatusNon2xx.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
			},
		}
	}

	var issued atomic.Int64
	var coldIdx atomic.Int64
	shards := make([]*workerStats, cfg.Concurrency)
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		shards[w] = newWorkerStats(len(cfg.Mix.Ops))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := &runtimeState{
				cfg:      cfg,
				base:     base,
				client:   client,
				issued:   &issued,
				coldIdx:  &coldIdx,
				deadline: deadline,
				rng:      rand.New(rand.NewSource(workerSeed(cfg.Seed, w))),
				stats:    shards[w],
				etags:    make(map[string]string),
			}
			if cfg.Rate > 0 {
				rt.openLoop(ctx, w, start)
			} else {
				rt.closedLoop(ctx)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return buildReport(cfg, shards, elapsed), nil
}

// workerSeed derives worker w's RNG seed from the run seed: a golden-ratio
// odd-multiplier spread so nearby run seeds still give workers decorrelated
// streams.
func workerSeed(seed int64, w int) int64 {
	const spread = 0x1E3779B97F4A7C15
	return seed ^ (int64(w+1) * spread)
}

// runtimeState is one worker's view of the run.
type runtimeState struct {
	cfg      Config
	base     string
	client   *http.Client
	issued   *atomic.Int64
	coldIdx  *atomic.Int64
	deadline time.Time
	rng      *rand.Rand
	stats    *workerStats
	// etags remembers, per URL this worker has fetched, the validator its
	// response carried — the material for conditional replays. Worker-local
	// so the request path stays lock-free.
	etags map[string]string
}

// maxRememberedETags bounds the per-worker validator memory; mixes with
// randomized offsets could otherwise grow it without limit.
const maxRememberedETags = 4096

// claim reserves the next request slot, or reports the run is over.
func (rt *runtimeState) claim(ctx context.Context) (int64, bool) {
	if ctx.Err() != nil || !time.Now().Before(rt.deadline) {
		return 0, false
	}
	n := rt.issued.Add(1)
	if rt.cfg.MaxRequests > 0 && n > rt.cfg.MaxRequests {
		return 0, false
	}
	return n, true
}

// closedLoop issues requests back-to-back until the run ends.
func (rt *runtimeState) closedLoop(ctx context.Context) {
	for {
		n, ok := rt.claim(ctx)
		if !ok {
			return
		}
		started := time.Now()
		opIdx, code, err := rt.issue(n)
		rt.record(opIdx, time.Since(started), code, err)
	}
}

// openLoop issues requests on this worker's fixed schedule: one every
// (Concurrency/Rate) seconds, phase-shifted per worker so the aggregate
// arrival process is evenly spaced at Rate requests/second. Latency is
// measured from the scheduled start, so server backlog shows up as
// latency instead of silently thinning the arrival rate.
func (rt *runtimeState) openLoop(ctx context.Context, w int, start time.Time) {
	interval := time.Duration(float64(rt.cfg.Concurrency) / rt.cfg.Rate * float64(time.Second))
	next := start.Add(time.Duration(w) * interval / time.Duration(rt.cfg.Concurrency))
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	for {
		if next.After(rt.deadline) {
			return
		}
		if d := time.Until(next); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return
			}
		}
		n, ok := rt.claim(ctx)
		if !ok {
			return
		}
		opIdx, code, err := rt.issue(n)
		rt.record(opIdx, time.Since(next), code, err)
		next = next.Add(interval)
	}
}

// issue picks the op and seed for request n and performs it, replaying
// with a remembered validator on conditional turns.
func (rt *runtimeState) issue(n int64) (opIdx, code int, err error) {
	seed, cold := rt.pickSeed(n)
	if cold {
		rt.stats.cold++
	}
	opIdx = rt.cfg.Mix.pick(rt.rng)
	url := rt.base + resolvePath(rt.cfg.Mix.Ops[opIdx].Path, seed, rt.rng)
	var inm string
	if rt.cfg.ConditionalEvery > 0 && n%int64(rt.cfg.ConditionalEvery) == 0 {
		inm = rt.etags[url]
	}
	code, etag, err := doRequest(rt.client, url, inm)
	if err == nil && etag != "" && len(rt.etags) < maxRememberedETags {
		rt.etags[url] = etag
	}
	return opIdx, code, err
}

// pickSeed rotates between the warm pool and fresh cold seeds.
func (rt *runtimeState) pickSeed(n int64) (int64, bool) {
	if rt.cfg.ColdEvery > 0 && n%int64(rt.cfg.ColdEvery) == 0 {
		return rt.cfg.ColdSeedStart + rt.coldIdx.Add(1) - 1, true
	}
	return rt.cfg.Seeds[rt.rng.Intn(len(rt.cfg.Seeds))], false
}

// record books one finished request into the worker's shard.
func (rt *runtimeState) record(opIdx int, lat time.Duration, code int, err error) {
	rt.stats.requests++
	rt.stats.opReqs[opIdx]++
	if err != nil {
		rt.stats.transport++
		rt.stats.opErrs[opIdx]++
		return
	}
	rt.stats.hist.RecordDuration(lat)
	rt.stats.ops[opIdx].RecordDuration(lat)
	switch {
	case code == http.StatusNotModified:
		// A 304 only arises from a conditional replay, and it is the
		// desired outcome: the validator held and no query ran.
		rt.stats.notModified++
	case code < 200 || code > 299:
		rt.stats.non2xx[code]++
		rt.stats.opErrs[opIdx]++
	}
}

// doRequest performs one GET — conditional when ifNoneMatch is set —
// fully draining the body so the connection returns to the keep-alive
// pool, and reports any validator the response carried.
func doRequest(client *http.Client, url, ifNoneMatch string) (code int, etag string, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag"), nil
}

// buildReport merges worker shards into the final report.
func buildReport(cfg Config, shards []*workerStats, elapsed time.Duration) *Report {
	merged := newWorkerStats(len(cfg.Mix.Ops))
	for _, s := range shards {
		merged.hist.Merge(&s.hist)
		merged.requests += s.requests
		merged.transport += s.transport
		merged.cold += s.cold
		merged.notModified += s.notModified
		for i := range s.ops {
			merged.ops[i].Merge(&s.ops[i])
			merged.opReqs[i] += s.opReqs[i]
			merged.opErrs[i] += s.opErrs[i]
		}
		for code, c := range s.non2xx {
			merged.non2xx[code] += c
		}
	}

	mode := "closed-loop"
	if cfg.Rate > 0 {
		mode = "open-loop"
	}
	r := &Report{
		Schema:          ReportSchema,
		BaseURL:         cfg.BaseURL,
		Mix:             cfg.Mix.Name,
		Mode:            mode,
		Concurrency:     cfg.Concurrency,
		TargetRPS:       cfg.Rate,
		DurationSeconds: elapsed.Seconds(),
		Requests:        merged.requests,
		ColdRequests:    merged.cold,
		NotModified:     merged.notModified,
		TransportErrors: merged.transport,
		Latency: LatencyStats{
			P50ms:  ms(merged.hist.Quantile(0.50)),
			P90ms:  ms(merged.hist.Quantile(0.90)),
			P99ms:  ms(merged.hist.Quantile(0.99)),
			P999ms: ms(merged.hist.Quantile(0.999)),
			MeanMs: merged.hist.Mean() / 1e6,
			MaxMs:  ms(merged.hist.Max()),
		},
	}
	if elapsed > 0 {
		r.RPS = float64(merged.requests) / elapsed.Seconds()
	}
	if len(merged.non2xx) > 0 {
		r.StatusNon2xx = make(map[string]int64, len(merged.non2xx))
		for code, c := range merged.non2xx {
			r.StatusNon2xx[strconv.Itoa(code)] = c
			r.Errors += c
		}
	}
	r.Errors += merged.transport
	for i, op := range cfg.Mix.Ops {
		r.Ops = append(r.Ops, OpStats{
			Name:     op.Name,
			Requests: merged.opReqs[i],
			Errors:   merged.opErrs[i],
			P50ms:    ms(merged.ops[i].Quantile(0.50)),
			P99ms:    ms(merged.ops[i].Quantile(0.99)),
		})
	}
	return r
}

// ms converts nanoseconds to milliseconds.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Summary renders the human-readable report: the counterpart of the JSON
// encoding for terminals.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "avload %s against %s (mix %s, %d workers", r.Mode, r.BaseURL, r.Mix, r.Concurrency)
	if r.TargetRPS > 0 {
		fmt.Fprintf(&b, ", target %.0f rps", r.TargetRPS)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "  requests  %d in %.1fs (%.1f rps), %d cold", r.Requests, r.DurationSeconds, r.RPS, r.ColdRequests)
	if r.NotModified > 0 {
		fmt.Fprintf(&b, ", %d not-modified", r.NotModified)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "  errors    %d (%d transport", r.Errors, r.TransportErrors)
	for _, code := range sortedKeys(r.StatusNon2xx) {
		fmt.Fprintf(&b, ", %d HTTP %s", r.StatusNon2xx[code], code)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "  latency   p50 %.2fms  p90 %.2fms  p99 %.2fms  p999 %.2fms  max %.2fms\n",
		r.Latency.P50ms, r.Latency.P90ms, r.Latency.P99ms, r.Latency.P999ms, r.Latency.MaxMs)
	for _, op := range r.Ops {
		if op.Requests == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-18s %7d reqs  %4d errs  p50 %8.2fms  p99 %8.2fms\n",
			op.Name, op.Requests, op.Errors, op.P50ms, op.P99ms)
	}
	return b.String()
}

// sortedKeys returns m's keys in ascending order for stable rendering.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Warmup primes the server for every warm seed by requesting the mix's
// first operation once per seed, polling through 5xx/504 responses (a
// study still building) until success or ctx expiry. It returns a typed
// error on any 4xx — that means the mix itself is broken, and a load run
// would only measure error handling.
func Warmup(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return errors.New("loadgen: BaseURL required")
	}
	if err := cfg.Mix.validate(); err != nil {
		return err
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, seed := range cfg.Seeds {
		url := base + resolvePath(cfg.Mix.Ops[0].Path, seed, rng)
		for {
			code, _, err := doRequest(client, url, "")
			switch {
			case err == nil && code >= 200 && code <= 299:
				// Warm.
			case err == nil && code >= 400 && code <= 499:
				return fmt.Errorf("loadgen: warmup seed %d: HTTP %d from %s", seed, code, url)
			default:
				// Transport error or 5xx (study still building): retry
				// until the context gives up.
				select {
				case <-time.After(500 * time.Millisecond):
					continue
				case <-ctx.Done():
					return fmt.Errorf("loadgen: warmup seed %d: %w", seed, ctx.Err())
				}
			}
			break
		}
	}
	return nil
}
