package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile is the exact sorted-slice reference the histogram
// approximates: the value at 1-based rank ceil(q*n), clamped to [1, n].
func refQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// The core correctness property: on randomized inputs across several value
// distributions, every histogram quantile is an upper bound on the exact
// sorted-slice quantile, within the documented 1/32 relative error, and
// never past the true max.
func TestQuantileMatchesSortedReference(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	distributions := []struct {
		name string
		draw func(rng *rand.Rand) int64
	}{
		{"small-exact", func(rng *rand.Rand) int64 { return rng.Int63n(64) }},
		{"uniform-1ms", func(rng *rand.Rand) int64 { return rng.Int63n(1_000_000) }},
		{"wide-log", func(rng *rand.Rand) int64 { return int64(1) << uint(rng.Intn(40)) }},
		{"latency-like", func(rng *rand.Rand) int64 {
			// Bimodal: mostly ~100us with a 1% slow tail near 1s.
			if rng.Intn(100) == 0 {
				return 900_000_000 + rng.Int63n(200_000_000)
			}
			return 50_000 + rng.Int63n(100_000)
		}},
	}
	for _, dist := range distributions {
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(trial + 1)))
			n := 1 + rng.Intn(5000)
			var h Histogram
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = dist.draw(rng)
				h.Record(xs[i])
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := refQuantile(xs, q)
				if got < want {
					t.Fatalf("%s trial %d n=%d q=%g: histogram %d below exact %d", dist.name, trial, n, q, got, want)
				}
				// Upper-bound slack: exact region is exact; log-linear region
				// is within one sub-bucket, i.e. a factor of 1+1/32.
				limit := want + want/32 + 1
				if got > limit {
					t.Fatalf("%s trial %d n=%d q=%g: histogram %d exceeds %d (+1/32 of exact %d)", dist.name, trial, n, q, got, limit, want)
				}
				if got > xs[n-1] {
					t.Fatalf("%s trial %d q=%g: histogram %d past true max %d", dist.name, trial, q, got, xs[n-1])
				}
			}
		}
	}
}

// Merging shards must be equivalent to recording everything into one
// histogram — the property the per-worker sharding relies on.
func TestMergeEquivalentToSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole Histogram
	shards := make([]Histogram, 4)
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(10_000_000)
		whole.Record(v)
		shards[i%len(shards)].Record(v)
	}
	var merged Histogram
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.Total() != whole.Total() {
		t.Fatalf("total = %d, want %d", merged.Total(), whole.Total())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("min/max = %d/%d, want %d/%d", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("mean = %g, want %g", merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("q%g = %d, want %d", q, got, want)
		}
	}
}

// The zero value is usable and empty-histogram accessors return zeros.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: total=%d min=%d max=%d mean=%g q99=%d",
			h.Total(), h.Min(), h.Max(), h.Mean(), h.Quantile(0.99))
	}
	h.RecordDuration(3 * time.Millisecond)
	if h.Total() != 1 || h.Quantile(0.5) != int64(3*time.Millisecond) {
		t.Fatalf("single duration: total=%d q50=%d", h.Total(), h.Quantile(0.5))
	}
	h.Record(-5) // clamped to zero, not a panic or a negative bucket
	if h.Min() != 0 {
		t.Fatalf("min after negative record = %d, want 0", h.Min())
	}
}

// Exhaustively check the bucket mapping invariants: indexes are monotonic
// in v, and bucketUpper(bucketIndex(v)) >= v with bounded relative error.
func TestBucketMappingInvariants(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 45} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d, below previous %d: not monotonic", v, i, prev)
		}
		prev = i
		upper := bucketUpper(i)
		if upper < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, upper)
		}
		if v >= 64 && upper > v+v/32 {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d, more than 1/32 above", v, upper)
		}
	}
}
