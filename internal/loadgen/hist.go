package loadgen

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values below 64
// are recorded exactly; above that, each power-of-two octave is subdivided
// into 32 linear sub-buckets, bounding the relative quantile error at
// 1/32 (~3.1%) across the full range. Recording is O(1) with a small fixed
// footprint (~9 KB), so every load-generator worker keeps its own shard
// and shards are merged lock-free at report time.
//
// Values are int64 and unit-agnostic; the load generator records
// nanoseconds. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64
	min    int64 // valid only when total > 0
	max    int64
}

const (
	// histLinearMax is the exclusive bound of the exact region: values in
	// [0, 64) get one bucket each.
	histLinearMax = 64
	// histSubBits gives 2^5 = 32 sub-buckets per octave above the exact
	// region, i.e. a worst-case relative error of 1/32.
	histSubBits = 5
	// histOctaves covers values up to 2^(6+histOctaves); 40 octaves reach
	// ~2^46 ns (~20 hours), far past any request latency.
	histOctaves = 40
	histBuckets = histLinearMax + histOctaves*(1<<histSubBits)
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histLinearMax {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // 2^k <= v < 2^(k+1), k >= 6
	if k-6 >= histOctaves {
		return histBuckets - 1
	}
	sub := int(v>>(uint(k)-histSubBits)) & (1<<histSubBits - 1)
	return histLinearMax + (k-6)<<histSubBits + sub
}

// bucketUpper returns the largest value mapping to bucket i, so quantiles
// err on the conservative (over-reporting) side.
func bucketUpper(i int) int64 {
	if i < histLinearMax {
		return int64(i)
	}
	k := 6 + (i-histLinearMax)>>histSubBits
	sub := int64((i - histLinearMax) & (1<<histSubBits - 1))
	lower := int64(1)<<uint(k) + sub<<(uint(k)-histSubBits)
	return lower + int64(1)<<(uint(k)-histSubBits) - 1
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.sum += v
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// RecordDuration adds one latency observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Merge folds other into h. Neither histogram may be concurrently written.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Min returns the smallest recorded value (exact), or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (exact), or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of recorded values (exact), or 0 when
// empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded values: the value at 1-based rank ceil(q*n), clamped to [1, n]
// — the same convention as indexing a sorted slice at ceil(q*n)-1. The
// bound is exact below 64 and within a factor of 1+1/32 above; it never
// reports past Max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if float64(rank) < q*float64(h.total) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
