package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Op is one weighted operation in a query mix. Path is an HTTP path
// template; the placeholders {seed} and {offset} are resolved per request
// ({seed} from the warm/cold rotation, {offset} uniformly from [0, 1000)
// in steps of 50, modeling pagination depth).
type Op struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Path   string  `json:"path"`
}

// Mix is a weighted set of operations describing realistic query traffic.
type Mix struct {
	Name string
	Ops  []Op
}

// builtinMixes are the named mixes avload ships with. "default" models a
// dashboard-plus-API read mix over every endpoint family: filtered and
// paginated listings, group-bys, reliability metrics, accidents, and the
// occasional rendered table.
var builtinMixes = map[string][]Op{
	"default": {
		{Name: "events-recent", Weight: 20, Path: "/v1/studies/{seed}/disengagements?limit=50"},
		{Name: "events-mfr", Weight: 10, Path: "/v1/studies/{seed}/disengagements?mfr=waymo&limit=50"},
		{Name: "events-filtered", Weight: 8, Path: "/v1/studies/{seed}/disengagements?category=ml%2Fdesign&weather=raining&limit=100"},
		{Name: "events-window", Weight: 7, Path: "/v1/studies/{seed}/disengagements?from=2015-01&to=2015-12&limit=100"},
		{Name: "events-paged", Weight: 10, Path: "/v1/studies/{seed}/disengagements?offset={offset}&limit=100"},
		{Name: "groupby-tag", Weight: 10, Path: "/v1/studies/{seed}/groupby?by=tag"},
		{Name: "groupby-category", Weight: 5, Path: "/v1/studies/{seed}/groupby?by=category&mfr=waymo"},
		{Name: "groupby-road", Weight: 5, Path: "/v1/studies/{seed}/groupby?by=road&modality=automatic"},
		{Name: "reliability", Weight: 15, Path: "/v1/studies/{seed}/metrics/reliability"},
		{Name: "accidents", Weight: 7, Path: "/v1/studies/{seed}/accidents?limit=50"},
		{Name: "table-i", Weight: 2, Path: "/v1/studies/{seed}/tables/i"},
		{Name: "table-vii", Weight: 1, Path: "/v1/studies/{seed}/tables/vii"},
	},
	// "scan" stresses the listing path: deep pagination and broad filters.
	"scan": {
		{Name: "events-paged", Weight: 60, Path: "/v1/studies/{seed}/disengagements?offset={offset}&limit=1000"},
		{Name: "events-mfr-paged", Weight: 25, Path: "/v1/studies/{seed}/disengagements?mfr=waymo&offset={offset}&limit=1000"},
		{Name: "accidents-paged", Weight: 15, Path: "/v1/studies/{seed}/accidents?offset={offset}&limit=50"},
	},
	// "metrics" stresses the aggregation path: group-bys and reliability.
	"metrics": {
		{Name: "groupby-tag", Weight: 30, Path: "/v1/studies/{seed}/groupby?by=tag"},
		{Name: "groupby-month", Weight: 20, Path: "/v1/studies/{seed}/groupby?by=month"},
		{Name: "groupby-weather", Weight: 15, Path: "/v1/studies/{seed}/groupby?by=weather"},
		{Name: "reliability", Weight: 35, Path: "/v1/studies/{seed}/metrics/reliability"},
	},
}

// BuiltinMixNames lists the named mixes in sorted order.
func BuiltinMixNames() []string {
	names := make([]string, 0, len(builtinMixes))
	for n := range builtinMixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MixError is a typed error for unknown or invalid mixes, so callers can
// classify configuration mistakes without matching message text.
type MixError struct {
	Mix    string
	Reason string
}

// Error implements error.
func (e *MixError) Error() string {
	return fmt.Sprintf("loadgen: mix %q: %s", e.Mix, e.Reason)
}

// LoadMix resolves a mix specifier: the name of a built-in mix, or a path
// to a JSON file holding an array of Ops. The resolved mix is validated:
// at least one op, every weight positive, every path non-empty and
// absolute.
func LoadMix(spec string) (Mix, error) {
	if ops, ok := builtinMixes[spec]; ok {
		m := Mix{Name: spec, Ops: append([]Op(nil), ops...)}
		return m, m.validate()
	}
	raw, err := os.ReadFile(spec)
	if err != nil {
		if !strings.ContainsAny(spec, "./\\") {
			// A bare word that is not a built-in name: almost certainly a
			// typo'd mix name, not a file path.
			return Mix{}, &MixError{Mix: spec, Reason: fmt.Sprintf(
				"not a built-in mix (want one of %s) and not a readable file", strings.Join(BuiltinMixNames(), ", "))}
		}
		return Mix{}, fmt.Errorf("loadgen: read mix file: %w", err)
	}
	var ops []Op
	if err := json.Unmarshal(raw, &ops); err != nil {
		return Mix{}, &MixError{Mix: spec, Reason: fmt.Sprintf("invalid JSON: %v", err)}
	}
	m := Mix{Name: spec, Ops: ops}
	return m, m.validate()
}

// validate checks the mix is usable for traffic generation.
func (m Mix) validate() error {
	if len(m.Ops) == 0 {
		return &MixError{Mix: m.Name, Reason: "no operations"}
	}
	for i, op := range m.Ops {
		switch {
		case op.Name == "":
			return &MixError{Mix: m.Name, Reason: fmt.Sprintf("op %d: missing name", i)}
		case op.Weight <= 0:
			return &MixError{Mix: m.Name, Reason: fmt.Sprintf("op %q: weight %g, want > 0", op.Name, op.Weight)}
		case !strings.HasPrefix(op.Path, "/"):
			return &MixError{Mix: m.Name, Reason: fmt.Sprintf("op %q: path %q, want absolute", op.Name, op.Path)}
		}
	}
	return nil
}

// TotalWeight sums the op weights.
func (m Mix) TotalWeight() float64 {
	var sum float64
	for _, op := range m.Ops {
		sum += op.Weight
	}
	return sum
}

// Describe renders the resolved mix as a human-readable table: one line
// per op with its normalized share, name, and path template. This is what
// `avload -print-mix` emits, letting CI validate mix configs without a
// server.
func (m Mix) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix %s: %d operations\n", m.Name, len(m.Ops))
	total := m.TotalWeight()
	for _, op := range m.Ops {
		fmt.Fprintf(&b, "  %5.1f%%  %-18s %s\n", 100*op.Weight/total, op.Name, op.Path)
	}
	return b.String()
}

// pick chooses an op index proportionally to weight using rng.
func (m Mix) pick(rng *rand.Rand) int {
	u := rng.Float64() * m.TotalWeight()
	var acc float64
	for i, op := range m.Ops {
		acc += op.Weight
		if u < acc {
			return i
		}
	}
	return len(m.Ops) - 1
}

// resolvePath instantiates an op's path template for one request.
func resolvePath(tmpl string, seed int64, rng *rand.Rand) string {
	out := strings.ReplaceAll(tmpl, "{seed}", strconv.FormatInt(seed, 10))
	if strings.Contains(out, "{offset}") {
		offset := 50 * rng.Intn(20)
		out = strings.ReplaceAll(out, "{offset}", strconv.Itoa(offset))
	}
	return out
}
