package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testMix is a tiny two-op mix exercising both placeholders.
func testMix() Mix {
	return Mix{Name: "test", Ops: []Op{
		{Name: "list", Weight: 3, Path: "/v1/studies/{seed}/disengagements?offset={offset}&limit=50"},
		{Name: "metrics", Weight: 1, Path: "/v1/studies/{seed}/metrics/reliability"},
	}}
}

// A closed-loop run with MaxRequests against a healthy server issues
// exactly that many requests, all counted, with a consistent report.
func TestRunClosedLoopMaxRequests(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	const want = 200
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 4,
		MaxRequests: want,
		Duration:    time.Minute, // MaxRequests stops the run first
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Requests != want || hits.Load() != want {
		t.Errorf("requests = %d (server saw %d), want %d", rep.Requests, hits.Load(), want)
	}
	if rep.Errors != 0 || rep.TransportErrors != 0 || len(rep.StatusNon2xx) != 0 {
		t.Errorf("errors = %d/%d/%v, want none", rep.Errors, rep.TransportErrors, rep.StatusNon2xx)
	}
	if rep.RPS <= 0 || rep.Latency.P50ms <= 0 || rep.Latency.P99ms < rep.Latency.P50ms {
		t.Errorf("implausible report: rps=%g p50=%g p99=%g", rep.RPS, rep.Latency.P50ms, rep.Latency.P99ms)
	}
	if rep.Mode != "closed-loop" {
		t.Errorf("mode = %q", rep.Mode)
	}
	var opReqs int64
	for _, op := range rep.Ops {
		opReqs += op.Requests
	}
	if opReqs != want {
		t.Errorf("per-op requests sum to %d, want %d", opReqs, want)
	}
	if rep.Ops[0].Requests <= rep.Ops[1].Requests {
		t.Errorf("op weights ignored: %d list vs %d metrics", rep.Ops[0].Requests, rep.Ops[1].Requests)
	}
	s := rep.Summary()
	for _, frag := range []string{"closed-loop", "list", "metrics", "p99"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

// Open-loop driving approximates the target rate and measures latency from
// the scheduled start: a server that stalls longer than the inter-arrival
// gap must show queueing delay in the tail, not a thinned request count.
func TestRunOpenLoopRate(t *testing.T) {
	var slow atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() {
			time.Sleep(60 * time.Millisecond)
		}
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		Rate:        200,
		Duration:    500 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open-loop" || rep.TargetRPS != 200 {
		t.Errorf("mode/target = %q/%g", rep.Mode, rep.TargetRPS)
	}
	// ~100 scheduled arrivals in 500ms; allow generous scheduler slack.
	if rep.Requests < 50 || rep.Requests > 110 {
		t.Errorf("requests = %d, want ~100 at 200 rps for 500ms", rep.Requests)
	}

	// Now stall the server: with 60ms service vs 10ms arrival gap the
	// backlog grows, and scheduled-start latency must reflect it.
	slow.Store(true)
	rep2, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		Rate:        200,
		Duration:    400 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Latency.P99ms < 100 {
		t.Errorf("p99 = %.1fms under a 60ms stall at 10ms arrivals: coordinated omission not compensated", rep2.Latency.P99ms)
	}
}

// Non-2xx responses are counted per status and per op, and transport
// errors (a closed server) are reported separately without failing Run.
func TestRunCountsErrors(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			http.Error(w, `{"error":{"code":"bad_query"}}`, http.StatusBadRequest)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}))
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		MaxRequests: 100,
		Duration:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 50 || rep.StatusNon2xx["400"] != 50 {
		t.Errorf("errors = %d, non2xx = %v, want 50 HTTP 400", rep.Errors, rep.StatusNon2xx)
	}
	var opErrs int64
	for _, op := range rep.Ops {
		opErrs += op.Errors
	}
	if opErrs != 50 {
		t.Errorf("per-op errors sum to %d, want 50", opErrs)
	}

	srv.Close()
	rep, err = Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		MaxRequests: 10,
		Duration:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 10 || rep.Errors != 10 {
		t.Errorf("transport errors = %d/%d, want 10", rep.TransportErrors, rep.Errors)
	}
}

// Cold-seed rotation: every ColdEvery-th request targets a fresh seed at
// or past ColdSeedStart; the rest stay in the warm pool.
func TestRunColdSeedRotation(t *testing.T) {
	seeds := make(chan string, 1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(r.URL.Path, "/")
		seeds <- parts[3] // /v1/studies/{seed}/...
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:       srv.URL,
		Mix:           testMix(),
		Seeds:         []int64{7, 8},
		ColdEvery:     5,
		ColdSeedStart: 500,
		Concurrency:   3,
		MaxRequests:   100,
		Duration:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(seeds)
	warm, cold := 0, 0
	coldSeen := make(map[string]bool)
	for s := range seeds {
		switch s {
		case "7", "8":
			warm++
		default:
			cold++
			if coldSeen[s] {
				t.Errorf("cold seed %s reused", s)
			}
			coldSeen[s] = true
		}
	}
	if cold != 20 || rep.ColdRequests != 20 {
		t.Errorf("cold = %d (report %d), want 20 of 100 at ColdEvery=5", cold, rep.ColdRequests)
	}
	if warm != 80 {
		t.Errorf("warm = %d, want 80", warm)
	}
}

// Equal seeds give identical request schedules (same op mix counts), so
// perf comparisons across runs measure the server, not the generator.
func TestRunDeterministicSchedule(t *testing.T) {
	paths := func() map[string]int {
		m := make(map[string]int)
		var mu sync.Mutex
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			m[r.URL.Path]++
			mu.Unlock()
			_, _ = w.Write([]byte("ok"))
		}))
		defer srv.Close()
		_, err := Run(context.Background(), Config{
			BaseURL:     srv.URL,
			Mix:         testMix(),
			Concurrency: 2,
			MaxRequests: 60,
			Duration:    time.Minute,
			Seed:        11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := paths(), paths()
	// Workers race for request slots, so the interleaving differs — but the
	// per-worker RNG streams are fixed, so the multiset of op choices per
	// op family must match in aggregate counts.
	total := func(m map[string]int, frag string) int {
		n := 0
		for p, c := range m {
			if strings.Contains(p, frag) {
				n += c
			}
		}
		return n
	}
	for _, frag := range []string{"disengagements", "reliability"} {
		if ta, tb := total(a, frag), total(b, frag); ta == 0 && tb == 0 {
			t.Errorf("no %s requests in either run", frag)
		}
	}
}

// Config errors are reported before any traffic: no BaseURL, bad mix.
func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Mix: testMix()}); err == nil {
		t.Error("missing BaseURL: want error")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mix: Mix{Name: "empty"}}); err == nil {
		t.Error("empty mix: want error")
	}
}

// Warmup hits the first op once per warm seed, retries through 5xx (a
// study still building), and fails fast on 4xx.
func TestWarmup(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "building", http.StatusGatewayTimeout)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := Warmup(ctx, Config{BaseURL: srv.URL, Mix: testMix(), Seeds: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 { // seed 1 retried once, seed 2 clean
		t.Errorf("warmup made %d requests, want 3", got)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer bad.Close()
	if err := Warmup(ctx, Config{BaseURL: bad.URL, Mix: testMix()}); err == nil {
		t.Error("4xx warmup: want error")
	}
}

// Canceling the context stops a duration-bound run early.
func TestRunContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		Duration:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v after a 100ms cancel", elapsed)
	}
	if rep.Requests == 0 {
		t.Error("no requests before cancel")
	}
}

// Conditional replays: with ConditionalEvery set against a server that
// emits ETags and honors If-None-Match, some requests come back 304 —
// counted as successes in NotModified, never as errors.
func TestRunConditionalRequests(t *testing.T) {
	var notModified atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		const tag = `"deadbeef"`
		if r.Header.Get("If-None-Match") == tag {
			notModified.Add(1)
			w.Header().Set("ETag", tag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", tag)
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:          srv.URL,
		Mix:              testMix(),
		Concurrency:      2,
		MaxRequests:      300,
		Duration:         time.Minute,
		ConditionalEvery: 3,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || len(rep.StatusNon2xx) != 0 {
		t.Fatalf("errors = %d/%v, want none (304 is a success)", rep.Errors, rep.StatusNon2xx)
	}
	if rep.NotModified == 0 || rep.NotModified != notModified.Load() {
		t.Errorf("notModified = %d (server sent %d), want equal and nonzero",
			rep.NotModified, notModified.Load())
	}
	if rep.NotModified >= rep.Requests {
		t.Errorf("notModified = %d of %d requests: unconditional requests vanished",
			rep.NotModified, rep.Requests)
	}
	if !strings.Contains(rep.Summary(), "not-modified") {
		t.Errorf("summary missing not-modified count:\n%s", rep.Summary())
	}

	// Without ConditionalEvery no request is conditional, even against the
	// same validator-emitting server.
	rep2, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Mix:         testMix(),
		Concurrency: 2,
		MaxRequests: 50,
		Duration:    time.Minute,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NotModified != 0 {
		t.Errorf("notModified = %d with conditionals disabled", rep2.NotModified)
	}
}
