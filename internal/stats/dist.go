package stats

import (
	"errors"
	"math"
	"math/rand"
)

// Dist is a continuous univariate distribution. Implementations provide
// density, cumulative probability, quantiles, moments, and sampling with an
// injected random source (no package-level randomness — see the style
// guide's "avoid mutable globals").
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the inverse CDF at probability p in (0,1).
	Quantile(p float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Rand draws one sample using rng.
	Rand(rng *rand.Rand) float64
}

// Compile-time interface checks.
var (
	_ Dist = Exponential{}
	_ Dist = Weibull{}
	_ Dist = ExpWeibull{}
	_ Dist = Normal{}
	_ Dist = LogNormal{}
)

// Exponential is the exponential distribution with rate Lambda (> 0). The
// paper fits it to accident speeds (Fig. 12).
type Exponential struct {
	Lambda float64
}

// NewExponential builds an exponential distribution from its mean.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 {
		return Exponential{}, errors.New("stats: exponential mean must be positive")
	}
	return Exponential{Lambda: 1 / mean}, nil
}

// PDF implements Dist.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile implements Dist.
func (e Exponential) Quantile(p float64) float64 {
	return -math.Log1p(-p) / e.Lambda
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Rand implements Dist by inverse-CDF sampling.
func (e Exponential) Rand(rng *rand.Rand) float64 {
	return e.Quantile(uniformOpen(rng))
}

// Weibull is the two-parameter Weibull distribution with shape K and scale
// Lambda (both > 0). The paper fits it to driver reaction times (Fig. 11).
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// PDF implements Dist.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.K < 1 {
			return math.Inf(1)
		}
		if w.K == 1 {
			return 1 / w.Lambda
		}
		return 0
	}
	z := x / w.Lambda
	return (w.K / w.Lambda) * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// CDF implements Dist.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile implements Dist.
func (w Weibull) Quantile(p float64) float64 {
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// Mean implements Dist: lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// Rand implements Dist by inverse-CDF sampling.
func (w Weibull) Rand(rng *rand.Rand) float64 {
	return w.Quantile(uniformOpen(rng))
}

// ExpWeibull is the exponentiated Weibull distribution: a Weibull CDF raised
// to the power Alpha. With Alpha == 1 it reduces to the Weibull. The paper
// uses an "Exponential-Weibull" fit for the long-tailed pooled reaction-time
// distribution (Fig. 11 caption / §V-A4).
type ExpWeibull struct {
	K      float64 // Weibull shape
	Lambda float64 // Weibull scale
	Alpha  float64 // exponentiation parameter
}

// PDF implements Dist.
func (e ExpWeibull) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := math.Pow(x/e.Lambda, e.K)
	base := -math.Expm1(-z) // 1 - exp(-z)
	if base <= 0 {
		return 0
	}
	return e.Alpha * (e.K / e.Lambda) * math.Pow(x/e.Lambda, e.K-1) *
		math.Exp(-z) * math.Pow(base, e.Alpha-1)
}

// CDF implements Dist.
func (e ExpWeibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(-math.Expm1(-math.Pow(x/e.Lambda, e.K)), e.Alpha)
}

// Quantile implements Dist.
func (e ExpWeibull) Quantile(p float64) float64 {
	inner := math.Pow(p, 1/e.Alpha)
	return e.Lambda * math.Pow(-math.Log1p(-inner), 1/e.K)
}

// Mean implements Dist by adaptive Simpson integration of x f(x) over the
// effective support (no closed form exists).
func (e ExpWeibull) Mean() float64 {
	upper := e.Quantile(1 - 1e-9)
	return simpson(func(x float64) float64 { return x * e.PDF(x) }, 1e-12, upper, 1<<12)
}

// Rand implements Dist by inverse-CDF sampling.
func (e ExpWeibull) Rand(rng *rand.Rand) float64 {
	return e.Quantile(uniformOpen(rng))
}

// Normal is the Gaussian distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	return NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Dist.
func (n Normal) Quantile(p float64) float64 {
	z, err := NormalQuantile(p)
	if err != nil {
		return math.NaN()
	}
	return n.Mu + n.Sigma*z
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Rand implements Dist.
func (n Normal) Rand(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma)). The synthetic
// generator uses it for per-car DPM heterogeneity (Fig. 4 spreads).
type LogNormal struct {
	Mu    float64 // mean of log X
	Sigma float64 // std dev of log X
}

// PDF implements Dist.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile implements Dist.
func (l LogNormal) Quantile(p float64) float64 {
	z, err := NormalQuantile(p)
	if err != nil {
		return math.NaN()
	}
	return math.Exp(l.Mu + l.Sigma*z)
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Rand implements Dist.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// uniformOpen returns a uniform sample on the open interval (0, 1), so
// inverse-CDF sampling never evaluates a quantile at exactly 0 or 1.
func uniformOpen(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 && u < 1 {
			return u
		}
	}
}

// simpson integrates f over [a, b] with n (even) panels using composite
// Simpson's rule.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			sum += 2 * f(x)
		} else {
			sum += 4 * f(x)
		}
	}
	return sum * h / 3
}
