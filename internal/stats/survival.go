package stats

import (
	"errors"
	"math"
	"sort"
)

// Survival analysis: the Kaplan–Meier product-limit estimator. In this
// project the "lifetime" is a vehicle's miles driven until a disengagement
// (or accident), and vehicles that never failed are right-censored at their
// total mileage — the §V-C2 "miles between disengagements" metric treated
// properly instead of dropping event-free vehicles.

// Observation is one subject's (possibly censored) lifetime.
type Observation struct {
	// Time is the observed lifetime (here: miles).
	Time float64
	// Censored marks subjects that survived past Time without an event.
	Censored bool
}

// SurvivalPoint is one step of the estimated survival curve.
type SurvivalPoint struct {
	// Time is the event time the curve steps at.
	Time float64
	// Survival is S(t) just after the step.
	Survival float64
	// AtRisk is the risk-set size just before the step.
	AtRisk int
	// Events is the number of events at this time.
	Events int
	// StdErr is Greenwood's standard error of S(t).
	StdErr float64
}

// KaplanMeier is a fitted survival curve.
type KaplanMeier struct {
	Points []SurvivalPoint
	// N is the number of observations; Censored counts them.
	N, Censored int
}

// NewKaplanMeier fits the product-limit estimator to obs.
func NewKaplanMeier(obs []Observation) (*KaplanMeier, error) {
	if len(obs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	for _, o := range sorted {
		if o.Time < 0 || math.IsNaN(o.Time) {
			return nil, errors.New("stats: survival times must be non-negative")
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	km := &KaplanMeier{N: len(sorted)}
	s := 1.0
	var greenwood float64 // running sum d/(n(n-d))
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		var events, removed int
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Censored {
				km.Censored++
			} else {
				events++
			}
			removed++
			i++
		}
		if events > 0 {
			d, n := float64(events), float64(atRisk)
			s *= 1 - d/n
			if n > d {
				greenwood += d / (n * (n - d))
			}
			km.Points = append(km.Points, SurvivalPoint{
				Time:     t,
				Survival: s,
				AtRisk:   atRisk,
				Events:   events,
				StdErr:   s * math.Sqrt(greenwood),
			})
		}
		atRisk -= removed
	}
	return km, nil
}

// At returns S(t): the estimated probability of surviving past t.
func (km *KaplanMeier) At(t float64) float64 {
	s := 1.0
	for _, p := range km.Points {
		if p.Time > t {
			break
		}
		s = p.Survival
	}
	return s
}

// MedianTime returns the smallest event time where the survival curve drops
// to 0.5 or below; ok is false when the curve never reaches 0.5 (heavy
// censoring).
func (km *KaplanMeier) MedianTime() (float64, bool) {
	for _, p := range km.Points {
		if p.Survival <= 0.5 {
			return p.Time, true
		}
	}
	return 0, false
}

// RestrictedMean returns the restricted mean survival time up to tau: the
// area under the survival curve on [0, tau].
func (km *KaplanMeier) RestrictedMean(tau float64) float64 {
	var area float64
	prevT := 0.0
	prevS := 1.0
	for _, p := range km.Points {
		if p.Time >= tau {
			break
		}
		area += prevS * (p.Time - prevT)
		prevT = p.Time
		prevS = p.Survival
	}
	area += prevS * (tau - prevT)
	return area
}

// LogRank performs the two-sample log-rank test for equality of survival
// curves, returning the chi-square statistic (1 df) and its p-value.
func LogRank(a, b []Observation) (chi2, p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, ErrEmpty
	}
	type tagged struct {
		Observation
		group int
	}
	all := make([]tagged, 0, len(a)+len(b))
	for _, o := range a {
		all = append(all, tagged{o, 0})
	}
	for _, o := range b {
		all = append(all, tagged{o, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Time < all[j].Time })

	nAtRisk := [2]float64{float64(len(a)), float64(len(b))}
	var observed0, expected0, variance float64
	i := 0
	for i < len(all) {
		t := all[i].Time
		var events [2]float64
		var removed [2]float64
		for i < len(all) && all[i].Time == t {
			if !all[i].Censored {
				events[all[i].group]++
			}
			removed[all[i].group]++
			i++
		}
		d := events[0] + events[1]
		n := nAtRisk[0] + nAtRisk[1]
		if d > 0 && n > 1 {
			e0 := d * nAtRisk[0] / n
			observed0 += events[0]
			expected0 += e0
			variance += d * (nAtRisk[0] / n) * (nAtRisk[1] / n) * (n - d) / (n - 1)
		}
		nAtRisk[0] -= removed[0]
		nAtRisk[1] -= removed[1]
	}
	if variance <= 0 {
		return 0, 0, errors.New("stats: log-rank degenerate (no comparable events)")
	}
	diff := observed0 - expected0
	chi2 = diff * diff / variance
	cdf, err := ChiSquareCDF(chi2, 1)
	if err != nil {
		return 0, 0, err
	}
	return chi2, 1 - cdf, nil
}
