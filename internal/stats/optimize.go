package stats

import (
	"errors"
	"math"
	"sort"
)

// NMOptions configures the Nelder–Mead simplex optimizer.
type NMOptions struct {
	// MaxIter caps the number of simplex iterations (default 1000).
	MaxIter int
	// Tol is the convergence tolerance on the function-value spread across
	// the simplex (default 1e-10).
	Tol float64
	// Step is the initial simplex edge length relative to |x0| (default
	// 0.1; an absolute step of Step is used where x0 is ~0).
	Step float64
}

func (o NMOptions) withDefaults() NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	return o
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method with the standard reflection/expansion/contraction/shrink
// coefficients (1, 2, 0.5, 0.5). It returns the best point found and its
// function value. The objective may return +Inf to reject a region.
func NelderMead(f func([]float64) float64, x0 []float64, opts NMOptions) ([]float64, float64, error) {
	if len(x0) == 0 {
		return nil, 0, errors.New("stats: NelderMead requires at least one dimension")
	}
	opts = opts.withDefaults()
	dim := len(x0)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		x := make([]float64, dim)
		copy(x, x0)
		if i > 0 {
			j := i - 1
			step := opts.Step * (1 + math.Abs(x[j]))
			x[j] += step
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}

	centroid := make([]float64, dim)
	trial := make([]float64, dim)

	evalTrial := func(factor float64, worst []float64) float64 {
		for j := 0; j < dim; j++ {
			trial[j] = centroid[j] + factor*(worst[j]-centroid[j])
		}
		return f(trial)
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[dim]
		spread := math.Abs(worst.f - best.f)
		scale := math.Abs(best.f) + math.Abs(worst.f) + 1e-30
		// Converge only when both function values AND vertex positions have
		// collapsed; equal f at distant vertices (plateaus, symmetric
		// objectives) must keep iterating.
		var xSpread float64
		for i := 1; i <= dim; i++ {
			for j := 0; j < dim; j++ {
				d := math.Abs(simplex[i].x[j] - best.x[j])
				if d > xSpread {
					xSpread = d
				}
			}
		}
		xScale := 1.0
		for j := 0; j < dim; j++ {
			xScale += math.Abs(best.x[j])
		}
		if (spread/scale < opts.Tol && xSpread/xScale < math.Sqrt(opts.Tol)) ||
			(math.IsInf(best.f, 0) && math.IsInf(worst.f, 0)) {
			return best.x, best.f, nil
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < dim; j++ {
			centroid[j] = 0
			for i := 0; i < dim; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(dim)
		}

		// Reflection.
		fr := evalTrial(-1, worst.x)
		switch {
		case fr < best.f:
			// Expansion.
			reflected := make([]float64, dim)
			copy(reflected, trial)
			fe := evalTrial(-2, worst.x)
			if fe < fr {
				copy(simplex[dim].x, trial)
				simplex[dim].f = fe
			} else {
				copy(simplex[dim].x, reflected)
				simplex[dim].f = fr
			}
		case fr < simplex[dim-1].f:
			copy(simplex[dim].x, trial)
			simplex[dim].f = fr
		default:
			// Contraction (outside if reflection improved on worst,
			// inside otherwise).
			factor := 0.5
			if fr < worst.f {
				factor = -0.5
			}
			fc := evalTrial(factor, worst.x)
			if fc < math.Min(fr, worst.f) {
				copy(simplex[dim].x, trial)
				simplex[dim].f = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return simplex[0].x, simplex[0].f, nil
}
