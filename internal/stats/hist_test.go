package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 5 || len(h.Edges) != 6 {
		t.Fatalf("bins = %d, edges = %d", len(h.Counts), len(h.Edges))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("binned %d of %d observations", total, len(xs))
	}
	// Density integrates to 1.
	var area float64
	for i, d := range h.Density {
		area += d * (h.Edges[i+1] - h.Edges[i])
	}
	almostEqual(t, area, 1, 1e-12, "histogram density area")
	// Max value lands in the last bin, not out of range.
	if h.Counts[4] == 0 {
		t.Error("last bin should contain the max value")
	}
}

func TestHistogramEmptyAndConstant(t *testing.T) {
	if _, err := NewHistogram(nil, 5); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	h, err := NewHistogram([]float64{7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant sample binned %d of 3", total)
	}
}

func TestHistogramAutoBins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := NewHistogram(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) < 5 || len(h.Counts) > 200 {
		t.Errorf("auto bin count = %d, want reasonable", len(h.Counts))
	}
}

func TestFreedmanDiaconisFallback(t *testing.T) {
	// Zero IQR forces the Sturges fallback.
	xs := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 100}
	bins := FreedmanDiaconisBins(xs)
	if bins < 1 || bins > 200 {
		t.Errorf("bins = %d", bins)
	}
	if FreedmanDiaconisBins([]float64{1}) != 1 {
		t.Error("n=1 should give 1 bin")
	}
}

func TestKDERecoversGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth := Normal{Mu: 2, Sigma: 1}
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Fatalf("bandwidth = %g", k.Bandwidth())
	}
	for _, x := range []float64{0, 1, 2, 3, 4} {
		almostEqual(t, k.PDF(x), truth.PDF(x), 0.03, "KDE vs true density")
	}
	grid, dens := k.Evaluate(-2, 6, 101)
	if len(grid) != 101 || len(dens) != 101 {
		t.Fatalf("grid sizes %d/%d", len(grid), len(dens))
	}
	// Grid density integrates to ~1 (trapezoid).
	var area float64
	for i := 1; i < len(grid); i++ {
		area += (dens[i] + dens[i-1]) / 2 * (grid[i] - grid[i-1])
	}
	almostEqual(t, area, 1, 0.02, "KDE area")
}

func TestKDEErrors(t *testing.T) {
	if _, err := NewKDE([]float64{1}, 0); err != ErrInsufficient {
		t.Errorf("n=1: err = %v", err)
	}
	if _, err := NewKDE([]float64{3, 3, 3}, 0); err == nil {
		t.Error("constant data with auto bandwidth: want error")
	}
	// Constant data with explicit bandwidth is fine.
	k, err := NewKDE([]float64{3, 3, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if k.PDF(3) <= 0 {
		t.Error("PDF at data point should be positive")
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := ECDF(xs, c.x); got != c.want {
			t.Errorf("ECDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if ECDF(nil, 1) != 0 {
		t.Error("empty ECDF should be 0")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	truth := Normal{Mu: 5, Sigma: 2}
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	meanStat := func(s []float64) float64 {
		m, _ := Mean(s)
		return m
	}
	ci, err := Bootstrap(xs, meanStat, 2000, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Low > ci.Point || ci.Point > ci.High {
		t.Errorf("CI [%g, %g] does not bracket point %g", ci.Low, ci.High, ci.Point)
	}
	if ci.Low > 5 || ci.High < 5 {
		t.Errorf("95%% CI [%g, %g] misses true mean 5 (possible but unlikely)", ci.Low, ci.High)
	}
	width := ci.High - ci.Low
	if width <= 0 || width > 1.5 {
		t.Errorf("CI width = %g, want (0, 1.5]", width)
	}
}

func TestBootstrapErrors(t *testing.T) {
	stat := func(s []float64) float64 { return 0 }
	rng := rand.New(rand.NewSource(1))
	if _, err := Bootstrap(nil, stat, 100, 0.95, rng); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := Bootstrap([]float64{1}, stat, 5, 0.95, rng); err == nil {
		t.Error("too few resamples: want error")
	}
	if _, err := Bootstrap([]float64{1}, stat, 100, 1.5, rng); err == nil {
		t.Error("bad level: want error")
	}
	if _, err := Bootstrap([]float64{1}, stat, 100, 0.95, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestPermutationTestCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = float64(i) + rng.NormFloat64()*3
	}
	p, err := PermutationTestCorr(xs, ys, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("strongly correlated data: permutation p = %g, want tiny", p)
	}
	// Independent data: p should not be tiny.
	indep := make([]float64, n)
	for i := range indep {
		indep[i] = rng.NormFloat64()
	}
	p2, err := PermutationTestCorr(xs, indep, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < 0.01 {
		t.Errorf("independent data: permutation p = %g, want non-tiny", p2)
	}
	if _, err := PermutationTestCorr(xs[:2], ys[:2], 500, rng); err != ErrInsufficient {
		t.Errorf("n=2: err = %v", err)
	}
	if _, err := PermutationTestCorr(xs, ys, 500, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestBootstrapDeterminism(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7}
	medStat := func(s []float64) float64 {
		m, _ := Median(s)
		return m
	}
	a, err := Bootstrap(xs, medStat, 200, 0.9, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(xs, medStat, 200, 0.9, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Low != b.Low || a.High != b.High || math.Abs(a.Point-b.Point) > 0 {
		t.Errorf("same seed gave different CIs: %+v vs %+v", a, b)
	}
}
