package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample(d Dist, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Rand(rng)
	}
	return xs
}

func TestFitExponentialRecovery(t *testing.T) {
	truth := Exponential{Lambda: 0.4}
	xs := sample(truth, 5000, 11)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, fit.Lambda, truth.Lambda, 0.02, "exponential rate recovery")
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := FitExponential([]float64{1, -2}); err == nil {
		t.Error("negative data: want error")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Error("zero mean: want error")
	}
}

func TestFitWeibullRecovery(t *testing.T) {
	cases := []Weibull{
		{K: 0.8, Lambda: 1.5}, // long-tailed, like Benz reaction times
		{K: 1.6, Lambda: 0.9}, // like Waymo reaction times
		{K: 3.0, Lambda: 2.0},
	}
	for _, truth := range cases {
		xs := sample(truth, 4000, 7)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("FitWeibull(%+v): %v", truth, err)
		}
		almostEqual(t, fit.K, truth.K, 0.08*truth.K+0.02, "Weibull shape recovery")
		almostEqual(t, fit.Lambda, truth.Lambda, 0.08*truth.Lambda+0.02, "Weibull scale recovery")
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err != ErrInsufficient {
		t.Errorf("n=2: err = %v", err)
	}
	if _, err := FitWeibull([]float64{1, 2, -3}); err == nil {
		t.Error("negative data: want error")
	}
	if _, err := FitWeibull([]float64{2, 2, 2, 2}); err == nil {
		t.Error("constant sample: want error (degenerate)")
	}
}

func TestFitExpWeibullRecovery(t *testing.T) {
	truth := ExpWeibull{K: 1.2, Lambda: 1.0, Alpha: 2.0}
	xs := sample(truth, 6000, 23)
	fit, err := FitExpWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	// The 3-parameter likelihood surface is flat along K-Alpha trade-offs;
	// check the fitted distribution matches the truth functionally rather
	// than parameter-by-parameter.
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		qTruth := truth.Quantile(p)
		qFit := fit.Quantile(p)
		if math.Abs(qFit-qTruth) > 0.12*(1+qTruth) {
			t.Errorf("quantile %g: fit %g vs truth %g", p, qFit, qTruth)
		}
	}
	// And the KS distance must be small.
	d, err := KSStatistic(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.03 {
		t.Errorf("KS distance = %g, want < 0.03", d)
	}
}

func TestFitExpWeibullErrors(t *testing.T) {
	if _, err := FitExpWeibull([]float64{1, 2, 3}); err != ErrInsufficient {
		t.Errorf("n=3: err = %v", err)
	}
}

func TestKSStatisticPerfectFit(t *testing.T) {
	// KS of a sample against its own empirical quantiles is small.
	truth := Exponential{Lambda: 1}
	xs := sample(truth, 3000, 3)
	d, err := KSStatistic(xs, truth)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.035 {
		t.Errorf("KS of true model = %g, want small", d)
	}
	// Wrong model scores much worse.
	wrong := Exponential{Lambda: 5}
	dWrong, _ := KSStatistic(xs, wrong)
	if dWrong < 3*d {
		t.Errorf("KS wrong model %g not clearly worse than true %g", dWrong, d)
	}
	if _, err := KSStatistic(nil, truth); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
}

func TestKSTwoSample(t *testing.T) {
	// Same distribution: small D, non-tiny p.
	a := sample(Normal{Mu: 0, Sigma: 1}, 800, 1)
	b := sample(Normal{Mu: 0, Sigma: 1}, 800, 2)
	d, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.08 {
		t.Errorf("same-dist D = %g", d)
	}
	if p < 0.01 {
		t.Errorf("same-dist p = %g, should not reject", p)
	}
	// Shifted distribution: large D, tiny p.
	c := sample(Normal{Mu: 1, Sigma: 1}, 800, 3)
	d, p, err = KSTwoSample(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3 {
		t.Errorf("shifted D = %g, want large", d)
	}
	if p > 1e-6 {
		t.Errorf("shifted p = %g, want tiny", p)
	}
	// Symmetry in argument order.
	d2, _, _ := KSTwoSample(c, a)
	almostEqual(t, d2, d, 1e-12, "two-sample KS symmetry")
	if _, _, err := KSTwoSample(nil, a); err != ErrEmpty {
		t.Errorf("empty sample err = %v", err)
	}
	// Identical samples: D = 0, p = 1.
	d, p, _ = KSTwoSample(a, a)
	if d != 0 || p != 1 {
		t.Errorf("identical samples: D=%g p=%g", d, p)
	}
}

func TestKSPValue(t *testing.T) {
	// Tiny statistic -> p near 1; huge statistic -> p near 0.
	if p := KSPValue(0.001, 100); p < 0.99 {
		t.Errorf("tiny D: p = %g, want ~1", p)
	}
	if p := KSPValue(0.5, 100); p > 1e-6 {
		t.Errorf("large D: p = %g, want ~0", p)
	}
	if p := KSPValue(0, 10); p != 1 {
		t.Errorf("D=0: p = %g, want 1", p)
	}
	// Monotone decreasing in D.
	prev := 1.0
	for d := 0.01; d < 0.6; d += 0.01 {
		p := KSPValue(d, 50)
		if p > prev+1e-12 {
			t.Fatalf("KS p-value not monotone at D=%g", d)
		}
		prev = p
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	// Minimize (x-3)^2 + (y+1)^2.
	f := func(p []float64) float64 {
		dx := p[0] - 3
		dy := p[1] + 1
		return dx*dx + dy*dy
	}
	best, val, err := NelderMead(f, []float64{0, 0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, best[0], 3, 1e-4, "x*")
	almostEqual(t, best[1], -1, 1e-4, "y*")
	almostEqual(t, val, 0, 1e-7, "f*")
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(p []float64) float64 {
		a := 1 - p[0]
		b := p[1] - p[0]*p[0]
		return a*a + 100*b*b
	}
	best, _, err := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, best[0], 1, 5e-3, "Rosenbrock x")
	almostEqual(t, best[1], 1, 1e-2, "Rosenbrock y")
}

func TestNelderMeadRejectsInfRegions(t *testing.T) {
	// Objective infinite for x<0; optimum at x=2.
	f := func(p []float64) float64 {
		if p[0] < 0 {
			return math.Inf(1)
		}
		return (p[0] - 2) * (p[0] - 2)
	}
	best, _, err := NelderMead(f, []float64{5}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, best[0], 2, 1e-4, "constrained optimum")
}

func TestNelderMeadEmptyInput(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NMOptions{}); err == nil {
		t.Error("empty x0: want error")
	}
}

// Property: Weibull fit round trip over random parameters.
func TestWeibullFitRoundTripProperty(t *testing.T) {
	prop := func(kSeed, lSeed uint8, seed int64) bool {
		k := 0.6 + float64(kSeed%30)/10 // 0.6 .. 3.5
		l := 0.3 + float64(lSeed%40)/10 // 0.3 .. 4.2
		truth := Weibull{K: k, Lambda: l}
		xs := sample(truth, 2500, seed)
		fit, err := FitWeibull(xs)
		if err != nil {
			return false
		}
		return math.Abs(fit.K-k) < 0.15*k+0.05 && math.Abs(fit.Lambda-l) < 0.15*l+0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}
