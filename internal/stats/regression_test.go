package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	r, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r.Slope, 2, 1e-10, "slope")
	almostEqual(t, r.Intercept, 3, 1e-10, "intercept")
	almostEqual(t, r.R2, 1, 1e-10, "R2")
	almostEqual(t, r.ResidualStdDev, 0, 1e-9, "residual sd")
	almostEqual(t, r.Predict(10), 23, 1e-9, "predict")
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i) / 10
		ys[i] = -1.5 + 0.8*xs[i] + rng.NormFloat64()*0.5
	}
	r, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r.Slope, 0.8, 0.02, "noisy slope")
	almostEqual(t, r.Intercept, -1.5, 0.3, "noisy intercept")
	if r.R2 < 0.9 {
		t.Errorf("R2 = %g, want > 0.9", r.R2)
	}
	if r.SlopeP > 1e-10 {
		t.Errorf("slope p = %g, want tiny", r.SlopeP)
	}
	if r.SlopeStdErr <= 0 {
		t.Errorf("slope stderr = %g, want > 0", r.SlopeStdErr)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x: want error")
	}
	// NaNs are dropped, leaving too few points.
	if _, err := LinearRegression([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN-thinned sample: want error")
	}
}

func TestLogLogRegression(t *testing.T) {
	// y = 10 * x^0.5 in log10 space: log y = 1 + 0.5 log x.
	xs := []float64{1, 10, 100, 1000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 * math.Sqrt(x)
	}
	r, err := LogLogRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r.Slope, 0.5, 1e-9, "power-law exponent")
	almostEqual(t, r.Intercept, 1, 1e-9, "power-law constant")
	// Non-positive points are dropped, not fatal.
	xs = append(xs, -5, 0)
	ys = append(ys, 3, 4)
	r2, err := LogLogRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r2.Slope, 0.5, 1e-9, "power-law exponent after drop")
	if r2.N != 4 {
		t.Errorf("N = %d, want 4", r2.N)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r.R, 1, 1e-12, "perfect positive r")
	almostEqual(t, r.P, 0, 1e-12, "perfect p")
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	almostEqual(t, r.R, -1, 1e-12, "perfect negative r")
}

func TestPearsonKnown(t *testing.T) {
	// Anscombe's quartet I: r ~ 0.8164.
	xs := []float64{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5}
	ys := []float64{8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, r.R, 0.81642, 1e-4, "Anscombe r")
	almostEqual(t, r.P, 0.00217, 1e-4, "Anscombe p")
	if r.N != 11 {
		t.Errorf("N = %d", r.N)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err != ErrInsufficient {
		t.Errorf("n=2: err = %v, want ErrInsufficient", err)
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x: want error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone nonlinear relation: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	s, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, s.R, 1, 1e-12, "Spearman on monotone data")
	p, _ := Pearson(xs, ys)
	if p.R >= 1-1e-9 {
		t.Errorf("Pearson on exp data = %g, expected < 1", p.R)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// All ties.
	got = Ranks([]float64{5, 5, 5})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("all-tie ranks = %v, want all 2", got)
		}
	}
}

// Property: Pearson r is bounded, symmetric in argument order, and invariant
// to positive affine transforms.
func TestPearsonInvarianceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = r.NormFloat64()
			ys[i] = 0.5*xs[i] + r.NormFloat64()
		}
		p1, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw; skip
		}
		if p1.R < -1-1e-12 || p1.R > 1+1e-12 || p1.P < 0 || p1.P > 1 {
			return false
		}
		p2, err := Pearson(ys, xs)
		if err != nil || math.Abs(p1.R-p2.R) > 1e-9 {
			return false
		}
		// Affine transform invariance: r(a*x+b, y) == r(x, y) for a > 0.
		ax := make([]float64, n)
		for i, x := range xs {
			ax[i] = 3.7*x - 11
		}
		p3, err := Pearson(ax, ys)
		return err == nil && math.Abs(p1.R-p3.R) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(45))}); err != nil {
		t.Error(err)
	}
}

// Property: regression recovers a planted line from clean data for random
// slopes/intercepts.
func TestRegressionRecoveryProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.NormFloat64() * 5
		intercept := r.NormFloat64() * 10
		n := 3 + r.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(i) + r.Float64()
			ys[i] = intercept + slope*xs[i]
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6*(1+math.Abs(slope)) &&
			math.Abs(fit.Intercept-intercept) < 1e-5*(1+math.Abs(intercept))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(45))}); err != nil {
		t.Error(err)
	}
}
