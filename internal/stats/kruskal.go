package stats

import (
	"errors"
	"sort"
)

// KruskalWallis is the result of the Kruskal–Wallis H test: a rank-based
// one-way analysis of variance across k independent groups, the
// nonparametric tool for asking whether the manufacturers' reaction-time
// (or DPM) distributions share a common location.
type KruskalWallis struct {
	// H is the test statistic (tie-corrected).
	H float64
	// DF is k-1 degrees of freedom.
	DF int
	// P is the chi-square approximation p-value.
	P float64
	// N is the total observation count.
	N int
}

// KruskalWallisTest computes the H test over the given groups. Each group
// needs at least one observation and at least two groups are required; the
// chi-square approximation is standard for group sizes >= 5.
func KruskalWallisTest(groups [][]float64) (KruskalWallis, error) {
	if len(groups) < 2 {
		return KruskalWallis{}, errors.New("stats: Kruskal-Wallis requires >= 2 groups")
	}
	var n int
	for _, g := range groups {
		if len(g) == 0 {
			return KruskalWallis{}, errors.New("stats: Kruskal-Wallis requires non-empty groups")
		}
		n += len(g)
	}
	// Pool, rank with average ties, then sum ranks per group.
	type obs struct {
		v     float64
		group int
	}
	pooled := make([]obs, 0, n)
	for gi, g := range groups {
		for _, v := range g {
			pooled = append(pooled, obs{v: v, group: gi})
		}
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	rankSum := make([]float64, len(groups))
	// Tie correction accumulator: sum of (t^3 - t) over tie runs.
	var tieTerm float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && pooled[j+1].v == pooled[i].v {
			j++
		}
		avgRank := (float64(i+1) + float64(j+1)) / 2
		runLen := float64(j - i + 1)
		if runLen > 1 {
			tieTerm += runLen*runLen*runLen - runLen
		}
		for k := i; k <= j; k++ {
			rankSum[pooled[k].group] += avgRank
		}
		i = j + 1
	}

	fn := float64(n)
	var h float64
	for gi, g := range groups {
		ng := float64(len(g))
		h += rankSum[gi] * rankSum[gi] / ng
	}
	h = 12/(fn*(fn+1))*h - 3*(fn+1)

	// Tie correction.
	denom := 1 - tieTerm/(fn*fn*fn-fn)
	if denom <= 0 {
		return KruskalWallis{}, errors.New("stats: Kruskal-Wallis degenerate (all values tied)")
	}
	h /= denom

	df := len(groups) - 1
	cdf, err := ChiSquareCDF(h, float64(df))
	if err != nil {
		return KruskalWallis{}, err
	}
	return KruskalWallis{H: h, DF: df, P: 1 - cdf, N: n}, nil
}
