package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	e, err := NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, e.Lambda, 0.5, 1e-12, "lambda")
	almostEqual(t, e.Mean(), 2, 1e-12, "mean")
	almostEqual(t, e.CDF(0), 0, 1e-12, "CDF(0)")
	almostEqual(t, e.CDF(2*math.Ln2), 0.5, 1e-12, "CDF at median")
	almostEqual(t, e.Quantile(0.5), 2*math.Ln2, 1e-12, "median")
	almostEqual(t, e.PDF(0), 0.5, 1e-12, "PDF(0)")
	if e.PDF(-1) != 0 || e.CDF(-1) != 0 {
		t.Error("negative support should be zero")
	}
	if _, err := NewExponential(0); err == nil {
		t.Error("NewExponential(0): want error")
	}
}

func TestWeibullBasics(t *testing.T) {
	// K=1 reduces to exponential with mean Lambda.
	w := Weibull{K: 1, Lambda: 3}
	e := Exponential{Lambda: 1.0 / 3}
	for _, x := range []float64{0.1, 1, 5, 10} {
		almostEqual(t, w.CDF(x), e.CDF(x), 1e-12, "Weibull(1) == Exponential CDF")
		almostEqual(t, w.PDF(x), e.PDF(x), 1e-12, "Weibull(1) == Exponential PDF")
	}
	almostEqual(t, w.Mean(), 3, 1e-12, "Weibull(1) mean")
	// K=2 is Rayleigh: mean = lambda*sqrt(pi)/2.
	ray := Weibull{K: 2, Lambda: 2}
	almostEqual(t, ray.Mean(), 2*math.Sqrt(math.Pi)/2, 1e-12, "Rayleigh mean")
	// PDF edge behaviour at x=0.
	if v := (Weibull{K: 0.5, Lambda: 1}).PDF(0); !math.IsInf(v, 1) {
		t.Errorf("K<1 PDF(0) = %g, want +Inf", v)
	}
	if v := (Weibull{K: 1, Lambda: 2}).PDF(0); v != 0.5 {
		t.Errorf("K=1 PDF(0) = %g, want 0.5", v)
	}
	if v := (Weibull{K: 2, Lambda: 1}).PDF(0); v != 0 {
		t.Errorf("K>1 PDF(0) = %g, want 0", v)
	}
}

func TestExpWeibullReducesToWeibull(t *testing.T) {
	ew := ExpWeibull{K: 1.5, Lambda: 2, Alpha: 1}
	w := Weibull{K: 1.5, Lambda: 2}
	for _, x := range []float64{0.2, 1, 3, 7} {
		almostEqual(t, ew.CDF(x), w.CDF(x), 1e-12, "ExpWeibull(alpha=1) CDF")
		almostEqual(t, ew.PDF(x), w.PDF(x), 1e-10, "ExpWeibull(alpha=1) PDF")
	}
	almostEqual(t, ew.Mean(), w.Mean(), 1e-3, "ExpWeibull mean vs closed form")
}

func TestNormalBasics(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	almostEqual(t, n.CDF(10), 0.5, 1e-12, "CDF at mean")
	almostEqual(t, n.CDF(10+1.96*2), 0.975, 1e-4, "CDF at +1.96 sigma")
	almostEqual(t, n.Quantile(0.5), 10, 1e-9, "median")
	almostEqual(t, n.Mean(), 10, 1e-12, "mean")
	almostEqual(t, n.PDF(10), 1/(2*math.Sqrt(2*math.Pi)), 1e-12, "peak density")
}

func TestLogNormalBasics(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 1}
	almostEqual(t, l.CDF(1), 0.5, 1e-12, "median at exp(mu)")
	almostEqual(t, l.Mean(), math.Exp(0.5), 1e-12, "mean")
	if l.PDF(-1) != 0 || l.CDF(0) != 0 {
		t.Error("non-positive support should be zero")
	}
	almostEqual(t, l.Quantile(0.5), 1, 1e-9, "median quantile")
}

// Property: for every distribution, Quantile(CDF(x)) ~ x on the support and
// CDF is within [0,1] and monotone.
func TestDistRoundTripProperty(t *testing.T) {
	dists := []Dist{
		Exponential{Lambda: 0.7},
		Weibull{K: 0.9, Lambda: 1.4},
		Weibull{K: 2.3, Lambda: 0.8},
		ExpWeibull{K: 1.2, Lambda: 1.0, Alpha: 2.0},
		Normal{Mu: -1, Sigma: 3},
		LogNormal{Mu: 0.5, Sigma: 0.6},
	}
	for _, d := range dists {
		prev := -1.0
		for i := 1; i < 40; i++ {
			p := float64(i) / 40
			x := d.Quantile(p)
			c := d.CDF(x)
			if math.Abs(c-p) > 1e-6 {
				t.Errorf("%T: CDF(Quantile(%g)) = %g", d, p, c)
			}
			if c < prev-1e-12 {
				t.Errorf("%T: CDF not monotone at p=%g", d, p)
			}
			prev = c
		}
	}
}

// Property: sample means converge to the distribution mean.
func TestDistSamplingMeanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dists := []Dist{
		Exponential{Lambda: 2},
		Weibull{K: 1.6, Lambda: 0.9},
		Normal{Mu: 4, Sigma: 2},
		LogNormal{Mu: 0, Sigma: 0.5},
		ExpWeibull{K: 1.5, Lambda: 1.0, Alpha: 1.5},
	}
	const n = 20000
	for _, d := range dists {
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Rand(rng)
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want) > 0.05*(1+math.Abs(want)) {
			t.Errorf("%T: sample mean %g, dist mean %g", d, got, want)
		}
	}
}

// Property: PDF integrates to ~1 (Simpson over effective support).
func TestDistPDFNormalizationProperty(t *testing.T) {
	dists := []Dist{
		Exponential{Lambda: 1.3},
		Weibull{K: 2, Lambda: 1},
		ExpWeibull{K: 1.4, Lambda: 2, Alpha: 0.8},
		Normal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 0.7},
	}
	for _, d := range dists {
		lo := d.Quantile(1e-9)
		hi := d.Quantile(1 - 1e-9)
		if _, isNormal := d.(Normal); !isNormal && lo < 1e-12 {
			lo = 1e-12
		}
		area := simpson(d.PDF, lo, hi, 1<<13)
		almostEqual(t, area, 1, 5e-3, "PDF normalization")
	}
}

func TestUniformOpenNeverBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		u := uniformOpen(rng)
		if u <= 0 || u >= 1 {
			t.Fatalf("uniformOpen returned boundary value %g", u)
		}
	}
}

func TestSimpsonQuadratic(t *testing.T) {
	// Simpson is exact for cubics.
	got := simpson(func(x float64) float64 { return x*x*x - 2*x + 1 }, 0, 2, 8)
	want := 4.0 - 4 + 2 // x^4/4 - x^2 + x over [0,2]
	almostEqual(t, got, want, 1e-12, "simpson cubic")
	// Odd n is rounded up internally.
	got = simpson(func(x float64) float64 { return x }, 0, 1, 3)
	almostEqual(t, got, 0.5, 1e-12, "simpson odd panels")
}

// quick.Check that exponential quantile/CDF relations hold for random rates.
func TestExponentialQuantileProperty(t *testing.T) {
	prop := func(lambdaSeed, pSeed uint16) bool {
		lambda := 0.01 + float64(lambdaSeed%1000)/100
		p := float64(pSeed%9998+1) / 10000
		e := Exponential{Lambda: lambda}
		x := e.Quantile(p)
		return x >= 0 && math.Abs(e.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Error(err)
	}
}
