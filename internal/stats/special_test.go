package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.9, 0.9},
		// I_x(2,2) = 3x^2 - 2x^3.
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 3*0.0625 - 2*0.015625},
		// I_x(0.5,0.5) = (2/pi) asin(sqrt(x)) (arcsine law).
		{0.5, 0.5, 0.5, 0.5},
		{0.5, 0.5, 0.25, 2 / math.Pi * math.Asin(0.5)},
		// Boundaries.
		{3, 4, 0, 0},
		{3, 4, 1, 1},
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%g,%g,%g): %v", c.a, c.b, c.x, err)
		}
		almostEqual(t, got, c.want, 1e-10, "RegIncBeta")
	}
}

func TestRegIncBetaErrors(t *testing.T) {
	if _, err := RegIncBeta(0, 1, 0.5); err == nil {
		t.Error("a=0: want error")
	}
	if _, err := RegIncBeta(1, 1, -0.1); err == nil {
		t.Error("x<0: want error")
	}
	if _, err := RegIncBeta(1, 1, 1.1); err == nil {
		t.Error("x>1: want error")
	}
}

func TestRegIncGammaLowerKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 2.5, 10} {
		got, err := RegIncGammaLower(1, x)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, 1-math.Exp(-x), 1e-10, "P(1,x)")
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 4} {
		got, err := RegIncGammaLower(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, math.Erf(math.Sqrt(x)), 1e-10, "P(0.5,x)")
	}
	got, err := RegIncGammaLower(3, 0)
	if err != nil || got != 0 {
		t.Errorf("P(3,0) = %g, %v; want 0, nil", got, err)
	}
}

func TestStudentTCDF(t *testing.T) {
	// t=0 -> 0.5 for any df.
	for _, df := range []float64{1, 5, 30} {
		got, err := StudentTCDF(0, df)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, 0.5, 1e-12, "t CDF at 0")
	}
	// df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/pi.
	for _, tv := range []float64{-3, -1, 0.5, 2, 10} {
		got, err := StudentTCDF(tv, 1)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, 0.5+math.Atan(tv)/math.Pi, 1e-10, "Cauchy CDF")
	}
	// Large df approaches the normal.
	got, _ := StudentTCDF(1.96, 1e6)
	almostEqual(t, got, NormalCDF(1.96), 1e-5, "t -> normal")
	// Infinities.
	if v, _ := StudentTCDF(math.Inf(1), 5); v != 1 {
		t.Errorf("CDF(+inf) = %g", v)
	}
	if v, _ := StudentTCDF(math.Inf(-1), 5); v != 0 {
		t.Errorf("CDF(-inf) = %g", v)
	}
}

func TestStudentTTwoSidedP(t *testing.T) {
	// Known critical value: t=2.776, df=4 -> p ~ 0.05.
	p, err := StudentTTwoSidedP(2.776, 4)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, p, 0.05, 5e-4, "two-sided p at t_0.025,4")
	// Symmetry in t.
	p2, _ := StudentTTwoSidedP(-2.776, 4)
	almostEqual(t, p2, p, 1e-12, "two-sided symmetry")
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.025, 0.3, 0.5, 0.8, 0.975, 1 - 1e-6} {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, NormalCDF(z), p, 1e-10, "quantile/CDF round trip")
	}
	// Known value.
	z, _ := NormalQuantile(0.975)
	almostEqual(t, z, 1.959963984540054, 1e-9, "z_0.975")
	if _, err := NormalQuantile(0); err == nil {
		t.Error("NormalQuantile(0): want error")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("NormalQuantile(1): want error")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// ChiSq(2) is exponential with mean 2: CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 2, 6} {
		got, err := ChiSquareCDF(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, 1-math.Exp(-x/2), 1e-10, "chi2(2) CDF")
	}
	if got, _ := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("chi2 CDF at negative x = %g", got)
	}
}

// Property: RegIncBeta is a CDF in x — within [0,1] and non-decreasing.
func TestRegIncBetaMonotoneProperty(t *testing.T) {
	prop := func(aSeed, bSeed uint8) bool {
		a := 0.1 + float64(aSeed%40)/4
		b := 0.1 + float64(bSeed%40)/4
		prev := 0.0
		for i := 0; i <= 40; i++ {
			x := float64(i) / 40
			v, err := RegIncBeta(a, b, x)
			if err != nil || v < -1e-12 || v > 1+1e-12 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}

// Property: symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBetaSymmetryProperty(t *testing.T) {
	prop := func(aSeed, bSeed, xSeed uint8) bool {
		a := 0.2 + float64(aSeed%30)/3
		b := 0.2 + float64(bSeed%30)/3
		x := float64(xSeed%99+1) / 100
		v1, err1 := RegIncBeta(a, b, x)
		v2, err2 := RegIncBeta(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(v1-(1-v2)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}
