package stats

import (
	"errors"
	"math"
)

// Histogram is a density-normalized histogram: the area under the bars
// integrates to 1, matching the PDF overlays in the paper's Figs. 11–12.
type Histogram struct {
	// Edges holds len(Counts)+1 bin boundaries, ascending.
	Edges []float64
	// Counts holds raw per-bin observation counts.
	Counts []int
	// Density holds counts normalized by (n * width): a PDF estimate.
	Density []float64
	// N is the total number of observations binned.
	N int
}

// NewHistogram bins xs into nbins equal-width bins spanning [min, max].
// With nbins <= 0 the bin count is chosen by the Freedman–Diaconis rule
// (falling back to Sturges for degenerate IQR).
func NewHistogram(xs []float64, nbins int) (Histogram, error) {
	if len(xs) == 0 {
		return Histogram{}, ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo == hi {
		hi = lo + 1 // single-valued sample: one unit-width bin
	}
	if nbins <= 0 {
		nbins = FreedmanDiaconisBins(xs)
	}
	h := Histogram{
		Edges:   make([]float64, nbins+1),
		Counts:  make([]int, nbins),
		Density: make([]float64, nbins),
		N:       len(xs),
	}
	width := (hi - lo) / float64(nbins)
	for i := range h.Edges {
		h.Edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= nbins { // x == hi lands in the last bin
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
	}
	norm := float64(h.N) * width
	for i, c := range h.Counts {
		h.Density[i] = float64(c) / norm
	}
	return h, nil
}

// FreedmanDiaconisBins returns the Freedman–Diaconis bin count for xs,
// clamped to [1, 200]; it falls back to Sturges' rule when the IQR is zero.
func FreedmanDiaconisBins(xs []float64) int {
	n := len(xs)
	if n < 2 {
		return 1
	}
	q1, _ := Quantile(xs, 0.25)
	q3, _ := Quantile(xs, 0.75)
	iqr := q3 - q1
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	span := hi - lo
	var bins int
	if iqr > 0 && span > 0 {
		width := 2 * iqr / math.Cbrt(float64(n))
		bins = int(math.Ceil(span / width))
	} else {
		bins = int(math.Ceil(math.Log2(float64(n)))) + 1 // Sturges
	}
	if bins < 1 {
		bins = 1
	}
	if bins > 200 {
		bins = 200
	}
	return bins
}

// KDE is a Gaussian kernel density estimator.
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over xs. A non-positive bandwidth selects
// Silverman's rule of thumb.
func NewKDE(xs []float64, bandwidth float64) (*KDE, error) {
	if len(xs) < 2 {
		return nil, ErrInsufficient
	}
	data := make([]float64, len(xs))
	copy(data, xs)
	if bandwidth <= 0 {
		sd, err := StdDev(data)
		if err != nil {
			return nil, err
		}
		q1, _ := Quantile(data, 0.25)
		q3, _ := Quantile(data, 0.75)
		iqr := q3 - q1
		sigma := sd
		if iqr > 0 && iqr/1.349 < sigma {
			sigma = iqr / 1.349
		}
		if sigma <= 0 {
			return nil, errors.New("stats: KDE requires non-constant data")
		}
		bandwidth = 0.9 * sigma * math.Pow(float64(len(data)), -0.2)
	}
	return &KDE{xs: data, bandwidth: bandwidth}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// PDF evaluates the density estimate at x.
func (k *KDE) PDF(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range k.xs {
		z := (x - xi) / k.bandwidth
		sum += math.Exp(-z * z / 2)
	}
	return sum * invSqrt2Pi / (float64(len(k.xs)) * k.bandwidth)
}

// Evaluate samples the density on a regular grid of n points over
// [lo, hi] and returns the grid and densities.
func (k *KDE) Evaluate(lo, hi float64, n int) (grid, dens []float64) {
	if n < 2 {
		n = 2
	}
	grid = make([]float64, n)
	dens = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		grid[i] = lo + float64(i)*step
		dens[i] = k.PDF(grid[i])
	}
	return grid, dens
}

// ECDF returns the empirical CDF of xs evaluated at x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var count int
	for _, xi := range xs {
		if xi <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}
