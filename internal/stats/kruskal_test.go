package stats

import (
	"math"
	"testing"
)

func TestKruskalWallisKnownValue(t *testing.T) {
	// Classic worked example (Conover): three groups, no ties.
	groups := [][]float64{
		{27, 2, 4, 18, 7, 9},
		{20, 8, 14, 36, 21, 22},
		{34, 31, 3, 23, 30, 6},
	}
	kw, err := KruskalWallisTest(groups)
	if err != nil {
		t.Fatal(err)
	}
	if kw.DF != 2 || kw.N != 18 {
		t.Errorf("df=%d n=%d", kw.DF, kw.N)
	}
	// Reference H computed by rank algebra: ranks sum to n(n+1)/2.
	if kw.H <= 0 {
		t.Errorf("H = %g", kw.H)
	}
	if kw.P <= 0 || kw.P >= 1 {
		t.Errorf("p = %g", kw.P)
	}
}

func TestKruskalWallisIdenticalGroups(t *testing.T) {
	// Groups drawn from the same distribution: H small, p large (usually).
	g1 := sample(Normal{Mu: 0, Sigma: 1}, 200, 1)
	g2 := sample(Normal{Mu: 0, Sigma: 1}, 200, 2)
	g3 := sample(Normal{Mu: 0, Sigma: 1}, 200, 3)
	kw, err := KruskalWallisTest([][]float64{g1, g2, g3})
	if err != nil {
		t.Fatal(err)
	}
	if kw.P < 0.001 {
		t.Errorf("same-dist p = %g, should not strongly reject", kw.P)
	}
}

func TestKruskalWallisShiftedGroup(t *testing.T) {
	g1 := sample(Normal{Mu: 0, Sigma: 1}, 200, 1)
	g2 := sample(Normal{Mu: 0, Sigma: 1}, 200, 2)
	g3 := sample(Normal{Mu: 1.5, Sigma: 1}, 200, 3)
	kw, err := KruskalWallisTest([][]float64{g1, g2, g3})
	if err != nil {
		t.Fatal(err)
	}
	if kw.P > 1e-10 {
		t.Errorf("shifted group p = %g, want tiny", kw.P)
	}
	if kw.H < 50 {
		t.Errorf("H = %g, want large", kw.H)
	}
}

func TestKruskalWallisTieCorrection(t *testing.T) {
	// Heavy ties still produce a valid statistic.
	groups := [][]float64{
		{1, 1, 1, 2, 2},
		{2, 2, 3, 3, 3},
		{3, 4, 4, 4, 4},
	}
	kw, err := KruskalWallisTest(groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(kw.H) || kw.H <= 0 {
		t.Errorf("tied H = %g", kw.H)
	}
}

func TestKruskalWallisErrors(t *testing.T) {
	if _, err := KruskalWallisTest([][]float64{{1, 2}}); err == nil {
		t.Error("one group: want error")
	}
	if _, err := KruskalWallisTest([][]float64{{1}, {}}); err == nil {
		t.Error("empty group: want error")
	}
	if _, err := KruskalWallisTest([][]float64{{5, 5}, {5, 5}}); err == nil {
		t.Error("all tied: want error")
	}
}
