package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSumKahan(t *testing.T) {
	// A sum that loses precision with naive accumulation.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1.0)
	}
	xs = append(xs, -1e16)
	if got := Sum(xs); got != 10000 {
		t.Errorf("Kahan sum = %g, want 10000", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, m, 5, 1e-12, "mean")
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, v, 32.0/7.0, 1e-12, "variance")
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, sd, math.Sqrt(32.0/7.0), 1e-12, "stddev")
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance([]float64{1}); err != ErrInsufficient {
		t.Errorf("Variance([1]) err = %v, want ErrInsufficient", err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := BoxPlot(nil); err != ErrEmpty {
		t.Errorf("BoxPlot(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo != -9 || hi != 6 {
		t.Errorf("min/max = %g/%g, want -9/6", lo, hi)
	}
}

func TestGeometricMean(t *testing.T) {
	gm, err := GeometricMean([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, gm, 10, 1e-9, "geometric mean")
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("GeometricMean with negative input: want error")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {1, 4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, c.want, 1e-12, "quantile")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5): want error")
	}
}

func TestQuantileSingleValue(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("single-value quantile = %g, want 42", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, _ := Median([]float64{5, 1, 3})
	almostEqual(t, m, 3, 1e-12, "odd median")
	m, _ = Median([]float64{4, 1, 3, 2})
	almostEqual(t, m, 2.5, 1e-12, "even median")
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	f, err := BoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Min != 1 || f.Max != 100 || f.N != 10 {
		t.Errorf("min/max/n = %g/%g/%d", f.Min, f.Max, f.N)
	}
	almostEqual(t, f.Median, 5.5, 1e-12, "median")
	if len(f.Outliers) != 1 || f.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", f.Outliers)
	}
	if f.HighWhisker != 9 {
		t.Errorf("high whisker = %g, want 9", f.HighWhisker)
	}
	if f.LowWhisker != 1 {
		t.Errorf("low whisker = %g, want 1", f.LowWhisker)
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric data: skewness ~ 0.
	sym := []float64{-2, -1, 0, 1, 2}
	s, err := Skewness(sym)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, s, 0, 1e-12, "symmetric skewness")
	// Right-tailed data: positive skew.
	right := []float64{1, 1, 1, 2, 2, 3, 10}
	s, _ = Skewness(right)
	if s <= 0 {
		t.Errorf("right-tailed skewness = %g, want > 0", s)
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumSum = %v, want %v", got, want)
		}
	}
	if out := CumSum(nil); len(out) != 0 {
		t.Errorf("CumSum(nil) = %v, want empty", out)
	}
}

func TestLog10AllAndDropNaN(t *testing.T) {
	xs := Log10All([]float64{100, 0, -5, 10})
	if xs[0] != 2 || !math.IsNaN(xs[1]) || !math.IsNaN(xs[2]) || xs[3] != 1 {
		t.Errorf("Log10All = %v", xs)
	}
	clean := DropNaN(xs)
	if len(clean) != 2 || clean[0] != 2 || clean[1] != 1 {
		t.Errorf("DropNaN = %v", clean)
	}
}

func TestPairedDropNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	ys := []float64{10, 20, math.Inf(1), 40}
	ox, oy := PairedDropNaN(xs, ys)
	if len(ox) != 2 || ox[0] != 1 || ox[1] != 4 || oy[0] != 10 || oy[1] != 40 {
		t.Errorf("PairedDropNaN = %v, %v", ox, oy)
	}
}

// Property: quantile is monotone in p and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		prev := lo
		for p := 0.0; p <= 1.0001; p += 0.05 {
			pp := math.Min(p, 1)
			q, err := Quantile(xs, pp)
			if err != nil {
				return false
			}
			if q < prev-1e-9 || q < lo-1e-9 || q > hi+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestMeanVarianceBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*2000 - 1000
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			return false
		}
		v, err := Variance(xs)
		return err == nil && v >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// Property: BoxPlot invariants Min <= LowWhisker <= Q1 <= Median <= Q3 <=
// HighWhisker <= Max, and outlier count + in-fence count == N.
func TestBoxPlotInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(80)
		xs := make([]float64, n)
		for i := range xs {
			// Mix of normal bulk and occasional large outliers.
			xs[i] = r.NormFloat64()
			if r.Intn(10) == 0 {
				xs[i] *= 50
			}
		}
		f, err := BoxPlot(xs)
		if err != nil {
			return false
		}
		// Quartiles are monotone; whiskers stay inside [Min, Max] and
		// ordered. Note a whisker may legitimately cross an interpolated
		// quartile when an extreme outlier drags Q1/Q3 toward it.
		ordered := f.Min <= f.Q1+1e-12 &&
			f.Q1 <= f.Median+1e-12 && f.Median <= f.Q3+1e-12 &&
			f.Q3 <= f.Max+1e-12 &&
			f.Min <= f.LowWhisker && f.LowWhisker <= f.HighWhisker+1e-12 &&
			f.HighWhisker <= f.Max
		if !ordered {
			return false
		}
		sort.Float64s(f.Outliers)
		for _, o := range f.Outliers {
			if o >= f.Q1-1.5*f.IQR() && o <= f.Q3+1.5*f.IQR() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
