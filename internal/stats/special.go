package stats

import (
	"errors"
	"math"
)

// Special functions required by the distribution machinery: the regularized
// incomplete beta and gamma functions, implemented with the standard
// series/continued-fraction split (Numerical Recipes §6.2/§6.4, Lentz's
// algorithm). They back the Student-t CDF (Pearson p-values), the chi-square
// CDF, and gamma-family distributions.

const (
	specialEps     = 3e-14
	specialMaxIter = 300
)

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and 0 <= x <= 1.
func RegIncBeta(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return 0, errors.New("stats: RegIncBeta requires a, b > 0")
	case x < 0 || x > 1:
		return 0, errors.New("stats: RegIncBeta requires x in [0,1]")
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the continued fraction in its rapidly converging region.
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) (float64, error) {
	const tiny = 1e-30
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= specialMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			return h, nil
		}
	}
	return 0, errors.New("stats: incomplete beta continued fraction did not converge")
}

// RegIncGammaLower returns the regularized lower incomplete gamma function
// P(a, x) for a > 0, x >= 0.
func RegIncGammaLower(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, errors.New("stats: RegIncGammaLower requires a > 0")
	case x < 0:
		return 0, errors.New("stats: RegIncGammaLower requires x >= 0")
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges quickly.
		return gammaSeries(a, x)
	}
	// Continued fraction for Q(a,x); P = 1-Q.
	q, err := gammaCF(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) (float64, error) {
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < specialMaxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*specialEps {
			return sum * math.Exp(-x+a*math.Log(x)-lgamma(a)), nil
		}
	}
	return 0, errors.New("stats: incomplete gamma series did not converge")
}

// gammaCF evaluates Q(a,x) by Lentz's continued fraction.
func gammaCF(a, x float64) (float64, error) {
	const tiny = 1e-30
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= specialMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			return h * math.Exp(-x+a*math.Log(x)-lgamma(a)), nil
		}
	}
	return 0, errors.New("stats: incomplete gamma continued fraction did not converge")
}

// lgamma wraps math.Lgamma discarding the sign (arguments here are > 0).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// StudentTCDF returns P(T <= t) for Student's t distribution with df degrees
// of freedom.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stats: StudentTCDF requires df > 0")
	}
	if math.IsInf(t, 1) {
		return 1, nil
	}
	if math.IsInf(t, -1) {
		return 0, nil
	}
	x := df / (df + t*t)
	ib, err := RegIncBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	if t > 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// StudentTTwoSidedP returns the two-sided p-value for observing |T| >= |t|
// under a t distribution with df degrees of freedom.
func StudentTTwoSidedP(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stats: StudentTTwoSidedP requires df > 0")
	}
	x := df / (df + t*t)
	ib, err := RegIncBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	return ib, nil
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// probability p in (0, 1), using the Acklam rational approximation refined
// by one Halley step (absolute error below 1e-12).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("stats: NormalQuantile requires p in (0,1)")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x, k float64) (float64, error) {
	if k <= 0 {
		return 0, errors.New("stats: ChiSquareCDF requires k > 0")
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaLower(k/2, x/2)
}
