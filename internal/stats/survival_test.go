package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, S(t) is the empirical survival function.
	obs := []Observation{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct{ t, s float64 }{
		{0.5, 1}, {1, 0.75}, {2, 0.5}, {3, 0.25}, {4, 0}, {99, 0},
	}
	for _, w := range wants {
		if got := km.At(w.t); math.Abs(got-w.s) > 1e-12 {
			t.Errorf("S(%g) = %g, want %g", w.t, got, w.s)
		}
	}
	if med, ok := km.MedianTime(); !ok || med != 2 {
		t.Errorf("median = %g, %v", med, ok)
	}
}

func TestKaplanMeierClassicExample(t *testing.T) {
	// Standard textbook example (Kleinbaum): times 6,6,6,7,10,13,16,22,23
	// events; 6+,9+,10+,11+,17+,19+,20+,25+,32+,32+,34+,35+ censored
	// (leukemia 6-MP arm).
	obs := []Observation{
		{Time: 6}, {Time: 6}, {Time: 6}, {Time: 7}, {Time: 10},
		{Time: 13}, {Time: 16}, {Time: 22}, {Time: 23},
		{Time: 6, Censored: true}, {Time: 9, Censored: true},
		{Time: 10, Censored: true}, {Time: 11, Censored: true},
		{Time: 17, Censored: true}, {Time: 19, Censored: true},
		{Time: 20, Censored: true}, {Time: 25, Censored: true},
		{Time: 32, Censored: true}, {Time: 32, Censored: true},
		{Time: 34, Censored: true}, {Time: 35, Censored: true},
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Published values: S(6)=0.857, S(10)=0.753, S(22)=0.538.
	almostEqual(t, km.At(6), 0.857, 0.001, "S(6)")
	almostEqual(t, km.At(10), 0.753, 0.001, "S(10)")
	almostEqual(t, km.At(22), 0.538, 0.001, "S(22)")
	if km.Censored != 12 || km.N != 21 {
		t.Errorf("censored=%d n=%d", km.Censored, km.N)
	}
	// Greenwood errors are positive and grow.
	var prev float64
	for _, p := range km.Points {
		if p.StdErr <= 0 {
			t.Errorf("stderr at %g = %g", p.Time, p.StdErr)
		}
		if p.StdErr+1e-12 < prev {
			// Greenwood SE typically grows with time here.
			t.Logf("stderr dipped at %g", p.Time)
		}
		prev = p.StdErr
	}
	// Curve never reaches 0.5 with this censoring? S(23)=0.448 < 0.5, so
	// the median exists at 23.
	if med, ok := km.MedianTime(); !ok || med != 23 {
		t.Errorf("median = %g, %v; want 23", med, ok)
	}
}

func TestKaplanMeierRestrictedMean(t *testing.T) {
	obs := []Observation{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Area under the staircase to tau=4: 1*1 + 0.75*1 + 0.5*1 + 0.25*1.
	almostEqual(t, km.RestrictedMean(4), 2.5, 1e-12, "restricted mean")
	// Truncated at tau=2: 1*1 + 0.75*1.
	almostEqual(t, km.RestrictedMean(2), 1.75, 1e-12, "restricted mean tau=2")
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := NewKaplanMeier(nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewKaplanMeier([]Observation{{Time: -1}}); err == nil {
		t.Error("negative time: want error")
	}
	// All censored: no steps, S stays 1.
	km, err := NewKaplanMeier([]Observation{{Time: 5, Censored: true}})
	if err != nil {
		t.Fatal(err)
	}
	if km.At(10) != 1 {
		t.Error("all-censored curve should stay at 1")
	}
	if _, ok := km.MedianTime(); ok {
		t.Error("all-censored median should not exist")
	}
}

func TestLogRankIdenticalGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gen := func(rate float64, n int) []Observation {
		e := Exponential{Lambda: rate}
		out := make([]Observation, n)
		for i := range out {
			out[i] = Observation{Time: e.Rand(rng), Censored: rng.Float64() < 0.2}
		}
		return out
	}
	a := gen(0.1, 300)
	b := gen(0.1, 300)
	chi2, p, err := LogRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("same-rate log-rank p = %g (chi2 %g), should not strongly reject", p, chi2)
	}
	// Clearly different hazards reject.
	c := gen(0.4, 300)
	_, p, err = LogRank(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("different-rate log-rank p = %g, want tiny", p)
	}
}

func TestLogRankErrors(t *testing.T) {
	if _, _, err := LogRank(nil, []Observation{{Time: 1}}); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	// No events at all: degenerate.
	a := []Observation{{Time: 1, Censored: true}}
	b := []Observation{{Time: 2, Censored: true}}
	if _, _, err := LogRank(a, b); err == nil {
		t.Error("no events: want error")
	}
}
