package stats

import (
	"errors"
	"math"
	"sort"
)

// FitExponential fits an exponential distribution to xs by maximum
// likelihood (rate = 1/mean). All observations must be non-negative.
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) == 0 {
		return Exponential{}, ErrEmpty
	}
	for _, x := range xs {
		if x < 0 {
			return Exponential{}, errors.New("stats: exponential fit requires non-negative data")
		}
	}
	m, _ := Mean(xs)
	if m <= 0 {
		return Exponential{}, errors.New("stats: exponential fit requires positive mean")
	}
	return Exponential{Lambda: 1 / m}, nil
}

// FitWeibull fits a two-parameter Weibull distribution to xs by maximum
// likelihood. The shape equation
//
//	g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
//
// is solved by Newton's method with a bisection safeguard; the scale then
// follows in closed form. All observations must be positive.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 3 {
		return Weibull{}, ErrInsufficient
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Weibull{}, errors.New("stats: Weibull fit requires positive data")
		}
		logs[i] = math.Log(x)
	}
	lo0, _ := Min(xs)
	hi0, _ := Max(xs)
	if lo0 == hi0 {
		return Weibull{}, errors.New("stats: Weibull fit requires non-constant data")
	}
	meanLog, _ := Mean(logs)

	g := func(k float64) float64 {
		var sumXk, sumXkLog float64
		for i, x := range xs {
			xk := math.Pow(x, k)
			sumXk += xk
			sumXkLog += xk * logs[i]
		}
		return sumXkLog/sumXk - 1/k - meanLog
	}

	// Bracket the root. g is increasing in k; g(k)->-inf as k->0+ and
	// g(k)->max(log x)-mean(log x)>0 as k->inf (unless all xs equal).
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e4 {
			return Weibull{}, errors.New("stats: Weibull shape did not bracket (degenerate sample)")
		}
	}
	for g(lo) > 0 {
		lo /= 2
		if lo < 1e-8 {
			return Weibull{}, errors.New("stats: Weibull shape did not bracket (degenerate sample)")
		}
	}

	// Newton iteration with numeric derivative, falling back to bisection
	// when a step leaves the bracket.
	k := (lo + hi) / 2
	for iter := 0; iter < 200; iter++ {
		gk := g(k)
		if math.Abs(gk) < 1e-12 {
			break
		}
		if gk > 0 {
			hi = k
		} else {
			lo = k
		}
		h := 1e-6 * (1 + math.Abs(k))
		deriv := (g(k+h) - gk) / h
		next := k
		if deriv != 0 {
			next = k - gk/deriv
		}
		if next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-k) < 1e-12*(1+math.Abs(k)) {
			k = next
			break
		}
		k = next
	}

	var sumXk float64
	for _, x := range xs {
		sumXk += math.Pow(x, k)
	}
	lambda := math.Pow(sumXk/float64(len(xs)), 1/k)
	if k <= 0 || lambda <= 0 || math.IsNaN(k) || math.IsNaN(lambda) {
		return Weibull{}, errors.New("stats: Weibull fit diverged")
	}
	return Weibull{K: k, Lambda: lambda}, nil
}

// FitExpWeibull fits a three-parameter exponentiated Weibull distribution to
// xs by maximizing the log-likelihood with Nelder–Mead, started from the
// plain Weibull MLE with Alpha = 1.
func FitExpWeibull(xs []float64) (ExpWeibull, error) {
	if len(xs) < 5 {
		return ExpWeibull{}, ErrInsufficient
	}
	w, err := FitWeibull(xs)
	if err != nil {
		return ExpWeibull{}, err
	}
	// Optimize in log space so the simplex stays in the positive orthant.
	negLL := func(p []float64) float64 {
		d := ExpWeibull{
			K:      math.Exp(p[0]),
			Lambda: math.Exp(p[1]),
			Alpha:  math.Exp(p[2]),
		}
		var ll float64
		for _, x := range xs {
			f := d.PDF(x)
			if f <= 0 || math.IsNaN(f) {
				return math.Inf(1)
			}
			ll += math.Log(f)
		}
		return -ll
	}
	start := []float64{math.Log(w.K), math.Log(w.Lambda), 0}
	best, _, err := NelderMead(negLL, start, NMOptions{MaxIter: 2000, Tol: 1e-10, Step: 0.25})
	if err != nil {
		return ExpWeibull{}, err
	}
	out := ExpWeibull{
		K:      math.Exp(best[0]),
		Lambda: math.Exp(best[1]),
		Alpha:  math.Exp(best[2]),
	}
	if math.IsNaN(out.K) || math.IsNaN(out.Lambda) || math.IsNaN(out.Alpha) {
		return ExpWeibull{}, errors.New("stats: exponentiated Weibull fit diverged")
	}
	return out, nil
}

// KSStatistic returns the Kolmogorov–Smirnov statistic D = sup |F_n - F|
// between the empirical CDF of xs and dist.
func KSStatistic(xs []float64, dist Dist) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := dist.CDF(x)
		upper := (float64(i)+1)/n - f
		lower := f - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d, nil
}

// KSTwoSample computes the two-sample Kolmogorov–Smirnov statistic
// D = sup |F_a - F_b| between the empirical CDFs of two samples, plus its
// asymptotic p-value (using the effective sample size n_a*n_b/(n_a+n_b)).
// It is the paper-adjacent tool for asking whether two manufacturers'
// reaction-time distributions differ.
func KSTwoSample(a, b []float64) (d, p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, ErrEmpty
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	var i, j int
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	return d, KSPValue(d, int(math.Round(ne))), nil
}

// KSPValue approximates the asymptotic two-sided p-value of a KS statistic d
// with sample size n, using the Kolmogorov series.
func KSPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	en := math.Sqrt(float64(n))
	lambda := (en + 0.12 + 0.11/en) * d
	var q float64
	if lambda < 1.18 {
		// Jacobi-theta complementary form converges fast for small lambda,
		// where the alternating series above needs thousands of terms.
		factor := math.Sqrt(2*math.Pi) / lambda
		var cdf float64
		for j := 1; j <= 20; j++ {
			k := float64(2*j - 1)
			cdf += math.Exp(-k * k * math.Pi * math.Pi / (8 * lambda * lambda))
		}
		q = 1 - factor*cdf
	} else {
		for j := 1; j <= 100; j++ {
			term := 2 * math.Pow(-1, float64(j-1)) * math.Exp(-2*lambda*lambda*float64(j*j))
			q += term
			if math.Abs(term) < 1e-12 {
				break
			}
		}
	}
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
