// Package stats is a from-scratch, stdlib-only statistics library covering
// everything the paper's Stage-IV analysis needs: descriptive statistics and
// quantiles, ordinary least squares regression, correlation with p-values,
// parametric distributions with maximum-likelihood fitting (exponential,
// Weibull, exponentiated Weibull), histogram and kernel density estimation,
// Kolmogorov–Smirnov goodness of fit, and bootstrap confidence intervals.
//
// Go's ecosystem lacks a pandas/scipy equivalent; this package implements
// the required subset with numerically careful algorithms (compensated
// summation, continued-fraction special functions) and deterministic,
// injectable randomness.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrInsufficient is returned by estimators that require more observations
// than were provided.
var ErrInsufficient = errors.New("stats: insufficient sample size")

// Sum returns the sum of xs using Kahan compensated summation, which keeps
// error growth O(1) instead of O(n) for long, mixed-magnitude series such as
// cumulative mileage records.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficient
	}
	m, _ := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Quantile returns the p-th quantile (0 <= p <= 1) of xs using the type-7
// (linear interpolation) estimator, the default in R and NumPy. xs need not
// be sorted.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile probability outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// quantileSorted is Quantile on an already-sorted slice, without copying.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// FiveNum is a box-plot summary: minimum, first quartile, median, third
// quartile, and maximum, plus the whisker positions under the 1.5*IQR rule
// and any points beyond them.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	// LowWhisker and HighWhisker are the most extreme data points within
	// 1.5*IQR of the nearest quartile.
	LowWhisker, HighWhisker float64
	// Outliers holds points beyond the whiskers, ascending.
	Outliers []float64
	// N is the sample size.
	N int
}

// IQR returns the interquartile range Q3-Q1.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// BoxPlot computes the five-number summary of xs with Tukey whiskers.
func BoxPlot(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	f := FiveNum{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
	lowFence := f.Q1 - 1.5*f.IQR()
	highFence := f.Q3 + 1.5*f.IQR()
	f.LowWhisker, f.HighWhisker = f.Max, f.Min
	for _, x := range sorted {
		if x >= lowFence && x < f.LowWhisker {
			f.LowWhisker = x
		}
		if x <= highFence && x > f.HighWhisker {
			f.HighWhisker = x
		}
		if x < lowFence || x > highFence {
			f.Outliers = append(f.Outliers, x)
		}
	}
	return f, nil
}

// Skewness returns the adjusted Fisher–Pearson sample skewness of xs.
func Skewness(xs []float64) (float64, error) {
	n := float64(len(xs))
	if len(xs) < 3 {
		return 0, ErrInsufficient
	}
	m, _ := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0, errors.New("stats: zero variance")
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2), nil
}

// CumSum returns the running cumulative sum of xs.
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		out[i] = sum
	}
	return out
}

// Log10All returns log10 of every element. Elements <= 0 map to NaN.
func Log10All(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			out[i] = math.NaN()
		} else {
			out[i] = math.Log10(x)
		}
	}
	return out
}

// DropNaN returns xs without NaN or Inf entries.
func DropNaN(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// PairedDropNaN filters parallel slices xs, ys to indices where both values
// are finite. It returns copies; inputs are not modified.
func PairedDropNaN(xs, ys []float64) ([]float64, []float64) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	ox := make([]float64, 0, n)
	oy := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		ox = append(ox, xs[i])
		oy = append(oy, ys[i])
	}
	return ox, oy
}
