package stats

import (
	"errors"
	"math"
)

// LinReg is the result of an ordinary least squares fit y = Intercept +
// Slope*x with the standard Gaussian-error inference quantities.
type LinReg struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// SlopeStdErr and InterceptStdErr are the standard errors of the
	// estimates.
	SlopeStdErr     float64
	InterceptStdErr float64
	// SlopeT and SlopeP are the t statistic and two-sided p-value for the
	// null hypothesis Slope == 0.
	SlopeT float64
	SlopeP float64
	// ResidualStdDev is the residual standard error.
	ResidualStdDev float64
	// N is the number of points fit.
	N int
}

// Predict evaluates the fitted line at x.
func (r LinReg) Predict(x float64) float64 { return r.Intercept + r.Slope*x }

// LinearRegression fits y = a + b*x by ordinary least squares. It requires
// at least three points for the inference quantities; with exactly two
// points the line is exact and standard errors are zero.
func LinearRegression(xs, ys []float64) (LinReg, error) {
	xs, ys = PairedDropNaN(xs, ys)
	n := len(xs)
	if n < 2 {
		return LinReg{}, ErrInsufficient
	}
	meanX, _ := Mean(xs)
	meanY, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{}, errors.New("stats: regression requires non-constant x")
	}
	r := LinReg{N: n}
	r.Slope = sxy / sxx
	r.Intercept = meanY - r.Slope*meanX

	var sse float64
	for i := range xs {
		resid := ys[i] - r.Predict(xs[i])
		sse += resid * resid
	}
	if syy > 0 {
		r.R2 = 1 - sse/syy
	} else {
		r.R2 = 1 // constant y fit exactly
	}
	if n > 2 {
		mse := sse / float64(n-2)
		r.ResidualStdDev = math.Sqrt(mse)
		r.SlopeStdErr = math.Sqrt(mse / sxx)
		var sumX2 float64
		for _, x := range xs {
			sumX2 += x * x
		}
		r.InterceptStdErr = math.Sqrt(mse * sumX2 / (float64(n) * sxx))
		if r.SlopeStdErr > 0 {
			r.SlopeT = r.Slope / r.SlopeStdErr
			p, err := StudentTTwoSidedP(r.SlopeT, float64(n-2))
			if err != nil {
				return LinReg{}, err
			}
			r.SlopeP = p
		}
	}
	return r, nil
}

// LogLogRegression fits log10(y) = a + b*log10(x), the form of the paper's
// Fig. 5 and Fig. 9 trend lines. Points with non-positive x or y are
// dropped.
func LogLogRegression(xs, ys []float64) (LinReg, error) {
	lx := Log10All(xs)
	ly := Log10All(ys)
	return LinearRegression(lx, ly)
}

// PearsonResult is a correlation coefficient with its significance test.
type PearsonResult struct {
	R float64 // correlation coefficient in [-1, 1]
	P float64 // two-sided p-value under the t approximation
	N int     // sample size
}

// Pearson computes the Pearson product-moment correlation between xs and ys
// and its two-sided p-value using the exact t transform
// t = r*sqrt((n-2)/(1-r^2)) with n-2 degrees of freedom.
func Pearson(xs, ys []float64) (PearsonResult, error) {
	xs, ys = PairedDropNaN(xs, ys)
	n := len(xs)
	if n < 3 {
		return PearsonResult{}, ErrInsufficient
	}
	meanX, _ := Mean(xs)
	meanY, _ := Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return PearsonResult{}, errors.New("stats: correlation requires non-constant input")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp tiny floating excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	res := PearsonResult{R: r, N: n}
	if r == 1 || r == -1 {
		res.P = 0
		return res, nil
	}
	df := float64(n - 2)
	t := r * math.Sqrt(df/(1-r*r))
	p, err := StudentTTwoSidedP(t, df)
	if err != nil {
		return PearsonResult{}, err
	}
	res.P = p
	return res, nil
}

// Spearman computes the Spearman rank correlation between xs and ys (ties
// receive average ranks) with the t-approximation p-value.
func Spearman(xs, ys []float64) (PearsonResult, error) {
	xs, ys = PairedDropNaN(xs, ys)
	if len(xs) < 3 {
		return PearsonResult{}, ErrInsufficient
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs with ties assigned their average
// rank (the "fractional" method).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort of the index slice by value.
	sortIdxByValue(idx, xs)
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// sortIdxByValue sorts idx so xs[idx[i]] ascends (stable not required —
// ties get averaged afterwards).
func sortIdxByValue(idx []int, xs []float64) {
	// Simple bottom-up merge sort to avoid pulling in sort.Slice's
	// reflection for hot paths; n here is small but this keeps the package
	// allocation-predictable.
	tmp := make([]int, len(idx))
	for width := 1; width < len(idx); width *= 2 {
		for lo := 0; lo < len(idx); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(idx) {
				mid = len(idx)
			}
			if hi > len(idx) {
				hi = len(idx)
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if xs[idx[i]] <= xs[idx[j]] {
					tmp[k] = idx[i]
					i++
				} else {
					tmp[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				tmp[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				tmp[k] = idx[j]
				j++
				k++
			}
			copy(idx[lo:hi], tmp[lo:hi])
		}
	}
}
