package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// BootstrapCI is a percentile bootstrap confidence interval for a statistic.
type BootstrapCI struct {
	// Point is the statistic evaluated on the original sample.
	Point float64
	// Low and High bound the (1-alpha) percentile interval.
	Low, High float64
	// Level is the confidence level (e.g. 0.95).
	Level float64
	// Resamples is the number of bootstrap replicates drawn.
	Resamples int
}

// Bootstrap computes a percentile bootstrap confidence interval for the
// statistic stat over xs at confidence level (e.g. 0.95), drawing resamples
// replicates with the supplied random source. The paper's small-n accident
// metrics (DPA, APM) are reported with this machinery in the reproduction.
func Bootstrap(xs []float64, stat func([]float64) float64, resamples int, level float64, rng *rand.Rand) (BootstrapCI, error) {
	if len(xs) == 0 {
		return BootstrapCI{}, ErrEmpty
	}
	if resamples < 10 {
		return BootstrapCI{}, errors.New("stats: bootstrap requires >= 10 resamples")
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, errors.New("stats: bootstrap level must be in (0,1)")
	}
	if rng == nil {
		return BootstrapCI{}, errors.New("stats: bootstrap requires a random source")
	}
	reps := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		reps[r] = stat(buf)
	}
	sort.Float64s(reps)
	alpha := 1 - level
	return BootstrapCI{
		Point:     stat(xs),
		Low:       quantileSorted(reps, alpha/2),
		High:      quantileSorted(reps, 1-alpha/2),
		Level:     level,
		Resamples: resamples,
	}, nil
}

// PermutationTestCorr estimates a permutation p-value for the Pearson
// correlation of (xs, ys): the fraction of label permutations whose |r|
// meets or exceeds the observed |r|. It complements the parametric t-based
// p-value for small samples.
func PermutationTestCorr(xs, ys []float64, permutations int, rng *rand.Rand) (float64, error) {
	xs, ys = PairedDropNaN(xs, ys)
	if len(xs) < 3 {
		return 0, ErrInsufficient
	}
	if permutations < 10 {
		return 0, errors.New("stats: permutation test requires >= 10 permutations")
	}
	if rng == nil {
		return 0, errors.New("stats: permutation test requires a random source")
	}
	obs, err := Pearson(xs, ys)
	if err != nil {
		return 0, err
	}
	absObs := obs.R
	if absObs < 0 {
		absObs = -absObs
	}
	perm := make([]float64, len(ys))
	copy(perm, ys)
	exceed := 0
	for p := 0; p < permutations; p++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r, err := Pearson(xs, perm)
		if err != nil {
			continue
		}
		abs := r.R
		if abs < 0 {
			abs = -abs
		}
		if abs >= absObs {
			exceed++
		}
	}
	// Add-one smoothing keeps the estimate away from an impossible 0.
	return (float64(exceed) + 1) / (float64(permutations) + 1), nil
}
