// Package pipeline wires the four stages of the paper's Fig. 1 together:
//
//	Stage I   data collection  — synthetic corpus (package synth) rendered
//	                             to scanned documents (package scandoc)
//	Stage II  digitization     — OCR with noise + manual fallback (ocr),
//	                             parsing/normalization (parse)
//	Stage III NLP              — failure dictionary + voting classifier
//	                             (nlp), optionally corpus-expanded
//	Stage IV  analysis         — consolidated failure DB (core)
//
// The result carries per-stage diagnostics (OCR artifacts, parse defects,
// tag-recovery accuracy against the planted ground truth) so experiments
// can attribute end-to-end error to individual stages, plus per-stage
// wall-clock timings (StageTimings) so runs report where time goes.
//
// # Concurrency model
//
// Stages II and III fan out across bounded worker pools sized by
// Config.Workers (<= 0 selects GOMAXPROCS, 1 forces sequential execution):
// OCR decoding (ocr.DecodeAllConcurrent), parsing (parse.ParseConcurrent,
// one worker per document), and cause classification
// (nlp.Classifier.ClassifyAllConcurrent, contiguous shards of the cause
// list). Every parallel step is deterministic by construction — OCR noise
// is derived per document, documents parse into private fragments merged
// in input order, and the classifier is read-only after construction — so
// pipeline output is byte-identical for any worker count and any seed.
// Dictionary expansion and the final consolidation remain sequential:
// expansion is an iterated global fixpoint and consolidation is a cheap
// ordered assembly.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"avfda/internal/core"
	"avfda/internal/nlp"
	"avfda/internal/ocr"
	"avfda/internal/ontology"
	"avfda/internal/parse"
	"avfda/internal/scandoc"
	"avfda/internal/schema"
	"avfda/internal/synth"
)

// Config parameterizes an end-to-end run.
type Config struct {
	// Synth configures corpus generation (Stage I).
	Synth synth.Config
	// OCR configures the digitization noise model (Stage II).
	OCR ocr.Config
	// NLP configures the classifier (Stage III).
	NLP nlp.Options
	// ExpandDictionary enables the corpus-mining dictionary passes the
	// paper describes ("several passes over the dataset").
	ExpandDictionary bool
	// Expand tunes the expansion when enabled.
	Expand nlp.ExpandOptions
	// Workers bounds the worker pools of the concurrent stages (OCR
	// decoding, parsing, classification). <= 0 selects GOMAXPROCS and 1
	// forces sequential execution; output is identical at any setting.
	Workers int
}

// DefaultConfig returns the configuration used for the reproduction runs.
func DefaultConfig() Config {
	return Config{
		Synth:            synth.Config{Seed: 1},
		OCR:              ocr.DefaultConfig(),
		NLP:              nlp.DefaultOptions(),
		ExpandDictionary: true,
	}
}

// StageTimings records per-stage wall-clock time for one pipeline run.
// Stages that did not execute (Synth under RunOnCorpus, Expand when
// dictionary expansion is disabled) stay zero.
type StageTimings struct {
	// Synth is Stage I corpus generation (Run only).
	Synth time.Duration
	// Render is the corpus-to-scanned-documents step.
	Render time.Duration
	// OCR is document decoding plus digitization-stat aggregation.
	OCR time.Duration
	// Parse is normalization of decoded text into schema form.
	Parse time.Duration
	// Expand is the corpus-mining dictionary expansion passes.
	Expand time.Duration
	// Classify is classifier construction plus cause classification.
	Classify time.Duration
	// Build is the ordered consolidation into the failure database.
	Build time.Duration
}

// Total sums the recorded stage timings. Result.Elapsed equals it.
func (s StageTimings) Total() time.Duration {
	return s.Synth + s.Render + s.OCR + s.Parse + s.Expand + s.Classify + s.Build
}

// String renders the nonzero stages compactly, in pipeline order.
func (s StageTimings) String() string {
	var b strings.Builder
	add := func(name string, d time.Duration) {
		if d == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", name, d.Round(time.Microsecond))
	}
	add("synth", s.Synth)
	add("render", s.Render)
	add("ocr", s.OCR)
	add("parse", s.Parse)
	add("expand", s.Expand)
	add("classify", s.Classify)
	add("build", s.Build)
	return b.String()
}

// OCRStats aggregates digitization diagnostics across all documents.
type OCRStats struct {
	Documents         int
	Pages             int
	ManualPages       int
	Substitutions     int
	DroppedSeparators int
	MergedLines       int
	MeanConfidence    float64
}

// Accuracy scores recovered tags against the planted ground truth, matched
// by (manufacturer, vehicle, timestamp).
type Accuracy struct {
	// Matched counts recovered events that were matched to a truth event.
	Matched int
	// TagCorrect and CategoryCorrect count matched events whose recovered
	// tag/category equals the planted one.
	TagCorrect      int
	CategoryCorrect int
	// Confusion counts matched events by (planted, recovered) tag pair —
	// the classifier's confusion matrix.
	Confusion map[[2]ontology.Tag]int
}

// TopConfusions returns the most frequent off-diagonal confusion pairs,
// most common first, at most n entries.
func (a Accuracy) TopConfusions(n int) []ConfusionPair {
	var out []ConfusionPair
	for pair, count := range a.Confusion {
		if pair[0] == pair[1] {
			continue
		}
		out = append(out, ConfusionPair{Want: pair[0], Got: pair[1], Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Want != out[j].Want {
			return out[i].Want < out[j].Want
		}
		return out[i].Got < out[j].Got
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ConfusionPair is one off-diagonal confusion-matrix cell.
type ConfusionPair struct {
	Want, Got ontology.Tag
	Count     int
}

// TagAccuracy returns the tag-level recovery rate.
func (a Accuracy) TagAccuracy() float64 {
	if a.Matched == 0 {
		return 0
	}
	return float64(a.TagCorrect) / float64(a.Matched)
}

// CategoryAccuracy returns the category-level recovery rate.
func (a Accuracy) CategoryAccuracy() float64 {
	if a.Matched == 0 {
		return 0
	}
	return float64(a.CategoryCorrect) / float64(a.Matched)
}

// Result is the output of a pipeline run.
type Result struct {
	// Truth is the generated corpus with planted labels (Stage I).
	Truth *synth.Truth
	// Recovered is the corpus as reconstructed by Stage II.
	Recovered *schema.Corpus
	// DB is the consolidated failure database (Stage III+IV input).
	DB *core.DB
	// ParseReport carries Stage II defects.
	ParseReport *parse.Report
	// OCR carries Stage II digitization diagnostics.
	OCR OCRStats
	// Accuracy scores Stage III against the planted labels.
	Accuracy Accuracy
	// DictionarySize is the final failure-dictionary size (after
	// expansion when enabled).
	DictionarySize int
	// Stages breaks the run's wall-clock time down per stage.
	Stages StageTimings
	// Elapsed is the sum of the recorded stage timings (Stages.Total())
	// in both Run and RunOnCorpus.
	Elapsed time.Duration
}

// Run executes the full pipeline. Result.Elapsed is the sum of the stage
// timings, Stage I included; the accuracy scoring against the planted
// ground truth is diagnostics, not a pipeline stage, and is not counted.
//
// Cancelling ctx stops the run between stages and inside the concurrent
// OCR fan-out; the error then wraps ctx.Err() so callers can classify it
// with errors.Is(err, context.Canceled).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	mark := time.Now()
	truth, err := synth.Generate(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage I: %w", err)
	}
	synthElapsed := time.Since(mark)
	res, err := RunOnCorpus(ctx, cfg, &truth.Corpus)
	if err != nil {
		return nil, err
	}
	res.Truth = truth
	res.Accuracy = scoreAccuracy(truth, res.DB)
	res.Stages.Synth = synthElapsed
	res.Elapsed = res.Stages.Total()
	return res, nil
}

// RunOnCorpus executes Stages II-IV on an existing normalized corpus: it
// renders the corpus to documents, digitizes, parses, classifies, and
// consolidates. Use this entry point for real (non-synthetic) data that
// has already been transcribed into schema form. Result.Elapsed is the sum
// of the Stage II-IV timings (Stages.Synth stays zero). The context governs
// the whole run as in Run.
func RunOnCorpus(ctx context.Context, cfg Config, corpus *schema.Corpus) (*Result, error) {
	var st StageTimings
	mark := time.Now()
	docs := scandoc.Render(corpus)
	st.Render = time.Since(mark)

	engine, err := ocr.NewEngine(cfg.OCR)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (ocr): %w", err)
	}
	// Per-document noise derivation makes parallel decoding byte-identical
	// to sequential, so digitization fans out across cores.
	mark = time.Now()
	decoded, err := engine.DecodeAllConcurrent(ctx, docs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (ocr): %w", err)
	}
	var ocrStats OCRStats
	var confSum float64
	inputs := make([]parse.Input, 0, len(decoded))
	for _, d := range decoded {
		ocrStats.Documents++
		ocrStats.Pages += d.TotalPages
		ocrStats.ManualPages += d.ManualPages
		ocrStats.Substitutions += d.Substitutions
		ocrStats.DroppedSeparators += d.DroppedSeparators
		ocrStats.MergedLines += d.MergedLines
		confSum += d.Confidence
		inputs = append(inputs, parse.Input{DocID: d.DocID, Lines: d.Lines})
	}
	if ocrStats.Documents > 0 {
		ocrStats.MeanConfidence = confSum / float64(ocrStats.Documents)
	}
	st.OCR = time.Since(mark)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: cancelled before stage II (parse): %w", err)
	}
	mark = time.Now()
	recovered, parseReport, err := parse.ParseConcurrent(inputs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (parse): %w", err)
	}
	st.Parse = time.Since(mark)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: cancelled before stage III: %w", err)
	}
	causes := make([]string, len(recovered.Disengagements))
	for i, d := range recovered.Disengagements {
		causes[i] = d.Cause
	}
	dict := nlp.SeedDictionary()
	if cfg.ExpandDictionary {
		mark = time.Now()
		expanded, _, err := nlp.Expand(dict, causes, cfg.NLP, cfg.Expand)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage III (expand): %w", err)
		}
		dict = expanded
		st.Expand = time.Since(mark)
	}
	mark = time.Now()
	cls, err := nlp.NewClassifier(dict, cfg.NLP)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage III: %w", err)
	}
	classified := cls.ClassifyAllConcurrent(causes, cfg.Workers)
	tags := make([]ontology.Tag, len(classified))
	for i, r := range classified {
		tags[i] = r.Tag
	}
	st.Classify = time.Since(mark)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: cancelled before stage IV: %w", err)
	}
	mark = time.Now()
	db, err := core.BuildWithTags(recovered, tags)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage IV: %w", err)
	}
	st.Build = time.Since(mark)
	return &Result{
		Recovered:      recovered,
		DB:             db,
		ParseReport:    parseReport,
		OCR:            ocrStats,
		DictionarySize: dict.Size(),
		Stages:         st,
		Elapsed:        st.Total(),
	}, nil
}

// eventKey identifies a disengagement across the truth/recovered corpora.
type eventKey struct {
	m schema.Manufacturer
	v schema.VehicleID
	t int64
}

// scoreAccuracy matches recovered events to planted ones and scores tag and
// category recovery.
func scoreAccuracy(truth *synth.Truth, db *core.DB) Accuracy {
	want := make(map[eventKey]ontology.Tag, len(truth.Tags))
	for i, d := range truth.Corpus.Disengagements {
		want[eventKey{d.Manufacturer, d.Vehicle, d.Time.Unix()}] = truth.Tags[i]
	}
	acc := Accuracy{Confusion: make(map[[2]ontology.Tag]int)}
	for _, e := range db.Events {
		tag, ok := want[eventKey{e.Manufacturer, e.Vehicle, e.Time.Unix()}]
		if !ok {
			continue
		}
		acc.Matched++
		acc.Confusion[[2]ontology.Tag{tag, e.Tag}]++
		if e.Tag == tag {
			acc.TagCorrect++
		}
		if ontology.CategoryOf(tag) == e.Category {
			acc.CategoryCorrect++
		}
	}
	return acc
}
