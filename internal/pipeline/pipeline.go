// Package pipeline wires the four stages of the paper's Fig. 1 together:
//
//	Stage I   data collection  — synthetic corpus (package synth) rendered
//	                             to scanned documents (package scandoc)
//	Stage II  digitization     — OCR with noise + manual fallback (ocr),
//	                             parsing/normalization (parse)
//	Stage III NLP              — failure dictionary + voting classifier
//	                             (nlp), optionally corpus-expanded
//	Stage IV  analysis         — consolidated failure DB (core)
//
// The result carries per-stage diagnostics (OCR artifacts, parse defects,
// tag-recovery accuracy against the planted ground truth) so experiments
// can attribute end-to-end error to individual stages.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"avfda/internal/core"
	"avfda/internal/nlp"
	"avfda/internal/ocr"
	"avfda/internal/ontology"
	"avfda/internal/parse"
	"avfda/internal/scandoc"
	"avfda/internal/schema"
	"avfda/internal/synth"
)

// Config parameterizes an end-to-end run.
type Config struct {
	// Synth configures corpus generation (Stage I).
	Synth synth.Config
	// OCR configures the digitization noise model (Stage II).
	OCR ocr.Config
	// NLP configures the classifier (Stage III).
	NLP nlp.Options
	// ExpandDictionary enables the corpus-mining dictionary passes the
	// paper describes ("several passes over the dataset").
	ExpandDictionary bool
	// Expand tunes the expansion when enabled.
	Expand nlp.ExpandOptions
}

// DefaultConfig returns the configuration used for the reproduction runs.
func DefaultConfig() Config {
	return Config{
		Synth:            synth.Config{Seed: 1},
		OCR:              ocr.DefaultConfig(),
		NLP:              nlp.DefaultOptions(),
		ExpandDictionary: true,
	}
}

// OCRStats aggregates digitization diagnostics across all documents.
type OCRStats struct {
	Documents         int
	Pages             int
	ManualPages       int
	Substitutions     int
	DroppedSeparators int
	MergedLines       int
	MeanConfidence    float64
}

// Accuracy scores recovered tags against the planted ground truth, matched
// by (manufacturer, vehicle, timestamp).
type Accuracy struct {
	// Matched counts recovered events that were matched to a truth event.
	Matched int
	// TagCorrect and CategoryCorrect count matched events whose recovered
	// tag/category equals the planted one.
	TagCorrect      int
	CategoryCorrect int
	// Confusion counts matched events by (planted, recovered) tag pair —
	// the classifier's confusion matrix.
	Confusion map[[2]ontology.Tag]int
}

// TopConfusions returns the most frequent off-diagonal confusion pairs,
// most common first, at most n entries.
func (a Accuracy) TopConfusions(n int) []ConfusionPair {
	var out []ConfusionPair
	for pair, count := range a.Confusion {
		if pair[0] == pair[1] {
			continue
		}
		out = append(out, ConfusionPair{Want: pair[0], Got: pair[1], Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Want != out[j].Want {
			return out[i].Want < out[j].Want
		}
		return out[i].Got < out[j].Got
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ConfusionPair is one off-diagonal confusion-matrix cell.
type ConfusionPair struct {
	Want, Got ontology.Tag
	Count     int
}

// TagAccuracy returns the tag-level recovery rate.
func (a Accuracy) TagAccuracy() float64 {
	if a.Matched == 0 {
		return 0
	}
	return float64(a.TagCorrect) / float64(a.Matched)
}

// CategoryAccuracy returns the category-level recovery rate.
func (a Accuracy) CategoryAccuracy() float64 {
	if a.Matched == 0 {
		return 0
	}
	return float64(a.CategoryCorrect) / float64(a.Matched)
}

// Result is the output of a pipeline run.
type Result struct {
	// Truth is the generated corpus with planted labels (Stage I).
	Truth *synth.Truth
	// Recovered is the corpus as reconstructed by Stage II.
	Recovered *schema.Corpus
	// DB is the consolidated failure database (Stage III+IV input).
	DB *core.DB
	// ParseReport carries Stage II defects.
	ParseReport *parse.Report
	// OCR carries Stage II digitization diagnostics.
	OCR OCRStats
	// Accuracy scores Stage III against the planted labels.
	Accuracy Accuracy
	// DictionarySize is the final failure-dictionary size (after
	// expansion when enabled).
	DictionarySize int
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// Run executes the full pipeline.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	truth, err := synth.Generate(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage I: %w", err)
	}
	res, err := RunOnCorpus(cfg, &truth.Corpus)
	if err != nil {
		return nil, err
	}
	res.Truth = truth
	res.Accuracy = scoreAccuracy(truth, res.DB)
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunOnCorpus executes Stages II-IV on an existing normalized corpus: it
// renders the corpus to documents, digitizes, parses, classifies, and
// consolidates. Use this entry point for real (non-synthetic) data that
// has already been transcribed into schema form.
func RunOnCorpus(cfg Config, corpus *schema.Corpus) (*Result, error) {
	start := time.Now()
	docs := scandoc.Render(corpus)

	engine, err := ocr.NewEngine(cfg.OCR)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (ocr): %w", err)
	}
	// Per-document noise derivation makes parallel decoding byte-identical
	// to sequential, so digitization fans out across cores.
	decoded, err := engine.DecodeAllConcurrent(context.Background(), docs, 0)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (ocr): %w", err)
	}
	var ocrStats OCRStats
	var confSum float64
	inputs := make([]parse.Input, 0, len(decoded))
	for _, d := range decoded {
		ocrStats.Documents++
		ocrStats.Pages += d.TotalPages
		ocrStats.ManualPages += d.ManualPages
		ocrStats.Substitutions += d.Substitutions
		ocrStats.DroppedSeparators += d.DroppedSeparators
		ocrStats.MergedLines += d.MergedLines
		confSum += d.Confidence
		inputs = append(inputs, parse.Input{DocID: d.DocID, Lines: d.Lines})
	}
	if ocrStats.Documents > 0 {
		ocrStats.MeanConfidence = confSum / float64(ocrStats.Documents)
	}

	recovered, parseReport, err := parse.Parse(inputs)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage II (parse): %w", err)
	}

	dict := nlp.SeedDictionary()
	if cfg.ExpandDictionary {
		causes := make([]string, 0, len(recovered.Disengagements))
		for _, d := range recovered.Disengagements {
			causes = append(causes, d.Cause)
		}
		expanded, _, err := nlp.Expand(dict, causes, cfg.NLP, cfg.Expand)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage III (expand): %w", err)
		}
		dict = expanded
	}
	cls, err := nlp.NewClassifier(dict, cfg.NLP)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage III: %w", err)
	}
	db, err := core.Build(recovered, cls)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage IV: %w", err)
	}
	return &Result{
		Recovered:      recovered,
		DB:             db,
		ParseReport:    parseReport,
		OCR:            ocrStats,
		DictionarySize: dict.Size(),
		Elapsed:        time.Since(start),
	}, nil
}

// eventKey identifies a disengagement across the truth/recovered corpora.
type eventKey struct {
	m schema.Manufacturer
	v schema.VehicleID
	t int64
}

// scoreAccuracy matches recovered events to planted ones and scores tag and
// category recovery.
func scoreAccuracy(truth *synth.Truth, db *core.DB) Accuracy {
	want := make(map[eventKey]ontology.Tag, len(truth.Tags))
	for i, d := range truth.Corpus.Disengagements {
		want[eventKey{d.Manufacturer, d.Vehicle, d.Time.Unix()}] = truth.Tags[i]
	}
	acc := Accuracy{Confusion: make(map[[2]ontology.Tag]int)}
	for _, e := range db.Events {
		tag, ok := want[eventKey{e.Manufacturer, e.Vehicle, e.Time.Unix()}]
		if !ok {
			continue
		}
		acc.Matched++
		acc.Confusion[[2]ontology.Tag{tag, e.Tag}]++
		if e.Tag == tag {
			acc.TagCorrect++
		}
		if ontology.CategoryOf(tag) == e.Category {
			acc.CategoryCorrect++
		}
	}
	return acc
}
