package pipeline

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/ocr"
	"avfda/internal/schema"
)

// runOnce caches a default end-to-end run for the integration assertions.
var cached *Result

func run(t *testing.T) *Result {
	t.Helper()
	if cached == nil {
		res, err := Run(context.Background(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cached = res
	}
	return cached
}

func TestEndToEndRecoversCounts(t *testing.T) {
	res := run(t)
	// Default OCR noise loses under 3% of rows (merge-tolerant headers
	// keep whole documents from being dropped).
	gotEvents := len(res.DB.Events)
	if float64(gotEvents) < 0.97*float64(calib.TotalDisengagements) {
		t.Errorf("recovered %d of %d disengagements", gotEvents, calib.TotalDisengagements)
	}
	if res.ParseReport.SkippedDocs != 0 {
		t.Errorf("%d documents skipped at default noise", res.ParseReport.SkippedDocs)
	}
	if gotEvents > calib.TotalDisengagements {
		t.Errorf("recovered MORE events (%d) than planted (%d)", gotEvents, calib.TotalDisengagements)
	}
	if got := len(res.DB.Accidents); got < 40 || got > calib.TotalAccidents {
		t.Errorf("recovered %d accidents, want ~%d", got, calib.TotalAccidents)
	}
	miles := 0.0
	for _, m := range res.DB.Mileage {
		miles += m.Miles
	}
	if math.Abs(miles-calib.TotalMiles) > 0.05*calib.TotalMiles {
		t.Errorf("recovered %.0f miles, want ~%.0f", miles, calib.TotalMiles)
	}
}

func TestEndToEndTagAccuracy(t *testing.T) {
	res := run(t)
	if res.Accuracy.Matched < 5000 {
		t.Fatalf("matched only %d events to ground truth", res.Accuracy.Matched)
	}
	if acc := res.Accuracy.TagAccuracy(); acc < 0.90 {
		t.Errorf("tag recovery accuracy = %.3f, want >= 0.90", acc)
	}
	if acc := res.Accuracy.CategoryAccuracy(); acc < 0.92 {
		t.Errorf("category recovery accuracy = %.3f, want >= 0.92", acc)
	}
}

func TestEndToEndHeadlineResults(t *testing.T) {
	res := run(t)
	// The paper's headline survives the full noisy pipeline: ~64% of
	// disengagements from the ML system.
	s := res.DB.OverallCategoryShares()
	if math.Abs(s.MLDesign-calib.MLDesignShare) > 0.07 {
		t.Errorf("end-to-end ML share = %.3f, paper %.2f", s.MLDesign, calib.MLDesignShare)
	}
	// Fig. 8 correlation survives.
	lc, err := res.DB.PooledLogCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if lc.R > -0.6 {
		t.Errorf("end-to-end pooled r = %.3f, want strongly negative", lc.R)
	}
	// Reaction mean survives.
	mean, err := res.DB.MeanReaction(3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-calib.MeanReactionSeconds) > 0.3 {
		t.Errorf("end-to-end mean reaction = %.3f", mean)
	}
	// Tesla's vague causes stay Unknown through the live NLP stage
	// (Table IV: 98.35% Unknown-C).
	for _, r := range res.DB.CategoryBreakdown() {
		if r.Manufacturer == schema.Tesla && r.UnknownPct < 90 {
			t.Errorf("end-to-end Tesla Unknown-C = %.1f%%, want > 90%%", r.UnknownPct)
		}
	}
}

func TestEndToEndDiagnostics(t *testing.T) {
	res := run(t)
	if res.OCR.Documents < 50 {
		t.Errorf("documents = %d", res.OCR.Documents)
	}
	if res.OCR.Pages <= res.OCR.Documents {
		t.Errorf("pages = %d for %d documents", res.OCR.Pages, res.OCR.Documents)
	}
	if res.OCR.Substitutions == 0 {
		t.Error("default noise should introduce substitutions")
	}
	if res.OCR.MeanConfidence <= 0.9 || res.OCR.MeanConfidence > 1 {
		t.Errorf("mean confidence = %.3f", res.OCR.MeanConfidence)
	}
	if res.ParseReport.DefectRate() > 0.05 {
		t.Errorf("defect rate = %.4f", res.ParseReport.DefectRate())
	}
	if res.DictionarySize < 60 {
		t.Errorf("dictionary size = %d, expected seed + expansion", res.DictionarySize)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestConfusionMatrix(t *testing.T) {
	res := run(t)
	if len(res.Accuracy.Confusion) == 0 {
		t.Fatal("no confusion matrix")
	}
	// Diagonal mass equals TagCorrect.
	var diag, total int
	for pair, n := range res.Accuracy.Confusion {
		total += n
		if pair[0] == pair[1] {
			diag += n
		}
	}
	if diag != res.Accuracy.TagCorrect {
		t.Errorf("diagonal %d != TagCorrect %d", diag, res.Accuracy.TagCorrect)
	}
	if total != res.Accuracy.Matched {
		t.Errorf("confusion total %d != matched %d", total, res.Accuracy.Matched)
	}
	// TopConfusions is off-diagonal, sorted descending, bounded.
	top := res.Accuracy.TopConfusions(5)
	if len(top) > 5 {
		t.Errorf("TopConfusions returned %d", len(top))
	}
	for i, c := range top {
		if c.Want == c.Got {
			t.Error("diagonal entry in TopConfusions")
		}
		if i > 0 && c.Count > top[i-1].Count {
			t.Error("TopConfusions not sorted")
		}
	}
}

func TestCleanPipelineIsLossless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OCR = ocr.Clean()
	cfg.Synth.Seed = 5
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DB.Events) != calib.TotalDisengagements {
		t.Errorf("clean pipeline recovered %d of %d events", len(res.DB.Events), calib.TotalDisengagements)
	}
	if len(res.ParseReport.Defects) != 0 {
		t.Errorf("clean pipeline produced %d defects", len(res.ParseReport.Defects))
	}
	if res.Accuracy.Matched != calib.TotalDisengagements {
		t.Errorf("matched %d of %d", res.Accuracy.Matched, calib.TotalDisengagements)
	}
}

func TestNoExpansionStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExpandDictionary = false
	cfg.OCR = ocr.Clean()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.TagAccuracy(); acc < 0.85 {
		t.Errorf("seed-dictionary-only accuracy = %.3f", acc)
	}
}

func TestRunOnCorpusDirect(t *testing.T) {
	// A tiny hand-built corpus through Stages II-IV.
	corpus := &schema.Corpus{
		Fleets: []schema.Fleet{{Manufacturer: schema.Nissan, ReportYear: schema.Report2016, Cars: 1}},
		Mileage: []schema.MonthlyMileage{{
			Manufacturer: schema.Nissan, Vehicle: "n1", ReportYear: schema.Report2016,
			Month: schema.StudyStart, Miles: 100,
		}},
		Disengagements: []schema.Disengagement{{
			Manufacturer: schema.Nissan, Vehicle: "n1", ReportYear: schema.Report2016,
			Time: schema.StudyStart.Add(1000), Cause: "Software module froze",
			Modality: schema.ModalityManual, ReactionSeconds: 0.9,
		}},
	}
	cfg := DefaultConfig()
	cfg.OCR = ocr.Clean()
	cfg.ExpandDictionary = false
	res, err := RunOnCorpus(context.Background(), cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DB.Events) != 1 {
		t.Fatalf("events = %d", len(res.DB.Events))
	}
	if res.DB.Events[0].Tag.String() != "Software" {
		t.Errorf("tag = %s", res.DB.Events[0].Tag)
	}
	if res.Truth != nil {
		t.Error("RunOnCorpus should not fabricate truth")
	}
}

func TestHeadlineStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("three full pipeline runs")
	}
	// The ML/Design headline must not be a one-seed artifact.
	for _, seed := range []int64{11, 12, 13} {
		cfg := DefaultConfig()
		cfg.Synth.Seed = seed
		cfg.OCR.Seed = seed
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := res.DB.OverallCategoryShares()
		if math.Abs(s.MLDesign-calib.MLDesignShare) > 0.07 {
			t.Errorf("seed %d: ML share %.3f", seed, s.MLDesign)
		}
		if res.Accuracy.TagAccuracy() < 0.9 {
			t.Errorf("seed %d: tag accuracy %.3f", seed, res.Accuracy.TagAccuracy())
		}
	}
}

func TestConcurrentPipelineMatchesSequential(t *testing.T) {
	// The concurrency guarantee: for the same seed, output is byte-identical
	// at any worker count.
	base := DefaultConfig()
	base.Synth.Seed = 21
	seqCfg := base
	seqCfg.Workers = 1
	want, err := Run(context.Background(), seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{runtime.GOMAXPROCS(0)}
	if counts[0] != 4 {
		counts = append(counts, 4)
	}
	for _, workers := range counts {
		parCfg := base
		parCfg.Workers = workers
		got, err := Run(context.Background(), parCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.DB, got.DB) {
			t.Errorf("workers=%d: consolidated DB differs from sequential run", workers)
		}
		if !reflect.DeepEqual(want.ParseReport, got.ParseReport) {
			t.Errorf("workers=%d: parse report differs from sequential run", workers)
		}
		if !reflect.DeepEqual(want.Recovered, got.Recovered) {
			t.Errorf("workers=%d: recovered corpus differs from sequential run", workers)
		}
		if want.OCR != got.OCR {
			t.Errorf("workers=%d: OCR stats differ: %+v vs %+v", workers, got.OCR, want.OCR)
		}
		if !reflect.DeepEqual(want.Accuracy, got.Accuracy) {
			t.Errorf("workers=%d: accuracy differs from sequential run", workers)
		}
		if want.DictionarySize != got.DictionarySize {
			t.Errorf("workers=%d: dictionary size %d vs %d", workers, got.DictionarySize, want.DictionarySize)
		}
	}
}

func TestElapsedIsSumOfStages(t *testing.T) {
	res := run(t)
	if res.Elapsed != res.Stages.Total() {
		t.Errorf("Run: Elapsed = %v, Stages.Total() = %v", res.Elapsed, res.Stages.Total())
	}
	for _, stage := range []struct {
		name string
		d    int64
	}{
		{"synth", int64(res.Stages.Synth)},
		{"render", int64(res.Stages.Render)},
		{"ocr", int64(res.Stages.OCR)},
		{"parse", int64(res.Stages.Parse)},
		{"expand", int64(res.Stages.Expand)},
		{"classify", int64(res.Stages.Classify)},
		{"build", int64(res.Stages.Build)},
	} {
		if stage.d <= 0 {
			t.Errorf("Run: stage %s not timed", stage.name)
		}
	}

	roc, err := RunOnCorpus(context.Background(), DefaultConfig(), &res.Truth.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	if roc.Stages.Synth != 0 {
		t.Errorf("RunOnCorpus recorded synth time %v without running Stage I", roc.Stages.Synth)
	}
	if roc.Elapsed != roc.Stages.Total() {
		t.Errorf("RunOnCorpus: Elapsed = %v, Stages.Total() = %v", roc.Elapsed, roc.Stages.Total())
	}
}

func TestBadOCRConfigSurfaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OCR.SubstitutionRate = 2
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("invalid OCR config: want error")
	}
}

// TestRunHonorsCancellation pins the context threading: a cancelled context
// aborts the run and the error classifies with errors.Is, not message
// matching.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, DefaultConfig())
	if err == nil {
		t.Fatal("Run with a cancelled context: want error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}

	_, err = RunOnCorpus(ctx, DefaultConfig(), &schema.Corpus{})
	if err == nil {
		t.Fatal("RunOnCorpus with a cancelled context: want error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunOnCorpus err = %v, want errors.Is(err, context.Canceled)", err)
	}
}
