package reliability

import (
	"math"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/schema"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestBasicMetrics(t *testing.T) {
	dpm, err := DPM(341, 424332)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, dpm, 341.0/424332, 1e-12, "DPM")
	dpa, err := DPA(464, 25)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, dpa, 18.56, 0.01, "Waymo DPA (Table VI: 18)")
	apm, err := APMFromDPM(0.000745, 18)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, apm, 4.14e-5, 1e-7, "Waymo APM (Table VII)")
}

func TestMetricErrors(t *testing.T) {
	if _, err := DPM(1, 0); err == nil {
		t.Error("zero miles: want error")
	}
	if _, err := DPM(-1, 10); err == nil {
		t.Error("negative events: want error")
	}
	if _, err := DPA(10, 0); err == nil {
		t.Error("zero accidents: want error")
	}
	if _, err := APMFromDPM(0.1, 0); err == nil {
		t.Error("zero DPA: want error")
	}
	if _, err := APM(1, -5); err == nil {
		t.Error("negative miles: want error")
	}
	if _, err := RelativeToHuman(-1); err == nil {
		t.Error("negative APM: want error")
	}
	if _, err := APMi(-1); err == nil {
		t.Error("negative APM: want error")
	}
}

func TestTableVIIRatios(t *testing.T) {
	// Reproduce Table VII's relative-to-human column from its APM column.
	for m, row := range calib.TableVII {
		if row.MedianAPM == calib.Unreported {
			continue
		}
		rel, err := RelativeToHuman(row.MedianAPM)
		if err != nil {
			t.Fatal(err)
		}
		if m == schema.Nissan {
			// Known paper inconsistency: Table VII prints 15.285 for
			// Nissan, but its own APM column implies 152.85 (see calib).
			almostEqual(t, rel, 152.85, 0.5, "Nissan computed rel-to-human")
			almostEqual(t, rel, row.RelToHuman*10, 0.5, "Nissan 10x slip")
			continue
		}
		if math.Abs(rel-row.RelToHuman)/row.RelToHuman > 0.01 {
			t.Errorf("%s: rel-to-human %.2f, paper %.2f", m, rel, row.RelToHuman)
		}
		// The paper's headline band: 15x to ~4400x worse than humans.
		if rel < 15 || rel > 4500 {
			t.Errorf("%s: rel %.1f outside the paper's 15-4421 band", m, rel)
		}
	}
}

func TestTableVIIICrossDomain(t *testing.T) {
	for m, want := range calib.TableVIII {
		apm := calib.TableVII[m].MedianAPM
		got, err := CompareCrossDomain(apm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.APMi-want.APMi)/want.APMi > 0.01 {
			t.Errorf("%s APMi = %g, paper %g", m, got.APMi, want.APMi)
		}
		if math.Abs(got.VsAirline-want.VsAirline)/want.VsAirline > 0.01 {
			t.Errorf("%s vs airline = %.2f, paper %.2f", m, got.VsAirline, want.VsAirline)
		}
		if math.Abs(got.VsSurgicalRobot-want.VsSurgicalBot)/want.VsSurgicalBot > 0.02 {
			t.Errorf("%s vs SR = %.4f, paper %.4f", m, got.VsSurgicalRobot, want.VsSurgicalBot)
		}
	}
	// Waymo headline: 4.22x worse than airplanes, 2.5x better than
	// surgical robots (1/0.0398 ~ 25... the paper says 2.5x better
	// meaning APMi ratio 0.0398 ~ 1/25; "2.5x" refers to the rounded
	// order in the abstract). Check the 4.22 figure directly.
	waymo, _ := CompareCrossDomain(calib.TableVII[schema.Waymo].MedianAPM)
	almostEqual(t, waymo.VsAirline, 4.22, 0.05, "Waymo vs airline")
	if waymo.VsSurgicalRobot >= 1 {
		t.Error("Waymo should be better than surgical robots per mission")
	}
}

func TestAnnualAccidentLoad(t *testing.T) {
	// If all cars were AVs at Waymo's APMi, annual accidents would dwarf
	// aviation's (10,000x more trips).
	waymo, _ := CompareCrossDomain(calib.TableVII[schema.Waymo].MedianAPM)
	avLoad := AnnualAccidentLoad(waymo.APMi, calib.AnnualAVTrips)
	airLoad := AnnualAccidentLoad(calib.AirlineAPM, calib.AnnualAirlineTrips)
	if avLoad <= airLoad {
		t.Errorf("AV annual load %.0f should exceed airline %.0f", avLoad, airLoad)
	}
	if ratio := calib.AnnualAVTrips / calib.AnnualAirlineTrips; math.Abs(ratio-10000) > 1 {
		t.Errorf("trip ratio = %g, want 10000", ratio)
	}
}

func TestMilesToDemonstrate(t *testing.T) {
	// Kalra-Paddock headline: demonstrating better-than-human fatality
	// rates takes hundreds of millions of miles. With the paper's human
	// accident rate (2e-6/mile) at 95%: ~1.5M miles.
	m, err := MilesToDemonstrate(calib.HumanAPM, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, m, -math.Log(0.05)/2e-6, 1, "KP zero-failure miles")
	if m < 1e6 {
		t.Errorf("miles to demonstrate = %g, expected > 1e6", m)
	}
	if _, err := MilesToDemonstrate(0, 0.9); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := MilesToDemonstrate(1e-6, 1.5); err == nil {
		t.Error("bad confidence: want error")
	}
}

func TestMilesToDemonstrateWithFailures(t *testing.T) {
	// With zero failures the chi-square form reduces to -ln(1-C)/R.
	m0, err := MilesToDemonstrateWithFailures(0, calib.HumanAPM, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MilesToDemonstrate(calib.HumanAPM, 0.95)
	almostEqual(t, m0, want, want*1e-6, "zero-failure reduction")
	// More observed failures require more miles, monotonically.
	prev := m0
	for n := 1; n <= 10; n++ {
		m, err := MilesToDemonstrateWithFailures(n, calib.HumanAPM, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if m <= prev {
			t.Fatalf("miles not increasing at %d failures", n)
		}
		prev = m
	}
	// Kalra-Paddock headline scale: demonstrating the human fatality rate
	// (1.09 per 100M miles) with zero failures at 95% needs ~275M miles.
	fat, err := MilesToDemonstrateWithFailures(0, 1.09e-8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if fat < 2.5e8 || fat > 3.0e8 {
		t.Errorf("fatality-rate demonstration miles = %.3g, want ~2.75e8", fat)
	}
	if _, err := MilesToDemonstrateWithFailures(-1, 1e-6, 0.9); err == nil {
		t.Error("negative failures: want error")
	}
	if _, err := MilesToDemonstrateWithFailures(0, 0, 0.9); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := MilesToDemonstrateWithFailures(0, 1e-6, 1); err == nil {
		t.Error("bad confidence: want error")
	}
}

func TestPoissonTailGE(t *testing.T) {
	// P(X >= 1) = 1 - e^-lambda.
	p, err := PoissonTailGE(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, p, 1-math.Exp(-2), 1e-10, "P(X>=1)")
	// P(X >= 0) = 1.
	if p, _ := PoissonTailGE(0, 3); p != 1 {
		t.Errorf("P(X>=0) = %g", p)
	}
	// lambda = 0.
	if p, _ := PoissonTailGE(3, 0); p != 0 {
		t.Errorf("P(X>=3|0) = %g", p)
	}
	// P(X >= 2) = 1 - e^-l - l e^-l.
	p, _ = PoissonTailGE(2, 1.5)
	almostEqual(t, p, 1-math.Exp(-1.5)*(1+1.5), 1e-10, "P(X>=2)")
	if _, err := PoissonTailGE(-1, 1); err == nil {
		t.Error("negative k: want error")
	}
}

func TestPoissonRateCI(t *testing.T) {
	// Garwood interval for 25 events over 1,060,200 miles (Waymo).
	ci, err := PoissonRateCI(25, 1060200, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	mle := 25.0 / 1060200
	if ci.Low >= mle || ci.High <= mle {
		t.Errorf("CI [%g, %g] does not bracket MLE %g", ci.Low, ci.High, mle)
	}
	// Known chi-square bounds: lower = chi2(0.025, 50)/2 = 32.357/2,
	// upper = chi2(0.975, 52)/2 = 73.810/2 events.
	almostEqual(t, ci.Low*1060200, 32.357/2, 0.05, "CI lower events")
	almostEqual(t, ci.High*1060200, 73.810/2, 0.05, "CI upper events")
	// Zero events: lower bound 0, positive upper bound.
	ci0, err := PoissonRateCI(0, 1000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci0.Low != 0 || ci0.High <= 0 {
		t.Errorf("zero-event CI = %+v", ci0)
	}
	if _, err := PoissonRateCI(1, 0, 0.9); err == nil {
		t.Error("zero miles: want error")
	}
	if _, err := PoissonRateCI(-1, 10, 0.9); err == nil {
		t.Error("negative events: want error")
	}
	if _, err := PoissonRateCI(1, 10, 1.1); err == nil {
		t.Error("bad level: want error")
	}
}

func TestWorseThanBaselineMatchesPaperSignificance(t *testing.T) {
	// Waymo: 25 accidents in 1,060,200 miles vs human 2e-6/mile.
	// Expected count under human rate ~2.1; observing 25 is wildly
	// significant (paper: >90%).
	p, sig, err := WorseThanBaseline(25, 1060200, calib.HumanAPM, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Errorf("Waymo not significant at 90%% (p=%g)", p)
	}
	// GM Cruise: 14 accidents in ~10,015 miles.
	p, sig, err = WorseThanBaseline(14, 10015.2, calib.HumanAPM, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Errorf("GM Cruise not significant at 90%% (p=%g)", p)
	}
	if _, _, err := WorseThanBaseline(1, -1, 1e-6, 0.9); err == nil {
		t.Error("bad miles: want error")
	}
	if _, _, err := WorseThanBaseline(1, 10, 1e-6, 0); err == nil {
		t.Error("bad level: want error")
	}
}

func TestEstimateConfidenceMatchesPaper(t *testing.T) {
	// The paper: "calculations for two out of the 4 manufacturers (Waymo
	// and GMCruise) were made at > 90% significance". Under the
	// Kalra-Paddock criterion (confidence the true rate is below 2x the
	// estimate), the two many-accident manufacturers clear 90% and the two
	// single-accident manufacturers do not.
	cases := []struct {
		name    string
		events  int
		wantSig bool
	}{
		{"Waymo", 25, true},
		{"GMCruise", 14, true},
		{"Delphi", 1, false},
		{"Nissan", 1, false},
	}
	for _, c := range cases {
		sig, err := SignificantEstimate(c.events, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if sig != c.wantSig {
			conf, _ := EstimateConfidence(c.events, 2)
			t.Errorf("%s (%d accidents): significant=%v, want %v (confidence %.3f)",
				c.name, c.events, sig, c.wantSig, conf)
		}
	}
	// Confidence grows monotonically with event count.
	prev := 0.0
	for n := 1; n <= 30; n++ {
		c, err := EstimateConfidence(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("confidence not increasing at n=%d", n)
		}
		prev = c
	}
	if _, err := EstimateConfidence(0, 2); err == nil {
		t.Error("zero events: want error")
	}
	if _, err := EstimateConfidence(5, 1); err == nil {
		t.Error("ratio <= 1: want error")
	}
	if sig, err := SignificantEstimate(0, 0.9); err != nil || sig {
		t.Error("zero events should be non-significant, no error")
	}
	if _, err := SignificantEstimate(5, 1.2); err == nil {
		t.Error("bad level: want error")
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, k := range []float64{1, 2, 10, 50} {
		for _, p := range []float64{0.025, 0.5, 0.975} {
			q, err := chiSquareQuantile(p, k)
			if err != nil {
				t.Fatal(err)
			}
			// CDF(quantile(p)) == p.
			c, err := chiSquareCDFForTest(q, k)
			if err != nil {
				t.Fatal(err)
			}
			almostEqual(t, c, p, 1e-6, "chi-square quantile round trip")
		}
	}
	if _, err := chiSquareQuantile(0, 5); err == nil {
		t.Error("p=0: want error")
	}
}

// chiSquareCDFForTest re-exports the stats CDF for round-trip checking.
func chiSquareCDFForTest(x, k float64) (float64, error) {
	return statsChiSquareCDF(x, k)
}
