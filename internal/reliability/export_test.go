package reliability

import "avfda/internal/stats"

// statsChiSquareCDF aliases the stats chi-square CDF for tests.
var statsChiSquareCDF = stats.ChiSquareCDF
