// Package reliability implements the reliability metrics and statistical
// models of the paper's Section V-B/V-C: disengagements per mile (DPM),
// accidents per mile (APM), disengagements per accident (DPA), accidents
// per mission (APMi), comparison baselines (human drivers, airline,
// surgical robotics), and the Kalra–Paddock mileage-significance model [36]
// used to qualify the small-sample accident statistics.
package reliability

import (
	"errors"
	"math"

	"avfda/internal/calib"
	"avfda/internal/stats"
)

// DPM returns disengagements per autonomous mile.
func DPM(disengagements int, miles float64) (float64, error) {
	if miles <= 0 {
		return 0, errors.New("reliability: DPM requires positive miles")
	}
	if disengagements < 0 {
		return 0, errors.New("reliability: negative disengagement count")
	}
	return float64(disengagements) / miles, nil
}

// DPA returns disengagements per accident.
func DPA(disengagements, accidents int) (float64, error) {
	if accidents <= 0 {
		return 0, errors.New("reliability: DPA requires at least one accident")
	}
	if disengagements < 0 {
		return 0, errors.New("reliability: negative disengagement count")
	}
	return float64(disengagements) / float64(accidents), nil
}

// APMFromDPM returns accidents per mile computed as the paper does for
// VIN-redacted reports: APM = DPM / DPA.
func APMFromDPM(dpm, dpa float64) (float64, error) {
	if dpa <= 0 {
		return 0, errors.New("reliability: APM requires positive DPA")
	}
	if dpm < 0 {
		return 0, errors.New("reliability: negative DPM")
	}
	return dpm / dpa, nil
}

// APM returns accidents per mile from first principles (identifiable
// vehicles only).
func APM(accidents int, miles float64) (float64, error) {
	if miles <= 0 {
		return 0, errors.New("reliability: APM requires positive miles")
	}
	if accidents < 0 {
		return 0, errors.New("reliability: negative accident count")
	}
	return float64(accidents) / miles, nil
}

// RelativeToHuman returns how many times worse than a human driver an APM
// is (the paper's Table VII column 4; human APM = 2e-6 per mile).
func RelativeToHuman(apm float64) (float64, error) {
	if apm < 0 {
		return 0, errors.New("reliability: negative APM")
	}
	return apm / calib.HumanAPM, nil
}

// APMi converts accidents per mile into accidents per mission using the
// median US trip length (10 miles, §V-C1).
func APMi(apm float64) (float64, error) {
	if apm < 0 {
		return 0, errors.New("reliability: negative APM")
	}
	return apm * calib.MedianTripMiles, nil
}

// CrossDomain is the Table VIII comparison of one manufacturer against
// airplanes and surgical robots.
type CrossDomain struct {
	// APMi is accidents per 10-mile mission.
	APMi float64
	// VsAirline is APMi / (airline accidents per departure).
	VsAirline float64
	// VsSurgicalRobot is APMi / (surgical-robot accidents per procedure).
	VsSurgicalRobot float64
}

// CompareCrossDomain builds the Table VIII row for an accidents-per-mile
// figure.
func CompareCrossDomain(apm float64) (CrossDomain, error) {
	ai, err := APMi(apm)
	if err != nil {
		return CrossDomain{}, err
	}
	return CrossDomain{
		APMi:            ai,
		VsAirline:       ai / calib.AirlineAPM,
		VsSurgicalRobot: ai / calib.SurgicalRobotAPM,
	}, nil
}

// AnnualAccidentLoad scales a per-mission accident rate to annual accidents
// under the paper's fleet-replacement thought experiment (96 billion car
// trips vs 9.6 million airline departures per year, §V-C1).
func AnnualAccidentLoad(apmi float64, trips float64) float64 {
	return apmi * trips
}

// --- Kalra–Paddock mileage significance model [36] ---

// MilesToDemonstrate returns the number of failure-free miles needed to
// demonstrate, with the given confidence, that the true failure rate is
// below maxRate. This is the Kalra–Paddock zero-failure bound
// m = -ln(1-C)/R.
func MilesToDemonstrate(maxRate, confidence float64) (float64, error) {
	if maxRate <= 0 {
		return 0, errors.New("reliability: maxRate must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("reliability: confidence must be in (0,1)")
	}
	return -math.Log(1-confidence) / maxRate, nil
}

// MilesToDemonstrateWithFailures generalizes the zero-failure bound: the
// miles that must be driven, while observing at most `failures` failures,
// to demonstrate with the given confidence that the true rate is below
// maxRate. This is the chi-square form of the Kalra–Paddock model:
// m = chi2quantile(C, 2n+2) / (2R). With failures == 0 it reduces to
// -ln(1-C)/R.
func MilesToDemonstrateWithFailures(failures int, maxRate, confidence float64) (float64, error) {
	if failures < 0 {
		return 0, errors.New("reliability: negative failure count")
	}
	if maxRate <= 0 {
		return 0, errors.New("reliability: maxRate must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("reliability: confidence must be in (0,1)")
	}
	q, err := chiSquareQuantile(confidence, 2*float64(failures)+2)
	if err != nil {
		return 0, err
	}
	return q / (2 * maxRate), nil
}

// PoissonTailGE returns P(X >= k) for X ~ Poisson(lambda), via the
// regularized lower incomplete gamma identity P(X >= k) = P(k, lambda).
func PoissonTailGE(k int, lambda float64) (float64, error) {
	if k < 0 {
		return 0, errors.New("reliability: k must be non-negative")
	}
	if lambda < 0 {
		return 0, errors.New("reliability: lambda must be non-negative")
	}
	if k == 0 {
		return 1, nil
	}
	if lambda == 0 {
		return 0, nil
	}
	return stats.RegIncGammaLower(float64(k), lambda)
}

// RateCI is a two-sided confidence interval for a Poisson event rate.
type RateCI struct {
	// Low and High bound the per-mile rate.
	Low, High float64
	// Level is the confidence level.
	Level float64
}

// PoissonRateCI returns the exact (Garwood/chi-square) two-sided confidence
// interval for an event rate given `events` observed over `miles`.
func PoissonRateCI(events int, miles float64, level float64) (RateCI, error) {
	if events < 0 {
		return RateCI{}, errors.New("reliability: negative event count")
	}
	if miles <= 0 {
		return RateCI{}, errors.New("reliability: miles must be positive")
	}
	if level <= 0 || level >= 1 {
		return RateCI{}, errors.New("reliability: level must be in (0,1)")
	}
	alpha := 1 - level
	var low float64
	if events > 0 {
		q, err := chiSquareQuantile(alpha/2, 2*float64(events))
		if err != nil {
			return RateCI{}, err
		}
		low = q / (2 * miles)
	}
	q, err := chiSquareQuantile(1-alpha/2, 2*float64(events)+2)
	if err != nil {
		return RateCI{}, err
	}
	return RateCI{Low: low, High: q / (2 * miles), Level: level}, nil
}

// chiSquareQuantile inverts the chi-square CDF by bisection.
func chiSquareQuantile(p, k float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("reliability: quantile probability outside (0,1)")
	}
	lo, hi := 0.0, k+10
	for {
		c, err := stats.ChiSquareCDF(hi, k)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, errors.New("reliability: chi-square quantile out of range")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := stats.ChiSquareCDF(mid, k)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// EstimateConfidence returns the Kalra–Paddock-style confidence that the
// true event rate is below ratio times the observed MLE, given the observed
// event count: C = ChiSquareCDF(2*events*ratio, 2*events + 2). Miles cancel
// out — confidence in a rate estimate depends only on how many events were
// seen. The paper reports that only Waymo (25 accidents) and GM Cruise (14)
// clear 90% under this criterion with ratio 2; one-accident manufacturers
// (Delphi, Nissan) do not.
func EstimateConfidence(events int, ratio float64) (float64, error) {
	if events <= 0 {
		return 0, errors.New("reliability: confidence requires at least one event")
	}
	if ratio <= 1 {
		return 0, errors.New("reliability: ratio must exceed 1")
	}
	return stats.ChiSquareCDF(2*float64(events)*ratio, 2*float64(events)+2)
}

// SignificantEstimate reports whether an event-rate estimate clears the
// given confidence level under EstimateConfidence with the default
// demonstration ratio of 2.
func SignificantEstimate(events int, level float64) (bool, error) {
	if level <= 0 || level >= 1 {
		return false, errors.New("reliability: level must be in (0,1)")
	}
	if events <= 0 {
		return false, nil
	}
	c, err := EstimateConfidence(events, 2)
	if err != nil {
		return false, err
	}
	return c >= level, nil
}

// WorseThanBaseline tests, one-sided, whether an observed accident count
// over the given miles is significantly higher than a baseline per-mile
// rate. It returns the p-value P(X >= events | rate = baseline) and whether
// the result is significant at the requested level (the paper reports
// Waymo and GM Cruise at > 90% significance).
func WorseThanBaseline(events int, miles, baselineRate, level float64) (pValue float64, significant bool, err error) {
	if baselineRate < 0 || miles <= 0 {
		return 0, false, errors.New("reliability: invalid baseline or miles")
	}
	if level <= 0 || level >= 1 {
		return 0, false, errors.New("reliability: level must be in (0,1)")
	}
	p, err := PoissonTailGE(events, baselineRate*miles)
	if err != nil {
		return 0, false, err
	}
	return p, p < 1-level, nil
}
