// Package nlp implements Stage III of the paper's pipeline: mapping the
// free-text disengagement causes written by manufacturers to fault tags and
// failure categories.
//
// The method follows the paper: a failure dictionary of keyword phrases is
// built over the corpus (seeded with hand-verified entries), then a voting
// scheme assigns each cause to the tag sharing the maximum number of
// keywords; causes matching nothing are tagged Unknown-T.
package nlp

import (
	"strings"
	"unicode"
)

// defaultStopwords are high-frequency function words plus report
// boilerplate ("driver safely disengaged and resumed manual control")
// that carries no fault information.
var defaultStopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "as": {}, "at": {}, "be": {}, "by": {},
	"for": {}, "from": {}, "in": {}, "into": {}, "is": {}, "it": {},
	"of": {}, "on": {}, "or": {}, "that": {}, "the": {}, "to": {},
	"was": {}, "were": {}, "with": {}, "due": {}, "after": {},
	"during": {}, "while": {}, "result": {}, "resulted": {},
	// Reporting boilerplate common to every log line; keeping these would
	// let the classifier vote on narration instead of the fault.
	"driver": {}, "safely": {}, "disengaged": {}, "disengage": {},
	"disengagement": {}, "resumed": {}, "manual": {}, "control": {},
	"took": {}, "takeover": {}, "request": {}, "mode": {}, "test": {},
	"vehicle": {}, "car": {}, "av": {},
}

// Tokenizer splits raw cause text into normalized tokens.
type Tokenizer struct {
	// Stem applies Porter stemming to each token when true.
	Stem bool
	// stopwords to drop; nil uses the package default set.
	stopwords map[string]struct{}
}

// NewTokenizer returns a tokenizer with stemming enabled and the default
// stopword list.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{Stem: true, stopwords: defaultStopwords}
}

// Tokens lowercases text, splits it on non-alphanumeric runes, drops
// stopwords and single-character tokens, and (optionally) stems.
func (t *Tokenizer) Tokens(text string) []string {
	stop := t.stopwords
	if stop == nil {
		stop = defaultStopwords
	}
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		if len(f) < 2 {
			continue
		}
		if _, isStop := stop[f]; isStop {
			continue
		}
		if t.Stem {
			f = PorterStem(f)
		}
		out = append(out, f)
	}
	return out
}

// TokenSet returns the deduplicated token set of text.
func (t *Tokenizer) TokenSet(text string) map[string]struct{} {
	toks := t.Tokens(text)
	set := make(map[string]struct{}, len(toks))
	for _, tok := range toks {
		set[tok] = struct{}{}
	}
	return set
}

// Bigrams returns adjacent-token pairs joined by a space, computed over the
// token sequence (post stopword removal).
func (t *Tokenizer) Bigrams(text string) []string {
	toks := t.Tokens(text)
	if len(toks) < 2 {
		return nil
	}
	out := make([]string, 0, len(toks)-1)
	for i := 0; i+1 < len(toks); i++ {
		out = append(out, toks[i]+" "+toks[i+1])
	}
	return out
}
