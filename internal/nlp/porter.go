package nlp

import "strings"

// PorterStem reduces an English word to its stem using the classic Porter
// (1980) algorithm. The implementation follows the original paper's five
// steps; words of length <= 2 are returned unchanged.
func PorterStem(word string) string {
	w := strings.ToLower(word)
	if len(w) <= 2 {
		return w
	}
	w = porterStep1a(w)
	w = porterStep1b(w)
	w = porterStep1c(w)
	w = porterStep2(w)
	w = porterStep3(w)
	w = porterStep4(w)
	w = porterStep5(w)
	return w
}

// isCons reports whether w[i] acts as a consonant in Porter's sense.
func isCons(w string, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w.
func measure(w string) int {
	n := 0
	i := 0
	l := len(w)
	// Skip initial consonants.
	for i < l && isCons(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < l && !isCons(w, i) {
			i++
		}
		if i >= l {
			return n
		}
		// Skip consonants.
		for i < l && isCons(w, i) {
			i++
		}
		n++
		if i >= l {
			return n
		}
	}
}

// hasVowel reports whether w contains a vowel.
func hasVowel(w string) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends in a doubled consonant.
func endsDoubleCons(w string) bool {
	l := len(w)
	if l < 2 {
		return false
	}
	return w[l-1] == w[l-2] && isCons(w, l-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w string) bool {
	l := len(w)
	if l < 3 {
		return false
	}
	if !isCons(w, l-3) || isCons(w, l-2) || !isCons(w, l-1) {
		return false
	}
	switch w[l-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// replaceSuffix returns w with old replaced by new when w ends in old and
// the stem (w minus old) has measure >= minM. ok reports a replacement.
func replaceSuffix(w, old, repl string, minM int) (string, bool) {
	if !strings.HasSuffix(w, old) {
		return w, false
	}
	stem := w[:len(w)-len(old)]
	if measure(stem) < minM {
		return w, false
	}
	return stem + repl, true
}

func porterStep1a(w string) string {
	switch {
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ies"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func porterStep1b(w string) string {
	if strings.HasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem string
	switch {
	case strings.HasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case strings.HasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case strings.HasSuffix(stem, "at"), strings.HasSuffix(stem, "bl"), strings.HasSuffix(stem, "iz"):
		return stem + "e"
	case endsDoubleCons(stem) && !strings.HasSuffix(stem, "l") &&
		!strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return stem + "e"
	}
	return stem
}

func porterStep1c(w string) string {
	if strings.HasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		return w[:len(w)-1] + "i"
	}
	return w
}

// step2Rules maps suffixes to replacements, applied when measure(stem) > 0.
var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func porterStep2(w string) string {
	for _, r := range step2Rules {
		if out, ok := replaceSuffix(w, r.suffix, r.repl, 1); ok {
			return out
		}
		if strings.HasSuffix(w, r.suffix) {
			return w // suffix matched but measure too small; stop searching
		}
	}
	return w
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func porterStep3(w string) string {
	for _, r := range step3Rules {
		if out, ok := replaceSuffix(w, r.suffix, r.repl, 1); ok {
			return out
		}
		if strings.HasSuffix(w, r.suffix) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func porterStep4(w string) string {
	// "ion" requires the stem to end in s or t.
	if strings.HasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && (strings.HasSuffix(stem, "s") || strings.HasSuffix(stem, "t")) {
			return stem
		}
		return w
	}
	for _, s := range step4Suffixes {
		if strings.HasSuffix(w, s) {
			stem := w[:len(w)-len(s)]
			if measure(stem) > 1 {
				return stem
			}
			return w
		}
	}
	return w
}

func porterStep5(w string) string {
	// Step 5a.
	if strings.HasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			w = stem
		}
	}
	// Step 5b.
	if measure(w) > 1 && endsDoubleCons(w) && strings.HasSuffix(w, "l") {
		w = w[:len(w)-1]
	}
	return w
}
