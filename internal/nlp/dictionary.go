package nlp

import (
	"sort"

	"avfda/internal/ontology"
)

// Dictionary is the failure dictionary: for every fault tag, the keyword
// phrases whose presence in a disengagement cause votes for that tag.
// Phrases are stored raw; the classifier normalizes them through its own
// tokenizer so stemming ablations stay consistent end to end.
type Dictionary struct {
	phrases map[ontology.Tag][]string
	// bigramOnly holds phrases mined automatically by Expand. They vote
	// only as exact bigrams: their individual words are unvetted, and
	// letting them vote as unigrams lets one stray stem (e.g. "oper" from
	// a promoted "safe oper") capture unrelated texts.
	bigramOnly map[ontology.Tag][]string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		phrases:    make(map[ontology.Tag][]string),
		bigramOnly: make(map[ontology.Tag][]string),
	}
}

// SeedDictionary returns the hand-verified failure dictionary described in
// the paper (§IV, "Labeling and Tagging"): phrases extracted from raw
// disengagement logs over several passes and checked manually by the
// authors. Wording follows the vocabulary visible in the paper's Table II
// excerpts and the DMV reports it cites.
func SeedDictionary() *Dictionary {
	d := NewDictionary()
	add := d.Add
	// Environment: sudden external factors (counted as perception-related
	// ML in the category rollup, per §V-A2 footnote 5).
	add(ontology.TagEnvironment,
		"recklessly behaving road user",
		"reckless road user",
		"construction zone",
		"emergency vehicle approaching",
		"accident ahead traffic",
		"debris on roadway",
		"unexpected cyclist crossing",
		"jaywalking pedestrian",
		"heavy rain conditions",
		"sun glare blinding",
		"road conditions changed suddenly",
	)
	add(ontology.TagComputerSystem,
		"processor overload",
		"compute unit fault",
		"cpu utilization exceeded",
		"memory exhaustion onboard computer",
		"hardware fault main computer",
		"computer system error",
	)
	add(ontology.TagRecognitionSystem,
		"did not see lead vehicle",
		"failed to detect traffic light",
		"failed to detect lane markings",
		"misclassified object",
		"perception system failure",
		"false detection of obstacle",
		"failed to recognize pedestrian",
		"incorrect object tracking",
		"recognition system error",
	)
	add(ontology.TagPlanner,
		"incorrect motion plan",
		"improper planning of maneuver",
		"failed to anticipate driver",
		"unwanted maneuver planned",
		"trajectory planning error",
		"planner produced infeasible path",
		"poor lane change decision",
	)
	add(ontology.TagSensor,
		"lidar failed to localize",
		"gps localization lost",
		"sensor dropout",
		"radar return blocked",
		"camera obstructed",
		"localization timed out",
		"sensor calibration drift",
	)
	add(ontology.TagNetwork,
		"data rate exceeded network capacity",
		"can bus overload",
		"network latency exceeded threshold",
		"dropped messages on vehicle bus",
	)
	add(ontology.TagDesignBug,
		"not designed to handle",
		"situation outside design domain",
		"unsupported roadway configuration",
		"unforeseen scenario encountered",
	)
	add(ontology.TagSoftware,
		"software module froze",
		"software crash",
		"software hang",
		"software bug detected",
		"process terminated unexpectedly",
		"system software error",
		"application fault restart",
	)
	add(ontology.TagAVControllerSystem,
		"controller not responding",
		"controller unresponsive to commands",
		"actuation command ignored",
		"steering command rejected controller",
	)
	add(ontology.TagAVControllerML,
		"controller wrong decision",
		"controller incorrect prediction",
		"bad control decision intersection",
	)
	add(ontology.TagHangCrash,
		"watchdog error",
		"watchdog timer expired",
		"watchdog timeout reset",
	)
	add(ontology.TagIncorrectBehaviorPrediction,
		"incorrect behavior prediction",
		"behavior prediction wrong",
		"failed to predict behavior of road user",
	)
	return d
}

// Add appends phrases to a tag's entry. Unknown-T cannot hold phrases.
func (d *Dictionary) Add(tag ontology.Tag, phrases ...string) {
	if tag == ontology.TagUnknownT {
		return
	}
	d.phrases[tag] = append(d.phrases[tag], phrases...)
}

// AddBigramOnly appends mined phrases that may vote only as exact bigrams.
func (d *Dictionary) AddBigramOnly(tag ontology.Tag, phrases ...string) {
	if tag == ontology.TagUnknownT {
		return
	}
	d.bigramOnly[tag] = append(d.bigramOnly[tag], phrases...)
}

// Phrases returns a copy of the hand-curated phrase list for tag.
func (d *Dictionary) Phrases(tag ontology.Tag) []string {
	src := d.phrases[tag]
	out := make([]string, len(src))
	copy(out, src)
	return out
}

// BigramOnlyPhrases returns a copy of the mined phrase list for tag.
func (d *Dictionary) BigramOnlyPhrases(tag ontology.Tag) []string {
	src := d.bigramOnly[tag]
	out := make([]string, len(src))
	copy(out, src)
	return out
}

// Tags returns the tags that have at least one phrase, in a stable order.
func (d *Dictionary) Tags() []ontology.Tag {
	seen := make(map[ontology.Tag]bool, len(d.phrases)+len(d.bigramOnly))
	out := make([]ontology.Tag, 0, len(d.phrases)+len(d.bigramOnly))
	for t := range d.phrases {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for t := range d.bigramOnly {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the total number of phrases across all tags, curated and
// mined.
func (d *Dictionary) Size() int {
	n := 0
	for _, p := range d.phrases {
		n += len(p)
	}
	for _, p := range d.bigramOnly {
		n += len(p)
	}
	return n
}

// Clone returns a deep copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	out := NewDictionary()
	for t, ps := range d.phrases {
		out.phrases[t] = append([]string(nil), ps...)
	}
	for t, ps := range d.bigramOnly {
		out.bigramOnly[t] = append([]string(nil), ps...)
	}
	return out
}

// Truncate returns a copy keeping at most n curated phrases per tag (for
// the dictionary-size ablation); mined phrases are dropped.
func (d *Dictionary) Truncate(n int) *Dictionary {
	out := NewDictionary()
	for t, ps := range d.phrases {
		if len(ps) > n {
			ps = ps[:n]
		}
		out.phrases[t] = append([]string(nil), ps...)
	}
	return out
}
