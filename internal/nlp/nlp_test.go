package nlp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"avfda/internal/ontology"
)

func TestPorterStemKnownPairs(t *testing.T) {
	cases := []struct{ in, want string }{
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		{"happy", "happi"},
		{"sky", "sky"},
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"digitizer", "digit"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"formaliti", "formal"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// Domain words used by the classifier.
		{"recognition", "recognit"},
		{"perception", "percept"},
		{"planning", "plan"},
		{"prediction", "predict"},
		{"detection", "detect"},
		{"localization", "local"},
	}
	for _, c := range cases {
		if got := PorterStem(c.in); got != c.want {
			t.Errorf("PorterStem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stemming is idempotent for our dictionary vocabulary class and
// never returns the empty string for inputs >= 3 chars of letters.
func TestPorterStemIdempotentProperty(t *testing.T) {
	words := []string{
		"recognition", "planner", "software", "watchdog", "sensor",
		"localization", "prediction", "environment", "construction",
		"behavior", "vehicles", "detection", "failures", "controller",
		"overloaded", "crashed", "freezing", "misclassified",
	}
	for _, w := range words {
		once := PorterStem(w)
		twice := PorterStem(once)
		if once == "" {
			t.Errorf("PorterStem(%q) = empty", w)
		}
		if once != twice {
			t.Errorf("PorterStem not idempotent on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestTokenizerDropsStopwordsAndBoilerplate(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokens("The driver safely disengaged and resumed manual control after a software crash")
	// Everything except "software crash" is stopword/boilerplate.
	if len(got) != 2 || got[0] != PorterStem("software") || got[1] != PorterStem("crash") {
		t.Errorf("Tokens = %v", got)
	}
}

func TestTokenizerNoStem(t *testing.T) {
	tok := &Tokenizer{Stem: false}
	got := tok.Tokens("Recognition failures")
	if len(got) != 2 || got[0] != "recognition" || got[1] != "failures" {
		t.Errorf("unstemmed Tokens = %v", got)
	}
}

func TestTokenizerBigrams(t *testing.T) {
	tok := NewTokenizer()
	bgs := tok.Bigrams("watchdog timer error")
	if len(bgs) != 2 {
		t.Fatalf("Bigrams = %v", bgs)
	}
	if tok.Bigrams("watchdog") != nil {
		t.Error("single token should have no bigrams")
	}
}

func TestTokenSet(t *testing.T) {
	tok := NewTokenizer()
	set := tok.TokenSet("crash crash crash")
	if len(set) != 1 {
		t.Errorf("TokenSet size = %d, want 1", len(set))
	}
}

func TestSeedDictionaryCoversAllTaggableTags(t *testing.T) {
	d := SeedDictionary()
	for _, tag := range ontology.AllTags() {
		if tag == ontology.TagUnknownT {
			continue
		}
		if len(d.Phrases(tag)) == 0 {
			t.Errorf("seed dictionary has no phrases for %s", tag)
		}
	}
	if d.Size() < 30 {
		t.Errorf("seed dictionary suspiciously small: %d", d.Size())
	}
}

func TestDictionaryAddIgnoresUnknown(t *testing.T) {
	d := NewDictionary()
	d.Add(ontology.TagUnknownT, "anything")
	if d.Size() != 0 {
		t.Error("Unknown-T must not hold phrases")
	}
}

func TestDictionaryCloneIsDeep(t *testing.T) {
	d := SeedDictionary()
	c := d.Clone()
	c.Add(ontology.TagSoftware, "new phrase")
	if len(d.Phrases(ontology.TagSoftware)) == len(c.Phrases(ontology.TagSoftware)) {
		t.Error("Clone shares storage with original")
	}
}

func TestDictionaryTruncate(t *testing.T) {
	d := SeedDictionary()
	tr := d.Truncate(1)
	for _, tag := range tr.Tags() {
		if len(tr.Phrases(tag)) > 1 {
			t.Errorf("Truncate(1) left %d phrases for %s", len(tr.Phrases(tag)), tag)
		}
	}
}

// Table II of the paper: raw log lines and their expected tags/categories.
func TestClassifierPaperTableII(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		log     string
		wantTag ontology.Tag
		wantCat ontology.Category
	}{
		{
			"Software module froze. As a result driver safely disengaged and resumed manual control.",
			ontology.TagSoftware, ontology.CategorySystem,
		},
		{
			"The AV didn't see the lead vehicle, driver safely disengaged and resumed manual control.",
			ontology.TagRecognitionSystem, ontology.CategoryMLDesign,
		},
		{
			"Disengage for a recklessly behaving road user",
			ontology.TagEnvironment, ontology.CategoryMLDesign,
		},
		{
			"Takeover-Request - watchdog error",
			ontology.TagHangCrash, ontology.CategorySystem,
		},
		{
			"incorrect behavior prediction",
			ontology.TagIncorrectBehaviorPrediction, ontology.CategoryMLDesign,
		},
	}
	for _, c := range cases {
		got := cls.Classify(c.log)
		if got.Tag != c.wantTag {
			t.Errorf("Classify(%q).Tag = %s, want %s (matched %v)", c.log, got.Tag, c.wantTag, got.Matched)
		}
		if got.Category != c.wantCat {
			t.Errorf("Classify(%q).Category = %s, want %s", c.log, got.Category, c.wantCat)
		}
		if got.Score == 0 {
			t.Errorf("Classify(%q).Score = 0", c.log)
		}
	}
}

func TestClassifierUnknown(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := cls.Classify("disengagement reported")
	if got.Tag != ontology.TagUnknownT || got.Category != ontology.CategoryUnknownC || got.Score != 0 {
		t.Errorf("vague text classified as %s (%s, score %d)", got.Tag, got.Category, got.Score)
	}
	// Empty text too.
	got = cls.Classify("")
	if got.Tag != ontology.TagUnknownT {
		t.Errorf("empty text -> %s", got.Tag)
	}
}

func TestClassifierNilDictionary(t *testing.T) {
	if _, err := NewClassifier(nil, DefaultOptions()); err == nil {
		t.Error("nil dictionary: want error")
	}
}

func TestClassifierMorphologicalRobustness(t *testing.T) {
	// Stemming should make inflected forms match dictionary entries.
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := cls.Classify("planners produced infeasible paths")
	if got.Tag != ontology.TagPlanner {
		t.Errorf("inflected planner text -> %s (matched %v)", got.Tag, got.Matched)
	}
	// Without stemming the same text should match weakly or not at all.
	noStem, err := NewClassifier(SeedDictionary(), Options{Stem: false})
	if err != nil {
		t.Fatal(err)
	}
	raw := noStem.Classify("planners produced infeasible paths")
	if raw.Score >= got.Score {
		t.Errorf("no-stem score %d >= stem score %d; stemming should help", raw.Score, got.Score)
	}
}

func TestClassifierDeterminism(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := "watchdog error after software crash with sensor dropout"
	first := cls.Classify(text)
	for i := 0; i < 50; i++ {
		again := cls.Classify(text)
		if again.Tag != first.Tag || again.Score != first.Score {
			t.Fatalf("nondeterministic classification: %v vs %v", again, first)
		}
	}
}

func TestClassifyAll(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := cls.ClassifyAll([]string{"watchdog error", "software crash"})
	if len(res) != 2 || res[0].Tag != ontology.TagHangCrash || res[1].Tag != ontology.TagSoftware {
		t.Errorf("ClassifyAll = %v", res)
	}
}

func TestClassifyAllConcurrentMatchesSequential(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := []string{
		"watchdog error",
		"Software module froze during merge",
		"LIDAR failed to localize in time",
		"Disengage for a recklessly behaving road user",
		"Incorrect behavior prediction at crosswalk",
		"network dropout on the cellular link",
		"",
		"totally unrelated text",
	}
	var texts []string
	for i := 0; i < 40; i++ {
		texts = append(texts, base...)
	}
	want := make([]Result, len(texts))
	for i, s := range texts {
		want[i] = cls.Classify(s)
	}
	for _, workers := range []int{0, 1, 3, 8, 64, len(texts) + 7} {
		got := cls.ClassifyAllConcurrent(texts, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: results differ from sequential classification", workers)
		}
	}
	if got := cls.ClassifyAllConcurrent(nil, 4); len(got) != 0 {
		t.Errorf("nil input returned %d results", len(got))
	}
}

func TestTieBreakPolicies(t *testing.T) {
	// Build a dictionary where one text hits two tags with equal score.
	d := NewDictionary()
	d.Add(ontology.TagEnvironment, "ambiguous marker")
	d.Add(ontology.TagHangCrash, "ambiguous marker")
	prio, err := NewClassifier(d, Options{Stem: true, TieBreak: TieBreakPriority})
	if err != nil {
		t.Fatal(err)
	}
	// HangCrash outranks Environment in the priority order.
	if got := prio.Classify("ambiguous marker observed"); got.Tag != ontology.TagHangCrash {
		t.Errorf("priority tie-break -> %s", got.Tag)
	}
	first, err := NewClassifier(d, Options{Stem: true, TieBreak: TieBreakFirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	// Environment has the lower tag number.
	if got := first.Classify("ambiguous marker observed"); got.Tag != ontology.TagEnvironment {
		t.Errorf("first-match tie-break -> %s", got.Tag)
	}
}

func TestExpandLearnsNewPhrases(t *testing.T) {
	// Corpus where a novel bigram co-occurs with known software vocabulary.
	corpus := make([]string, 0, 30)
	for i := 0; i < 10; i++ {
		corpus = append(corpus, "software crash following kernel panic")
		corpus = append(corpus, "watchdog error")
		corpus = append(corpus, "recklessly behaving road user")
	}
	seed := SeedDictionary()
	expanded, added, err := Expand(seed, corpus, DefaultOptions(), ExpandOptions{MinCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("Expand added nothing")
	}
	// The expanded dictionary should now classify the novel phrasing alone.
	cls, err := NewClassifier(expanded, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := cls.Classify("kernel panic")
	if got.Tag != ontology.TagSoftware {
		t.Errorf("learned phrase classified as %s", got.Tag)
	}
	// Original dictionary untouched.
	if seed.Size() >= expanded.Size() {
		t.Error("Expand should grow the copy, not shrink")
	}
}

func TestExpandIgnoresRareAndDiffuseBigrams(t *testing.T) {
	corpus := []string{
		"software crash alpha beta", // "alpha beta" occurs twice, split across tags
		"watchdog error alpha beta",
	}
	seed := SeedDictionary()
	expanded, added, err := Expand(seed, corpus, DefaultOptions(), ExpandOptions{MinCount: 5, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || expanded.Size() != seed.Size() {
		t.Errorf("Expand added %d phrases from rare bigrams", added)
	}
}

// Property: classification score is monotone under text extension with the
// winning tag's keywords (adding more of the same signal never flips to
// Unknown).
func TestClassifierMonotoneProperty(t *testing.T) {
	cls, err := NewClassifier(SeedDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := []string{
		"software crash", "watchdog error", "sensor dropout",
		"construction zone", "incorrect behavior prediction",
	}
	prop := func(pick uint8, repeat uint8) bool {
		text := base[int(pick)%len(base)]
		first := cls.Classify(text)
		extended := text
		for i := 0; i < int(repeat%3)+1; i++ {
			extended += " " + text
		}
		second := cls.Classify(extended)
		return second.Tag == first.Tag && second.Score >= first.Score
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(48))}); err != nil {
		t.Error(err)
	}
}
