package nlp

import (
	"errors"
	"runtime"
	"sort"
	"sync"

	"avfda/internal/ontology"
)

// TieBreak selects how the classifier resolves equal vote counts between
// tags.
type TieBreak int

// Tie-break policies (the ablation benches compare them).
const (
	// TieBreakPriority prefers the more specific tag per tagPriority.
	TieBreakPriority TieBreak = iota + 1
	// TieBreakFirstMatch prefers the lowest-numbered tag (arbitrary but
	// deterministic), modeling a naive implementation.
	TieBreakFirstMatch
)

// tagPriority orders tags from most to least specific for tie-breaking:
// narrow hardware/watchdog vocabulary outranks broad environment phrasing.
var tagPriority = []ontology.Tag{
	ontology.TagHangCrash,
	ontology.TagNetwork,
	ontology.TagSensor,
	ontology.TagComputerSystem,
	ontology.TagSoftware,
	ontology.TagAVControllerSystem,
	ontology.TagAVControllerML,
	ontology.TagIncorrectBehaviorPrediction,
	ontology.TagRecognitionSystem,
	ontology.TagPlanner,
	ontology.TagDesignBug,
	ontology.TagEnvironment,
}

// priorityRank returns the tie-break rank of t (lower wins).
func priorityRank(t ontology.Tag) int {
	for i, p := range tagPriority {
		if p == t {
			return i
		}
	}
	return len(tagPriority)
}

// Options configures a Classifier.
type Options struct {
	// Stem toggles Porter stemming (ablation: accuracy drops without it).
	Stem bool
	// TieBreak selects the tie resolution policy.
	TieBreak TieBreak
	// BigramWeight is the vote weight of a matched bigram relative to a
	// matched unigram (default 2).
	BigramWeight int
}

// DefaultOptions returns the configuration used for the paper reproduction.
func DefaultOptions() Options {
	return Options{Stem: true, TieBreak: TieBreakPriority, BigramWeight: 2}
}

// Classifier assigns fault tags to disengagement cause texts by keyword
// voting against a failure dictionary.
type Classifier struct {
	tok  *Tokenizer
	opts Options
	// Per tag: unigram and bigram keyword sets, normalized through tok.
	unigrams map[ontology.Tag]map[string]struct{}
	bigrams  map[ontology.Tag]map[string]struct{}
}

// Result is one classification outcome.
type Result struct {
	Tag      ontology.Tag
	Category ontology.Category
	// Score is the winning vote count (0 for Unknown-T).
	Score int
	// Matched lists the dictionary keywords that voted for the winning
	// tag, sorted.
	Matched []string
}

// NewClassifier compiles dict into a voting classifier. The dictionary is
// normalized through the classifier's tokenizer, so stemming configuration
// applies consistently to both dictionary and inputs.
func NewClassifier(dict *Dictionary, opts Options) (*Classifier, error) {
	if dict == nil {
		return nil, errors.New("nlp: nil dictionary")
	}
	if opts.BigramWeight <= 0 {
		opts.BigramWeight = 2
	}
	if opts.TieBreak == 0 {
		opts.TieBreak = TieBreakPriority
	}
	c := &Classifier{
		tok:      &Tokenizer{Stem: opts.Stem},
		opts:     opts,
		unigrams: make(map[ontology.Tag]map[string]struct{}),
		bigrams:  make(map[ontology.Tag]map[string]struct{}),
	}
	for _, tag := range dict.Tags() {
		uni := make(map[string]struct{})
		bi := make(map[string]struct{})
		for _, phrase := range dict.Phrases(tag) {
			toks := c.tok.Tokens(phrase)
			for _, t := range toks {
				uni[t] = struct{}{}
			}
			for i := 0; i+1 < len(toks); i++ {
				bi[toks[i]+" "+toks[i+1]] = struct{}{}
			}
		}
		// Mined phrases vote only as exact bigrams (see Dictionary).
		for _, phrase := range dict.BigramOnlyPhrases(tag) {
			toks := c.tok.Tokens(phrase)
			for i := 0; i+1 < len(toks); i++ {
				bi[toks[i]+" "+toks[i+1]] = struct{}{}
			}
		}
		c.unigrams[tag] = uni
		c.bigrams[tag] = bi
	}
	return c, nil
}

// Classify maps one cause text to a fault tag and category. Texts sharing
// no keyword with any tag return Unknown-T / Unknown-C with score 0.
func (c *Classifier) Classify(text string) Result {
	tokens := c.tok.Tokens(text)
	tokenSet := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		tokenSet[t] = struct{}{}
	}
	bigramSet := make(map[string]struct{}, len(tokens))
	for i := 0; i+1 < len(tokens); i++ {
		bigramSet[tokens[i]+" "+tokens[i+1]] = struct{}{}
	}

	best := Result{Tag: ontology.TagUnknownT, Category: ontology.CategoryUnknownC}
	bestRank := int(^uint(0) >> 1)
	for _, tag := range tagPriority {
		uni, ok := c.unigrams[tag]
		if !ok {
			continue
		}
		var score int
		var matched []string
		for kw := range uni {
			if _, hit := tokenSet[kw]; hit {
				score++
				matched = append(matched, kw)
			}
		}
		for kw := range c.bigrams[tag] {
			if _, hit := bigramSet[kw]; hit {
				score += c.opts.BigramWeight
				matched = append(matched, kw)
			}
		}
		if score == 0 {
			continue
		}
		rank := priorityRank(tag)
		if c.opts.TieBreak == TieBreakFirstMatch {
			rank = int(tag)
		}
		if score > best.Score || (score == best.Score && rank < bestRank) {
			sort.Strings(matched)
			best = Result{
				Tag:      tag,
				Category: ontology.CategoryOf(tag),
				Score:    score,
				Matched:  matched,
			}
			bestRank = rank
		}
	}
	return best
}

// ClassifyAll maps each text through Classify, fanning the work out across
// GOMAXPROCS workers. Output order matches input order and is identical to
// a sequential loop: the classifier is read-only after construction and
// Classify is a pure function of its input.
func (c *Classifier) ClassifyAll(texts []string) []Result {
	return c.ClassifyAllConcurrent(texts, 0)
}

// ClassifyAllConcurrent maps each text through Classify with a bounded
// number of workers, sharding the input range into contiguous chunks.
// Workers <= 0 selects GOMAXPROCS; workers == 1 runs sequentially. Results
// are identical at any worker count.
func (c *Classifier) ClassifyAllConcurrent(texts []string, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(texts) {
		workers = len(texts)
	}
	out := make([]Result, len(texts))
	if workers <= 1 {
		for i, t := range texts {
			out[i] = c.Classify(t)
		}
		return out
	}
	chunk := (len(texts) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(texts); lo += chunk {
		hi := lo + chunk
		if hi > len(texts) {
			hi = len(texts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.Classify(texts[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// ExpandOptions configures dictionary expansion passes.
type ExpandOptions struct {
	// MinCount is the minimum corpus frequency for a candidate bigram
	// (default 5).
	MinCount int
	// MinConcentration is the minimum fraction of a bigram's occurrences
	// that must fall in texts already assigned to a single tag (default
	// 0.8).
	MinConcentration float64
	// Passes is the number of classify-extract iterations (default 2),
	// mirroring the paper's "several passes over the dataset".
	Passes int
}

func (o ExpandOptions) withDefaults() ExpandOptions {
	if o.MinCount <= 0 {
		o.MinCount = 5
	}
	if o.MinConcentration <= 0 {
		o.MinConcentration = 0.8
	}
	if o.Passes <= 0 {
		o.Passes = 2
	}
	return o
}

// Expand grows dict by mining the corpus: each pass classifies every text
// with the current dictionary, then promotes bigrams that are frequent and
// concentrated in one tag's texts into that tag's phrase list. It returns
// the expanded dictionary (the input is not modified) and the number of
// phrases added.
func Expand(dict *Dictionary, corpus []string, opts Options, eo ExpandOptions) (*Dictionary, int, error) {
	eo = eo.withDefaults()
	out := dict.Clone()
	added := 0
	for pass := 0; pass < eo.Passes; pass++ {
		cls, err := NewClassifier(out, opts)
		if err != nil {
			return nil, 0, err
		}
		// bigram -> tag -> count over texts assigned to that tag.
		counts := make(map[string]map[ontology.Tag]int)
		totals := make(map[string]int)
		for _, text := range corpus {
			res := cls.Classify(text)
			for _, bg := range cls.tok.Bigrams(text) {
				totals[bg]++
				if res.Tag == ontology.TagUnknownT {
					continue
				}
				m := counts[bg]
				if m == nil {
					m = make(map[ontology.Tag]int)
					counts[bg] = m
				}
				m[res.Tag]++
			}
		}
		// Promote concentrated bigrams not already known, deterministically.
		candidates := make([]string, 0, len(counts))
		for bg := range counts {
			candidates = append(candidates, bg)
		}
		sort.Strings(candidates)
		passAdded := 0
		for _, bg := range candidates {
			if totals[bg] < eo.MinCount {
				continue
			}
			var bestTag ontology.Tag
			bestCount := 0
			for tag, n := range counts[bg] {
				if n > bestCount || (n == bestCount && tag < bestTag) {
					bestTag, bestCount = tag, n
				}
			}
			if float64(bestCount)/float64(totals[bg]) < eo.MinConcentration {
				continue
			}
			if _, known := cls.bigrams[bestTag][bg]; known {
				continue
			}
			out.AddBigramOnly(bestTag, bg)
			passAdded++
		}
		added += passAdded
		if passAdded == 0 {
			break
		}
	}
	return out, added, nil
}
