// Package stpa models the AV hierarchical control structure of the paper's
// Fig. 3 using Systems-Theoretic Process Analysis (STPA, Leveson 2011).
//
// STPA treats accidents as the result of inadequate control rather than
// component failure chains: controllers at each layer impose safety
// constraints on the layers below and receive feedback from them. The
// structure here encodes the autonomous driving system (ADS) — sensors,
// recognition, planner & controller, follower, actuators — together with
// the human safety driver and surrounding non-AV drivers, and the three
// control loops (CL-1, CL-2, CL-3) the paper highlights. Fault tags from
// the NLP stage are localized onto this structure to produce causal
// explanations of disengagements and accidents.
package stpa

import (
	"errors"
	"fmt"

	"avfda/internal/ontology"
)

// ComponentID identifies one element of the control structure.
type ComponentID string

// Components of the ADS hierarchical control structure (Fig. 3).
const (
	CompDriver      ComponentID = "driver"        // AV safety driver
	CompNonAVDriver ComponentID = "non-av-driver" // drivers of surrounding vehicles
	CompSensors     ComponentID = "sensors"       // GPS, RADAR, LIDAR, camera, SONAR
	CompRecognition ComponentID = "recognition"   // perception system
	CompPlanner     ComponentID = "planner"       // planner & controller
	CompFollower    ComponentID = "follower"      // path follower
	CompActuators   ComponentID = "actuators"
	CompMechanical  ComponentID = "mechanical" // mechanical components of the AV
	CompNetwork     ComponentID = "network"    // in-vehicle data network
	CompEnvironment ComponentID = "environment"
)

// Layer places a component in the control hierarchy: lower layers are
// closer to the physical process.
type Layer int

// Hierarchy layers, top down.
const (
	LayerHuman Layer = iota + 1
	LayerAutonomous
	LayerMechanicalSys
	LayerProcess
)

// Component is one node of the control structure.
type Component struct {
	ID          ComponentID
	Name        string
	Layer       Layer
	Description string
}

// EdgeKind distinguishes control actions (downward) from feedback (upward).
type EdgeKind int

// Edge kinds.
const (
	ControlAction EdgeKind = iota + 1
	Feedback
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	if k == ControlAction {
		return "control"
	}
	return "feedback"
}

// Edge is a directed control or feedback channel between components.
type Edge struct {
	From, To ComponentID
	Kind     EdgeKind
	Label    string
}

// ControlLoop is a named cycle through the structure, like the paper's
// CL-1..CL-3.
type ControlLoop struct {
	ID          string
	Description string
	// Path lists the component sequence; the loop closes from the last
	// element back to the first.
	Path []ComponentID
}

// Structure is the full hierarchical control structure.
type Structure struct {
	components map[ComponentID]Component
	order      []ComponentID
	edges      []Edge
	loops      []ControlLoop
}

// NewADSStructure builds the paper's Fig. 3 control structure.
func NewADSStructure() *Structure {
	s := &Structure{components: make(map[ComponentID]Component)}
	for _, c := range []Component{
		{CompDriver, "AV Safety Driver", LayerHuman,
			"Human fall-back required by Level 3 autonomy; takes control on disengagement."},
		{CompNonAVDriver, "Non-AV Driver", LayerHuman,
			"Drivers of surrounding conventional vehicles; observed through sensors, informed via signals."},
		{CompSensors, "Sensors", LayerAutonomous,
			"GPS, RADAR, LIDAR, cameras, SONAR collecting environment data."},
		{CompRecognition, "Recognition System", LayerAutonomous,
			"Perception: identifies objects and changes in the environment from sensor data."},
		{CompPlanner, "Planner & Controller", LayerAutonomous,
			"Plans the next motion from AV state and environment; issues control actions."},
		{CompFollower, "Follower", LayerAutonomous,
			"Signals actuators to drive the vehicle along the planned path."},
		{CompActuators, "Actuators", LayerMechanicalSys,
			"Steering, throttle, and brake actuation."},
		{CompMechanical, "Mechanical Components", LayerMechanicalSys,
			"The controlled physical process: the vehicle itself."},
		{CompNetwork, "Vehicle Network", LayerAutonomous,
			"In-vehicle buses carrying sensor data and commands."},
		{CompEnvironment, "Environment", LayerProcess,
			"Roads, traffic, pedestrians, weather: the outer controlled context."},
	} {
		s.components[c.ID] = c
		s.order = append(s.order, c.ID)
	}
	s.edges = []Edge{
		{CompEnvironment, CompSensors, Feedback, "physical observables"},
		{CompSensors, CompRecognition, Feedback, "raw sensor data"},
		{CompRecognition, CompPlanner, Feedback, "scene model / object list"},
		{CompPlanner, CompFollower, ControlAction, "motion plan"},
		{CompFollower, CompActuators, ControlAction, "actuation commands"},
		{CompActuators, CompMechanical, ControlAction, "steering / acceleration"},
		{CompMechanical, CompEnvironment, ControlAction, "vehicle motion"},
		{CompMechanical, CompSensors, Feedback, "odometry / vehicle state"},
		{CompPlanner, CompDriver, Feedback, "takeover request / alerts"},
		{CompDriver, CompPlanner, ControlAction, "engage / disengage"},
		{CompDriver, CompMechanical, ControlAction, "manual steering and braking"},
		{CompMechanical, CompDriver, Feedback, "vehicle behavior"},
		{CompMechanical, CompNonAVDriver, Feedback, "brake signals / turn indicators / horn"},
		{CompNonAVDriver, CompEnvironment, ControlAction, "other-vehicle motion"},
		{CompNetwork, CompPlanner, Feedback, "bus data delivery"},
		{CompSensors, CompNetwork, Feedback, "sensor traffic"},
	}
	s.loops = []ControlLoop{
		{
			ID: "CL-1",
			Description: "Autonomous control of the vehicle among non-AV " +
				"drivers: sensing, recognition, planning, actuation, and the " +
				"resulting motion observed by (and influencing) other drivers.",
			Path: []ComponentID{
				CompEnvironment, CompSensors, CompRecognition, CompPlanner,
				CompFollower, CompActuators, CompMechanical,
			},
		},
		{
			ID: "CL-2",
			Description: "Safety-driver supervision: takeover requests flow " +
				"up, engage/disengage and manual control flow down.",
			Path: []ComponentID{CompDriver, CompPlanner, CompFollower, CompActuators, CompMechanical},
		},
		{
			ID: "CL-3",
			Description: "Interaction with non-AV drivers through vehicle " +
				"signals and observed motion.",
			Path: []ComponentID{CompMechanical, CompNonAVDriver, CompEnvironment, CompSensors, CompRecognition, CompPlanner, CompFollower, CompActuators},
		},
	}
	return s
}

// Component returns the named component.
func (s *Structure) Component(id ComponentID) (Component, error) {
	c, ok := s.components[id]
	if !ok {
		return Component{}, fmt.Errorf("stpa: unknown component %q", id)
	}
	return c, nil
}

// Components returns all components in insertion order.
func (s *Structure) Components() []Component {
	out := make([]Component, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.components[id])
	}
	return out
}

// Edges returns a copy of the edge list.
func (s *Structure) Edges() []Edge {
	out := make([]Edge, len(s.edges))
	copy(out, s.edges)
	return out
}

// Loops returns a copy of the control loops.
func (s *Structure) Loops() []ControlLoop {
	out := make([]ControlLoop, len(s.loops))
	copy(out, s.loops)
	return out
}

// EdgesFrom returns edges leaving id.
func (s *Structure) EdgesFrom(id ComponentID) []Edge {
	var out []Edge
	for _, e := range s.edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// EdgesInto returns edges entering id.
func (s *Structure) EdgesInto(id ComponentID) []Edge {
	var out []Edge
	for _, e := range s.edges {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// LoopsContaining returns the loops whose path includes id.
func (s *Structure) LoopsContaining(id ComponentID) []ControlLoop {
	var out []ControlLoop
	for _, l := range s.loops {
		for _, c := range l.Path {
			if c == id {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// Validate checks structural invariants: every edge endpoint exists; every
// loop path visits existing components and every consecutive pair (and the
// closing pair) is connected by an edge in either direction.
func (s *Structure) Validate() error {
	for _, e := range s.edges {
		if _, ok := s.components[e.From]; !ok {
			return fmt.Errorf("stpa: edge from unknown component %q", e.From)
		}
		if _, ok := s.components[e.To]; !ok {
			return fmt.Errorf("stpa: edge to unknown component %q", e.To)
		}
	}
	connected := func(a, b ComponentID) bool {
		for _, e := range s.edges {
			if (e.From == a && e.To == b) || (e.From == b && e.To == a) {
				return true
			}
		}
		return false
	}
	for _, l := range s.loops {
		if len(l.Path) < 2 {
			return fmt.Errorf("stpa: loop %s has fewer than 2 components", l.ID)
		}
		for i, id := range l.Path {
			if _, ok := s.components[id]; !ok {
				return fmt.Errorf("stpa: loop %s references unknown component %q", l.ID, id)
			}
			next := l.Path[(i+1)%len(l.Path)]
			if !connected(id, next) {
				return fmt.Errorf("stpa: loop %s: no edge between %q and %q", l.ID, id, next)
			}
		}
	}
	return nil
}

// TagLocus maps a fault tag onto the component where the inadequate control
// originates.
func TagLocus(t ontology.Tag) (ComponentID, error) {
	switch t {
	case ontology.TagEnvironment:
		return CompEnvironment, nil
	case ontology.TagComputerSystem, ontology.TagSoftware, ontology.TagHangCrash:
		return CompPlanner, nil // the compute platform hosting the ADS stack
	case ontology.TagRecognitionSystem:
		return CompRecognition, nil
	case ontology.TagPlanner, ontology.TagIncorrectBehaviorPrediction, ontology.TagDesignBug:
		return CompPlanner, nil
	case ontology.TagSensor:
		return CompSensors, nil
	case ontology.TagNetwork:
		return CompNetwork, nil
	case ontology.TagAVControllerSystem, ontology.TagAVControllerML:
		return CompFollower, nil
	default:
		return "", errors.New("stpa: tag has no locus (Unknown-T)")
	}
}

// UCAType classifies an unsafe control action in STPA's four canonical
// forms.
type UCAType int

// Unsafe control action types.
const (
	// UCANotProvided: a required control action is not given.
	UCANotProvided UCAType = iota + 1
	// UCAProvidedUnsafe: a control action is given but causes a hazard.
	UCAProvidedUnsafe
	// UCAWrongTiming: the action is too early or too late.
	UCAWrongTiming
	// UCAStoppedTooSoon: the action is stopped too soon or applied too
	// long.
	UCAStoppedTooSoon
)

// String implements fmt.Stringer.
func (u UCAType) String() string {
	switch u {
	case UCANotProvided:
		return "not provided"
	case UCAProvidedUnsafe:
		return "provided but unsafe"
	case UCAWrongTiming:
		return "wrong timing"
	case UCAStoppedTooSoon:
		return "stopped too soon"
	default:
		return fmt.Sprintf("UCAType(%d)", int(u))
	}
}

// CausalFactor is one candidate explanation of a disengagement/accident:
// a component, the control loop it corrupts, the UCA form, and a mechanism
// description.
type CausalFactor struct {
	Component ComponentID
	Loop      string
	UCA       UCAType
	Mechanism string
}

// CausalAnalysis walks the structure to enumerate the causal factors
// consistent with a fault tag: the locus component, every loop through it,
// and the UCA forms the paper's case studies associate with that fault
// class.
func (s *Structure) CausalAnalysis(t ontology.Tag) ([]CausalFactor, error) {
	locus, err := TagLocus(t)
	if err != nil {
		return nil, err
	}
	loops := s.LoopsContaining(locus)
	if len(loops) == 0 {
		return nil, fmt.Errorf("stpa: no control loop passes through %q", locus)
	}
	ucas := ucaFormsFor(t)
	out := make([]CausalFactor, 0, len(loops)*len(ucas))
	for _, l := range loops {
		for _, u := range ucas {
			out = append(out, CausalFactor{
				Component: locus,
				Loop:      l.ID,
				UCA:       u,
				Mechanism: mechanismFor(t, u),
			})
		}
	}
	return out, nil
}

// ucaFormsFor maps fault classes to the UCA forms they produce.
func ucaFormsFor(t ontology.Tag) []UCAType {
	switch ontology.CategoryOf(t) {
	case ontology.CategoryMLDesign:
		// The case studies show ML faults as unsafe or untimely actions:
		// yielding without stopping, creeping that confuses other drivers.
		return []UCAType{UCAProvidedUnsafe, UCAWrongTiming}
	case ontology.CategorySystem:
		// System faults suppress or truncate control actions: hangs,
		// watchdog resets, unresponsive controllers.
		return []UCAType{UCANotProvided, UCAStoppedTooSoon}
	default:
		return nil
	}
}

// mechanismFor renders a human-readable mechanism sentence.
func mechanismFor(t ontology.Tag, u UCAType) string {
	return fmt.Sprintf("%s fault (%s): control action %s",
		t, ontology.CategoryOf(t), u)
}
