package stpa

import (
	"strings"
	"testing"

	"avfda/internal/ontology"
)

func TestStructureValidates(t *testing.T) {
	s := NewADSStructure()
	if err := s.Validate(); err != nil {
		t.Fatalf("Fig. 3 structure invalid: %v", err)
	}
}

func TestStructureShape(t *testing.T) {
	s := NewADSStructure()
	if got := len(s.Components()); got != 10 {
		t.Errorf("components = %d, want 10", got)
	}
	if got := len(s.Loops()); got != 3 {
		t.Errorf("loops = %d, want 3 (CL-1..CL-3)", got)
	}
	ids := map[string]bool{}
	for _, l := range s.Loops() {
		ids[l.ID] = true
	}
	for _, want := range []string{"CL-1", "CL-2", "CL-3"} {
		if !ids[want] {
			t.Errorf("missing loop %s", want)
		}
	}
}

func TestComponentLookup(t *testing.T) {
	s := NewADSStructure()
	c, err := s.Component(CompRecognition)
	if err != nil {
		t.Fatal(err)
	}
	if c.Layer != LayerAutonomous {
		t.Errorf("recognition layer = %d", c.Layer)
	}
	if _, err := s.Component("bogus"); err == nil {
		t.Error("unknown component: want error")
	}
}

func TestEdgesFromInto(t *testing.T) {
	s := NewADSStructure()
	out := s.EdgesFrom(CompPlanner)
	if len(out) == 0 {
		t.Fatal("planner has no outgoing edges")
	}
	foundPlan := false
	for _, e := range out {
		if e.To == CompFollower && e.Kind == ControlAction {
			foundPlan = true
		}
	}
	if !foundPlan {
		t.Error("planner -> follower control action missing")
	}
	in := s.EdgesInto(CompPlanner)
	foundScene := false
	for _, e := range in {
		if e.From == CompRecognition && e.Kind == Feedback {
			foundScene = true
		}
	}
	if !foundScene {
		t.Error("recognition -> planner feedback missing")
	}
}

func TestLoopsContaining(t *testing.T) {
	s := NewADSStructure()
	// The driver appears only in CL-2.
	loops := s.LoopsContaining(CompDriver)
	if len(loops) != 1 || loops[0].ID != "CL-2" {
		t.Errorf("driver loops = %v", loops)
	}
	// The planner appears in all three.
	if got := len(s.LoopsContaining(CompPlanner)); got != 3 {
		t.Errorf("planner loop count = %d, want 3", got)
	}
	if got := s.LoopsContaining("bogus"); got != nil {
		t.Errorf("unknown component loops = %v", got)
	}
}

func TestTagLocusCoversAllTags(t *testing.T) {
	s := NewADSStructure()
	for _, tag := range ontology.AllTags() {
		if tag == ontology.TagUnknownT {
			if _, err := TagLocus(tag); err == nil {
				t.Error("Unknown-T should have no locus")
			}
			continue
		}
		locus, err := TagLocus(tag)
		if err != nil {
			t.Errorf("TagLocus(%s): %v", tag, err)
			continue
		}
		if _, err := s.Component(locus); err != nil {
			t.Errorf("TagLocus(%s) = %q, not in structure", tag, locus)
		}
	}
}

func TestCausalAnalysis(t *testing.T) {
	s := NewADSStructure()
	factors, err := s.CausalAnalysis(ontology.TagRecognitionSystem)
	if err != nil {
		t.Fatal(err)
	}
	if len(factors) == 0 {
		t.Fatal("no causal factors for recognition fault")
	}
	for _, f := range factors {
		if f.Component != CompRecognition {
			t.Errorf("factor component = %s, want recognition", f.Component)
		}
		// ML faults produce unsafe/untimely actions.
		if f.UCA != UCAProvidedUnsafe && f.UCA != UCAWrongTiming {
			t.Errorf("ML fault UCA = %s", f.UCA)
		}
	}
	// System faults produce not-provided / stopped-too-soon.
	factors, err = s.CausalAnalysis(ontology.TagHangCrash)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range factors {
		if f.UCA != UCANotProvided && f.UCA != UCAStoppedTooSoon {
			t.Errorf("system fault UCA = %s", f.UCA)
		}
	}
	if _, err := s.CausalAnalysis(ontology.TagUnknownT); err == nil {
		t.Error("Unknown-T: want error")
	}
}

func TestCaseStudies(t *testing.T) {
	s := NewADSStructure()
	for _, sc := range []Scenario{CaseStudyI(), CaseStudyII()} {
		a, err := s.Analyze(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(a.Inadequate) == 0 {
			t.Errorf("%s: no inadequate control actions found", sc.Name)
		}
		if len(a.Loops) == 0 {
			t.Errorf("%s: no control loops involved", sc.Name)
		}
		if len(a.Factors) == 0 {
			t.Errorf("%s: no causal factors", sc.Name)
		}
		text := a.Render()
		if !strings.Contains(text, sc.Name) || !strings.Contains(text, "causal factors") {
			t.Errorf("%s: render incomplete:\n%s", sc.Name, text)
		}
	}
}

func TestCaseStudyIMatchesPaper(t *testing.T) {
	// Case study I's inadequate actions are the late perception and the
	// yield-without-stop decision — both in the autonomous stack.
	s := NewADSStructure()
	a, err := s.Analyze(CaseStudyI())
	if err != nil {
		t.Fatal(err)
	}
	actors := map[ComponentID]bool{}
	for _, ev := range a.Inadequate {
		actors[ev.Actor] = true
	}
	if !actors[CompRecognition] || !actors[CompPlanner] {
		t.Errorf("case study I inadequate actors = %v, want recognition+planner", actors)
	}
	// CL-1 (full autonomous loop) must be implicated.
	found := false
	for _, id := range a.Loops {
		if id == "CL-1" {
			found = true
		}
	}
	if !found {
		t.Error("case study I should implicate CL-1")
	}
}

func TestAnalyzeRejectsUnknownActor(t *testing.T) {
	s := NewADSStructure()
	bad := Scenario{
		Name: "bad",
		Tag:  ontology.TagPlanner,
		Timeline: []ScenarioEvent{
			{Actor: "martian", Action: "lands"},
		},
	}
	if _, err := s.Analyze(bad); err == nil {
		t.Error("unknown actor: want error")
	}
}

func TestUCAStrings(t *testing.T) {
	for _, u := range []UCAType{UCANotProvided, UCAProvidedUnsafe, UCAWrongTiming, UCAStoppedTooSoon} {
		if strings.HasPrefix(u.String(), "UCAType(") {
			t.Errorf("UCA %d has no display name", u)
		}
	}
	if EdgeKind(ControlAction).String() != "control" || EdgeKind(Feedback).String() != "feedback" {
		t.Error("edge kind strings wrong")
	}
}
