package stpa

import (
	"fmt"
	"strings"

	"avfda/internal/ontology"
)

// ScenarioEvent is one step of an accident scenario timeline.
type ScenarioEvent struct {
	// Actor is the component taking the action.
	Actor ComponentID
	// Action describes what the actor did.
	Action string
	// Inadequate marks the step STPA identifies as inadequate control.
	Inadequate bool
	// UCA classifies the inadequacy when Inadequate is set.
	UCA UCAType
}

// Scenario is a reconstructed accident, as in the paper's §II case studies.
type Scenario struct {
	Name      string
	Narrative string
	// ReportedCause is the cause text from the disengagement report.
	ReportedCause string
	// Tag is the fault tag the NLP stage assigns the reported cause.
	Tag ontology.Tag
	// Timeline is the ordered event sequence.
	Timeline []ScenarioEvent
}

// CaseStudyI returns the paper's first case study: the AV yields to a
// pedestrian but does not stop; the safety driver proactively takes over,
// can only brake in the boxed-in traffic, and is rear-ended.
func CaseStudyI() Scenario {
	return Scenario{
		Name: "Case Study I: Real-Time Decisions",
		Narrative: "A Waymo prototype at a street intersection decided to " +
			"yield to a crossing pedestrian but did not stop. The test " +
			"driver took control as a precaution; with a yielding car " +
			"ahead and a lane-changing car behind, braking was the only " +
			"option, and the rear vehicle collided with the AV.",
		ReportedCause: "incorrect behavior prediction",
		Tag:           ontology.TagIncorrectBehaviorPrediction,
		Timeline: []ScenarioEvent{
			{Actor: CompEnvironment, Action: "pedestrian starts crossing at the intersection"},
			{Actor: CompRecognition, Action: "detects pedestrian; scene model updated late",
				Inadequate: true, UCA: UCAWrongTiming},
			{Actor: CompPlanner, Action: "decides to yield but does not command a stop",
				Inadequate: true, UCA: UCAProvidedUnsafe},
			{Actor: CompDriver, Action: "proactively disengages and takes manual control"},
			{Actor: CompDriver, Action: "brakes; boxed in by front and rear traffic"},
			{Actor: CompNonAVDriver, Action: "rear vehicle collides with the stopped AV"},
		},
	}
}

// CaseStudyII returns the paper's second case study: the AV's stop-creep
// behavior before a right turn confuses the driver behind, who rear-ends
// it.
func CaseStudyII() Scenario {
	return Scenario{
		Name: "Case Study II: Anticipating AV Behavior",
		Narrative: "A Waymo prototype signaled a right turn, decelerated, " +
			"stopped completely, then crept toward the intersection so the " +
			"recognition system could analyze cross traffic. The driver " +
			"behind interpreted the creep as the AV continuing its turn, " +
			"started moving, and rear-ended the AV.",
		ReportedCause: "Disengage for a recklessly behaving road user",
		Tag:           ontology.TagEnvironment,
		Timeline: []ScenarioEvent{
			{Actor: CompPlanner, Action: "signals right turn and decelerates"},
			{Actor: CompMechanical, Action: "comes to a complete stop"},
			{Actor: CompPlanner, Action: "creeps forward to give recognition a view of cross traffic",
				Inadequate: true, UCA: UCAProvidedUnsafe},
			{Actor: CompNonAVDriver, Action: "interprets creep as the AV proceeding; starts moving",
				Inadequate: true, UCA: UCAProvidedUnsafe},
			{Actor: CompNonAVDriver, Action: "rear vehicle collides with the AV"},
		},
	}
}

// Analysis is the STPA read-out of a scenario.
type Analysis struct {
	Scenario string
	// Inadequate lists the inadequate-control steps found.
	Inadequate []ScenarioEvent
	// Loops lists the IDs of every control loop touched by an inadequate
	// step's actor.
	Loops []string
	// Factors is the causal-factor enumeration for the scenario's tag.
	Factors []CausalFactor
}

// Analyze extracts the inadequate control actions of a scenario, the
// control loops they corrupt, and the tag-level causal factors.
func (s *Structure) Analyze(sc Scenario) (Analysis, error) {
	a := Analysis{Scenario: sc.Name}
	loopSet := make(map[string]struct{})
	for _, ev := range sc.Timeline {
		if _, err := s.Component(ev.Actor); err != nil {
			return Analysis{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if !ev.Inadequate {
			continue
		}
		a.Inadequate = append(a.Inadequate, ev)
		for _, l := range s.LoopsContaining(ev.Actor) {
			loopSet[l.ID] = struct{}{}
		}
	}
	for _, l := range s.loops {
		if _, ok := loopSet[l.ID]; ok {
			a.Loops = append(a.Loops, l.ID)
		}
	}
	factors, err := s.CausalAnalysis(sc.Tag)
	if err != nil {
		return Analysis{}, err
	}
	a.Factors = factors
	return a, nil
}

// Render prints an analysis as indented text for reports.
func (a Analysis) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", a.Scenario)
	fmt.Fprintf(&sb, "  inadequate control actions:\n")
	for _, ev := range a.Inadequate {
		fmt.Fprintf(&sb, "    - [%s] %s (%s)\n", ev.Actor, ev.Action, ev.UCA)
	}
	fmt.Fprintf(&sb, "  control loops involved: %s\n", strings.Join(a.Loops, ", "))
	fmt.Fprintf(&sb, "  causal factors:\n")
	for _, f := range a.Factors {
		fmt.Fprintf(&sb, "    - %s in %s: %s\n", f.Component, f.Loop, f.Mechanism)
	}
	return sb.String()
}
