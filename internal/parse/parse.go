// Package parse implements Stage II of the paper's pipeline: converting
// OCR-decoded report text — fragmented across vendor-specific layouts —
// into the uniform schema the analysis stages consume.
//
// Parsing is defect-tracking rather than fail-fast: rows damaged by OCR
// noise (dropped separators, merged lines, substituted digits) are recorded
// as Defects and excluded, never silently dropped, so the noise ablation
// can measure exactly what the digitization step costs.
package parse

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"avfda/internal/scandoc"
	"avfda/internal/schema"
)

// Input is one OCR-decoded document.
type Input struct {
	DocID string
	Lines []string
}

// Defect records one unparseable row or field.
type Defect struct {
	DocID  string
	Line   int // zero-based index into the document's lines
	Reason string
}

// Report summarizes a parse run.
type Report struct {
	Documents   int
	RowsParsed  int
	Defects     []Defect
	SkippedDocs int // documents whose headers could not be interpreted
}

// DefectRate returns defects / (defects + parsed rows).
func (r *Report) DefectRate() float64 {
	total := r.RowsParsed + len(r.Defects)
	if total == 0 {
		return 0
	}
	return float64(len(r.Defects)) / float64(total)
}

// Parse converts the document set into a normalized corpus.
func Parse(inputs []Input) (*schema.Corpus, *Report, error) {
	return ParseConcurrent(inputs, 1)
}

// ParseConcurrent parses the document set with a bounded worker pool.
// Documents are independent (vehicle-ID canonicalization is scoped to one
// report), so each worker parses into a private corpus/report fragment and
// the fragments are merged in input order: output is byte-identical to
// Parse for any worker count. Workers <= 0 selects GOMAXPROCS.
func ParseConcurrent(inputs []Input, workers int) (*schema.Corpus, *Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	corpora := make([]*schema.Corpus, len(inputs))
	reports := make([]*Report, len(inputs))
	if workers <= 1 {
		for i := range inputs {
			corpora[i], reports[i] = parseDocument(inputs[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					corpora[i], reports[i] = parseDocument(inputs[i])
				}
			}()
		}
		for i := range inputs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	corpus := &schema.Corpus{}
	rep := &Report{Documents: len(inputs)}
	for i := range inputs {
		corpus.Fleets = append(corpus.Fleets, corpora[i].Fleets...)
		corpus.Mileage = append(corpus.Mileage, corpora[i].Mileage...)
		corpus.Disengagements = append(corpus.Disengagements, corpora[i].Disengagements...)
		corpus.Accidents = append(corpus.Accidents, corpora[i].Accidents...)
		rep.RowsParsed += reports[i].RowsParsed
		rep.SkippedDocs += reports[i].SkippedDocs
		rep.Defects = append(rep.Defects, reports[i].Defects...)
	}
	return corpus, rep, nil
}

// parseDocument parses one document into its own corpus/report fragment.
func parseDocument(in Input) (*schema.Corpus, *Report) {
	corpus := &schema.Corpus{}
	rep := &Report{}
	if len(in.Lines) == 0 {
		rep.SkippedDocs++
		rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Reason: "empty document"})
		return corpus, rep
	}
	switch sniffKind(in.Lines[0]) {
	case scandoc.DisengagementReport:
		parseDisengagementDoc(in, corpus, rep)
	case scandoc.AccidentReport:
		parseAccidentDoc(in, corpus, rep)
	default:
		rep.SkippedDocs++
		rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Reason: "unrecognized document title"})
	}
	return corpus, rep
}

// sniffKind identifies the document class from its title line, tolerating
// OCR damage via fuzzy matching.
func sniffKind(title string) scandoc.DocKind {
	t := strings.ToUpper(title)
	if fuzzyContains(t, "DISENGAGEMENT") {
		return scandoc.DisengagementReport
	}
	if fuzzyContains(t, "COLLISION") || fuzzyContains(t, "OL 316") {
		return scandoc.AccidentReport
	}
	return 0
}

// parseDisengagementDoc handles one manufacturer-year report.
func parseDisengagementDoc(in Input, corpus *schema.Corpus, rep *Report) {
	hdr, bodyStart, ok := parseHeader(in, rep)
	if !ok {
		rep.SkippedDocs++
		return
	}
	corpus.Fleets = append(corpus.Fleets, schema.Fleet{
		Manufacturer: hdr.mfr,
		ReportYear:   hdr.year,
		Cars:         hdr.cars,
	})

	format := scandoc.FormatFor(hdr.mfr)
	vehicles := newVehicleRegistry()
	section := 0
	for i := bodyStart; i < len(in.Lines); i++ {
		line := strings.TrimSpace(in.Lines[i])
		switch {
		case line == "":
			continue
		case isSectionMarker(line, "MILES BY VEHICLE"):
			section = 1
			continue
		case isSectionMarker(line, "DISENGAGEMENT EVENTS"):
			section = 2
			continue
		case strings.HasPrefix(strings.ToUpper(line), "VEHICLE |"),
			strings.HasPrefix(strings.ToUpper(line), "DATE TIME |"):
			continue // column header rows
		}
		switch section {
		case 1:
			if mm, err := parseMileageRow(line, hdr); err != nil {
				rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i, Reason: err.Error()})
			} else {
				mm.Vehicle = vehicles.resolve(mm.Vehicle)
				corpus.Mileage = append(corpus.Mileage, mm)
				rep.RowsParsed++
			}
		case 2:
			if ev, err := parseEventRow(line, hdr, format); err != nil {
				rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i, Reason: err.Error()})
			} else {
				ev.Vehicle = vehicles.resolve(ev.Vehicle)
				corpus.Disengagements = append(corpus.Disengagements, ev)
				rep.RowsParsed++
			}
		}
	}
}

// header carries the parsed document preamble.
type header struct {
	mfr  schema.Manufacturer
	year schema.ReportYear
	cars int
}

// parseHeader extracts manufacturer, reporting period, and fleet size from
// the preamble. It returns the first body line index.
func parseHeader(in Input, rep *Report) (header, int, bool) {
	h := header{cars: -1}
	haveMfr, haveYear := false, false
	// The header runs until the first blank line or section marker; body
	// rows must not be consumed by the field scan.
	end := len(in.Lines)
	for i := 1; i < len(in.Lines); i++ {
		line := strings.TrimSpace(in.Lines[i])
		if line == "" || isSectionMarker(line, "MILES BY VEHICLE") ||
			isSectionMarker(line, "DISENGAGEMENT EVENTS") {
			end = i
			break
		}
	}
	headerKeys := []string{"Manufacturer", "Reporting Period", "Fleet Size"}
	// Scan from line 0: an OCR merge can glue the title and the first
	// header field into one line.
	for i := 0; i < end; i++ {
		// A line may carry several key:value segments when OCR merged
		// adjacent header lines.
		for _, seg := range splitHeaderSegments(in.Lines[i], headerKeys) {
			switch {
			case fuzzyEqual(seg.key, "Manufacturer"):
				m, ok := resolveManufacturer(seg.val)
				if !ok {
					rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i,
						Reason: fmt.Sprintf("unknown manufacturer %q", seg.val)})
					return h, 0, false
				}
				h.mfr = m
				haveMfr = true
			case fuzzyEqual(seg.key, "Reporting Period"):
				y, err := parsePeriod(seg.val)
				if err != nil {
					rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i, Reason: err.Error()})
					return h, 0, false
				}
				h.year = y
				haveYear = true
			case fuzzyEqual(seg.key, "Fleet Size"):
				if seg.val != "-" {
					if n, err := strconv.Atoi(cleanNumeric(seg.val)); err == nil {
						h.cars = n
					}
				}
			}
		}
	}
	if !haveMfr || !haveYear {
		rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Reason: "incomplete header"})
		return h, 0, false
	}
	return h, end, true
}

// parsePeriod maps "2015-2016" style strings to a ReportYear.
func parsePeriod(val string) (schema.ReportYear, error) {
	v := cleanNumeric(val)
	switch {
	case strings.Contains(v, "2015-2016"), strings.Contains(v, "2015 2016"):
		return schema.Report2016, nil
	case strings.Contains(v, "2016-2017"), strings.Contains(v, "2016 2017"):
		return schema.Report2017, nil
	default:
		return 0, fmt.Errorf("unrecognized reporting period %q", val)
	}
}

// parseMileageRow parses "VEHICLE | MONTH | MILES".
func parseMileageRow(line string, hdr header) (schema.MonthlyMileage, error) {
	parts := splitTrim(line, "|")
	if len(parts) != 3 {
		return schema.MonthlyMileage{}, fmt.Errorf("mileage row has %d fields, want 3", len(parts))
	}
	month, err := time.Parse("2006-01", cleanNumeric(parts[1]))
	if err != nil {
		return schema.MonthlyMileage{}, fmt.Errorf("mileage month: %v", err)
	}
	miles, err := strconv.ParseFloat(cleanNumeric(parts[2]), 64)
	if err != nil {
		return schema.MonthlyMileage{}, fmt.Errorf("mileage value: %v", err)
	}
	if miles < 0 {
		return schema.MonthlyMileage{}, fmt.Errorf("negative miles %g", miles)
	}
	return schema.MonthlyMileage{
		Manufacturer: hdr.mfr,
		Vehicle:      schema.VehicleID(parts[0]),
		ReportYear:   hdr.year,
		Month:        month,
		Miles:        miles,
	}, nil
}

// parseEventRow dispatches to the vendor layout family.
func parseEventRow(line string, hdr header, f scandoc.Format) (schema.Disengagement, error) {
	switch f {
	case scandoc.FormatTabular:
		return parseTabularEvent(line, hdr)
	case scandoc.FormatMonthly:
		return parseMonthlyEvent(line, hdr)
	default:
		return parseLogLineEvent(line, hdr)
	}
}

// parseTabularEvent parses
// "DATE TIME | VEHICLE | MODE | ROAD | WEATHER | REACTION | CAUSE".
func parseTabularEvent(line string, hdr header) (schema.Disengagement, error) {
	parts := splitTrim(line, "|")
	if len(parts) != 7 {
		return schema.Disengagement{}, fmt.Errorf("tabular row has %d fields, want 7", len(parts))
	}
	ts, err := time.Parse("2006-01-02 15:04:05", cleanNumeric(parts[0]))
	if err != nil {
		return schema.Disengagement{}, fmt.Errorf("tabular timestamp: %v", err)
	}
	reaction, err := parseReaction(parts[5])
	if err != nil {
		return schema.Disengagement{}, err
	}
	return schema.Disengagement{
		Manufacturer:    hdr.mfr,
		Vehicle:         vehicleOrEmpty(parts[1]),
		ReportYear:      hdr.year,
		Time:            ts,
		Cause:           parts[6],
		Modality:        schema.ParseModality(parts[2]),
		Road:            schema.ParseRoadType(parts[3]),
		Weather:         schema.ParseWeather(parts[4]),
		ReactionSeconds: reaction,
	}, nil
}

// parseLogLineEvent parses the em-dash family:
// "1/4/16 — 1:25:05 PM — VEHICLE — CAUSE — ROAD — WEATHER — REACTION — modality".
func parseLogLineEvent(line string, hdr header) (schema.Disengagement, error) {
	parts := splitTrim(line, "—")
	if len(parts) != 8 {
		return schema.Disengagement{}, fmt.Errorf("log row has %d fields, want 8", len(parts))
	}
	ts, err := time.Parse("1/2/06 3:04:05 PM", cleanNumeric(parts[0])+" "+strings.ToUpper(cleanNumeric(parts[1])))
	if err != nil {
		return schema.Disengagement{}, fmt.Errorf("log timestamp: %v", err)
	}
	reaction, err := parseReaction(parts[6])
	if err != nil {
		return schema.Disengagement{}, err
	}
	return schema.Disengagement{
		Manufacturer:    hdr.mfr,
		Vehicle:         vehicleOrEmpty(parts[2]),
		ReportYear:      hdr.year,
		Time:            ts,
		Cause:           parts[3],
		Modality:        schema.ParseModality(parts[7]),
		Road:            schema.ParseRoadType(parts[4]),
		Weather:         schema.ParseWeather(parts[5]),
		ReactionSeconds: reaction,
	}, nil
}

// parseMonthlyEvent parses Waymo's style:
// "May-16 — VEHICLE — ROAD — Modality — CAUSE — REACTION — 2016-05-14 10:22:31".
func parseMonthlyEvent(line string, hdr header) (schema.Disengagement, error) {
	parts := splitTrim(line, "—")
	if len(parts) != 7 {
		return schema.Disengagement{}, fmt.Errorf("monthly row has %d fields, want 7", len(parts))
	}
	ts, err := time.Parse("2006-01-02 15:04:05", cleanNumeric(parts[6]))
	if err != nil {
		return schema.Disengagement{}, fmt.Errorf("monthly timestamp: %v", err)
	}
	reaction, err := parseReaction(parts[5])
	if err != nil {
		return schema.Disengagement{}, err
	}
	return schema.Disengagement{
		Manufacturer:    hdr.mfr,
		Vehicle:         vehicleOrEmpty(parts[1]),
		ReportYear:      hdr.year,
		Time:            ts,
		Cause:           parts[4],
		Modality:        schema.ParseModality(parts[3]),
		Road:            schema.ParseRoadType(parts[2]),
		Weather:         schema.WeatherUnknown, // Waymo's layout omits weather
		ReactionSeconds: reaction,
	}, nil
}

// parseReaction parses "0.833 s" or "-".
func parseReaction(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "-" || s == "" {
		return -1, nil
	}
	s = strings.TrimSuffix(strings.TrimSpace(strings.TrimSuffix(s, "s")), " ")
	v, err := strconv.ParseFloat(cleanNumeric(strings.TrimSpace(s)), 64)
	if err != nil {
		return 0, fmt.Errorf("reaction time: %v", err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative reaction time %g", v)
	}
	return v, nil
}

// vehicleOrEmpty maps the "-" placeholder back to empty.
func vehicleOrEmpty(s string) schema.VehicleID {
	if s == "-" {
		return ""
	}
	return schema.VehicleID(s)
}

// parseAccidentDoc handles one OL 316-style accident report.
func parseAccidentDoc(in Input, corpus *schema.Corpus, rep *Report) {
	a := schema.Accident{AVSpeedMPH: -1, OtherSpeedMPH: -1}
	haveMfr := false
	narrativeAt := -1
	accidentKeys := []string{
		"Manufacturer", "Reporting Period", "Date/Time", "Vehicle",
		"Location", "AV Speed (mph)", "Other Vehicle Speed (mph)",
		"Autonomous Mode",
	}
	var inlineNarrative string
	for i := 0; i < len(in.Lines); i++ {
		line := strings.TrimSpace(in.Lines[i])
		// The narrative marker may carry merged content after the colon.
		if at := narrativeMarkerIndex(line); at >= 0 {
			narrativeAt = i + 1
			inlineNarrative = strings.TrimSpace(line[at:])
			break
		}
		for _, seg := range splitHeaderSegments(line, accidentKeys) {
			switch {
			case fuzzyEqual(seg.key, "Manufacturer"):
				m, ok := resolveManufacturer(seg.val)
				if !ok {
					rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i,
						Reason: fmt.Sprintf("unknown manufacturer %q", seg.val)})
					rep.SkippedDocs++
					return
				}
				a.Manufacturer = m
				haveMfr = true
			case fuzzyEqual(seg.key, "Reporting Period"):
				if y, err := parsePeriod(seg.val); err == nil {
					a.ReportYear = y
				}
			case fuzzyEqual(seg.key, "Date/Time"):
				// A merged line may leave trailing text after the
				// timestamp; parse just its prefix.
				v := cleanNumeric(seg.val)
				if len(v) > len("2006-01-02 15:04") {
					v = v[:len("2006-01-02 15:04")]
				}
				if ts, err := time.Parse("2006-01-02 15:04", v); err == nil {
					a.Time = ts
				} else {
					rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Line: i, Reason: "bad date/time"})
				}
			case fuzzyEqual(seg.key, "Vehicle"):
				if strings.Contains(strings.ToUpper(seg.val), "REDACTED") {
					a.Redacted = true
				} else {
					a.Vehicle = schema.VehicleID(seg.val)
				}
			case fuzzyEqual(seg.key, "Location"):
				a.Location = seg.val
			case fuzzyEqual(seg.key, "AV Speed (mph)"):
				a.AVSpeedMPH = parseSpeed(seg.val)
			case fuzzyEqual(seg.key, "Other Vehicle Speed (mph)"):
				a.OtherSpeedMPH = parseSpeed(seg.val)
			case fuzzyEqual(seg.key, "Autonomous Mode"):
				a.InAutonomousMode = strings.HasPrefix(strings.ToUpper(strings.TrimSpace(seg.val)), "YES")
			}
		}
	}
	if !haveMfr || a.Time.IsZero() {
		rep.SkippedDocs++
		rep.Defects = append(rep.Defects, Defect{DocID: in.DocID, Reason: "incomplete accident header"})
		return
	}
	if narrativeAt > 0 {
		var sb strings.Builder
		sb.WriteString(inlineNarrative)
		for i := narrativeAt; i < len(in.Lines); i++ {
			l := strings.TrimSpace(in.Lines[i])
			if l == "" {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(l)
		}
		a.Narrative = sb.String()
	}
	corpus.Accidents = append(corpus.Accidents, a)
	rep.RowsParsed++
}

// narrativeMarkerIndex reports where narrative content starts on a line
// carrying the "NARRATIVE:" marker (possibly OCR-damaged or merged with the
// first narrative line), or -1 when the line is not the marker.
func narrativeMarkerIndex(line string) int {
	trimmed := strings.TrimSpace(line)
	if fuzzyEqual(strings.TrimSuffix(trimmed, ":"), "NARRATIVE") {
		return len(line) // marker only; content starts on the next line
	}
	if idx := strings.Index(strings.ToUpper(line), "NARRATIVE:"); idx == 0 {
		return len("NARRATIVE:")
	}
	return -1
}

// parseSpeed parses a speed field, returning -1 for "-" or damage.
func parseSpeed(val string) float64 {
	val = strings.TrimSpace(val)
	if val == "-" {
		return -1
	}
	v, err := strconv.ParseFloat(cleanNumeric(val), 64)
	if err != nil || v < 0 {
		return -1
	}
	return v
}

// keyVal is one "Key: value" segment of a header line.
type keyVal struct {
	key, val string
}

// splitHeaderSegments extracts every "key: value" pair from a line that may
// contain several (OCR line merges glue header lines together). Keys are
// located case-insensitively; text before the first key is ignored. A line
// with no known key falls back to a single splitField pair.
func splitHeaderSegments(line string, keys []string) []keyVal {
	lower := strings.ToLower(line)
	type hit struct {
		at  int
		key string
	}
	var hits []hit
	for _, k := range keys {
		needle := strings.ToLower(k) + ":"
		from := 0
		for {
			idx := strings.Index(lower[from:], needle)
			if idx < 0 {
				break
			}
			hits = append(hits, hit{at: from + idx, key: k})
			from += idx + len(needle)
		}
	}
	if len(hits) == 0 {
		if key, val, ok := splitField(line); ok {
			return []keyVal{{key: key, val: val}}
		}
		return nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].at < hits[j].at })
	out := make([]keyVal, 0, len(hits))
	for i, hh := range hits {
		start := hh.at + len(hh.key) + 1
		endAt := len(line)
		if i+1 < len(hits) {
			endAt = hits[i+1].at
		}
		if start > len(line) {
			continue
		}
		out = append(out, keyVal{key: hh.key, val: strings.TrimSpace(line[start:endAt])})
	}
	return out
}

// splitField splits "Key: value" once.
func splitField(line string) (key, val string, ok bool) {
	idx := strings.Index(line, ":")
	if idx < 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:idx]), strings.TrimSpace(line[idx+1:]), true
}

// splitTrim splits on sep and trims each field.
func splitTrim(line, sep string) []string {
	parts := strings.Split(line, sep)
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
