package parse

import (
	"strings"

	"avfda/internal/schema"
)

// resolveManufacturer parses a manufacturer name, falling back to fuzzy
// matching against the known vendor names when OCR damaged the value — a
// single substituted character must not discard a whole annual report.
// Word prefixes of the value are also tried, because an OCR line merge can
// glue the next header line onto the name ("Delphi Reporting Period: ...").
func resolveManufacturer(val string) (schema.Manufacturer, bool) {
	candidates := []string{val}
	words := strings.Fields(val)
	for n := 1; n <= 3 && n < len(words); n++ {
		candidates = append(candidates, strings.Join(words[:n], " "))
	}
	for _, cand := range candidates {
		if m, ok := schema.ParseManufacturer(cand); ok {
			return m, true
		}
	}
	best := schema.Manufacturer("")
	bestDist := 3 // accept up to 2 edits
	for _, cand := range candidates {
		for _, m := range schema.AllManufacturers() {
			d := levenshtein(strings.ToLower(cand), strings.ToLower(string(m)))
			if d < bestDist {
				best, bestDist = m, d
			}
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}

// OCR-tolerant string matching: field keys and section markers damaged by
// character substitutions still need to be recognized, and digits decoded
// as lookalike letters need to be repaired before numeric parsing.

// cleanNumeric repairs the standard OCR confusions inside fields that are
// known to be numeric or date-like (O→0, l/I→1, S→5, B→8, Z→2, G→6).
func cleanNumeric(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case 'O', 'o':
			return '0'
		case 'l', 'I':
			return '1'
		case 'S':
			return '5'
		case 'B':
			return '8'
		case 'Z':
			return '2'
		case 'G':
			return '6'
		default:
			return r
		}
	}, s)
}

// isSectionMarker reports whether a body line carries the given section
// phrase. OCR substitutions on capitals are undone by mapping the digit
// lookalikes back to letters (0→O, 1→I, 5→S, 8→B, 2→Z, 6→G), then an exact
// substring match runs on the line head — O(n) per line, robust to the
// substitutions the noise model produces, and still correct when a line
// merge glued the marker to the following data row.
func isSectionMarker(line, phrase string) bool {
	head := line
	if len(head) > 64 {
		head = head[:64]
	}
	norm := strings.Map(func(r rune) rune {
		switch r {
		case '0':
			return 'O'
		case '1':
			return 'I'
		case '5':
			return 'S'
		case '8':
			return 'B'
		case '2':
			return 'Z'
		case '6':
			return 'G'
		default:
			return r
		}
	}, strings.ToUpper(head))
	return strings.Contains(norm, phrase)
}

// vehicleRegistry canonicalizes OCR-damaged vehicle identifiers within one
// report: an ID that differs from a previously seen ID in exactly one
// *confusable* character pair (0/O, 1/l, 5/S, ...) is the same vehicle — a
// substituted character must not mint a phantom car and skew the per-car
// DPM distributions. Plain edit distance would be wrong here: legitimate
// sequential IDs (car01 vs car02) also differ by one character. Mileage
// tables precede event tables in every report, so the registry is seeded
// with (mostly clean, oft-repeated) mileage IDs before events resolve
// against it.
type vehicleRegistry struct {
	seen   map[schema.VehicleID]int
	counts map[schema.VehicleID]int
}

func newVehicleRegistry() *vehicleRegistry {
	return &vehicleRegistry{
		seen:   make(map[schema.VehicleID]int),
		counts: make(map[schema.VehicleID]int),
	}
}

// resolve maps id to its canonical form, registering it when new.
func (r *vehicleRegistry) resolve(id schema.VehicleID) schema.VehicleID {
	if id == "" {
		return id
	}
	if _, ok := r.seen[id]; ok {
		r.counts[id]++
		return id
	}
	best := schema.VehicleID("")
	bestCount := -1
	for known := range r.seen {
		if confusableVariant(string(known), string(id)) && r.counts[known] > bestCount {
			best, bestCount = known, r.counts[known]
		}
	}
	if best != "" {
		r.counts[best]++
		return best
	}
	r.seen[id] = len(r.seen)
	r.counts[id] = 1
	return id
}

// confusablePairs lists the symmetric OCR lookalike classes the noise model
// produces (mirror of the ocr package's confusion table).
var confusablePairs = buildConfusablePairs()

func buildConfusablePairs() map[[2]rune]bool {
	out := make(map[[2]rune]bool, 28)
	pairs := [][2]rune{
		{'0', 'O'}, {'1', 'l'}, {'1', 'I'}, {'l', 'I'}, {'5', 'S'},
		{'8', 'B'}, {'2', 'Z'}, {'6', 'G'}, {'g', 'q'}, {'e', 'c'},
		{'n', 'h'}, {'u', 'v'}, {'a', 'o'}, {'t', 'f'},
	}
	for _, p := range pairs {
		out[p] = true
		out[[2]rune{p[1], p[0]}] = true
	}
	return out
}

// confusableVariant reports whether a and b are equal up to OCR-confusable
// substitutions (at least one differing position, all differences
// confusable).
func confusableVariant(a, b string) bool {
	ra, rb := []rune(a), []rune(b)
	if len(ra) != len(rb) {
		return false
	}
	diffs := 0
	for i := range ra {
		if ra[i] == rb[i] {
			continue
		}
		if !confusablePairs[[2]rune{ra[i], rb[i]}] {
			return false
		}
		diffs++
	}
	return diffs > 0
}

// fuzzyEqual reports whether a and b match within an edit distance budget
// proportional to their length (1 edit per 8 characters, minimum 1),
// case-insensitively.
func fuzzyEqual(a, b string) bool {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b {
		return true
	}
	budget := len(b)/8 + 1
	if abs(len(a)-len(b)) > budget {
		return false
	}
	return levenshtein(a, b) <= budget
}

// fuzzyContains reports whether text contains a substring fuzzily equal to
// needle (sliding window at needle length ±1).
func fuzzyContains(text, needle string) bool {
	text = strings.ToLower(text)
	needle = strings.ToLower(needle)
	if strings.Contains(text, needle) {
		return true
	}
	n := len(needle)
	if n == 0 || len(text) < n-1 {
		return false
	}
	budget := n/8 + 1
	for w := n - 1; w <= n+1; w++ {
		if w <= 0 || w > len(text) {
			continue
		}
		for i := 0; i+w <= len(text); i++ {
			if levenshtein(text[i:i+w], needle) <= budget {
				return true
			}
		}
	}
	return false
}

// levenshtein computes the edit distance between a and b with the standard
// two-row dynamic program.
func levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
