package parse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"avfda/internal/ocr"
	"avfda/internal/scandoc"
	"avfda/internal/schema"
	"avfda/internal/synth"
)

// renderAndParse runs corpus -> documents -> OCR(cfg) -> parse.
func renderAndParse(t *testing.T, c *schema.Corpus, cfg ocr.Config) (*schema.Corpus, *Report) {
	t.Helper()
	docs := scandoc.Render(c)
	eng, err := ocr.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []Input
	for _, res := range eng.DecodeAll(docs) {
		inputs = append(inputs, Input{DocID: res.DocID, Lines: res.Lines})
	}
	out, rep, err := Parse(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

func TestRoundTripCleanOCRIsExact(t *testing.T) {
	truth, err := synth.Generate(synth.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, rep := renderAndParse(t, &truth.Corpus, ocr.Clean())
	if len(rep.Defects) != 0 {
		t.Fatalf("clean OCR produced %d defects, first: %+v", len(rep.Defects), rep.Defects[0])
	}
	if len(got.Disengagements) != len(truth.Corpus.Disengagements) {
		t.Fatalf("disengagements %d, want %d", len(got.Disengagements), len(truth.Corpus.Disengagements))
	}
	if len(got.Accidents) != len(truth.Corpus.Accidents) {
		t.Fatalf("accidents %d, want %d", len(got.Accidents), len(truth.Corpus.Accidents))
	}
	if len(got.Mileage) != len(truth.Corpus.Mileage) {
		t.Fatalf("mileage rows %d, want %d", len(got.Mileage), len(truth.Corpus.Mileage))
	}
	// Field-level spot checks on every disengagement (order is preserved
	// per document; both corpora order by manufacturer-year profile).
	for i := range got.Disengagements {
		a, b := got.Disengagements[i], truth.Corpus.Disengagements[i]
		if a.Manufacturer != b.Manufacturer || a.Vehicle != b.Vehicle ||
			!a.Time.Equal(b.Time) || a.Cause != b.Cause || a.Modality != b.Modality ||
			a.Road != b.Road {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, a, b)
		}
		if b.HasReaction() != a.HasReaction() {
			t.Fatalf("event %d reaction presence mismatch", i)
		}
		if b.HasReaction() && math.Abs(a.ReactionSeconds-b.ReactionSeconds) > 0.0005 {
			t.Fatalf("event %d reaction %g vs %g", i, a.ReactionSeconds, b.ReactionSeconds)
		}
	}
	// Miles totals are preserved to rendering precision (2 decimals/row).
	if math.Abs(got.TotalMiles()-truth.Corpus.TotalMiles()) > 0.01*float64(len(got.Mileage)) {
		t.Errorf("total miles %f vs %f", got.TotalMiles(), truth.Corpus.TotalMiles())
	}
}

func TestRoundTripNoisyOCRLowDefectRate(t *testing.T) {
	truth, err := synth.Generate(synth.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, rep := renderAndParse(t, &truth.Corpus, ocr.DefaultConfig())
	rate := rep.DefectRate()
	if rate > 0.05 {
		t.Errorf("defect rate = %.4f, want <= 0.05 at default noise", rate)
	}
	// At least 95% of events survive.
	if float64(len(got.Disengagements)) < 0.95*float64(len(truth.Corpus.Disengagements)) {
		t.Errorf("survived %d of %d events", len(got.Disengagements), len(truth.Corpus.Disengagements))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("noisy parse output invalid: %v", err)
	}
}

func TestParseAccidentFields(t *testing.T) {
	truth, err := synth.Generate(synth.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := renderAndParse(t, &truth.Corpus, ocr.Clean())
	var redacted, withSpeeds int
	for i := range got.Accidents {
		a, b := got.Accidents[i], truth.Corpus.Accidents[i]
		if a.Manufacturer != b.Manufacturer {
			t.Fatalf("accident %d manufacturer %s vs %s", i, a.Manufacturer, b.Manufacturer)
		}
		if a.Redacted != b.Redacted || a.Vehicle != b.Vehicle {
			t.Fatalf("accident %d redaction mismatch", i)
		}
		if a.InAutonomousMode != b.InAutonomousMode {
			t.Fatalf("accident %d autonomy flag mismatch", i)
		}
		if b.AVSpeedMPH >= 0 && math.Abs(a.AVSpeedMPH-b.AVSpeedMPH) > 0.05 {
			t.Fatalf("accident %d AV speed %g vs %g", i, a.AVSpeedMPH, b.AVSpeedMPH)
		}
		if a.Location != b.Location {
			t.Fatalf("accident %d location %q vs %q", i, a.Location, b.Location)
		}
		if a.Narrative == "" {
			t.Fatalf("accident %d lost narrative", i)
		}
		if a.Redacted {
			redacted++
		}
		if a.RelativeSpeedMPH() >= 0 {
			withSpeeds++
		}
	}
	if redacted == 0 {
		t.Error("no redacted accidents survived parsing")
	}
	if withSpeeds == 0 {
		t.Error("no accident speeds parsed")
	}
}

func TestParseDefectsOnDamage(t *testing.T) {
	// A mileage row with a dropped separator becomes a defect, not a
	// silent drop.
	doc := []string{
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufacturer: Nissan",
		"Reporting Period: 2015-2016",
		"Fleet Size: 4",
		"",
		"SECTION 1: AUTONOMOUS MILES BY VEHICLE AND MONTH",
		"VEHICLE | MONTH | MILES",
		"Nissan-1-car01 | 2015-03  120.00", // separator lost
		"Nissan-1-car01 | 2015-04 | 130.00",
		"",
		"SECTION 2: DISENGAGEMENT EVENTS (1 TOTAL)",
		"3/14/15 — 1:25:00 PM — Nissan-1-car01 — Software module froze — highway — sunny — 0.9 s — manual",
	}
	corpus, rep, err := Parse([]Input{{DocID: "d", Lines: doc}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Defects) != 1 {
		t.Fatalf("defects = %+v, want exactly 1", rep.Defects)
	}
	if len(corpus.Mileage) != 1 || len(corpus.Disengagements) != 1 {
		t.Errorf("parsed %d mileage, %d events", len(corpus.Mileage), len(corpus.Disengagements))
	}
	if rep.DefectRate() <= 0 || rep.DefectRate() >= 1 {
		t.Errorf("defect rate = %g", rep.DefectRate())
	}
}

func TestParseRepairsNumericConfusions(t *testing.T) {
	// OCR substituted O for 0 and l for 1 in numeric fields.
	doc := []string{
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufacturer: Nissan",
		"Reporting Period: 2Ol5-2O16",
		"Fleet Size: 4",
		"",
		"SECTION 1: AUTONOMOUS MILES BY VEHICLE AND MONTH",
		"Nissan-x | 2Ol5-O3 | l2O.5O",
		"",
		"SECTION 2: DISENGAGEMENT EVENTS (0 TOTAL)",
	}
	corpus, rep, err := Parse([]Input{{DocID: "d", Lines: doc}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Defects) != 0 {
		t.Fatalf("defects: %+v", rep.Defects)
	}
	if len(corpus.Mileage) != 1 {
		t.Fatal("mileage row lost")
	}
	if corpus.Mileage[0].Miles != 120.50 {
		t.Errorf("miles = %g, want 120.50", corpus.Mileage[0].Miles)
	}
	if corpus.Mileage[0].Month.Month() != time.March {
		t.Errorf("month = %v", corpus.Mileage[0].Month)
	}
}

func TestParseFuzzyHeaderKeys(t *testing.T) {
	// "Manufacturer" damaged to "Manufocturer" still parses.
	doc := []string{
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufocturer: Waymo",
		"Reporting Period: 2015-2016",
		"Fleet Size: 49",
		"SECTION 2: DISENGAGEMENT EVENTS (0 TOTAL)",
	}
	corpus, rep, err := Parse([]Input{{DocID: "d", Lines: doc}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDocs != 0 {
		t.Fatalf("skipped: %+v", rep.Defects)
	}
	if len(corpus.Fleets) != 1 || corpus.Fleets[0].Manufacturer != schema.Waymo {
		t.Errorf("fleets = %+v", corpus.Fleets)
	}
	if corpus.Fleets[0].Cars != 49 {
		t.Errorf("cars = %d", corpus.Fleets[0].Cars)
	}
}

func TestParseMergedManufacturerLine(t *testing.T) {
	// An OCR line merge can glue the reporting-period line onto the
	// manufacturer value; the document must still resolve.
	doc := []string{
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufacturer: Delphi Reporting Period: 2015-2016",
		"Fleet Size: 2",
		"SECTION 2: DISENGAGEMENT EVENTS (0 TOTAL)",
	}
	corpus, rep, err := Parse([]Input{{DocID: "d", Lines: doc}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDocs != 0 {
		t.Fatalf("merged header skipped the document: %+v", rep.Defects)
	}
	if len(corpus.Fleets) != 1 || corpus.Fleets[0].Manufacturer != schema.Delphi {
		t.Errorf("fleets = %+v", corpus.Fleets)
	}
	if corpus.Fleets[0].ReportYear != schema.Report2016 {
		t.Errorf("merged period not recovered: %v", corpus.Fleets[0].ReportYear)
	}
}

func TestParseUnknownManufacturerSkips(t *testing.T) {
	doc := []string{
		"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS",
		"Manufacturer: Atlantis Motors",
		"Reporting Period: 2015-2016",
	}
	corpus, rep, err := Parse([]Input{{DocID: "d", Lines: doc}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDocs != 1 || len(corpus.Fleets) != 0 {
		t.Errorf("skipped=%d fleets=%d", rep.SkippedDocs, len(corpus.Fleets))
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	corpus, rep, err := Parse([]Input{
		{DocID: "empty"},
		{DocID: "garbage", Lines: []string{"totally unrelated text", "more of it"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDocs != 2 {
		t.Errorf("skipped = %d, want 2", rep.SkippedDocs)
	}
	if len(corpus.Fleets)+len(corpus.Disengagements) != 0 {
		t.Error("garbage produced records")
	}
}

// Property: Parse never panics and never invents records, whatever bytes
// OCR hands it.
func TestParseRobustToGarbageProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nLines := r.Intn(40)
		lines := make([]string, nLines)
		alphabet := []rune("abcZ019|—:-/. SECTIONManufacturer")
		for i := range lines {
			n := r.Intn(60)
			buf := make([]rune, n)
			for j := range buf {
				buf[j] = alphabet[r.Intn(len(alphabet))]
			}
			lines[i] = string(buf)
		}
		// Occasionally prepend a valid-looking title so both document
		// kinds get exercised.
		switch r.Intn(3) {
		case 0:
			lines = append([]string{"CALIFORNIA DMV ANNUAL REPORT OF AUTONOMOUS VEHICLE DISENGAGEMENTS"}, lines...)
		case 1:
			lines = append([]string{"REPORT OF TRAFFIC COLLISION INVOLVING AN AUTONOMOUS VEHICLE (OL 316)"}, lines...)
		}
		corpus, rep, err := Parse([]Input{{DocID: "fuzz", Lines: lines}})
		if err != nil {
			return false
		}
		if rep == nil || corpus == nil {
			return false
		}
		// Garbage cannot produce more records than input lines.
		total := len(corpus.Mileage) + len(corpus.Disengagements) + len(corpus.Accidents)
		return total <= len(lines)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestFuzzyMatching(t *testing.T) {
	if !fuzzyEqual("Manufacturer", "Manufacturer") {
		t.Error("exact match failed")
	}
	if !fuzzyEqual("Manufacturer", "Manufocturer") {
		t.Error("1-edit match failed")
	}
	if fuzzyEqual("Manufacturer", "Location") {
		t.Error("different keys matched")
	}
	if !fuzzyContains("REPORT OF TRAFFIC COLL1SION INVOLVING", "COLLISION") {
		t.Error("fuzzyContains failed on substituted text")
	}
	if fuzzyContains("SHORT", "COMPLETELY DIFFERENT NEEDLE") {
		t.Error("fuzzyContains false positive")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"abc", "", 3}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2}, {"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestParseReaction(t *testing.T) {
	if v, err := parseReaction("0.832 s"); err != nil || v != 0.832 {
		t.Errorf("parseReaction = %g, %v", v, err)
	}
	if v, err := parseReaction("-"); err != nil || v != -1 {
		t.Errorf("dash reaction = %g, %v", v, err)
	}
	if _, err := parseReaction("garbage"); err == nil {
		t.Error("garbage reaction: want error")
	}
}

func TestParseConcurrentMatchesSequential(t *testing.T) {
	truth, err := synth.Generate(synth.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	docs := scandoc.Render(&truth.Corpus)
	eng, err := ocr.NewEngine(ocr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var inputs []Input
	for _, res := range eng.DecodeAll(docs) {
		inputs = append(inputs, Input{DocID: res.DocID, Lines: res.Lines})
	}
	wantCorpus, wantRep, err := Parse(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16, len(inputs) + 1} {
		gotCorpus, gotRep, err := ParseConcurrent(inputs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(wantCorpus, gotCorpus) {
			t.Errorf("workers=%d: corpus differs from sequential parse", workers)
		}
		if !reflect.DeepEqual(wantRep, gotRep) {
			t.Errorf("workers=%d: report differs from sequential parse", workers)
		}
	}
}

func TestParseConcurrentEmptyInput(t *testing.T) {
	corpus, rep, err := ParseConcurrent(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Documents != 0 || rep.RowsParsed != 0 || len(rep.Defects) != 0 {
		t.Errorf("empty input report = %+v", rep)
	}
	if len(corpus.Disengagements) != 0 {
		t.Errorf("empty input produced events")
	}
}
