package query

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/frame"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// fixtureEngine builds a small five-row engine with known values.
func fixtureEngine(t *testing.T) *Engine {
	t.Helper()
	f := frame.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.AddStrings("manufacturer", []string{"Waymo", "Waymo", "Bosch", "Delphi", "Waymo"}))
	must(f.AddStrings("tag", []string{"Software", "Sensor", "Software", "Planner", "Software"}))
	must(f.AddStrings("category", []string{"System", "System", "System", "ML/Design", "System"}))
	must(f.AddStrings("road", []string{"highway", "city street", "highway", "", "highway"}))
	must(f.AddStrings("weather", []string{"sunny", "rain", "", "sunny", "fog"}))
	must(f.AddStrings("modality", []string{"Manual", "Automatic", "Planned", "Manual", "Manual"}))
	must(f.AddStrings("cause", []string{"a", "b", "c", "d", "e"}))
	must(f.AddTimes("time", []time.Time{
		time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 6, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 1, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 11, 30, 0, 0, 0, 0, time.UTC),
	}))
	eng, err := NewFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPredicates(t *testing.T) {
	eng := fixtureEngine(t)
	tests := []struct {
		name   string
		filter Filter
		want   []int
	}{
		{"empty matches all", Filter{}, []int{0, 1, 2, 3, 4}},
		{"manufacturer", Filter{Manufacturer: "Waymo"}, []int{0, 1, 4}},
		{"manufacturer case-insensitive", Filter{Manufacturer: "wAYmo"}, []int{0, 1, 4}},
		{"tag", Filter{Tag: "Software"}, []int{0, 2, 4}},
		{"category", Filter{Category: "ml/design"}, []int{3}},
		{"road", Filter{Road: "highway"}, []int{0, 2, 4}},
		{"weather", Filter{Weather: "sunny"}, []int{0, 3}},
		{"modality", Filter{Modality: "manual"}, []int{0, 3, 4}},
		{"from only", Filter{From: "2016-01"}, []int{2, 3, 4}},
		{"to only", Filter{To: "2015-12"}, []int{0, 1}},
		{"from==to single month", Filter{From: "2015-06", To: "2015-06"}, []int{1}},
		{"inverted range", Filter{From: "2016-06", To: "2015-01"}, []int{}},
		{"conjunction", Filter{Manufacturer: "Waymo", Tag: "Software", Road: "highway"}, []int{0, 4}},
		{"conjunction with range", Filter{Tag: "Software", From: "2016-01"}, []int{2, 4}},
		{"unknown manufacturer", Filter{Manufacturer: "DeLorean"}, []int{}},
		{"unknown tag", Filter{Tag: "Flux Capacitor"}, []int{}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := eng.Select(tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Select(%+v) = %v, want %v", tc.filter, got, tc.want)
			}
			scan, err := eng.SelectScan(tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scan, tc.want) {
				t.Errorf("SelectScan(%+v) = %v, want %v", tc.filter, scan, tc.want)
			}
		})
	}
}

func TestMonthErrors(t *testing.T) {
	eng := fixtureEngine(t)
	for _, tc := range []struct {
		filter Filter
		field  string
	}{
		{Filter{From: "nope"}, "from"},
		{Filter{To: "2015"}, "to"},
		{Filter{From: "2015-01", To: "12-2015"}, "to"},
	} {
		_, err := eng.Select(tc.filter)
		var me *MonthError
		if !errors.As(err, &me) {
			t.Fatalf("Select(%+v) error = %v, want *MonthError", tc.filter, err)
		}
		if me.Field != tc.field {
			t.Errorf("MonthError.Field = %q, want %q", me.Field, tc.field)
		}
		if me.Unwrap() == nil {
			t.Error("MonthError.Unwrap() = nil")
		}
		if tc.filter.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", tc.filter)
		}
	}
	if err := (Filter{From: "2015-01", To: "2016-11"}).Validate(); err != nil {
		t.Errorf("valid range: %v", err)
	}
}

// randomEngine generates a deterministic pseudo-random corpus for the
// equivalence property test.
func randomEngine(t testing.TB, rng *rand.Rand, n int) *Engine {
	t.Helper()
	pick := func(opts []string) string { return opts[rng.Intn(len(opts))] }
	mfrs := []string{"Waymo", "Bosch", "Delphi", "GMCruise", "Tesla", ""}
	tags := []string{"Software", "Sensor", "Planner", "Recognition System", "Unknown-T"}
	cats := []string{"System", "ML/Design", "Unknown"}
	roads := []string{"highway", "city street", "rural", ""}
	weathers := []string{"sunny", "rain", "fog", ""}
	modalities := []string{"Manual", "Automatic", "Planned"}

	f := frame.New()
	col := func(opts []string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = pick(opts)
		}
		return out
	}
	times := make([]time.Time, n)
	start := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := range times {
		times[i] = start.AddDate(0, rng.Intn(27), rng.Intn(28))
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.AddStrings("manufacturer", col(mfrs)))
	must(f.AddStrings("tag", col(tags)))
	must(f.AddStrings("category", col(cats)))
	must(f.AddStrings("road", col(roads)))
	must(f.AddStrings("weather", col(weathers)))
	must(f.AddStrings("modality", col(modalities)))
	must(f.AddTimes("time", times))
	eng, err := NewFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestIndexScanEquivalence is the property test behind the indexed path:
// for random corpora and random filters, Select (inverted indexes) must
// return exactly what SelectScan (full scan) returns.
func TestIndexScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := randomEngine(t, rng, 500)
	maybe := func(opts []string) string {
		if rng.Intn(2) == 0 {
			return ""
		}
		return opts[rng.Intn(len(opts))]
	}
	months := []string{"", "2014-09", "2015-03", "2015-12", "2016-06", "2016-11"}
	for trial := 0; trial < 200; trial++ {
		f := Filter{
			Manufacturer: maybe([]string{"Waymo", "bosch", "DELPHI", "Tesla", "Nissan"}),
			Tag:          maybe([]string{"Software", "sensor", "Planner", "No Such Tag"}),
			Category:     maybe([]string{"System", "ml/design", "Unknown"}),
			Road:         maybe([]string{"highway", "rural", "parking lot"}),
			Weather:      maybe([]string{"sunny", "rain"}),
			Modality:     maybe([]string{"Manual", "automatic"}),
			From:         months[rng.Intn(len(months))],
			To:           months[rng.Intn(len(months))],
		}
		indexed, err := eng.Select(f)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := eng.SelectScan(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("trial %d: filter %+v: indexed %v != scanned %v", trial, f, indexed, scanned)
		}
	}
}

func TestPagination(t *testing.T) {
	eng := fixtureEngine(t)
	tests := []struct {
		name       string
		page       Page
		wantLen    int
		wantFirst  string // first event's cause, "" when empty
		wantTotal  int
		wantOffset int
	}{
		{"all with zero limit", Page{}, 5, "a", 5, 0},
		{"first page", Page{Limit: 2}, 2, "a", 5, 0},
		{"middle page", Page{Offset: 2, Limit: 2}, 2, "c", 5, 2},
		{"last partial page", Page{Offset: 4, Limit: 2}, 1, "e", 5, 4},
		{"offset at total", Page{Offset: 5, Limit: 2}, 0, "", 5, 5},
		{"offset past total", Page{Offset: 99, Limit: 2}, 0, "", 5, 99},
		{"negative offset clamps", Page{Offset: -3, Limit: 2}, 2, "a", 5, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			page, err := eng.Events(Filter{}, tc.page)
			if err != nil {
				t.Fatal(err)
			}
			if page.Total != tc.wantTotal || page.Offset != tc.wantOffset {
				t.Errorf("page meta = total %d offset %d, want %d, %d",
					page.Total, page.Offset, tc.wantTotal, tc.wantOffset)
			}
			if page.Events == nil {
				t.Fatal("Events slice is nil; want non-nil for JSON []")
			}
			if len(page.Events) != tc.wantLen {
				t.Fatalf("len(events) = %d, want %d", len(page.Events), tc.wantLen)
			}
			if tc.wantLen > 0 && page.Events[0].Cause != tc.wantFirst {
				t.Errorf("first cause = %q, want %q", page.Events[0].Cause, tc.wantFirst)
			}
		})
	}

	t.Run("empty filter result", func(t *testing.T) {
		page, err := eng.Events(Filter{Manufacturer: "DeLorean"}, Page{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != 0 || len(page.Events) != 0 || page.Events == nil {
			t.Errorf("empty result page = %+v", page)
		}
	})
}

func TestGroupCount(t *testing.T) {
	eng := fixtureEngine(t)
	got, err := eng.GroupCount(Filter{}, "tag")
	if err != nil {
		t.Fatal(err)
	}
	want := []GroupCount{{"Software", 3}, {"Planner", 1}, {"Sensor", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupCount(tag) = %v, want %v", got, want)
	}

	got, err = eng.GroupCount(Filter{Manufacturer: "Waymo"}, "month")
	if err != nil {
		t.Fatal(err)
	}
	want = []GroupCount{{"2015-03", 1}, {"2015-06", 1}, {"2016-11", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupCount(month) = %v, want %v", got, want)
	}

	// Fallback through the dataframe layer for non-cached columns.
	got, err = eng.GroupCount(Filter{Tag: "Software"}, "cause")
	if err != nil {
		t.Fatal(err)
	}
	want = []GroupCount{{"a", 1}, {"c", 1}, {"e", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupCount(cause) = %v, want %v", got, want)
	}

	if _, err := eng.GroupCount(Filter{}, "nope"); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestFrameProjection(t *testing.T) {
	eng := fixtureEngine(t)
	fr, err := eng.Frame(Filter{Manufacturer: "Waymo", Tag: "Software"})
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumRows() != 2 {
		t.Errorf("projected rows = %d, want 2", fr.NumRows())
	}
	causes, err := fr.StringsCol("cause")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(causes, []string{"a", "e"}) {
		t.Errorf("projected causes = %v", causes)
	}
}

func TestNewFromFrameMissingColumns(t *testing.T) {
	f := frame.New()
	if err := f.AddStrings("manufacturer", []string{"Waymo", "Bosch"}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.Count(Filter{Manufacturer: "Waymo"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count = %d", n)
	}
	// Predicates over absent columns match nothing (zero values).
	n, err = eng.Count(Filter{Tag: "Software"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("absent-column count = %d", n)
	}
}

func TestNewNilInputs(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil): want error")
	}
	if _, err := NewFromFrame(nil); err == nil {
		t.Error("NewFromFrame(nil): want error")
	}
}

func TestReliabilityRequiresDB(t *testing.T) {
	eng := fixtureEngine(t)
	if _, err := eng.Reliability(); err == nil {
		t.Error("frame-only engine Reliability: want error")
	}
}

func BenchmarkSelectIndexed(b *testing.B) { benchmarkSelect(b, true) }
func BenchmarkSelectScan(b *testing.B)    { benchmarkSelect(b, false) }

// benchmarkSelect measures a selective manufacturer+tag query on a 20k-row
// corpus through both paths; the indexed path should win by the corpus /
// posting-list size ratio.
func benchmarkSelect(b *testing.B, indexed bool) {
	rng := rand.New(rand.NewSource(11))
	eng := randomEngine(b, rng, 20000)
	f := Filter{Manufacturer: "Waymo", Tag: "Sensor"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if indexed {
			_, err = eng.Select(f)
		} else {
			_, err = eng.SelectScan(f)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// accidentsEngine builds a small database-backed engine with two accident
// reports for the Accidents listing tests.
func accidentsEngine(t *testing.T) *Engine {
	t.Helper()
	month := func(m int) time.Time { return time.Date(2015, time.Month(m), 4, 0, 0, 0, 0, time.UTC) }
	db := &core.DB{
		Events: []core.Event{
			{Disengagement: schema.Disengagement{
				Manufacturer: schema.Waymo, ReportYear: schema.Report2016,
				Time: month(3), Cause: "software hang",
			}, Tag: ontology.TagSoftware, Category: ontology.CategoryOf(ontology.TagSoftware)},
		},
		Accidents: []schema.Accident{
			{Manufacturer: schema.Waymo, Vehicle: "W1", ReportYear: schema.Report2016,
				Time: month(7), Location: "El Camino Real", AVSpeedMPH: 5, OtherSpeedMPH: 10,
				InAutonomousMode: true},
			{Manufacturer: schema.Bosch, Vehicle: "B1", ReportYear: schema.Report2016,
				Time: month(9), Location: "First St", AVSpeedMPH: 2},
		},
	}
	eng, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAccidents(t *testing.T) {
	eng := accidentsEngine(t)
	tests := []struct {
		name          string
		filter        Filter
		page          Page
		wantTotal     int
		wantLocations []string
	}{
		{"all", Filter{}, Page{}, 2, []string{"El Camino Real", "First St"}},
		{"manufacturer case-insensitive", Filter{Manufacturer: "bosch"}, Page{}, 1, []string{"First St"}},
		{"month range", Filter{From: "2015-01", To: "2015-08"}, Page{}, 1, []string{"El Camino Real"}},
		{"range excludes all", Filter{From: "2016-01"}, Page{}, 0, nil},
		{"paginated", Filter{}, Page{Limit: 1}, 2, []string{"El Camino Real"}},
		{"second page", Filter{}, Page{Offset: 1, Limit: 1}, 2, []string{"First St"}},
		{"offset past total", Filter{}, Page{Offset: 9, Limit: 1}, 2, nil},
		{"negative offset clamps", Filter{}, Page{Offset: -2, Limit: 1}, 2, []string{"El Camino Real"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			page, err := eng.Accidents(tc.filter, tc.page)
			if err != nil {
				t.Fatal(err)
			}
			if page.Total != tc.wantTotal {
				t.Errorf("total = %d, want %d", page.Total, tc.wantTotal)
			}
			if page.Accidents == nil {
				t.Fatal("Accidents slice is nil; want non-nil for JSON []")
			}
			var locs []string
			for _, a := range page.Accidents {
				locs = append(locs, a.Location)
			}
			if !reflect.DeepEqual(locs, tc.wantLocations) {
				t.Errorf("locations = %v, want %v", locs, tc.wantLocations)
			}
		})
	}
}

func TestAccidentsErrors(t *testing.T) {
	eng := accidentsEngine(t)
	_, err := eng.Accidents(Filter{From: "bogus"}, Page{})
	var me *MonthError
	if !errors.As(err, &me) {
		t.Errorf("malformed month error = %v, want *MonthError", err)
	}
	if _, err := fixtureEngine(t).Accidents(Filter{}, Page{}); err == nil {
		t.Error("frame-only engine Accidents: want error")
	}
}

// TestColumnErrorTyped pins the unknown-column contract: the error is a
// *ColumnError reachable with errors.As (transports classify on the type,
// not the message), and the message still names the column for humans.
func TestColumnErrorTyped(t *testing.T) {
	eng := fixtureEngine(t)
	_, err := eng.GroupCount(Filter{}, "bogus")
	var ce *ColumnError
	if !errors.As(err, &ce) {
		t.Fatalf("GroupCount error = %v, want *ColumnError", err)
	}
	if ce.Column != "bogus" {
		t.Errorf("ColumnError.Column = %q", ce.Column)
	}
	if ce.Unwrap() == nil {
		t.Error("ColumnError.Unwrap() = nil")
	}
	//lint:allow errsubstr this test pins the human-readable rendering of ColumnError.Error itself
	if !strings.Contains(err.Error(), `group by "bogus"`) {
		t.Errorf("error %q does not name the column", err)
	}
	// Wrapping must not break classification.
	wrapped := fmt.Errorf("engine: %w", err)
	if !errors.As(wrapped, &ce) {
		t.Error("wrapped ColumnError not found by errors.As")
	}
}
