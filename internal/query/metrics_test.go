package query

import (
	"math"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// metricsDB builds a tiny hand-assembled failure database: Waymo with one
// vehicle, 100 miles, 2 disengagements, 1 accident; Honda (excluded from
// the paper's statistical analysis) with events but no per-car medians.
func metricsDB() *core.DB {
	month := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	ev := func(m schema.Manufacturer, v schema.VehicleID) core.Event {
		return core.Event{
			Disengagement: schema.Disengagement{
				Manufacturer: m, Vehicle: v, ReportYear: schema.Report2016,
				Time: month.AddDate(0, 0, 10), Cause: "software hang",
				Modality: schema.ModalityManual,
			},
			Tag:      ontology.TagSoftware,
			Category: ontology.CategoryOf(ontology.TagSoftware),
		}
	}
	return &core.DB{
		Mileage: []schema.MonthlyMileage{
			{Manufacturer: schema.Waymo, Vehicle: "W1", ReportYear: schema.Report2016, Month: month, Miles: 100},
			{Manufacturer: schema.Honda, Vehicle: "H1", ReportYear: schema.Report2016, Month: month, Miles: 50},
		},
		Events: []core.Event{ev(schema.Waymo, "W1"), ev(schema.Waymo, "W1"), ev(schema.Honda, "H1")},
		Accidents: []schema.Accident{
			{Manufacturer: schema.Waymo, Vehicle: "W1", ReportYear: schema.Report2016,
				Time: month.AddDate(0, 0, 20), AVSpeedMPH: 5, OtherSpeedMPH: 10},
		},
	}
}

func TestReliabilityMetrics(t *testing.T) {
	db := metricsDB()
	rows, err := Reliability(db)
	if err != nil {
		t.Fatal(err)
	}
	byMfr := make(map[string]ReliabilityMetric, len(rows))
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}

	w, ok := byMfr["Waymo"]
	if !ok {
		t.Fatal("no Waymo row")
	}
	if w.Events != 2 || w.Accidents != 1 || w.Miles != 100 {
		t.Errorf("Waymo exposure = %+v", w)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(w.DPM, 0.02) {
		t.Errorf("Waymo DPM = %g, want 0.02", w.DPM)
	}
	if !approx(w.MedianDPM, 0.02) {
		t.Errorf("Waymo MedianDPM = %g, want 0.02", w.MedianDPM)
	}
	if !approx(w.DPA, 2) {
		t.Errorf("Waymo DPA = %g, want 2", w.DPA)
	}
	if !approx(w.MedianAPM, 0.01) {
		t.Errorf("Waymo MedianAPM = %g, want 0.01", w.MedianAPM)
	}
	if w.RelToHuman <= 0 {
		t.Errorf("Waymo RelToHuman = %g, want > 0", w.RelToHuman)
	}

	// Honda is outside the paper's analysis set: exposure is reported but
	// the Table VII chain stays absent (-1).
	h, ok := byMfr["Honda"]
	if !ok {
		t.Fatal("no Honda row")
	}
	if h.Events != 1 || !approx(h.DPM, 0.02) {
		t.Errorf("Honda exposure = %+v", h)
	}
	if h.MedianDPM != -1 || h.MedianAPM != -1 || h.DPA != -1 {
		t.Errorf("Honda analysis fields = %+v, want -1s", h)
	}

	if _, err := Reliability(nil); err == nil {
		t.Error("Reliability(nil): want error")
	}
}

// TestEngineOverDB exercises the New constructor end-to-end on the
// hand-assembled database.
func TestEngineOverDB(t *testing.T) {
	eng, err := New(metricsDB())
	if err != nil {
		t.Fatal(err)
	}
	if eng.DB() == nil {
		t.Error("DB() = nil for database-backed engine")
	}
	n, err := eng.Count(Filter{Manufacturer: "Waymo"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("Waymo events = %d, want 2", n)
	}
	rows, err := eng.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("reliability rows = %d, want 2", len(rows))
	}
}
