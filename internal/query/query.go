// Package query is a reusable, typed query engine over the consolidated
// failure database (system #18 in DESIGN.md §2).
//
// The paper's end product is a failure database that analysts interrogate
// (Tables IV-VIII, Figs 4-12). This package extracts the ad-hoc filter and
// group-by logic that used to live inside cmd/avquery into a composable
// engine shared by the CLI and the HTTP serving layer (internal/serve):
// typed predicates (manufacturer, tag, category, road, weather, modality,
// month range), group-by counts, per-manufacturer reliability metrics, and
// pagination.
//
// An Engine is built once per study and is immutable afterwards, so it is
// safe for concurrent use. Construction precomputes inverted indexes
// (manufacturer/tag/category value → row ids) so equality-filtered queries
// walk only the smallest matching posting list instead of scanning every
// row; SelectScan is the full-scan reference implementation the tests hold
// the indexed path equal to.
package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"avfda/internal/core"
	"avfda/internal/frame"
	"avfda/internal/schema"
)

// Filter is one conjunctive query over the failure database: every
// non-empty field must match (string matches are case-insensitive).
type Filter struct {
	// Manufacturer, Tag, and Category are indexed equality predicates.
	Manufacturer string
	Tag          string
	Category     string
	// Road, Weather, and Modality are scan-verified equality predicates.
	Road     string
	Weather  string
	Modality string
	// From and To bound the event month, inclusive on both ends, in
	// "YYYY-MM" form. Empty means unbounded. Malformed values produce a
	// *MonthError.
	From string
	To   string
}

// MonthError reports a malformed From/To month bound.
type MonthError struct {
	// Field is "from" or "to".
	Field string
	// Value is the rejected input.
	Value string
	// Err is the underlying time.Parse error.
	Err error
}

// Error implements the error interface.
func (e *MonthError) Error() string {
	return fmt.Sprintf("bad -%s value %q: want YYYY-MM", e.Field, e.Value)
}

// Unwrap exposes the underlying parse error.
func (e *MonthError) Unwrap() error { return e.Err }

// ColumnError reports a query naming a column the engine does not have
// (e.g. a group-by over a column absent from the frame). It mirrors
// MonthError so transports can classify it as client input error with
// errors.As instead of matching message text.
type ColumnError struct {
	// Column is the rejected column name.
	Column string
	// Err is the underlying frame-layer error.
	Err error
}

// Error implements the error interface.
func (e *ColumnError) Error() string {
	return fmt.Sprintf("group by %q: %v", e.Column, e.Err)
}

// Unwrap exposes the underlying frame error.
func (e *ColumnError) Unwrap() error { return e.Err }

// ParseMonthRange parses inclusive "YYYY-MM" month bounds into a concrete
// [start, endExcl) time window. Empty strings leave the corresponding side
// unbounded (zero time); malformed values produce a *MonthError.
func ParseMonthRange(from, to string) (start, endExcl time.Time, err error) {
	if from != "" {
		start, err = time.Parse("2006-01", from)
		if err != nil {
			return time.Time{}, time.Time{}, &MonthError{Field: "from", Value: from, Err: err}
		}
	}
	if to != "" {
		endExcl, err = time.Parse("2006-01", to)
		if err != nil {
			return time.Time{}, time.Time{}, &MonthError{Field: "to", Value: to, Err: err}
		}
		endExcl = endExcl.AddDate(0, 1, 0) // inclusive end month
	}
	return start, endExcl, nil
}

// monthRange parses the filter's month bounds. The returned to is
// exclusive (first month after the To month); zero times mean unbounded.
func (f Filter) monthRange() (from, to time.Time, err error) {
	return ParseMonthRange(f.From, f.To)
}

// Validate checks the filter's month bounds without running a query.
func (f Filter) Validate() error {
	_, _, err := f.monthRange()
	return err
}

// Event is one disengagement in JSON-friendly form.
type Event struct {
	Manufacturer    string    `json:"manufacturer"`
	Vehicle         string    `json:"vehicle,omitempty"`
	ReportYear      string    `json:"reportYear,omitempty"`
	Time            time.Time `json:"time"`
	Cause           string    `json:"cause"`
	Tag             string    `json:"tag"`
	Category        string    `json:"category"`
	Modality        string    `json:"modality"`
	Road            string    `json:"road,omitempty"`
	Weather         string    `json:"weather,omitempty"`
	ReactionSeconds float64   `json:"reactionSeconds"`
}

// Page bounds a result listing. Offset rows are skipped (negative offsets
// are treated as 0); Limit caps the returned rows, with <= 0 meaning
// unlimited.
type Page struct {
	Offset int
	Limit  int
}

// EventPage is one page of matching events plus the match total.
type EventPage struct {
	Total  int     `json:"total"`
	Offset int     `json:"offset"`
	Limit  int     `json:"limit"`
	Events []Event `json:"events"`
}

// GroupCount is one group-by bucket.
type GroupCount struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
}

// Source is the read surface the engine queries: per-row column accessors
// in the exact string forms core.DB.EventsFrame renders (display names for
// enums, "YYYY-YYYY" report years) plus the three inverted-index lookups,
// keyed by lower-cased value with ascending row ids. Implementations must
// be immutable and safe for concurrent use; returned posting lists are
// shared and read-only.
//
// The in-heap implementation wraps the column slices an engine has always
// carried; snapshot2.View implements the same surface directly over a
// memory-mapped study file, which is how an engine serves queries with no
// deserialization at all.
type Source interface {
	// NumRows returns the event count; row indexes run [0, NumRows()).
	NumRows() int

	Manufacturer(i int) string
	Vehicle(i int) string
	ReportYear(i int) string
	Time(i int) time.Time
	Cause(i int) string
	Tag(i int) string
	Category(i int) string
	Modality(i int) string
	Road(i int) string
	Weather(i int) string
	ReactionSeconds(i int) float64

	// ManufacturerIDs, TagIDs, and CategoryIDs return the ascending row
	// ids whose lower-cased column value equals key, or nil when the key
	// has no rows.
	ManufacturerIDs(key string) []int
	TagIDs(key string) []int
	CategoryIDs(key string) []int
}

// Engine answers queries over one study's failure database. Build it once
// with New (or NewFromFrame, or NewFromSource over a snapshot view) and
// share it freely: all methods are read-only and safe for concurrent use.
type Engine struct {
	src Source
	n   int

	db     *core.DB // set by New; nil for frame- and source-backed engines
	lazyDB func() (*core.DB, error)
	dbOnce sync.Once
	mdb    *core.DB
	mdbErr error

	f         *frame.Frame // set by New/NewFromFrame; else materialized lazily
	frameOnce sync.Once
	mframe    *frame.Frame
	mframeErr error
}

// sliceSource is the in-heap Source: the engine's historical column slices
// and eagerly built inverted indexes.
type sliceSource struct {
	mfr      []string
	tag      []string
	category []string
	road     []string
	weather  []string
	modality []string
	vehicle  []string
	year     []string
	cause    []string
	reaction []float64
	times    []time.Time

	// Inverted indexes: lower-cased column value → ascending row ids.
	byMfr      map[string][]int
	byTag      map[string][]int
	byCategory map[string][]int
}

func (s *sliceSource) NumRows() int                     { return len(s.mfr) }
func (s *sliceSource) Manufacturer(i int) string        { return s.mfr[i] }
func (s *sliceSource) Vehicle(i int) string             { return s.vehicle[i] }
func (s *sliceSource) ReportYear(i int) string          { return s.year[i] }
func (s *sliceSource) Time(i int) time.Time             { return s.times[i] }
func (s *sliceSource) Cause(i int) string               { return s.cause[i] }
func (s *sliceSource) Tag(i int) string                 { return s.tag[i] }
func (s *sliceSource) Category(i int) string            { return s.category[i] }
func (s *sliceSource) Modality(i int) string            { return s.modality[i] }
func (s *sliceSource) Road(i int) string                { return s.road[i] }
func (s *sliceSource) Weather(i int) string             { return s.weather[i] }
func (s *sliceSource) ReactionSeconds(i int) float64    { return s.reaction[i] }
func (s *sliceSource) ManufacturerIDs(key string) []int { return s.byMfr[key] }
func (s *sliceSource) TagIDs(key string) []int          { return s.byTag[key] }
func (s *sliceSource) CategoryIDs(key string) []int     { return s.byCategory[key] }

// New builds an engine over the database's events (via EventsFrame).
func New(db *core.DB) (*Engine, error) {
	if db == nil {
		return nil, errors.New("query: nil database")
	}
	f, err := db.EventsFrame()
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	e, err := NewFromFrame(f)
	if err != nil {
		return nil, err
	}
	e.db = db
	return e, nil
}

// NewFromFrame builds an engine over an events dataframe (the EventsFrame
// column layout). Missing columns are treated as all-zero, so partial
// frames — tests, external CSV loads — still query; database-backed
// analyses (Reliability) require New.
func NewFromFrame(f *frame.Frame) (*Engine, error) {
	if f == nil {
		return nil, errors.New("query: nil frame")
	}
	n := f.NumRows()
	s := &sliceSource{
		mfr:      stringColOrEmpty(f, "manufacturer", n),
		tag:      stringColOrEmpty(f, "tag", n),
		category: stringColOrEmpty(f, "category", n),
		road:     stringColOrEmpty(f, "road", n),
		weather:  stringColOrEmpty(f, "weather", n),
		modality: stringColOrEmpty(f, "modality", n),
		vehicle:  stringColOrEmpty(f, "vehicle", n),
		year:     stringColOrEmpty(f, "reportYear", n),
		cause:    stringColOrEmpty(f, "cause", n),
		reaction: floatColOrZero(f, "reactionSeconds", n),
		times:    timeColOrZero(f, "time", n),
	}
	s.byMfr = buildIndex(s.mfr)
	s.byTag = buildIndex(s.tag)
	s.byCategory = buildIndex(s.category)
	return &Engine{src: s, n: n, f: f}, nil
}

// NewFromSource builds an engine directly over a Source — typically a
// snapshot2.View serving a memory-mapped study with zero deserialization.
// lazyDB, when non-nil, materializes the full failure database on first
// need (accident listings, reliability metrics, dataframe export); it is
// invoked at most once and must return a database consistent with the
// source's rows. With a nil lazyDB those analyses fail the same way a
// bare-frame engine's do.
func NewFromSource(src Source, lazyDB func() (*core.DB, error)) (*Engine, error) {
	if src == nil {
		return nil, errors.New("query: nil source")
	}
	return &Engine{src: src, n: src.NumRows(), lazyDB: lazyDB}, nil
}

// stringColOrEmpty copies the named string column, or zero-fills.
func stringColOrEmpty(f *frame.Frame, name string, n int) []string {
	if data, err := f.StringsCol(name); err == nil {
		return data
	}
	return make([]string, n)
}

// floatColOrZero copies the named float column, or zero-fills.
func floatColOrZero(f *frame.Frame, name string, n int) []float64 {
	if data, err := f.Floats(name); err == nil {
		return data
	}
	return make([]float64, n)
}

// timeColOrZero copies the named time column, or zero-fills.
func timeColOrZero(f *frame.Frame, name string, n int) []time.Time {
	if data, err := f.Times(name); err == nil {
		return data
	}
	return make([]time.Time, n)
}

// buildIndex maps each distinct lower-cased value to its ascending row ids.
func buildIndex(col []string) map[string][]int {
	idx := make(map[string][]int)
	for i, v := range col {
		k := strings.ToLower(v)
		idx[k] = append(idx[k], i)
	}
	return idx
}

// Len returns the total number of events in the engine.
func (e *Engine) Len() int { return e.n }

// DB returns the database the engine was constructed from (New), or nil
// for frame- and source-backed engines. Callers that can accept lazy
// materialization should prefer Database.
func (e *Engine) DB() *core.DB { return e.db }

// Database returns the backing failure database, materializing it on
// first use for source-backed engines (snapshot views decode their tables
// exactly once, here). Engines built from a bare frame have no database
// to give and return an error.
func (e *Engine) Database() (*core.DB, error) {
	if e.db != nil {
		return e.db, nil
	}
	if e.lazyDB == nil {
		return nil, errors.New("query: engine has no database (built from a bare frame)")
	}
	e.dbOnce.Do(func() { e.mdb, e.mdbErr = e.lazyDB() })
	return e.mdb, e.mdbErr
}

// frame returns the engine's events dataframe, materializing it from the
// database on first use for source-backed engines. Only the dataframe
// fallbacks (CSV export, group-by over non-indexed columns) pay this cost.
func (e *Engine) frame() (*frame.Frame, error) {
	if e.f != nil {
		return e.f, nil
	}
	e.frameOnce.Do(func() {
		db, err := e.Database()
		if err != nil {
			e.mframeErr = err
			return
		}
		e.mframe, e.mframeErr = db.EventsFrame()
	})
	return e.mframe, e.mframeErr
}

// eqFold reports whether got matches the predicate want ("" matches all).
func eqFold(got, want string) bool {
	return want == "" || strings.EqualFold(got, want)
}

// matches verifies every predicate of f against row i. from/toExcl are the
// pre-parsed month bounds.
func (e *Engine) matches(i int, f Filter, from, toExcl time.Time) bool {
	if !eqFold(e.src.Manufacturer(i), f.Manufacturer) ||
		!eqFold(e.src.Tag(i), f.Tag) ||
		!eqFold(e.src.Category(i), f.Category) ||
		!eqFold(e.src.Road(i), f.Road) ||
		!eqFold(e.src.Weather(i), f.Weather) ||
		!eqFold(e.src.Modality(i), f.Modality) {
		return false
	}
	ts := e.src.Time(i)
	if !from.IsZero() && ts.Before(from) {
		return false
	}
	if !toExcl.IsZero() && !ts.Before(toExcl) {
		return false
	}
	return true
}

// Select returns the ascending row ids matching the filter. When an indexed
// predicate (manufacturer, tag, category) is present, only the smallest
// matching posting list is walked; remaining predicates are verified per
// candidate. Results are identical to SelectScan by construction.
func (e *Engine) Select(f Filter) ([]int, error) {
	from, toExcl, err := f.monthRange()
	if err != nil {
		return nil, err
	}
	candidates := e.candidates(f)
	if candidates == nil {
		return e.scan(f, from, toExcl), nil
	}
	out := make([]int, 0, len(candidates))
	for _, i := range candidates {
		if e.matches(i, f, from, toExcl) {
			out = append(out, i)
		}
	}
	return out, nil
}

// candidates returns the smallest posting list among the filter's indexed
// predicates, or nil when none is set (forcing a scan). A set predicate
// with no posting list returns an empty, non-nil list: nothing matches.
func (e *Engine) candidates(f Filter) []int {
	var best []int
	found := false
	consider := func(lookup func(string) []int, want string) {
		if want == "" {
			return
		}
		list := lookup(strings.ToLower(want))
		if !found || len(list) < len(best) {
			best, found = list, true
		}
	}
	consider(e.src.ManufacturerIDs, f.Manufacturer)
	consider(e.src.TagIDs, f.Tag)
	consider(e.src.CategoryIDs, f.Category)
	if !found {
		return nil
	}
	if best == nil {
		best = []int{}
	}
	return best
}

// scan is the sequential match loop over every row.
func (e *Engine) scan(f Filter, from, toExcl time.Time) []int {
	out := make([]int, 0, e.n)
	for i := 0; i < e.n; i++ {
		if e.matches(i, f, from, toExcl) {
			out = append(out, i)
		}
	}
	return out
}

// SelectScan returns the matching row ids by scanning every row, ignoring
// the inverted indexes. It is the reference implementation that Select is
// tested against; production callers should use Select.
func (e *Engine) SelectScan(f Filter) ([]int, error) {
	from, toExcl, err := f.monthRange()
	if err != nil {
		return nil, err
	}
	return e.scan(f, from, toExcl), nil
}

// Count returns the number of events matching the filter.
func (e *Engine) Count(f Filter) (int, error) {
	ids, err := e.Select(f)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// event materializes row i.
func (e *Engine) event(i int) Event {
	return Event{
		Manufacturer:    e.src.Manufacturer(i),
		Vehicle:         e.src.Vehicle(i),
		ReportYear:      e.src.ReportYear(i),
		Time:            e.src.Time(i),
		Cause:           e.src.Cause(i),
		Tag:             e.src.Tag(i),
		Category:        e.src.Category(i),
		Modality:        e.src.Modality(i),
		Road:            e.src.Road(i),
		Weather:         e.src.Weather(i),
		ReactionSeconds: e.src.ReactionSeconds(i),
	}
}

// Events returns one page of matching events plus the match total. An
// offset at or past the total yields an empty (non-nil) page.
func (e *Engine) Events(f Filter, p Page) (EventPage, error) {
	ids, err := e.Select(f)
	if err != nil {
		return EventPage{}, err
	}
	if p.Offset < 0 {
		p.Offset = 0
	}
	page := EventPage{Total: len(ids), Offset: p.Offset, Limit: p.Limit}
	start := p.Offset
	if start > len(ids) {
		start = len(ids)
	}
	end := len(ids)
	if p.Limit > 0 && start+p.Limit < end {
		end = start + p.Limit
	}
	page.Events = make([]Event, 0, end-start)
	for _, i := range ids[start:end] {
		page.Events = append(page.Events, e.event(i))
	}
	return page, nil
}

// AccidentPage is one page of matching accident reports plus the match
// total.
type AccidentPage struct {
	Total     int               `json:"total"`
	Offset    int               `json:"offset"`
	Limit     int               `json:"limit"`
	Accidents []schema.Accident `json:"accidents"`
}

// Accidents returns one page of the study's accident reports matching the
// filter. Accident reports carry no tag/category/road/weather/modality
// context, so only the Manufacturer, From, and To predicates apply; the
// other filter fields are ignored. Pagination follows Events: negative
// offsets clamp to 0, Limit <= 0 means unlimited, and an offset at or past
// the total yields an empty (non-nil) page. Requires a database-backed
// engine (New, or NewFromSource with a database hook).
func (e *Engine) Accidents(f Filter, p Page) (AccidentPage, error) {
	if e.db == nil && e.lazyDB == nil {
		return AccidentPage{}, errors.New("query: accidents need a database-backed engine (built with New)")
	}
	db, err := e.Database()
	if err != nil {
		return AccidentPage{}, err
	}
	from, toExcl, err := f.monthRange()
	if err != nil {
		return AccidentPage{}, err
	}
	matched := make([]schema.Accident, 0, len(db.Accidents))
	for _, a := range db.Accidents {
		if !eqFold(string(a.Manufacturer), f.Manufacturer) {
			continue
		}
		if !from.IsZero() && a.Time.Before(from) {
			continue
		}
		if !toExcl.IsZero() && !a.Time.Before(toExcl) {
			continue
		}
		matched = append(matched, a)
	}
	if p.Offset < 0 {
		p.Offset = 0
	}
	page := AccidentPage{Total: len(matched), Offset: p.Offset, Limit: p.Limit}
	start := p.Offset
	if start > len(matched) {
		start = len(matched)
	}
	end := len(matched)
	if p.Limit > 0 && start+p.Limit < end {
		end = start + p.Limit
	}
	page.Accidents = matched[start:end]
	return page, nil
}

// Frame returns the matching rows as a dataframe (for CSV export and
// frame-level post-processing). Source-backed engines materialize their
// dataframe on first use.
func (e *Engine) Frame(f Filter) (*frame.Frame, error) {
	ids, err := e.Select(f)
	if err != nil {
		return nil, err
	}
	fr, err := e.frame()
	if err != nil {
		return nil, err
	}
	return fr.Take(ids)
}

// GroupColumns lists the group-by columns the engine answers from its
// typed column cache. Other columns fall back to the dataframe layer.
func GroupColumns() []string {
	return []string{"manufacturer", "tag", "category", "road", "weather", "modality", "month"}
}

// groupColumns is the full set of columns GroupCount accepts: the typed
// GroupColumns plus the EventsFrame columns the dataframe fallback can
// group (core.DB.EventsFrame owns that list).
var groupColumns = map[string]bool{
	"manufacturer": true, "tag": true, "category": true, "road": true,
	"weather": true, "modality": true, "month": true,
	"vehicle": true, "reportYear": true, "cause": true,
	"time": true, "reactionSeconds": true,
}

// IsGroupColumn reports whether by is a column GroupCount can group by.
// Handlers validate request parameters with it before paying for a study
// build: a garbage ?by= must fail in microseconds, not after a full
// pipeline run (the taintflow analyzer enforces this ordering).
func IsGroupColumn(by string) bool { return groupColumns[by] }

// GroupCount counts matching events per value of the named column, most
// frequent first (ties broken by key). "month" groups by the event's
// "YYYY-MM"; any other column present in the underlying frame (e.g.
// "cause") is grouped through the dataframe layer.
func (e *Engine) GroupCount(f Filter, by string) ([]GroupCount, error) {
	ids, err := e.Select(f)
	if err != nil {
		return nil, err
	}
	var key func(i int) string
	switch by {
	case "manufacturer":
		key = e.src.Manufacturer
	case "tag":
		key = e.src.Tag
	case "category":
		key = e.src.Category
	case "road":
		key = e.src.Road
	case "weather":
		key = e.src.Weather
	case "modality":
		key = e.src.Modality
	case "month":
		key = func(i int) string { return e.src.Time(i).Format("2006-01") }
	default:
		return e.groupCountFrame(ids, by)
	}
	counts := make(map[string]int)
	for _, i := range ids {
		counts[key(i)]++
	}
	return sortedGroups(counts), nil
}

// groupCountFrame groups arbitrary frame columns via frame.GroupBy.
func (e *Engine) groupCountFrame(ids []int, by string) ([]GroupCount, error) {
	fr, err := e.frame()
	if err != nil {
		return nil, err
	}
	sub, err := fr.Take(ids)
	if err != nil {
		return nil, err
	}
	groups, err := sub.GroupBy(by)
	if err != nil {
		return nil, &ColumnError{Column: by, Err: err}
	}
	counts := make(map[string]int, len(groups))
	for _, g := range groups {
		counts[g.Key[0]] = g.Frame.NumRows()
	}
	return sortedGroups(counts), nil
}

// sortedGroups orders buckets by descending count, then ascending key.
func sortedGroups(counts map[string]int) []GroupCount {
	out := make([]GroupCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, GroupCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
