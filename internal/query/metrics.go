package query

import (
	"errors"

	"avfda/internal/core"
	"avfda/internal/schema"
)

// ReliabilityMetric is one manufacturer's reliability summary for the
// serving layer: fleet exposure plus the paper's DPM/DPA/APM chain
// (Tables VI-VII). Fields that the data cannot support (no accidents, no
// per-car mileage) are negative, matching the core package's convention
// for the paper's dashes.
type ReliabilityMetric struct {
	Manufacturer string  `json:"manufacturer"`
	Miles        float64 `json:"miles"`
	Events       int     `json:"disengagements"`
	Accidents    int     `json:"accidents"`
	// DPM is the fleet-level disengagements-per-mile rate (Events/Miles);
	// negative when no miles were reported.
	DPM float64 `json:"dpm"`
	// MedianDPM is the Table VII median per-car DPM; negative when no
	// vehicle-attributed mileage exists.
	MedianDPM float64 `json:"medianDPM"`
	// DPA is disengagements per accident (Table VI); negative without
	// accidents or without disengagements.
	DPA float64 `json:"dpa"`
	// MedianAPM is the Table VII accidents-per-mile estimate
	// (MedianDPM/DPA); negative when either input is absent.
	MedianAPM float64 `json:"medianAPM"`
	// RelToHuman is MedianAPM relative to the human-driver accident rate;
	// negative when MedianAPM is absent.
	RelToHuman float64 `json:"relToHuman"`
}

// Reliability computes the per-manufacturer reliability metrics for every
// manufacturer present in the database, in the paper's canonical order.
func Reliability(db *core.DB) ([]ReliabilityMetric, error) {
	if db == nil {
		return nil, errors.New("query: nil database")
	}
	miles := db.MilesBy()
	events := db.EventsBy()
	accidents := make(map[schema.Manufacturer]int)
	for _, a := range db.Accidents {
		accidents[a.Manufacturer]++
	}
	dpaBy := make(map[schema.Manufacturer]float64)
	for _, r := range db.AccidentSummary() {
		dpaBy[r.Manufacturer] = r.DPA
	}
	rel, err := db.ReliabilityVsHuman()
	if err != nil {
		return nil, err
	}
	relBy := make(map[schema.Manufacturer]core.ReliabilityRow, len(rel))
	for _, r := range rel {
		relBy[r.Manufacturer] = r
	}
	var out []ReliabilityMetric
	for _, m := range db.Manufacturers() {
		row := ReliabilityMetric{
			Manufacturer: string(m),
			Miles:        miles[m],
			Events:       events[m],
			Accidents:    accidents[m],
			DPM:          -1,
			MedianDPM:    -1,
			DPA:          -1,
			MedianAPM:    -1,
			RelToHuman:   -1,
		}
		if row.Miles > 0 {
			row.DPM = float64(row.Events) / row.Miles
		}
		if dpa, ok := dpaBy[m]; ok {
			row.DPA = dpa
		}
		if r, ok := relBy[m]; ok {
			row.MedianDPM = r.MedianDPM
			row.MedianAPM = r.MedianAPM
			row.RelToHuman = r.RelToHuman
		}
		out = append(out, row)
	}
	return out, nil
}

// Reliability reports the engine's per-manufacturer reliability metrics.
// It requires a database-backed engine (New, or NewFromSource with a
// database hook — snapshot views materialize their tables on first use).
func (e *Engine) Reliability() ([]ReliabilityMetric, error) {
	if e.db == nil && e.lazyDB == nil {
		return nil, errors.New("query: engine has no database (built from a bare frame)")
	}
	db, err := e.Database()
	if err != nil {
		return nil, err
	}
	return Reliability(db)
}
