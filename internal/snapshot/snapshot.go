// Package snapshot persists a built study — the consolidated failure
// database (core.DB) — as a versioned, checksummed binary file (system #20
// in DESIGN.md §2).
//
// A study is expensive to build (a full Stage I-IV pipeline run), but the
// follow-on workloads consume the consolidated database, not the pipeline:
// recurrent-event reliability modelling and report re-mining both start
// from a persisted failure DB. This package turns a built study into a
// shippable artifact: avpipe exports it once (e.g. in CI), and any number
// of avserve/avquery processes warm-start from it instead of re-paying the
// pipeline on every restart or cache eviction.
//
// File format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "AVFDSNAP"
//	8       2     format version (currently 1)
//	10      8     payload length in bytes
//	18      32    SHA-256 of the payload
//	50      ...   payload (section-encoded core.DB)
//
// The payload encodes the database's four sections (fleets, mileage,
// events, accidents) as count-prefixed records of fixed-width scalars and
// length-prefixed UTF-8 strings; timestamps are stored as Unix
// seconds + nanoseconds and restored in UTC. Encoding the same database
// always yields the same bytes, so write→read→re-write round-trips are
// byte-identical (property-tested).
//
// Compatibility policy: the version number is bumped on any payload layout
// change, and readers reject every version other than their own — a
// snapshot is a cache artifact, cheap to regenerate, so there is no
// cross-version migration. Truncated or bit-flipped files are rejected
// with typed errors (*FormatError, *ChecksumError, *VersionError) and must
// never be trusted; callers fall back to a pipeline rebuild.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// Version is the current snapshot format version. Readers accept exactly
// this version; see the package comment for the compatibility policy.
const Version uint16 = 1

// magic identifies a snapshot file; it is eight bytes so the header scalars
// that follow stay naturally aligned.
const magic = "AVFDSNAP"

// headerLen is the byte length of the fixed header preceding the payload.
const headerLen = len(magic) + 2 + 8 + sha256.Size

// FormatError reports a structurally invalid snapshot: wrong magic,
// truncation, trailing bytes, or an impossible length field.
type FormatError struct {
	// Reason describes the structural violation.
	Reason string
}

// Error implements the error interface.
func (e *FormatError) Error() string { return "snapshot: " + e.Reason }

// VersionError reports a snapshot written by an incompatible format version.
type VersionError struct {
	Got, Want uint16
}

// Error implements the error interface.
func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d, want %d", e.Got, e.Want)
}

// ChecksumError reports payload corruption: the stored SHA-256 does not
// match the payload bytes.
type ChecksumError struct {
	// Got and Want are hex-encoded SHA-256 digests: the recomputed one and
	// the one stored in the header.
	Got, Want string
}

// Error implements the error interface.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot: payload checksum %s, header says %s", e.Got, e.Want)
}

// Path returns the canonical snapshot file name for a study seed inside
// dir. avpipe -snapshot-out writes it and avserve/avquery -snapshot-dir
// look it up, so the three binaries agree without extra configuration.
func Path(dir string, seed int64) string {
	return filepath.Join(dir, fmt.Sprintf("study-%d.avsnap", seed))
}

// Encode serializes the database into the snapshot wire format.
func Encode(db *core.DB) ([]byte, error) {
	if db == nil {
		return nil, errors.New("snapshot: nil database")
	}
	var e encoder
	e.count(len(db.Fleets))
	for _, f := range db.Fleets {
		e.str(string(f.Manufacturer))
		e.i64(int64(f.ReportYear))
		e.i64(int64(f.Cars))
	}
	e.count(len(db.Mileage))
	for _, m := range db.Mileage {
		e.str(string(m.Manufacturer))
		e.str(string(m.Vehicle))
		e.i64(int64(m.ReportYear))
		e.time(m.Month)
		e.f64(m.Miles)
	}
	e.count(len(db.Events))
	for _, ev := range db.Events {
		e.str(string(ev.Manufacturer))
		e.str(string(ev.Vehicle))
		e.i64(int64(ev.ReportYear))
		e.time(ev.Time)
		e.str(ev.Cause)
		e.i64(int64(ev.Modality))
		e.i64(int64(ev.Road))
		e.i64(int64(ev.Weather))
		e.f64(ev.ReactionSeconds)
		e.i64(int64(ev.Tag))
		e.i64(int64(ev.Category))
	}
	e.count(len(db.Accidents))
	for _, a := range db.Accidents {
		e.str(string(a.Manufacturer))
		e.str(string(a.Vehicle))
		e.i64(int64(a.ReportYear))
		e.time(a.Time)
		e.str(a.Location)
		e.str(a.Narrative)
		e.f64(a.AVSpeedMPH)
		e.f64(a.OtherSpeedMPH)
		e.bool(a.InAutonomousMode)
		e.bool(a.Redacted)
	}
	payload := e.buf.Bytes()

	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out, nil
}

// Decode parses a snapshot produced by Encode, verifying magic, version,
// length, and checksum before trusting a single payload byte.
func Decode(data []byte) (*core.DB, error) {
	if len(data) < headerLen {
		return nil, &FormatError{Reason: fmt.Sprintf("file is %d bytes, shorter than the %d-byte header", len(data), headerLen)}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &FormatError{Reason: "bad magic: not a snapshot file"}
	}
	version := binary.LittleEndian.Uint16(data[len(magic):])
	if version != Version {
		return nil, &VersionError{Got: version, Want: Version}
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+2:])
	payload := data[headerLen:]
	if uint64(len(payload)) != plen {
		return nil, &FormatError{Reason: fmt.Sprintf("payload is %d bytes, header says %d", len(payload), plen)}
	}
	var want [sha256.Size]byte
	copy(want[:], data[len(magic)+10:headerLen])
	if got := sha256.Sum256(payload); got != want {
		return nil, &ChecksumError{
			Got:  hex.EncodeToString(got[:]),
			Want: hex.EncodeToString(want[:]),
		}
	}

	d := decoder{data: payload}
	db := &core.DB{}
	for i, n := 0, d.count("fleets"); i < n && d.err == nil; i++ {
		db.Fleets = append(db.Fleets, schema.Fleet{
			Manufacturer: schema.Manufacturer(d.str()),
			ReportYear:   schema.ReportYear(d.i64()),
			Cars:         int(d.i64()),
		})
	}
	for i, n := 0, d.count("mileage"); i < n && d.err == nil; i++ {
		db.Mileage = append(db.Mileage, schema.MonthlyMileage{
			Manufacturer: schema.Manufacturer(d.str()),
			Vehicle:      schema.VehicleID(d.str()),
			ReportYear:   schema.ReportYear(d.i64()),
			Month:        d.time(),
			Miles:        d.f64(),
		})
	}
	for i, n := 0, d.count("events"); i < n && d.err == nil; i++ {
		db.Events = append(db.Events, core.Event{
			Disengagement: schema.Disengagement{
				Manufacturer:    schema.Manufacturer(d.str()),
				Vehicle:         schema.VehicleID(d.str()),
				ReportYear:      schema.ReportYear(d.i64()),
				Time:            d.time(),
				Cause:           d.str(),
				Modality:        schema.Modality(d.i64()),
				Road:            schema.RoadType(d.i64()),
				Weather:         schema.Weather(d.i64()),
				ReactionSeconds: d.f64(),
			},
			Tag:      ontology.Tag(d.i64()),
			Category: ontology.Category(d.i64()),
		})
	}
	for i, n := 0, d.count("accidents"); i < n && d.err == nil; i++ {
		db.Accidents = append(db.Accidents, schema.Accident{
			Manufacturer:     schema.Manufacturer(d.str()),
			Vehicle:          schema.VehicleID(d.str()),
			ReportYear:       schema.ReportYear(d.i64()),
			Time:             d.time(),
			Location:         d.str(),
			Narrative:        d.str(),
			AVSpeedMPH:       d.f64(),
			OtherSpeedMPH:    d.f64(),
			InAutonomousMode: d.bool(),
			Redacted:         d.bool(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, &FormatError{Reason: fmt.Sprintf("%d trailing payload bytes", len(d.data)-d.off)}
	}
	return db, nil
}

// Write atomically persists the database to path: the snapshot is staged in
// a temporary file in the same directory and renamed into place, so readers
// never observe a half-written file and a crashed writer leaves any
// existing snapshot untouched.
func Write(path string, db *core.DB) error {
	data, err := Encode(db)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	// CreateTemp opens 0600; a snapshot is a shippable artifact, so widen
	// to the usual umask-style file mode before publishing it.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Read loads and verifies the snapshot at path. A missing file is reported
// via fs.ErrNotExist (check with errors.Is); corruption yields the typed
// errors documented on Decode.
func Read(path string) (*core.DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteSeed persists the database under dir with the canonical per-seed
// file name.
func WriteSeed(dir string, seed int64, db *core.DB) error {
	return Write(Path(dir, seed), db)
}

// ReadSeed loads the snapshot for seed from dir.
func ReadSeed(dir string, seed int64) (*core.DB, error) {
	return Read(Path(dir, seed))
}

// encoder accumulates the payload. Every scalar is little-endian and
// fixed-width, so identical databases encode to identical bytes.
type encoder struct {
	buf bytes.Buffer
}

// count writes a section's record count.
func (e *encoder) count(n int) { e.i64(int64(n)) }

// i64 writes a fixed-width signed integer.
func (e *encoder) i64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	e.buf.Write(b[:])
}

// f64 writes a float64 by its IEEE-754 bit pattern.
func (e *encoder) f64(v float64) { e.i64(int64(math.Float64bits(v))) }

// str writes a length-prefixed UTF-8 string.
func (e *encoder) str(s string) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
	e.buf.Write(b[:])
	e.buf.WriteString(s)
}

// bool writes one byte, 0 or 1.
func (e *encoder) bool(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

// time writes a timestamp as Unix seconds plus in-second nanoseconds; the
// decoder restores it in UTC. Every timestamp in the pipeline is UTC
// already (the study window is UTC-bounded), so the round trip is exact.
func (e *encoder) time(t time.Time) {
	e.i64(t.Unix())
	e.i64(int64(t.Nanosecond()))
}

// decoder walks the payload, latching the first structural error so record
// loops can stay unconditional.
type decoder struct {
	data []byte
	off  int
	err  error
}

// fail records the first error.
func (d *decoder) fail(reason string) {
	if d.err == nil {
		d.err = &FormatError{Reason: reason}
	}
}

// take consumes n bytes of payload.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail(fmt.Sprintf("truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.data)))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// count reads a section's record count, bounds-checking it against the
// bytes actually remaining so a corrupt length cannot balloon allocation.
func (d *decoder) count(section string) int {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(d.data)-d.off) {
		d.fail(fmt.Sprintf("%s count %d exceeds remaining payload", section, n))
		return 0
	}
	return int(n)
}

// i64 reads a fixed-width signed integer.
func (d *decoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// f64 reads an IEEE-754 float64.
func (d *decoder) f64() float64 { return math.Float64frombits(uint64(d.i64())) }

// str reads a length-prefixed string.
func (d *decoder) str() string {
	b := d.take(4)
	if b == nil {
		return ""
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > uint64(len(d.data)-d.off) {
		d.fail(fmt.Sprintf("string length %d exceeds remaining payload", n))
		return ""
	}
	return string(d.take(int(n)))
}

// bool reads one byte as a boolean; any value other than 0/1 is corruption.
func (d *decoder) bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Sprintf("invalid boolean byte %#x", b[0]))
		return false
	}
}

// time reads a Unix seconds + nanoseconds pair back into a UTC timestamp.
func (d *decoder) time() time.Time {
	sec := d.i64()
	nsec := d.i64()
	if d.err != nil {
		return time.Time{}
	}
	if nsec < 0 || nsec >= int64(time.Second) {
		d.fail(fmt.Sprintf("nanosecond field %d outside [0, 1e9)", nsec))
		return time.Time{}
	}
	return time.Unix(sec, nsec).UTC()
}
