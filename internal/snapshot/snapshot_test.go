package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/ontology"
	"avfda/internal/query"
	"avfda/internal/schema"
)

// testDB builds a randomized but deterministic database: every field the
// wire format carries is exercised, including empty strings, zero times,
// negative floats, and both boolean values.
func testDB(seed int64, nEvents, nAccidents int) *core.DB {
	rng := rand.New(rand.NewSource(seed))
	mfrs := []schema.Manufacturer{"Waymo", "Bosch", "Delphi", "Nissan", ""}
	tags := ontology.AllTags()
	base := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)

	db := &core.DB{}
	for i, m := range mfrs {
		db.Fleets = append(db.Fleets, schema.Fleet{
			Manufacturer: m,
			ReportYear:   schema.ReportYear(1 + i%2),
			Cars:         rng.Intn(60),
		})
		db.Mileage = append(db.Mileage, schema.MonthlyMileage{
			Manufacturer: m,
			Vehicle:      schema.VehicleID(fmt.Sprintf("V%03d", i)),
			ReportYear:   schema.ReportYear(1 + i%2),
			Month:        base.AddDate(0, i, 0),
			Miles:        rng.Float64() * 10000,
		})
	}
	for i := 0; i < nEvents; i++ {
		tag := tags[rng.Intn(len(tags))]
		db.Events = append(db.Events, core.Event{
			Disengagement: schema.Disengagement{
				Manufacturer:    mfrs[rng.Intn(len(mfrs))],
				Vehicle:         schema.VehicleID(fmt.Sprintf("V%03d", rng.Intn(8))),
				ReportYear:      schema.ReportYear(1 + rng.Intn(2)),
				Time:            base.AddDate(0, rng.Intn(27), rng.Intn(28)),
				Cause:           fmt.Sprintf("cause %d: sensor glitch é", i),
				Modality:        schema.Modality(rng.Intn(4)),
				Road:            schema.RoadType(rng.Intn(8)),
				Weather:         schema.Weather(rng.Intn(5)),
				ReactionSeconds: rng.Float64()*3 - 0.5,
			},
			Tag:      tag,
			Category: ontology.CategoryOf(tag),
		})
	}
	for i := 0; i < nAccidents; i++ {
		db.Accidents = append(db.Accidents, schema.Accident{
			Manufacturer:     mfrs[rng.Intn(len(mfrs))],
			Vehicle:          schema.VehicleID(fmt.Sprintf("V%03d", rng.Intn(8))),
			ReportYear:       schema.ReportYear(1 + rng.Intn(2)),
			Time:             base.AddDate(0, rng.Intn(27), rng.Intn(28)),
			Location:         fmt.Sprintf("El Camino Real & %dth", i),
			Narrative:        "",
			AVSpeedMPH:       float64(rng.Intn(40)),
			OtherSpeedMPH:    rng.Float64() * 50,
			InAutonomousMode: rng.Intn(2) == 0,
			Redacted:         rng.Intn(3) == 0,
		})
	}
	return db
}

// TestRoundTrip pins the core property: decode(encode(db)) reproduces the
// database exactly, and re-encoding the decoded database is byte-identical.
func TestRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		db := testDB(seed, 200, 30)
		data, err := Encode(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, db) {
			t.Fatalf("seed %d: decoded database differs from original", seed)
		}
		again, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: re-encoding the decoded database changed the bytes", seed)
		}
	}
}

// TestRoundTripEmpty covers the degenerate database: four zero counts.
func TestRoundTripEmpty(t *testing.T) {
	data, err := Encode(&core.DB{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Fleets)+len(db.Mileage)+len(db.Events)+len(db.Accidents) != 0 {
		t.Fatalf("empty database round-tripped to %+v", db)
	}
}

// TestWriteReadRewrite is the on-disk half of the byte-identity property:
// write → read → write again produces an identical file.
func TestWriteReadRewrite(t *testing.T) {
	dir := t.TempDir()
	db := testDB(7, 120, 15)
	if err := WriteSeed(dir, 7, db); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(Path(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSeed(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSeed(dir, 7, loaded); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(Path(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("rewriting a loaded snapshot changed the file bytes")
	}
	// The atomic write must not leave staging files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != filepath.Base(Path(dir, 7)) {
		t.Fatalf("snapshot dir left extra files: %v", entries)
	}
}

// TestEngineEquivalenceAfterReload checks the property avserve's warm start
// depends on: a query engine rebuilt from a loaded snapshot answers the
// same randomized filters identically to an engine built on the original
// in-memory database, and its indexed path still agrees with a full scan.
func TestEngineEquivalenceAfterReload(t *testing.T) {
	db := testDB(11, 400, 40)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	loadedDB, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := query.New(db)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := query.New(loadedDB)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	pick := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
	for i := 0; i < 100; i++ {
		f := query.Filter{
			Manufacturer: pick("", "Waymo", "bosch", "Delphi", "Nissan"),
			Tag:          pick("", "Planner", "software", "Recognition System"),
			Category:     pick("", "ML/Design", "system"),
			Road:         pick("", "highway", "city street"),
			Weather:      pick("", "raining", "sunny"),
			Modality:     pick("", "manual", "automatic"),
			From:         pick("", "2015-01", "2015-06"),
			To:           pick("", "2015-12", "2016-06"),
		}
		page := query.Page{Offset: rng.Intn(20), Limit: 1 + rng.Intn(50)}

		wantEv, err := fresh.Events(f, page)
		if err != nil {
			t.Fatal(err)
		}
		gotEv, err := reloaded.Events(f, page)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantEv, gotEv) {
			t.Fatalf("filter %+v: events diverge after reload", f)
		}

		wantAcc, err := fresh.Accidents(f, page)
		if err != nil {
			t.Fatal(err)
		}
		gotAcc, err := reloaded.Accidents(f, page)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantAcc, gotAcc) {
			t.Fatalf("filter %+v: accidents diverge after reload", f)
		}

		by := pick("tag", "category", "manufacturer", "month")
		wantGr, err := fresh.GroupCount(f, by)
		if err != nil {
			t.Fatal(err)
		}
		gotGr, err := reloaded.GroupCount(f, by)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantGr, gotGr) {
			t.Fatalf("filter %+v by %s: group counts diverge after reload", f, by)
		}

		indexed, err := reloaded.Select(f)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := reloaded.SelectScan(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("filter %+v: reloaded engine's index disagrees with scan", f)
		}
	}
}

// typedSnapshotError reports whether err is one of the package's typed
// corruption errors — the contract callers classify on.
func typedSnapshotError(err error) bool {
	var fe *FormatError
	var ve *VersionError
	var ce *ChecksumError
	return errors.As(err, &fe) || errors.As(err, &ve) || errors.As(err, &ce)
}

// TestTruncationRejected feeds every prefix of a valid snapshot to Decode;
// all of them must fail with a typed error, never a panic or a silent
// partial database.
func TestTruncationRejected(t *testing.T) {
	data, err := Encode(testDB(3, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		db, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded to %v", n, len(data), db)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

// TestBitFlipRejected flips every byte of a valid snapshot in turn; the
// checksum (or header validation) must catch each one.
func TestBitFlipRejected(t *testing.T) {
	data, err := Encode(testDB(5, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		db, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d decoded to %v", i, db)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

// TestTrailingBytesRejected appends garbage after a valid payload.
func TestTrailingBytesRejected(t *testing.T) {
	data, err := Encode(testDB(9, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := Decode(append(bytes.Clone(data), 0xFF)); !errors.As(err, &fe) {
		t.Fatalf("trailing byte: got %v, want *FormatError", err)
	}
}

// TestVersionRejected patches the header version; readers must refuse any
// version other than their own, per the compatibility policy.
func TestVersionRejected(t *testing.T) {
	data, err := Encode(testDB(13, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	binary.LittleEndian.PutUint16(mut[len(magic):], Version+1)
	var ve *VersionError
	if _, err := Decode(mut); !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	} else if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

// TestChecksumRejected corrupts a payload byte and re-stamps the length so
// only the checksum can catch it.
func TestChecksumRejected(t *testing.T) {
	data, err := Encode(testDB(17, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	mut[len(mut)-1] ^= 1
	var ce *ChecksumError
	if _, err := Decode(mut); !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ChecksumError", err)
	} else if ce.Got == ce.Want {
		t.Fatalf("ChecksumError digests match: %+v", ce)
	}
}

// TestCorruptPayloadBehindValidChecksum re-seals a structurally invalid
// payload with a correct checksum: the record decoder itself must reject
// it (here, an out-of-range boolean byte).
func TestCorruptPayloadBehindValidChecksum(t *testing.T) {
	db := testDB(19, 0, 1)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Clone(data[headerLen:])
	payload[len(payload)-1] = 7 // Redacted flag: neither 0 nor 1
	mut := data[:headerLen:headerLen]
	sum := sha256.Sum256(payload)
	copy(mut[len(magic)+10:], sum[:])
	mut = append(mut, payload...)
	var fe *FormatError
	if _, err := Decode(mut); !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FormatError for invalid boolean", err)
	}
}

// TestReadMissing maps a nonexistent file to fs.ErrNotExist so cache
// layers can tell "no snapshot yet" from corruption.
func TestReadMissing(t *testing.T) {
	if _, err := ReadSeed(t.TempDir(), 404); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
}

// TestEncodeNil rejects a nil database instead of writing an empty study.
func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("want error for nil database")
	}
}

// TestPathShape pins the cross-binary file naming contract.
func TestPathShape(t *testing.T) {
	if got := Path("snaps", 42); got != filepath.Join("snaps", "study-42.avsnap") {
		t.Fatalf("Path = %q", got)
	}
}
