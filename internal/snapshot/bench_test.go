package snapshot

import (
	"context"
	"testing"
	"time"

	"avfda/internal/core"
	"avfda/internal/pipeline"
	"avfda/internal/query"
	"avfda/internal/synth"
)

// buildStudy runs the full Stage I-IV pipeline for a seed — the cost a
// snapshot load avoids.
func buildStudy(tb testing.TB, seed int64) *core.DB {
	tb.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Synth = synth.Config{Seed: seed}
	cfg.OCR.Seed = seed
	res, err := pipeline.Run(context.Background(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return res.DB
}

// loadStudy is the warm-start path avserve's cache takes: read + verify the
// snapshot, then rebuild the query indexes.
func loadStudy(tb testing.TB, dir string, seed int64) *query.Engine {
	tb.Helper()
	db, err := ReadSeed(dir, seed)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := query.New(db)
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// BenchmarkSnapshotLoad measures the warm-start path on the calibrated
// seed-1 study: disk read, verification, decode, and query-index rebuild.
// Compare against BenchmarkSnapshotPipelineRebuild — the acceptance bar is
// a >= 10x advantage, pinned by TestSnapshotLoadSpeedup.
func BenchmarkSnapshotLoad(b *testing.B) {
	dir := b.TempDir()
	if err := WriteSeed(dir, 1, buildStudy(b, 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loadStudy(b, dir, 1)
	}
}

// BenchmarkSnapshotPipelineRebuild measures the cold path the snapshot
// replaces: a full pipeline run plus index build for the same seed.
func BenchmarkSnapshotPipelineRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := buildStudy(b, 1)
		if _, err := query.New(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotWrite measures the export cost avpipe -snapshot-out and
// the cache's write-through tier pay per study.
func BenchmarkSnapshotWrite(b *testing.B) {
	db := buildStudy(b, 1)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteSeed(dir, 1, db); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSnapshotLoadSpeedup pins the performance contract that justifies the
// snapshot tier: loading a snapshot must be at least 10x faster than
// rebuilding the study through the pipeline. Both sides are measured in
// this process on the calibrated seed-1 study.
func TestSnapshotLoadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build in -short mode")
	}
	dir := t.TempDir()

	start := time.Now()
	db := buildStudy(t, 1)
	if _, err := query.New(db); err != nil {
		t.Fatal(err)
	}
	rebuild := time.Since(start)

	if err := WriteSeed(dir, 1, db); err != nil {
		t.Fatal(err)
	}
	loadStudy(t, dir, 1) // warm the page cache so the timed loads are steady

	const loads = 5
	start = time.Now()
	for i := 0; i < loads; i++ {
		loadStudy(t, dir, 1)
	}
	load := time.Since(start) / loads

	t.Logf("pipeline rebuild %v, snapshot load %v (%.0fx)", rebuild, load, float64(rebuild)/float64(load))
	if load*10 > rebuild {
		t.Errorf("snapshot load %v is not 10x faster than rebuild %v", load, rebuild)
	}
}
