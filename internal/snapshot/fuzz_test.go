package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotRead hardens the snapshot reader against arbitrary input:
// whatever bytes land in the file, Read must either return a valid database
// or one of the typed corruption errors (*FormatError, *VersionError,
// *ChecksumError) — never panic, never hand back a database alongside an
// error. The seed corpus covers the interesting boundary inputs from the
// property tests: a fully valid snapshot, header and payload truncations,
// single-bit flips in the version, checksum, and payload regions, and
// trailing garbage.
func FuzzSnapshotRead(f *testing.F) {
	valid, err := Encode(testDB(7, 12, 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("AVFDSNAP"))             // bare magic, truncated header
	f.Add(valid[:headerLen])              // header only, missing payload
	f.Add(valid[:headerLen+len(valid)/4]) // mid-payload truncation
	f.Add(append(bytes.Clone(valid), 0))  // trailing byte
	for _, i := range []int{len(magic), len(magic) + 2, len(magic) + 10, headerLen, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.avsnap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Read(path)
		if err != nil {
			if !typedSnapshotError(err) {
				t.Fatalf("untyped error for %d-byte input: %v", len(data), err)
			}
			if db != nil {
				t.Fatalf("Read returned both a database and error %v", err)
			}
			return
		}
		if db == nil {
			t.Fatal("Read returned nil database and nil error")
		}
		// Whatever decoded must re-encode: a database accepted from the
		// wire is a database the writer can represent.
		if _, err := Encode(db); err != nil {
			t.Fatalf("decoded database does not re-encode: %v", err)
		}
	})
}
