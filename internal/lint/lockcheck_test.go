package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestLockCheck drives lockcheck over fixtures with leaked locks (early
// returns past Lock/RLock, including promoted embedded mutexes) and
// blocking operations inside critical sections (channel send, interface-
// writer I/O, ctx-accepting callees, time.Sleep, WaitGroup.Wait), plus the
// accepted idioms: snapshot-then-render, balanced unlocks, defers,
// select-with-default, and goroutine bodies as separate frames.
func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.LockCheck, "lock/a")
}
