// Fixture for the mapiter analyzer: the package path ends in
// "internal/core", so it is determinism-critical.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// FlagWrite writes output in map-iteration order.
func FlagWrite(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m { // want `write to fmt.Fprintf inside .for range. over a map`
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

// FlagUnsortedAppend accumulates keys in map-iteration order and never
// sorts them.
func FlagUnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `"keys" is appended in map-iteration order and never sorted`
		keys = append(keys, k)
	}
	return keys
}

// OKSortedAppend is the sanctioned sortedKeys idiom: collect, sort, use.
func OKSortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OKSortSlice sorts through a closure; mentioning the slice inside the
// less-func counts.
func OKSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// OKPerKeyAppend appends into another map keyed by the loop variable: each
// key is touched exactly once, so iteration order cannot leak.
func OKPerKeyAppend(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// OKAggregates reads without making order observable.
func OKAggregates(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// OKAllowed demonstrates the escape hatch.
func OKAllowed(m map[string]int) string {
	var sb strings.Builder
	//lint:allow mapiter fixture demonstrates the suppression escape hatch
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}
