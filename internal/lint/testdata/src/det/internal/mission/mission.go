// Fixture for the mapiter analyzer: "internal/mission" is not
// determinism-critical, so the same pattern that is flagged in core is
// accepted here.
package mission

import (
	"fmt"
	"strings"
)

// NotCritical writes in map order but lives outside the guarded packages.
func NotCritical(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}
