// Package pipeline exercises goroleak inside a scoped package path:
// untethered spawns are flagged; WaitGroup, channel, context, and
// tether-carrying-argument idioms are accepted.
package pipeline

import (
	"context"
	"sync"
)

func compute(i int) int { return i }

// Orphan fires and forgets: nothing can await or cancel the goroutine.
func Orphan() {
	go func() { // want "no WaitGroup, channel, or context tether"
		compute(1)
	}()
}

type worker struct{ n int }

func (w *worker) step() {}

// OrphanCall spawns a named call whose receiver and arguments carry no
// tether either.
func OrphanCall(w *worker) {
	go w.step() // want "no WaitGroup, channel, or context tether"
}

// Fan is the accepted WaitGroup idiom.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			compute(i)
		}(i)
	}
	wg.Wait()
}

// Results delivers on a channel the caller drains.
func Results(n int) chan int {
	out := make(chan int, n)
	go func() {
		for i := 0; i < n; i++ {
			out <- compute(i)
		}
		close(out)
	}()
	return out
}

// Watch is tethered through the context it selects on.
func Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// flight carries its tether as a field, the singleflight shape.
type flight struct{ done chan struct{} }

// Launch's tether arrives through the argument's type.
func Launch(fl *flight) {
	go runFlight(fl)
}

func runFlight(fl *flight) { close(fl.done) }
