// Package other is outside goroleak's scoped packages: the same untethered
// spawn is not flagged here.
package other

// Orphan would be flagged in internal/pipeline; this package is out of
// scope.
func Orphan() {
	go func() {}()
}
