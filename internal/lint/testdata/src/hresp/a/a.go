// Package a exercises httpresp: double WriteHeader, writes after an error
// response (the missing-return bug), WriteHeader after a body write, and
// the accepted guard/stream/delegate shapes.
package a

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// missingReturn falls through from the error path to the success write.
func missingReturn(w http.ResponseWriter, r *http.Request, fail bool) {
	if fail {
		http.Error(w, "bad request", http.StatusBadRequest)
	}
	writeJSON(w, http.StatusOK, "ok") // want "response written after an error response"
}

// doubleHeader commits the status twice.
func doubleHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusNoContent) // want "duplicate WriteHeader"
}

// bodyAfterError keeps writing into a response already declared failed.
func bodyAfterError(w http.ResponseWriter) {
	http.Error(w, "bad request", http.StatusBadRequest)
	fmt.Fprintln(w, "details") // want "body write after an error response"
}

// headerAfterBody is a silent no-op: the first body write committed a 200.
func headerAfterBody(w http.ResponseWriter) {
	fmt.Fprint(w, "hello")
	w.WriteHeader(http.StatusAccepted) // want "WriteHeader after a body write"
}

// errorAfterError: a second error write means the first was not returned
// from.
func errorAfterError(w http.ResponseWriter, fail bool) {
	if fail {
		http.Error(w, "bad request", http.StatusBadRequest)
	}
	http.Error(w, "not found", http.StatusNotFound) // want "response written after an error response"
}

// guarded is the accepted shape of missingReturn: error write, then return.
func guarded(w http.ResponseWriter, fail bool) {
	if fail {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, "ok")
}

// stream commits a status and then streams the body — not a duplicate.
func stream(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "line 1")
	fmt.Fprintln(w, "line 2")
}

// branchy writes exactly once per branch.
func branchy(w http.ResponseWriter, ok bool) {
	if ok {
		writeJSON(w, http.StatusOK, "y")
	} else {
		http.Error(w, "bad request", http.StatusBadRequest)
	}
}

// delegate passes the writer to opaque sub-handlers; delegation is never
// flagged.
func delegate(w http.ResponseWriter, r *http.Request, next http.Handler) {
	next.ServeHTTP(w, r)
	next.ServeHTTP(w, r)
}

// writeJSON is the helper the classifier sees at call sites; its own body
// is the accepted status-then-body shape.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
