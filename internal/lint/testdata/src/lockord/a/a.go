// Package a exercises lockorder: opposite-order acquisition of two
// mutexes — direct, through a helper call, and across a package boundary —
// is flagged as a lock-ordering cycle, and provable same-instance
// reacquisition through a method chain is flagged as a self-deadlock.
// Consistent ordering, release-before-acquire, and child-under-parent
// instance locking are accepted.
package a

import (
	"sync"

	"lockord/b"
)

var muA, muB sync.Mutex

// TakeAB and TakeBA acquire the same two mutexes in opposite orders — the
// classic two-goroutine deadlock, both halves in one package.
func TakeAB() {
	muA.Lock()
	muB.Lock() // want `acquiring a\.muB while holding a\.muA \(acquired at line \d+\) creates the lock-ordering cycle a\.muA → a\.muB → a\.muA`
	muB.Unlock()
	muA.Unlock()
}

func TakeBA() {
	muB.Lock()
	muA.Lock() // want `acquiring a\.muA while holding a\.muB \(acquired at line \d+\) creates the lock-ordering cycle a\.muB → a\.muA → a\.muB`
	muA.Unlock()
	muB.Unlock()
}

var muC, muD sync.Mutex

// lockD hides the muD acquisition behind a call: the C→D edge below is
// visible only through lockD's summary, never syntactically in TakeCD.
func lockD() {
	muD.Lock()
}

func TakeCD() {
	muC.Lock()
	lockD() // want `call to a\.lockD acquires a\.muD \(at a\.go:\d+\) while a\.muC is held \(acquired at line \d+\), creating the lock-ordering cycle a\.muC → a\.muD → a\.muC`
	muD.Unlock()
	muC.Unlock()
}

// TakeDC closes the cycle directly, in the opposite order.
func TakeDC() {
	muD.Lock()
	muC.Lock() // want `acquiring a\.muC while holding a\.muD \(acquired at line \d+\) creates the lock-ordering cycle a\.muD → a\.muC → a\.muD`
	muC.Unlock()
	muD.Unlock()
}

// Counter reacquires its own mutex through a helper: Incr holds c.mu and
// calls bump, which locks c.mu again — proved same-instance through the
// receiver access path, a guaranteed self-deadlock.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `call to \(a\.Counter\)\.bump reacquires \(a\.Counter\)\.mu \(at a\.go:\d+\) already held since line \d+: sync mutexes are not reentrant`
}

// CrossPackage witnesses only half of its cycle: it acquires b.MuY
// (through the b.LockY helper) while holding b.MuX; the reverse order
// lives in package b's YThenX, visible only in the module-wide graph.
func CrossPackage() {
	b.MuX.Lock()
	b.LockY() // want `call to b\.LockY acquires b\.MuY \(at b\.go:\d+\) while b\.MuX is held \(acquired at line \d+\), creating the lock-ordering cycle b\.MuX → b\.MuY → b\.MuX`
	b.UnlockY()
	b.MuX.Unlock()
}

// Node locks a child's mutex under its parent's — the same lock class on
// provably different instances (paths n.mu vs n.next.mu), which must be
// accepted or every hand-over-hand traversal would be flagged.
type Node struct {
	mu   sync.Mutex
	next *Node
}

func Walk(n *Node) {
	n.mu.Lock()
	if n.next != nil {
		n.next.mu.Lock()
		n.next.mu.Unlock()
	}
	n.mu.Unlock()
}

var muE, muF sync.Mutex

// First and Second take muE before muF everywhere: edges, but no cycle.
func First() {
	muE.Lock()
	muF.Lock()
	muF.Unlock()
	muE.Unlock()
}

func Second() {
	muE.Lock()
	defer muE.Unlock()
	muF.Lock()
	muF.Unlock()
}

// Sequential never overlaps the two critical sections: no ordering edge.
func Sequential() {
	muE.Lock()
	muE.Unlock()
	muF.Lock()
	muF.Unlock()
}
