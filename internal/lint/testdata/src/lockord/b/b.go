// Package b supplies the dependency half of lockord's cross-package
// cycle: YThenX acquires MuX while holding MuY — the reverse of the order
// package a uses — and LockY is the helper a calls while holding MuX.
// Nothing here carries a want comment: b is loaded only as a dependency,
// so its edges surface through package a's module-wide graph.
package b

import "sync"

var (
	MuX sync.Mutex
	MuY sync.Mutex
)

// LockY hides the MuY acquisition behind a package boundary.
func LockY() {
	MuY.Lock()
}

func UnlockY() {
	MuY.Unlock()
}

// YThenX is the reverse-order half of the cross-package cycle.
func YThenX() {
	MuY.Lock()
	MuX.Lock()
	MuX.Unlock()
	MuY.Unlock()
}
