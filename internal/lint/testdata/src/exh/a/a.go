// Fixture for the exhaustive-category analyzer.
package a

import "avfda/internal/ontology"

// FlagMissingCategory omits CategoryUnknownC and has no default.
func FlagMissingCategory(c ontology.Category) string {
	switch c { // want `switch over ontology.Category is not exhaustive and has no default \(missing CategoryUnknownC\)`
	case ontology.CategoryMLDesign:
		return "ml"
	case ontology.CategorySystem:
		return "sys"
	}
	return ""
}

// FlagMissingTags covers one tag of three.
func FlagMissingTags(t ontology.Tag) bool {
	switch t { // want `switch over ontology.Tag is not exhaustive and has no default \(missing TagSoftware, TagUnknownT\)`
	case ontology.TagEnvironment:
		return true
	}
	return false
}

// OKDefault names a fallback.
func OKDefault(c ontology.Category) string {
	switch c {
	case ontology.CategoryMLDesign:
		return "ml"
	default:
		return "other"
	}
}

// OKExhaustive covers every member.
func OKExhaustive(c ontology.Category) string {
	switch c {
	case ontology.CategoryMLDesign:
		return "ml"
	case ontology.CategorySystem:
		return "sys"
	case ontology.CategoryUnknownC:
		return "unknown"
	}
	return ""
}

// OKOtherType is a switch over a non-guarded type.
func OKOtherType(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
