// Fixture for the errsubstr analyzer.
package a

import (
	"errors"
	"strings"
)

// ErrBoom is a sentinel for the sanctioned errors.Is path.
var ErrBoom = errors.New("boom")

// CodeError is a typed error for the sanctioned errors.As path.
type CodeError struct{ Code int }

func (e *CodeError) Error() string { return "code error" }

// FlagContains classifies by message substring.
func FlagContains(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `strings.Contains on err.Error\(\)`
}

// FlagPrefix classifies by message prefix.
func FlagPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "snapshot:") // want `strings.HasPrefix on err.Error\(\)`
}

// FlagEqual compares the rendered message.
func FlagEqual(err error) bool {
	return err.Error() == "boom" // want `comparing err.Error\(\) with ==`
}

// FlagNotEqual compares the rendered message negatively.
func FlagNotEqual(err error) bool {
	return err.Error() != "boom" // want `comparing err.Error\(\) with !=`
}

// OKIs classifies with errors.Is.
func OKIs(err error) bool {
	return errors.Is(err, ErrBoom)
}

// OKAs classifies with errors.As.
func OKAs(err error) (int, bool) {
	var ce *CodeError
	if errors.As(err, &ce) {
		return ce.Code, true
	}
	return 0, false
}

// OKPlainString matches on a string that is not an error message.
func OKPlainString(msg string) bool {
	return strings.Contains(msg, "boom") && msg == "boom"
}
