// errsubstr lints _test.go files too: assertion code is where the
// substring anti-pattern breeds.
package a

import "strings"

func assertBoom(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `strings.Contains on err.Error\(\)`
}
