// Package a exercises taintflow: raw request parameters reaching
// query.Engine sinks are flagged; comma-ok lookups, strconv parses, and
// module bool validators (interprocedural, via summaries) sanitize; taint
// propagates through the string family and module helpers.
package a

import (
	"net/http"
	"strconv"
	"strings"

	"avfda/internal/query"
)

// rawGroupBy passes the raw ?by= straight into the sink — the PR 8 bug.
func rawGroupBy(e *query.Engine, r *http.Request) {
	by := r.URL.Query().Get("by")
	_, _ = e.GroupCount(query.Filter{}, by) // want "request-derived value reaches GroupCount without validation"
}

// filterOnly passes only the structured carrier: exempt.
func filterOnly(e *query.Engine, r *http.Request) {
	f := query.Filter{Manufacturer: r.URL.Query().Get("mfr")}
	_, _ = e.Count(f)
}

// commaOk trusts the table, not the request: the ok-true branch validates.
var renderers = map[string]string{"manufacturer": "mfr"}

func commaOk(e *query.Engine, r *http.Request) {
	by := r.FormValue("by")
	if col, ok := renderers[by]; ok {
		_, _ = e.GroupCount(query.Filter{}, col)
		_, _ = e.GroupCount(query.Filter{}, by)
	}
}

// commaOkMissed uses the raw value outside the validated branch.
func commaOkMissed(e *query.Engine, r *http.Request) {
	by := r.FormValue("by")
	if _, ok := renderers[by]; !ok {
		_, _ = e.GroupCount(query.Filter{}, by) // want "request-derived value reaches GroupCount without validation"
	}
}

// parsed sanitizes by parsing: the structured int is not the raw string.
func parsed(e *query.Engine, r *http.Request) {
	year := r.URL.Query().Get("year")
	y, err := strconv.Atoi(year)
	if err != nil {
		return
	}
	_, _ = e.GroupCount(query.Filter{}, strconv.Itoa(y))
}

// laundered shows taint surviving the string family.
func laundered(e *query.Engine, r *http.Request) {
	by := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("by")))
	_, _ = e.GroupCount(query.Filter{}, by) // want "request-derived value reaches GroupCount without validation"
}

// urlField reads raw request bytes off the parsed URL.
func urlField(e *query.Engine, r *http.Request) {
	p := r.URL.Path
	_, _ = e.GroupCount(query.Filter{}, p) // want "request-derived value reaches GroupCount without validation"
}

// validated is the interprocedural fix shape: query.IsGroupColumn's
// summary says its true branch proves operand 0 a member of a fixed set.
func validated(e *query.Engine, r *http.Request) {
	by := r.URL.Query().Get("by")
	if !query.IsGroupColumn(by) {
		return
	}
	_, _ = e.GroupCount(query.Filter{}, by)
}

// norm forwards its operand's taint to the result (Prop summary).
func norm(s string) string { return strings.TrimSpace(s) }

// throughHelper is only flaggable interprocedurally: the raw value passes
// through a module helper whose summary propagates taint.
func throughHelper(e *query.Engine, r *http.Request) {
	by := norm(r.FormValue("by"))
	_, _ = e.GroupCount(query.Filter{}, by) // want "request-derived value reaches GroupCount without validation"
}

// runQuery forwards its operand into a sink (Sinks summary).
func runQuery(e *query.Engine, by string) {
	_, _ = e.GroupCount(query.Filter{}, by)
}

// viaHelper sinks through a module helper: only the Sinks summary sees it.
func viaHelper(e *query.Engine, r *http.Request) {
	runQuery(e, r.FormValue("by")) // want "request-derived value reaches runQuery without validation"
}
