// Fixture for the nondeterm analyzer: "internal/synth" is a pipeline-stage
// package, so ambient time and the global rand source are banned.
package synth

import (
	"math/rand"
	"time"
)

// FlagNow reads the wall clock.
func FlagNow() time.Time {
	return time.Now() // want `time.Now in a pipeline-stage package`
}

// FlagSince derives a duration from the wall clock.
func FlagSince(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since in a pipeline-stage package`
}

// FlagGlobalRand draws from the process-global source.
func FlagGlobalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the global source`
}

// FlagShuffle shuffles with the global source.
func FlagShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global source`
}

// OKSeeded derives every draw from an explicit seed: the sanctioned
// pattern.
func OKSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// OKInjectedTime takes its timestamp from the caller.
func OKInjectedTime(now time.Time) time.Time {
	return now.Add(time.Minute)
}
