// Fixture for the nondeterm analyzer: "internal/ocr" is not a
// pipeline-stage package in the guarded list, so ambient time is accepted
// here.
package ocr

import "time"

// NotStage reads the wall clock outside the guarded packages.
func NotStage() time.Time {
	return time.Now()
}
