// Package a exercises viewlife: mapped view bytes escaping to globals,
// channels, goroutines, and caller-visible fields are flagged; copies,
// returns, view-internal stores, and the interprocedural borrow/retain
// summaries are modeled.
package a

import (
	"slices"

	"avfda/internal/snapshot2"
)

var (
	cachedIDs []int
	cachedSec []byte
)

func process(b []byte) {}

// leakToGlobal stores a borrowed posting list past the view's lifetime.
func leakToGlobal(v *snapshot2.View) {
	ids := v.ManufacturerIDs("waymo")
	cachedIDs = ids // want "mapped view bytes stored in a package-level variable"
}

// copied breaks the borrow before storing: accepted.
func copied(v *snapshot2.View) {
	ids := v.ManufacturerIDs("waymo")
	cachedIDs = append([]int(nil), ids...)
	cachedSec = slices.Clone(v.Payload())
}

// stringCopy: string(...) materializes; storing the string is fine.
var cachedName string

func stringCopy(v *snapshot2.View) {
	cachedName = string(v.Payload())
}

// leakToChan sends mapped bytes to whoever outlives the view.
func leakToChan(v *snapshot2.View, ch chan []byte) {
	sec := v.Payload()
	ch <- sec // want "mapped view bytes stored in a channel send"
}

// leakToGoroutine captures mapped bytes in a frame with its own lifetime.
func leakToGoroutine(v *snapshot2.View) {
	sec := v.Payload()
	go process(sec) // want "mapped view bytes stored in a goroutine capture"
}

// Index is a caller-owned structure.
type Index struct {
	ids []int
}

// leakToField stores a borrow under a caller-visible root.
func leakToField(v *snapshot2.View, idx *Index) {
	idx.ids = v.ManufacturerIDs("cruise") // want "mapped view bytes stored in a caller-visible field"
}

// fieldCopied is the accepted version.
func fieldCopied(v *snapshot2.View, idx *Index) {
	idx.ids = slices.Clone(v.ManufacturerIDs("cruise"))
}

// storeIntoView parks a borrow inside the view itself: they die together.
func storeIntoView(v *snapshot2.View) {
	sec := v.Payload()
	v.Scratch = append(v.Scratch, sec)
}

// viewSection returns the borrow: the caller inherits it through this
// function's Borrows summary.
func viewSection(v *snapshot2.View) []byte {
	return v.Payload()
}

// materialized returns a copy, not a borrow.
func materialized(v *snapshot2.View, i int) string {
	return v.Manufacturer(i)
}

// stash retains its operand (Retains summary: the violation is pushed to
// the call site).
func stash(ids []int) {
	cachedIDs = ids
}

// leakViaHelper is only flaggable interprocedurally: locally stash is
// just a call with a slice argument.
func leakViaHelper(v *snapshot2.View) {
	ids := v.ManufacturerIDs("waymo")
	stash(ids) // want "mapped view bytes stored in a retaining callee"
}

// stashCopy is the accepted call: the argument is already a copy.
func stashCopy(v *snapshot2.View) {
	stash(slices.Clone(v.ManufacturerIDs("waymo")))
}

// leakViaBorrowingHelper gets its borrow through viewSection's Borrows
// summary, two frames from the accessor.
func leakViaBorrowingHelper(v *snapshot2.View) {
	sec := viewSection(v)
	cachedSec = sec // want "mapped view bytes stored in a package-level variable"
}
